"""Batched reasoning service: serve many netlists through one forward pass.

Demonstrates the serving layer added on top of :class:`repro.core.Gamora`:

* ``Gamora.reason_many`` — block-diagonal batching: N circuits, one
  vectorized GNN inference, per-circuit adder trees fanned back out;
* structural-hash deduplication — repeated designs in a request stream are
  reasoned once per batch;
* the structural-hash LRU caches — a re-submitted design is served straight
  from the result cache on later batches (the steady state under real
  traffic, where popular designs repeat);
* memory-bounded sharding — ``max_shard_bytes`` splits the mega-batch so
  every forward pass fits an explicit inference-memory budget;
* parallel post-processing — ``postprocess_workers`` fans the dominant
  per-circuit extraction stage out to worker processes, overlapped with the
  next shard's inference.

Run with::

    PYTHONPATH=src python examples/batched_service.py
"""

import os

from repro.core import Gamora
from repro.generators import csa_multiplier
from repro.learn import TrainConfig
from repro.serve import ReasoningService
from repro.utils.timing import Timer, format_seconds


def main() -> None:
    print("training a shallow Gamora on an 8-bit CSA multiplier ...")
    gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=150))
    gamora.fit([csa_multiplier(8)])

    # A request stream at batch size 8: mixed widths, popular designs repeat.
    widths = [8, 12, 16, 8, 12, 16, 8, 12]
    stream = [csa_multiplier(w) for w in widths]
    print(f"\nrequest stream: {[c.name for c in stream]}")

    with Timer() as sequential_timer:
        sequential = [gamora.reason(circuit) for circuit in stream]
    print(f"sequential reason() loop: {format_seconds(sequential_timer.elapsed)}")

    service = ReasoningService(gamora)
    cold = service.reason_many(stream)
    print(f"batched (cold caches):    {format_seconds(cold.stats.total_seconds)}"
          f"  [{cold.stats.summary()}]")

    warm = service.reason_many(stream)
    print(f"batched (warm caches):    {format_seconds(warm.stats.total_seconds)}"
          f"  [{warm.stats.summary()}]")

    print("\nper-circuit results (batched == sequential):")
    for circuit, left, right in zip(stream, sequential, cold):
        assert left.tree.num_full_adders == right.tree.num_full_adders
        print(f"  {circuit.name}: {right.tree.num_full_adders} FA, "
              f"{right.tree.num_half_adders} HA, "
              f"{right.num_mismatches} mismatches")

    print("\ncache counters:")
    for name, counters in service.cache_stats().items():
        print(f"  {name}: {counters}")

    speedup = sequential_timer.elapsed / cold.stats.total_seconds
    print(f"\ncold batched speedup over sequential: {speedup:.2f}x "
          f"(structural-hash dedup: {cold.stats.batch_size} requests -> "
          f"{cold.stats.unique_circuits} unique designs)")

    # Scaling knobs: bound each forward pass's memory to half the full
    # mega-batch and extract in worker processes (overlapped with the next
    # shard's inference).  Results are bit-identical to the paths above.
    budget = service.plan(stream, None).peak_shard_bytes // 2
    workers = min(2, os.cpu_count() or 1)
    scaled = ReasoningService(gamora, max_shard_bytes=budget,
                              postprocess_workers=workers)
    plan = scaled.plan(stream)
    print(f"\nsharded serving (budget {budget / 1024 ** 2:.1f}MiB, "
          f"{workers} workers): {plan.summary()}")
    bounded = scaled.reason_many(stream)
    print(f"sharded + parallel:       "
          f"{format_seconds(bounded.stats.total_seconds)}"
          f"  [{bounded.stats.summary()}]")
    for left, right in zip(cold, bounded):
        assert left.tree.num_full_adders == right.tree.num_full_adders


if __name__ == "__main__":
    main()
