#!/usr/bin/env python
"""Formal multiplier verification with Gamora-recovered adder trees.

Run:  python examples/verify_multiplier_sca.py [--width 8]

The paper's motivating application (Sec. III-A): symbolic computer algebra
verifies a multiplier by backward rewriting, and the expensive prerequisite
is finding the full/half adders.  This example

1. verifies a CSA multiplier three ways — naive gate-level rewriting,
   adder-aware rewriting with the *exact* tree, and adder-aware rewriting
   with the tree *predicted by Gamora*;
2. injects a bug into the netlist and shows verification now fails.
"""

import argparse

from repro.core import Gamora
from repro.generators import csa_multiplier
from repro.learn import TrainConfig
from repro.utils.timing import format_seconds
from repro.verify import TermExplosion, verify_multiplier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--train-width", type=int, default=8)
    args = parser.parse_args()

    target = csa_multiplier(args.width)
    print(f"== verifying {target.aig} ==")

    try:
        naive = verify_multiplier(target, mode="naive", max_terms=500_000)
        print(f"   naive gate-level : {'OK ' if naive.ok else 'FAIL'} "
              f"peak {naive.peak_terms} terms, {format_seconds(naive.seconds)}")
    except TermExplosion as exc:
        print(f"   naive gate-level : EXPLODED ({exc})")

    exact = verify_multiplier(target, mode="adder")
    print(f"   adder-aware/exact: {'OK ' if exact.ok else 'FAIL'} "
          f"peak {exact.peak_terms} terms, {format_seconds(exact.seconds)}")

    print("== same, with the adder tree recovered by Gamora ==")
    gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=250))
    gamora.fit([csa_multiplier(args.train_width)])
    outcome = gamora.reason(target)
    learned = verify_multiplier(target, mode="adder", tree=outcome.tree)
    print(f"   adder-aware/Gamora: {'OK ' if learned.ok else 'FAIL'} "
          f"peak {learned.peak_terms} terms, {format_seconds(learned.seconds)} "
          f"(tree: {outcome.tree.num_full_adders} FA, "
          f"{outcome.tree.num_half_adders} HA)")

    print("== fault injection: swap two product bits ==")
    broken = csa_multiplier(args.width)
    broken.aig._outputs[1], broken.aig._outputs[2] = (
        broken.aig._outputs[2],
        broken.aig._outputs[1],
    )
    result = verify_multiplier(broken, mode="adder")
    print(f"   buggy multiplier : {'OK (!!)' if result.ok else 'correctly REFUTED'} "
          f"({result.residue_terms} residue terms)")


if __name__ == "__main__":
    main()
