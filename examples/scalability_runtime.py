#!/usr/bin/env python
"""Runtime scaling: exact symbolic reasoning vs learned inference (Fig. 7).

Run:  python examples/scalability_runtime.py [--widths 16 32 64]

Trains once on an 8-bit multiplier, then sweeps evaluation widths and
prints the |V|/|E|-annotated runtime comparison of the paper's Fig. 7:
the exact cut-enumeration reasoner (the ABC stand-in) against the compiled
GNN inference kernel.
"""

import argparse

from repro.core import Gamora
from repro.generators import csa_multiplier
from repro.learn import TrainConfig, compile_inference, timed_inference
from repro.reasoning import detect_xor_maj, extract_adder_tree
from repro.utils.timing import Timer, format_seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--widths", type=int, nargs="+", default=[16, 32, 64])
    parser.add_argument("--train-width", type=int, default=8)
    args = parser.parse_args()

    print(f"== training on mult{args.train_width} ==")
    gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=250))
    gamora.fit([csa_multiplier(args.train_width)])
    kernel = compile_inference(gamora.net)

    header = f"{'design':>10} {'|V|':>10} {'|E|':>10} {'exact':>12} {'gamora':>12} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for width in args.widths:
        gen = csa_multiplier(width)
        with Timer() as exact_timer:
            extract_adder_tree(gen.aig, detect_xor_maj(gen.aig))
        data = gamora.prepare(gen, with_labels=False)
        result = timed_inference(kernel, data)
        speedup = exact_timer.elapsed / max(result.seconds, 1e-9)
        print(
            f"{width:>8}-b {gen.aig.num_vars:>10,} {gen.aig.num_edges:>10,} "
            f"{format_seconds(exact_timer.elapsed):>12} "
            f"{format_seconds(result.seconds):>12} {speedup:>7.0f}x"
        )


if __name__ == "__main__":
    main()
