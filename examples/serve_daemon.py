"""Always-on serving daemon: concurrent clients, one shared micro-batch.

Demonstrates the daemon layer on top of :class:`repro.serve.ReasoningService`:

* ``GamoraDaemon`` — a persistent scheduler thread coalesces whatever
  arrived within ``batch_window_ms`` into one ``reason_many`` call, so
  structural-hash dedup collapses identical circuits *across clients*;
* ``DaemonClient`` — the in-process protocol client (the Unix-socket
  server speaks exactly the same JSON messages);
* per-request stats — queue wait, micro-batch id, shard assignment,
  cache hits (also written to ``run_dir/<request_id>/stats.json``);
* admission control — beyond ``max_queue_depth`` waiting requests the
  daemon fast-fails with a retriable ``queue_full`` error;
* warm restarts — ``cache_dir`` spills both caches on shutdown and
  preloads them on the next start, so a restarted daemon serves repeat
  structures from cache without a single forward pass.

Run with::

    PYTHONPATH=src python examples/serve_daemon.py
"""

import tempfile
import threading
from pathlib import Path

from repro.core import Gamora
from repro.generators import csa_multiplier
from repro.learn import TrainConfig
from repro.serve import DaemonClient, GamoraDaemon, QueueFullError


def main() -> None:
    print("training a shallow Gamora on an 8-bit CSA multiplier ...")
    gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=150))
    gamora.fit([csa_multiplier(8)])

    workdir = Path(tempfile.mkdtemp(prefix="gamora-daemon-"))
    cache_dir = workdir / "cache"
    run_dir = workdir / "runs"

    # Six concurrent clients, three unique designs: the regime the daemon
    # is built for — cross-request dedup inside one micro-batch.
    pool = [csa_multiplier(w).aig for w in (8, 12, 16)]
    print(f"\nstarting daemon (cache: {cache_dir})")
    with GamoraDaemon(gamora, batch_window_ms=100, cache_dir=cache_dir,
                      run_dir=run_dir) as daemon:
        client = DaemonClient(daemon)
        responses = [None] * 6

        def fire(index: int) -> None:
            responses[index] = client.reason(pool[index % len(pool)],
                                             request_id=f"client-{index}")

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print("\nper-request view (6 clients, 3 unique structures):")
        for response in responses:
            stats = response["stats"]
            result = response["result"]
            print(f"  {response['id']}: {result['num_full_adders']} FA, "
                  f"{result['num_half_adders']} HA | batch "
                  f"#{stats['batch_id']} of {stats['batch_size']}, "
                  f"shard {stats['shard_index']}, "
                  f"waited {stats['queue_wait_seconds'] * 1e3:.1f}ms")

        snapshot = daemon.scheduler.stats()
        print(f"\ncoalescing: {snapshot['accepted']} requests -> "
              f"{snapshot['batches']} micro-batch(es) -> "
              f"{snapshot['num_shards']} forward pass(es)")
        print(f"per-request stats files: {sorted(p.name for p in run_dir.iterdir())}")

        # Admission control: a tiny queue rejects the overflow retriably.
        tight = GamoraDaemon(gamora, batch_window_ms=5000, max_queue_depth=1)
        tight.start()
        tight.submit_async(pool[0])
        try:
            tight.submit_async(pool[1])
        except QueueFullError as error:
            print(f"\nbackpressure: {error} (retriable={error.retriable})")
        tight.close()

    print(f"\ndaemon stopped; spilled {daemon.saved_results} results + "
          f"{daemon.saved_graphs} graphs")

    # A restarted daemon preloads the spill: repeats cost zero inference.
    with GamoraDaemon(gamora, batch_window_ms=1,
                      cache_dir=cache_dir) as reborn:
        print(f"restarted daemon preloaded {reborn.loaded_results} results, "
              f"{reborn.loaded_graphs} graphs")
        outcome, stats = reborn.submit(pool[0])
        print(f"repeat request: cache hit={stats.result_hit}, "
              f"{outcome.tree.num_full_adders} FA, report depth "
              f"{len(outcome.report.ranks)} — no forward pass needed")


if __name__ == "__main__":
    main()
