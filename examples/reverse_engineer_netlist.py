#!/usr/bin/env python
"""Reverse-engineer functional blocks from an unknown flattened netlist.

Run:  python examples/reverse_engineer_netlist.py [--width 16] [--booth]

Models the paper's motivating security scenario: you receive a flattened
gate-level netlist (an AIGER file with no hierarchy, no names, no RTL) and
must recover its high-level arithmetic structure.  The script

1. fabricates the "unknown" netlist (a multiplier, optionally Booth), strips
   its symbols, and round-trips it through binary AIGER like a real
   interchange flow would;
2. runs a trained Gamora over it;
3. prints the recovered word-level structure: adder count, reduction-tree
   depth, partial-product count — enough to identify it as a multiplier and
   read off its operand width.
"""

import argparse
import tempfile
from pathlib import Path

from repro.aig import read_aiger, write_aig
from repro.core import Gamora
from repro.generators import booth_multiplier, csa_multiplier
from repro.learn import TrainConfig
from repro.reasoning import analyze_adder_tree
from repro.utils.timing import format_seconds


def fabricate_unknown_netlist(width: int, booth: bool, directory: Path) -> Path:
    """Produce an anonymized binary AIGER file, as an adversary would see."""
    gen = booth_multiplier(width) if booth else csa_multiplier(width)
    gen.aig.name = "unknown"
    gen.aig._input_names = [f"n{i}" for i in range(gen.aig.num_inputs)]
    gen.aig._output_names = [f"z{i}" for i in range(gen.aig.num_outputs)]
    path = directory / "unknown.aig"
    write_aig(gen.aig, path)
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument("--booth", action="store_true")
    parser.add_argument("--train-width", type=int, default=8)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        path = fabricate_unknown_netlist(args.width, args.booth, Path(tmp))
        print(f"== received {path.name}: "
              f"{path.stat().st_size} bytes of flattened logic ==")
        unknown = read_aiger(path)
        print(f"   parsed: {unknown}")

        print("== training Gamora on small in-house multipliers ==")
        kind = booth_multiplier if args.booth else csa_multiplier
        model = "deep" if args.booth else "shallow"
        gamora = Gamora(model=model, train_config=TrainConfig(epochs=300))
        gamora.fit([kind(args.train_width)])

        print("== reasoning over the unknown netlist ==")
        outcome = gamora.reason(unknown)
        report = analyze_adder_tree(unknown, outcome.tree)
        print(f"   inference: {format_seconds(outcome.inference_seconds)}")
        print(f"   {report.summary()}")

        num_pps = len(report.pp_leaves)
        print("== verdict ==")
        if report.num_adders > 4 and num_pps > 4:
            estimated_width = round(num_pps ** 0.5)
            print(f"   netlist contains a carry-save reduction tree of "
                  f"{report.num_full_adders} FAs / {report.num_half_adders} HAs")
            print(f"   fed by {num_pps} AND partial products "
                  f"=> looks like a ~{estimated_width}-bit multiplier "
                  f"(actual: {args.width}-bit)")
        else:
            print("   no significant arithmetic structure recovered")


if __name__ == "__main__":
    main()
