#!/usr/bin/env python
"""Quickstart: train Gamora on a small multiplier, reason about a big one.

Run:  python examples/quickstart.py [--train-width 8] [--eval-width 32]

This walks the paper's core loop end to end:
1. generate an 8-bit CSA multiplier AIG (the training design);
2. train the multi-task GraphSAGE on exact-reasoning labels;
3. run inference on a 32-bit multiplier it has never seen;
4. post-process predictions into an adder tree and compare with exact
   symbolic reasoning.
"""

import argparse

from repro.core import Gamora
from repro.generators import csa_multiplier
from repro.learn import TrainConfig
from repro.reasoning import analyze_adder_tree, compare_adder_trees, extract_adder_tree
from repro.utils.timing import Timer, format_seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-width", type=int, default=8)
    parser.add_argument("--eval-width", type=int, default=32)
    parser.add_argument("--epochs", type=int, default=250)
    args = parser.parse_args()

    print(f"== 1. Generate mult{args.train_width} (training) ==")
    train_design = csa_multiplier(args.train_width)
    print(f"   {train_design.aig}")

    print("== 2. Train multi-task GraphSAGE ==")
    gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=args.epochs))
    with Timer() as train_timer:
        gamora.fit([train_design])
    final = gamora.history[-1]
    print(f"   {gamora.net.describe()}")
    print(f"   trained in {format_seconds(train_timer.elapsed)}, "
          f"final loss {final['loss']:.4f}, train accuracy {final['mean']:.4f}")

    print(f"== 3. Reason about mult{args.eval_width} (never seen) ==")
    target = csa_multiplier(args.eval_width)
    outcome = gamora.reason(target)
    print(f"   target: {target.aig}")
    print(f"   inference {format_seconds(outcome.inference_seconds)}, "
          f"post-processing {format_seconds(outcome.postprocess_seconds)}, "
          f"{outcome.num_mismatches} unverifiable predictions")

    print("== 4. Compare against exact symbolic reasoning ==")
    with Timer() as exact_timer:
        exact_tree = extract_adder_tree(target.aig)
    scores = compare_adder_trees(exact_tree, outcome.tree)
    report = analyze_adder_tree(target.aig, outcome.tree)
    print(f"   exact reasoning took {format_seconds(exact_timer.elapsed)}")
    print(f"   predicted adder tree: {report.summary()}")
    print(f"   vs exact tree: precision {scores['precision']:.3f}, "
          f"recall {scores['recall']:.3f}, F1 {scores['f1']:.3f}")
    speedup = exact_timer.elapsed / max(outcome.inference_seconds, 1e-9)
    print(f"   learned inference speedup over exact reasoning: {speedup:.0f}x")

    metrics = gamora.evaluate(target, labels_source="structural")
    print(f"   node-level reasoning accuracy: mean {metrics['mean']:.4f} "
          f"(xor {metrics['xor']:.4f}, maj {metrics['maj']:.4f}, "
          f"root {metrics['root']:.4f})")


if __name__ == "__main__":
    main()
