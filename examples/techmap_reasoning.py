#!/usr/bin/env python
"""Reasoning across technology mapping (the paper's Fig. 5 scenario).

Run:  python examples/techmap_reasoning.py [--width 12]

Maps a CSA multiplier with (a) the simple MCNC-reduced library and (b) the
ASAP7-like library with multi-output full-adder cells, re-expands both back
into AIGs ("strash after map"), and shows how a model trained on unmapped
netlists copes — plus the retraining fix the paper recommends.
"""

import argparse

from repro.core import Gamora
from repro.generators import csa_multiplier
from repro.learn import TrainConfig
from repro.techmap import asap7_like, map_aig, mcnc_reduced, netlist_to_aig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=12)
    parser.add_argument("--train-width", type=int, default=8)
    args = parser.parse_args()

    target = csa_multiplier(args.width)
    print(f"== target: {target.aig} ==")

    mapped = {}
    for library in (mcnc_reduced(), asap7_like()):
        netlist = map_aig(target.aig, library)
        back = netlist_to_aig(netlist)
        mapped[library.name] = back
        histogram = netlist.cell_histogram()
        interesting = {
            name: count
            for name, count in histogram.items()
            if name.upper().startswith(("FA", "HA", "XOR", "XNOR", "MAJ"))
        }
        print(f"   {library.name}: {netlist.num_cells} cells, "
              f"area {netlist.area:.1f}, arithmetic cells {interesting}")
        print(f"      re-expanded: {target.aig.num_ands} ANDs -> {back.num_ands} ANDs")

    print("== model trained on UNMAPPED mult8 ==")
    base = Gamora(model="shallow", train_config=TrainConfig(epochs=250))
    base.fit([csa_multiplier(args.train_width)])
    plain = base.evaluate(target, labels_source="structural")
    print(f"   unmapped accuracy: {plain['mean']:.4f}")
    for lib_name, aig in mapped.items():
        metrics = base.evaluate(aig)
        print(f"   after {lib_name} mapping: {metrics['mean']:.4f} "
              f"(xor {metrics['xor']:.3f}, maj {metrics['maj']:.3f})")

    print("== retrained on mapped mult8 (the paper's fix) ==")
    for library in (mcnc_reduced(), asap7_like()):
        train_mapped = netlist_to_aig(
            map_aig(csa_multiplier(args.train_width).aig, library)
        )
        retrained = Gamora(model="deep", train_config=TrainConfig(epochs=250))
        retrained.fit([train_mapped])
        metrics = retrained.evaluate(mapped[library.name])
        print(f"   {library.name}: retrained accuracy {metrics['mean']:.4f}")


if __name__ == "__main__":
    main()
