"""Kernel backends head-to-head: numpy reference vs the numba JIT lane.

Micro-benchmarks each of the four registered hot-path kernels
(:mod:`repro.kernels`) in isolation on the 64-bit CSA multiplier — the
per-level cut merge, the cone frontier sweep, the packed-key FA join and
the Kahn longest-path wavefront — with the *same* prebuilt inputs for
every backend, so the comparison times nothing but the kernel.

The numpy baseline always runs and appends a record to
``BENCH_kernels.json``.  With numba installed the differential lane also
runs: every kernel's output must be **bit-identical** to the numpy
reference (asserted here, not just in the unit suite), at least two of
the four kernels must clear a 3x speedup, and the CI smoke guard pins
>= 2x on the cone sweep alone.  JIT compilation happens before timing
(one untimed warmup call per kernel), exactly like the serving daemon's
boot-time warmup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import (
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
    bench_multiplier,
)
from repro.aig.cuts import TRIVIAL_TRUTH
from repro.kernels import registry
from repro.kernels.numpy_backend import _SAFE_PACK_LIMIT
from repro.kernels.registry import numba_available
from repro.reasoning.fast_pairing import (
    PairingCandidates,
    _full_adder_edges,
    _match_full_adders,
)

WIDTH = 64
K, MAX_CUTS = 3, 10
REPEATS = 3
MIN_SPEEDUP = 3.0  # full-lane bar, on at least two kernels
SMOKE_MIN_SPEEDUP = 2.0  # CI smoke bar, on the cone sweep

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


def backend_impl(kernel: str, backend: str):
    """A backend's raw kernel implementation, bypassing global selection."""
    assert registry._load_backend(backend), backend
    return registry._impls[(kernel, backend)]


# ---------------------------------------------------------------------------
# Shared inputs: built once from the 64-bit multiplier, identical for
# every backend (in-place kernels get fresh scratch copies per run).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def inputs():
    aig = bench_multiplier(WIDTH).aig
    fanin0, fanin1 = aig.fanin_arrays()
    fanin0 = np.asarray(fanin0, dtype=np.int64)
    fanin1 = np.asarray(fanin1, dtype=np.int64)
    num_vars = aig.num_vars
    first = 1 + aig.num_inputs
    batches = list(aig.and_level_batches())

    # cone_sweep / fa_join inputs: the real matched-FA frontier of this
    # multiplier, reconstructed through the (backend-independent) pairing
    # preamble so both kernels see serving-shaped data.
    from repro.aig.fast_cuts import enumerate_cuts_arrays

    cuts = enumerate_cuts_arrays(aig, k=K, max_cuts=MAX_CUTS)
    cands = PairingCandidates.from_cut_arrays(cuts)
    fa_maj, fa_xor, fa_leaves = _match_full_adders(*_full_adder_edges(cands))
    owner = np.arange(len(fa_maj), dtype=np.int64)
    stride = np.int64(num_vars)
    ml, xl = cands.maj_leaves, cands.xor3_leaves
    return {
        "aig": aig,
        "num_vars": num_vars,
        "first_and": first,
        "fanin0": fanin0,
        "fanin1": fanin1,
        "f0v": fanin0 >> 1,
        "f1v": fanin1 >> 1,
        "batches": batches,
        "num_ands": aig.num_ands,
        "root_vars": np.concatenate([fa_xor, fa_maj]),
        "root_owner": np.concatenate([owner, owner]),
        "leaf_matrix": np.asarray(fa_leaves, dtype=np.int64),
        "maj_var": np.asarray(cands.maj_var, dtype=np.int64),
        "maj_key": (ml[:, 0] * stride + ml[:, 1]) * stride + ml[:, 2],
        "xor_var": np.asarray(cands.xor3_var, dtype=np.int64),
        "xor_key": (xl[:, 0] * stride + xl[:, 1]) * stride + xl[:, 2],
        "num_adders": len(fa_maj),
    }


def run_merge_level(impl, inp):
    num_vars = inp["num_vars"]
    slots = MAX_CUTS + 1
    pad = num_vars
    leaves = np.full((num_vars, slots, 3), pad, dtype=np.int32)
    truths = np.zeros((num_vars, slots), dtype=np.uint8)
    sizes = np.zeros((num_vars, slots), dtype=np.int8)
    counts = np.zeros(num_vars, dtype=np.int32)
    boundary = np.arange(inp["first_and"])
    leaves[boundary, 0, 0] = boundary
    truths[boundary, 0] = TRIVIAL_TRUTH
    sizes[boundary, 0] = 1
    counts[boundary] = 1
    for batch in inp["batches"]:
        impl(batch, inp["fanin0"], inp["fanin1"], leaves, truths, sizes,
             counts, k=K, max_cuts=MAX_CUTS, include_trivial=True,
             pad=pad, pack_limit=_SAFE_PACK_LIMIT)
    return leaves, truths, sizes, counts


def run_cone_sweep(impl, inp):
    return impl(inp["first_and"], inp["f0v"], inp["f1v"],
                inp["root_vars"], inp["root_owner"], inp["leaf_matrix"])


def run_fa_join(impl, inp):
    return impl(inp["maj_var"], inp["maj_key"],
                inp["xor_var"], inp["xor_key"])


def run_kahn_propagate(impl, inp):
    first, n_ands = inp["first_and"], inp["num_ands"]
    f0v = inp["f0v"][first:]
    f1v = inp["f1v"][first:]
    indegree = (f0v >= first).astype(np.int64) + (f1v >= first)
    src = np.concatenate([f0v, f1v]) - first
    dst = np.concatenate([np.arange(n_ands), np.arange(n_ands)])
    keep = src >= 0
    src, dst = src[keep], dst[keep]
    order = np.argsort(src, kind="stable")
    bounds = np.searchsorted(src[order], np.arange(n_ands + 1))
    values = np.ones(n_ands, dtype=np.int64)
    impl(bounds, dst[order], indegree, values)
    return (values,)


RUNNERS = {
    "merge_level": run_merge_level,
    "cone_sweep": run_cone_sweep,
    "fa_join": run_fa_join,
    "kahn_propagate": run_kahn_propagate,
}


def measure(kernel: str, backend: str, inp) -> tuple[tuple, float]:
    """Best-of-``REPEATS`` wall clock; result from the last run."""
    impl = backend_impl(kernel, backend)
    runner = RUNNERS[kernel]
    runner(impl, inp)  # untimed warmup: JIT under numba, caches under numpy
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = runner(impl, inp)
        best = min(best, time.perf_counter() - started)
    return result, best


def assert_identical(kernel: str, ref: tuple, got: tuple) -> None:
    assert len(ref) == len(got), kernel
    for index, (want, have) in enumerate(zip(ref, got)):
        np.testing.assert_array_equal(
            want, have,
            err_msg=f"{kernel}: numba output {index} diverged from numpy",
        )


@pytest.fixture(scope="module")
def numpy_times(inputs):
    return {kernel: measure(kernel, "numpy", inputs)
            for kernel in registry.KERNEL_NAMES}


def test_kernels_numpy_baseline(benchmark, inputs, numpy_times):
    """Always-on lane: sanity-check and record the reference timings."""
    keep_under_benchmark_only(benchmark)
    (leaves, _, _, counts), _ = numpy_times["merge_level"]
    assert int(counts.sum()) > inputs["num_vars"]  # cuts actually stored
    (nodes, owners), _ = numpy_times["cone_sweep"]
    assert len(nodes) == len(owners) > 0
    (edge_maj, edge_xor, _), _ = numpy_times["fa_join"]
    assert len(edge_maj) == len(edge_xor) >= inputs["num_adders"]
    (values,), _ = numpy_times["kahn_propagate"]
    assert values.max() > 1
    emit_json("BENCH_kernels", {
        "width": WIDTH,
        "backend": "numpy",
        "numba_available": numba_available(),
        "seconds": {k: t for k, (_, t) in numpy_times.items()},
    })


@needs_numba
def test_kernels_numba_speedup(benchmark, inputs, numpy_times):
    """Full numba lane: bit-identical outputs, >= 3x on >= 2 kernels."""
    keep_under_benchmark_only(benchmark)
    rows, speedups = [], {}
    for kernel in registry.KERNEL_NAMES:
        ref, ref_seconds = numpy_times[kernel]
        got, jit_seconds = measure(kernel, "numba", inputs)
        assert_identical(kernel, ref, got)
        speedups[kernel] = ref_seconds / max(jit_seconds, 1e-9)
        rows.append([kernel, f"{ref_seconds * 1e3:.2f}",
                     f"{jit_seconds * 1e3:.2f}",
                     f"{speedups[kernel]:.1f}x"])
    emit("kernels_backends", format_table(
        f"Kernel backends, {WIDTH}-bit CSA (best of {REPEATS})",
        ["kernel", "numpy ms", "numba ms", "speedup"], rows,
    ))
    emit_json("BENCH_kernels", {
        "width": WIDTH,
        "backend": "numba",
        "speedups": speedups,
    })
    cleared = sum(s >= MIN_SPEEDUP for s in speedups.values())
    assert cleared >= 2, (
        f"expected >= {MIN_SPEEDUP}x on at least two kernels, got {speedups}"
    )


@needs_numba
def test_kernels_smoke(benchmark, inputs):
    """CI guard: the cone sweep alone must clear 2x, bit-identically."""
    keep_under_benchmark_only(benchmark)
    ref, ref_seconds = measure("cone_sweep", "numpy", inputs)
    got, jit_seconds = measure("cone_sweep", "numba", inputs)
    assert_identical("cone_sweep", ref, got)
    speedup = ref_seconds / max(jit_seconds, 1e-9)
    emit_json("BENCH_kernels", {
        "smoke": True,
        "width": WIDTH,
        "cone_sweep_speedup": speedup,
    })
    assert speedup >= SMOKE_MIN_SPEEDUP, (
        f"cone_sweep: {speedup:.2f}x under numba (need >= "
        f"{SMOKE_MIN_SPEEDUP}x)"
    )
