"""Figure 6 — Booth multipliers: shallow vs deep models.

Reproduces the paper's Fig. 6: radix-4 Booth-encoded multipliers are
structurally more complex, so the shallow 4-layer/32-hidden model
underperforms while the deep 8-layer/80-hidden model reaches high accuracy,
and larger training multipliers are required than for CSA.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, percent, trained_gamora
from repro.learn import timed_inference

TRAIN_WIDTHS = (8, 12, 16) if FULL else (8, 12)
EVAL_WIDTHS = (16, 24, 32, 48) if FULL else (16, 24)


@pytest.fixture(scope="module")
def depth_series():
    series: dict[str, dict[int, dict[int, float]]] = {}
    for model in ("shallow", "deep"):
        per_train: dict[int, dict[int, float]] = {}
        for train_width in TRAIN_WIDTHS:
            gamora = trained_gamora(
                train_widths=(train_width,), kind="booth", model=model, epochs=600
            )
            per_train[train_width] = {
                w: gamora.evaluate(
                    bench_multiplier(w, "booth"), labels_source="functional"
                )["mean"]
                for w in EVAL_WIDTHS
            }
        series[model] = per_train
    return series


def test_fig6_series(depth_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for model, per_train in depth_series.items():
        rows = [
            [f"Mult{t}"] + [percent(per_train[t][w]) for w in EVAL_WIDTHS]
            for t in TRAIN_WIDTHS
        ]
        emit(
            "fig6_depth",
            format_table(
                f"Fig.6: {model} model on Booth multipliers",
                ["train \\ eval"] + [f"{w}-bit" for w in EVAL_WIDTHS],
                rows,
            ),
        )


def test_fig6_deep_model_wins(depth_series, benchmark):
    keep_under_benchmark_only(benchmark)
    top_train = TRAIN_WIDTHS[-1]
    deep = depth_series["deep"][top_train]
    shallow = depth_series["shallow"][top_train]
    wins = sum(deep[w] >= shallow[w] - 0.01 for w in EVAL_WIDTHS)
    assert wins >= len(EVAL_WIDTHS) - 1, (
        f"deep model should dominate on Booth: deep={deep}, shallow={shallow}"
    )


def test_fig6_larger_training_helps(depth_series, benchmark):
    """Paper: Booth needs larger training multipliers than CSA."""
    keep_under_benchmark_only(benchmark)
    deep = depth_series["deep"]
    first, last = TRAIN_WIDTHS[0], TRAIN_WIDTHS[-1]
    improvements = sum(deep[last][w] >= deep[first][w] - 0.01 for w in EVAL_WIDTHS)
    assert improvements >= len(EVAL_WIDTHS) - 1


def test_fig6_deep_accuracy_level(depth_series, benchmark):
    """Paper: deep model reaches >97% on Booth; allow margin for CPU-scale
    training budgets."""
    keep_under_benchmark_only(benchmark)
    top_train = TRAIN_WIDTHS[-1]
    assert max(depth_series["deep"][top_train].values()) > 0.93


def test_fig6_inference_kernel(benchmark):
    gamora = trained_gamora(train_widths=(TRAIN_WIDTHS[-1],), kind="booth",
                            model="deep", epochs=600)
    data = gamora.prepare(bench_multiplier(EVAL_WIDTHS[-1], "booth"),
                          with_labels=False)
    benchmark.pedantic(
        lambda: timed_inference(gamora.net, data), rounds=3, iterations=1
    )
