"""Figure 4 — CSA sensitivity: training bitwidth × task setting × features.

Reproduces the four panels of the paper's Fig. 4: reasoning accuracy on CSA
multipliers as a function of (1) the bitwidth used for training (2–10),
(2) single-task vs multi-task classification, and (3) structural-only vs
structural+functional node features.

Paper claims checked:
* accuracy converges once the training multiplier reaches ~8 bits;
* multi-task strictly beats the collapsed single-task formulation;
* adding functional (inverter-bit) features strictly helps;
* the multi-task + full-features corner sits near 100%.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, percent, trained_gamora
from repro.learn import timed_inference

TRAIN_WIDTHS = (2, 4, 6, 8, 10) if FULL else (2, 4, 6, 8)
EVAL_WIDTHS = (12, 16, 32, 64, 128) if FULL else (12, 16, 24)
PANELS = [
    ("single-task, structural", True, "structural"),
    ("single-task, structural+functional", True, "full"),
    ("multi-task, structural", False, "structural"),
    ("multi-task, structural+functional", False, "full"),
]


def _panel_series(single_task: bool, feature_mode: str) -> dict[int, dict[int, float]]:
    """accuracy[train_width][eval_width] for one panel."""
    series: dict[int, dict[int, float]] = {}
    for train_width in TRAIN_WIDTHS:
        gamora = trained_gamora(
            train_widths=(train_width,),
            feature_mode=feature_mode,
            single_task=single_task,
        )
        series[train_width] = {
            eval_width: gamora.evaluate(
                bench_multiplier(eval_width), labels_source="structural"
            )["mean"]
            for eval_width in EVAL_WIDTHS
        }
    return series


@pytest.fixture(scope="module")
def panels():
    return {
        label: _panel_series(single, mode) for label, single, mode in PANELS
    }


def test_fig4_panels(panels, benchmark):
    keep_under_benchmark_only(benchmark)
    for label, series in panels.items():
        rows = [
            [f"Mult{train}"] + [percent(series[train][w]) for w in EVAL_WIDTHS]
            for train in TRAIN_WIDTHS
        ]
        emit(
            "fig4_sensitivity",
            format_table(
                f"Fig.4 panel: {label} (CSA multipliers)",
                ["train \\ eval"] + [f"{w}-bit" for w in EVAL_WIDTHS],
                rows,
            ),
        )

    best = panels["multi-task, structural+functional"]
    weakest = panels["single-task, structural"]
    top_train = TRAIN_WIDTHS[-1]
    for eval_width in EVAL_WIDTHS:
        # Multi-task + functional info is the strongest corner (paper Fig. 4).
        assert best[top_train][eval_width] >= weakest[top_train][eval_width]
    # Near-100% accuracy once trained on >= 8-bit multipliers.
    assert best[8][EVAL_WIDTHS[0]] > 0.97
    # Convergence: training on 8-bit is at least as good as on 2-bit.
    assert best[8][EVAL_WIDTHS[-1]] >= best[2][EVAL_WIDTHS[-1]] - 0.02


def test_fig4_multitask_never_loses_to_singletask(panels, benchmark):
    """Knowledge sharing must not hurt: multi-task matches or beats the
    collapsed single-task head everywhere (within noise).

    The paper's Fig. 4 shows a *dramatic* single-task collapse (70–88%);
    at our CPU training scale the product-space single-task head trains
    to within a point of multi-task, so the reproduced claim is the
    weaker dominance ordering — documented in EXPERIMENTS.md.
    """
    keep_under_benchmark_only(benchmark)
    multi = panels["multi-task, structural+functional"]
    single = panels["single-task, structural+functional"]
    for t in TRAIN_WIDTHS[2:]:
        for w in EVAL_WIDTHS:
            assert multi[t][w] >= single[t][w] - 0.01
    top = TRAIN_WIDTHS[-1]
    assert multi[top][EVAL_WIDTHS[0]] > 0.97


def test_fig4_functional_features_help(panels, benchmark):
    keep_under_benchmark_only(benchmark)
    full = panels["multi-task, structural+functional"]
    slim = panels["multi-task, structural"]
    top_train = TRAIN_WIDTHS[-1]
    for eval_width in EVAL_WIDTHS:
        assert full[top_train][eval_width] > slim[top_train][eval_width]


def test_fig4_inference_kernel(benchmark, panels):
    """Time the representative kernel: inference on the largest eval size."""
    gamora = trained_gamora(train_widths=(8,))
    data = gamora.prepare(bench_multiplier(EVAL_WIDTHS[-1]), with_labels=False)
    result = benchmark.pedantic(
        lambda: timed_inference(gamora.net, data), rounds=3, iterations=1
    )
    assert result.num_nodes == data.num_nodes
