"""Figure 7 — runtime and scalability: Gamora inference vs exact reasoning.

Reproduces the paper's Fig. 7: wall-clock of the conventional exact
adder-tree extraction (our cut-enumeration reasoner, standing in for ABC)
against Gamora's GNN inference, across growing CSA multiplier widths, with
|V|/|E| annotations.  The claim is not the absolute gap (paper: up to 10^6x
on an A100) but its *shape*: the learned path is orders of magnitude faster
and the gap widens with size.

The exact baseline runs on the vectorized cut engine
(:mod:`repro.aig.fast_cuts`) *and* the array-shaped pairing engine
(:mod:`repro.reasoning.fast_pairing`), which together push the sweep one
size step further per PR: 128-bit → 192-bit by default, 512-bit → 768-bit
under ``GAMORA_BENCH_FULL``, versus the per-node Cut-object era.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, emit_json, format_table, trained_gamora
from repro.learn import timed_inference
from repro.reasoning import detect_xor_maj, extract_adder_tree
from repro.utils.timing import Timer, format_seconds

WIDTHS = (16, 32, 64, 128, 256, 512, 768) if FULL else (16, 32, 64, 128, 192)

# The streamed continuation of the growth sweep: widths past the full-graph
# series' ceiling, run level-windowed so the forward pass never materializes
# the whole graph.  Runtime and *peak window footprint* are the series —
# weights are untrained (runtime and footprint are weight-independent, see
# bench_streaming.py) so the lane stays minutes-scale.
STREAM_WIDTHS = (1024,) if FULL else (256,)
STREAM_BUDGET_DIV = 8


@pytest.fixture(scope="module")
def runtime_series():
    from repro.learn import compile_inference

    gamora = trained_gamora(train_widths=(8,))
    kernel = compile_inference(gamora.net)
    rows = []
    for width in WIDTHS:
        gen = bench_multiplier(width)
        with Timer() as exact_timer:
            detection = detect_xor_maj(gen.aig)
            extract_adder_tree(gen.aig, detection)
        data = gamora.prepare(gen, with_labels=False)
        # Best of three: shared-machine noise is large relative to ms-scale
        # inference, while the exact baseline runs for seconds.
        inference_seconds = min(
            timed_inference(kernel, data).seconds for _ in range(3)
        )
        rows.append(
            {
                "width": width,
                "nodes": gen.aig.num_vars,
                "edges": gen.aig.num_edges,
                "exact": exact_timer.elapsed,
                "gamora": inference_seconds,
                "speedup": exact_timer.elapsed / max(inference_seconds, 1e-9),
            }
        )
    return rows


def test_fig7_series(runtime_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{r['nodes']:.1e}",
            f"{r['edges']:.1e}",
            format_seconds(r["exact"]),
            format_seconds(r["gamora"]),
            f"{r['speedup']:.0f}x",
        ]
        for r in runtime_series
    ]
    emit(
        "fig7_runtime",
        format_table(
            "Fig.7: exact reasoning (ABC-equivalent) vs Gamora inference, CSA",
            ["design", "|V|", "|E|", "exact", "gamora", "speedup"],
            table,
        ),
    )


def test_fig7_gamora_is_faster(runtime_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for row in runtime_series:
        assert row["speedup"] > 5, (
            f"{row['width']}-bit: learned inference should be clearly faster, "
            f"got {row['speedup']:.1f}x"
        )
    assert runtime_series[-1]["speedup"] > 10


def test_fig7_gap_does_not_collapse(runtime_series, benchmark):
    """Both of our paths are (by construction) near-linear on CPU, so the
    paper's *growing* gap — driven by ABC's superlinear blowup and GPU
    parallelism — appears here as a stable one-to-two order-of-magnitude
    gap across sizes (see EXPERIMENTS.md).  Guard against collapse."""
    keep_under_benchmark_only(benchmark)
    assert runtime_series[-1]["speedup"] > 0.1 * runtime_series[0]["speedup"]


def test_fig7_runtime_tracks_graph_size(runtime_series, benchmark):
    """Gamora's runtime is near-linear in |V|+|E| (paper Sec. IV-C)."""
    keep_under_benchmark_only(benchmark)
    first, last = runtime_series[0], runtime_series[-1]
    size_ratio = (last["nodes"] + last["edges"]) / (first["nodes"] + first["edges"])
    time_ratio = last["gamora"] / max(first["gamora"], 1e-9)
    assert time_ratio < size_ratio * 8, (
        f"inference time grew {time_ratio:.1f}x for a {size_ratio:.1f}x larger graph"
    )


@pytest.fixture(scope="module")
def streamed_growth():
    from repro.core import Gamora
    from repro.learn import estimate_inference_memory

    gamora = Gamora(model="shallow")
    kernel = gamora.inference_kernel()
    rows = []
    for width in STREAM_WIDTHS:
        gen = bench_multiplier(width)
        data = gamora.prepare(gen, with_labels=False)
        full_estimate = estimate_inference_memory(
            kernel, data.num_nodes, data.num_edges
        )
        budget = full_estimate // STREAM_BUDGET_DIV
        plan = data.window_plan(budget, kernel)
        with Timer() as timer:
            kernel.predict_streamed(data.features, data.adjacency, plan)
        rows.append(
            {
                "width": width,
                "nodes": data.num_nodes,
                "edges": gen.aig.num_edges,
                "streamed": timer.elapsed,
                "num_windows": plan.num_windows,
                "budget_bytes": int(budget),
                "peak_window_bytes": int(plan.peak_window_bytes),
                "within_budget": plan.within_budget,
            }
        )
    return rows


def test_fig7_streamed_growth(streamed_growth, benchmark):
    """Growth continuation: the sweep keeps scaling past the full-graph
    ceiling because the streamed pass bounds the window footprint."""
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{r['nodes']:.1e}",
            f"{r['edges']:.1e}",
            format_seconds(r["streamed"]),
            r["num_windows"],
            f"{r['peak_window_bytes'] / 2**20:.1f} MiB",
        ]
        for r in streamed_growth
    ]
    emit(
        "fig7_runtime",
        format_table(
            "Fig.7 (streamed growth): level-windowed Gamora inference, CSA",
            ["design", "|V|", "|E|", "streamed", "windows", "peak window"],
            table,
        ),
    )
    emit_json("BENCH_fig7_streamed", {
        "budget_divisor": STREAM_BUDGET_DIV,
        "series": streamed_growth,
    })
    for row in streamed_growth:
        assert row["within_budget"], row
        assert row["peak_window_bytes"] <= row["budget_bytes"], row
        assert row["num_windows"] > 1, row
        assert row["streamed"] > 0


def test_fig7_inference_kernel(benchmark):
    gamora = trained_gamora(train_widths=(8,))
    data = gamora.prepare(bench_multiplier(WIDTHS[-1]), with_labels=False)
    benchmark.pedantic(
        lambda: timed_inference(gamora.net, data), rounds=3, iterations=1
    )


def test_fig7_exact_kernel(benchmark):
    gen = bench_multiplier(WIDTHS[0])
    benchmark.pedantic(
        lambda: extract_adder_tree(gen.aig), rounds=2, iterations=1
    )
