"""Figure 7 — runtime and scalability: Gamora inference vs exact reasoning.

Reproduces the paper's Fig. 7: wall-clock of the conventional exact
adder-tree extraction (our cut-enumeration reasoner, standing in for ABC)
against Gamora's GNN inference, across growing CSA multiplier widths, with
|V|/|E| annotations.  The claim is not the absolute gap (paper: up to 10^6x
on an A100) but its *shape*: the learned path is orders of magnitude faster
and the gap widens with size.

The exact baseline runs on the vectorized cut engine
(:mod:`repro.aig.fast_cuts`) *and* the array-shaped pairing engine
(:mod:`repro.reasoning.fast_pairing`), which together push the sweep one
size step further per PR: 128-bit → 192-bit by default, 512-bit → 768-bit
under ``GAMORA_BENCH_FULL``, versus the per-node Cut-object era.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, trained_gamora
from repro.learn import timed_inference
from repro.reasoning import detect_xor_maj, extract_adder_tree
from repro.utils.timing import Timer, format_seconds

WIDTHS = (16, 32, 64, 128, 256, 512, 768) if FULL else (16, 32, 64, 128, 192)


@pytest.fixture(scope="module")
def runtime_series():
    from repro.learn import compile_inference

    gamora = trained_gamora(train_widths=(8,))
    kernel = compile_inference(gamora.net)
    rows = []
    for width in WIDTHS:
        gen = bench_multiplier(width)
        with Timer() as exact_timer:
            detection = detect_xor_maj(gen.aig)
            extract_adder_tree(gen.aig, detection)
        data = gamora.prepare(gen, with_labels=False)
        # Best of three: shared-machine noise is large relative to ms-scale
        # inference, while the exact baseline runs for seconds.
        inference_seconds = min(
            timed_inference(kernel, data).seconds for _ in range(3)
        )
        rows.append(
            {
                "width": width,
                "nodes": gen.aig.num_vars,
                "edges": gen.aig.num_edges,
                "exact": exact_timer.elapsed,
                "gamora": inference_seconds,
                "speedup": exact_timer.elapsed / max(inference_seconds, 1e-9),
            }
        )
    return rows


def test_fig7_series(runtime_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{r['nodes']:.1e}",
            f"{r['edges']:.1e}",
            format_seconds(r["exact"]),
            format_seconds(r["gamora"]),
            f"{r['speedup']:.0f}x",
        ]
        for r in runtime_series
    ]
    emit(
        "fig7_runtime",
        format_table(
            "Fig.7: exact reasoning (ABC-equivalent) vs Gamora inference, CSA",
            ["design", "|V|", "|E|", "exact", "gamora", "speedup"],
            table,
        ),
    )


def test_fig7_gamora_is_faster(runtime_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for row in runtime_series:
        assert row["speedup"] > 5, (
            f"{row['width']}-bit: learned inference should be clearly faster, "
            f"got {row['speedup']:.1f}x"
        )
    assert runtime_series[-1]["speedup"] > 10


def test_fig7_gap_does_not_collapse(runtime_series, benchmark):
    """Both of our paths are (by construction) near-linear on CPU, so the
    paper's *growing* gap — driven by ABC's superlinear blowup and GPU
    parallelism — appears here as a stable one-to-two order-of-magnitude
    gap across sizes (see EXPERIMENTS.md).  Guard against collapse."""
    keep_under_benchmark_only(benchmark)
    assert runtime_series[-1]["speedup"] > 0.1 * runtime_series[0]["speedup"]


def test_fig7_runtime_tracks_graph_size(runtime_series, benchmark):
    """Gamora's runtime is near-linear in |V|+|E| (paper Sec. IV-C)."""
    keep_under_benchmark_only(benchmark)
    first, last = runtime_series[0], runtime_series[-1]
    size_ratio = (last["nodes"] + last["edges"]) / (first["nodes"] + first["edges"])
    time_ratio = last["gamora"] / max(first["gamora"], 1e-9)
    assert time_ratio < size_ratio * 8, (
        f"inference time grew {time_ratio:.1f}x for a {size_ratio:.1f}x larger graph"
    )


def test_fig7_inference_kernel(benchmark):
    gamora = trained_gamora(train_widths=(8,))
    data = gamora.prepare(bench_multiplier(WIDTHS[-1]), with_labels=False)
    benchmark.pedantic(
        lambda: timed_inference(gamora.net, data), rounds=3, iterations=1
    )


def test_fig7_exact_kernel(benchmark):
    gen = bench_multiplier(WIDTHS[0])
    benchmark.pedantic(
        lambda: extract_adder_tree(gen.aig), rounds=2, iterations=1
    )
