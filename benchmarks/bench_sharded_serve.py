"""Sharded + parallel serving vs the monolithic batched path (PR 1).

End-to-end throughput of ``ReasoningService.reason_many`` on a
post-processing-heavy request stream — 16 mixed 8–16-bit multipliers, cold
caches — comparing:

* the **monolithic** path: one block-diagonal mega-pass, in-process
  extraction (exactly the PR 1 behavior, ``max_shard_bytes=None``,
  ``postprocess_workers=0``);
* the **sharded + parallel** path: forward passes bounded by a
  ``max_shard_bytes`` budget (~total/4, so the stream genuinely splits)
  and extraction fanned out to worker processes overlapped with the next
  shard's inference.

Reported per path: total wall time, speedup, per-stage breakdown, and the
peak estimated shard memory against the configured budget.  Asserted
always: every executed shard stays within the budget, and both paths
produce identical adder trees.  The >=1.5x end-to-end speedup claim is
asserted on parallel hardware (>= 2 CPUs, e.g. CI runners); on a single
CPU there is nothing for the workers to run on, so only a bounded-overhead
claim holds — the documented deviation, mirroring the CPU-backend notes on
the Fig. 8 benchmark.
"""

from __future__ import annotations

import os

import pytest

from common import keep_under_benchmark_only, bench_multiplier, emit, format_table, trained_gamora
from repro.learn import estimate_batch_memory
from repro.serve import ReasoningService
from repro.utils.timing import format_seconds

# 16 requests, 9 unique structures: wide enough that post-processing
# dominates (~30:1 over inference) and repeats exercise the dedup path.
STREAM_WIDTHS = (16, 8, 12, 14, 16, 10, 12, 8, 15, 11, 16, 13, 9, 14, 10, 12)
NUM_CPUS = os.cpu_count() or 1
WORKERS = min(4, max(2, NUM_CPUS))
PARALLEL_HARDWARE = NUM_CPUS >= 2


@pytest.fixture(scope="module")
def sharded_comparison():
    gamora = trained_gamora(train_widths=(8,))
    circuits = [bench_multiplier(w) for w in STREAM_WIDTHS]

    # Budget ~ a quarter of the full mega-batch (but never below the largest
    # single design, so nothing lands in an oversize shard).  Derived through
    # a throwaway service so both measured services start cold.  A 1-byte
    # budget makes every unique design an oversize singleton, which exposes
    # the per-design standalone estimates.
    planner = ReasoningService(gamora)
    total_bytes = planner.plan(circuits, None).peak_shard_bytes
    standalone = [s.estimated_bytes for s in planner.plan(circuits, 1)]
    budget = max(max(standalone), total_bytes // 4)
    plan = planner.plan(circuits, budget)

    monolithic_service = ReasoningService(gamora)
    monolithic = monolithic_service.reason_many(circuits)

    sharded_service = ReasoningService(
        gamora, max_shard_bytes=budget, postprocess_workers=WORKERS
    )
    sharded = sharded_service.reason_many(circuits)

    # The scaling knobs must not change answers.
    for left, right in zip(monolithic, sharded):
        assert left.tree.num_full_adders == right.tree.num_full_adders
        assert left.tree.num_half_adders == right.tree.num_half_adders
        assert left.num_mismatches == right.num_mismatches

    return {
        "budget": budget,
        "plan": plan,
        "monolithic": monolithic.stats,
        "sharded": sharded.stats,
    }


def test_sharded_memory_stays_under_budget(sharded_comparison, benchmark):
    """Every planned and executed shard fits the configured byte budget."""
    keep_under_benchmark_only(benchmark)
    budget = sharded_comparison["budget"]
    plan = sharded_comparison["plan"]
    assert len(plan) > 1, "budget must genuinely split this stream"
    assert plan.num_oversize == 0
    for shard in plan:
        assert shard.estimated_bytes <= budget
    executed = sharded_comparison["sharded"]
    assert executed.num_shards == len(plan)
    assert 0 < executed.peak_shard_bytes <= budget
    # The monolithic pass really needed more than one shard's worth.
    assert sharded_comparison["monolithic"].peak_shard_bytes > budget


def test_sharded_parallel_throughput(sharded_comparison, benchmark):
    """End-to-end: sharded + parallel >= 1.5x over the monolithic PR 1 path.

    The speedup comes from fanning the dominant stage (per-circuit
    extraction) across worker processes while the next shard's forward
    pass runs.  It requires hardware parallelism: on >= 2 CPUs the 1.5x
    floor is asserted; on a single CPU the same configuration must instead
    stay within 1.35x of the monolithic path (fork + pickle overhead with
    no cores to spend it on — the documented deviation).
    """
    keep_under_benchmark_only(benchmark)
    monolithic = sharded_comparison["monolithic"]
    sharded = sharded_comparison["sharded"]
    budget = sharded_comparison["budget"]
    speedup = monolithic.total_seconds / max(sharded.total_seconds, 1e-12)
    emit(
        "sharded_serve",
        format_table(
            f"Sharded + parallel serving vs monolithic "
            f"({len(STREAM_WIDTHS)} mixed multipliers, "
            f"budget {budget / 1024 ** 2:.1f}MiB, "
            f"{WORKERS} workers on {NUM_CPUS} CPU(s))",
            ["path", "total", "speedup", "peak shard", "detail"],
            [
                ["monolithic (PR 1)", format_seconds(monolithic.total_seconds),
                 "1.00x", f"{monolithic.peak_shard_bytes / 1024 ** 2:.1f}MiB",
                 monolithic.summary()],
                ["sharded + parallel", format_seconds(sharded.total_seconds),
                 f"{speedup:.2f}x", f"{sharded.peak_shard_bytes / 1024 ** 2:.1f}MiB",
                 sharded.summary()],
            ],
        ),
    )
    assert sharded.postprocess_fallbacks == 0
    if PARALLEL_HARDWARE:
        assert speedup >= 1.5, (
            f"sharded+parallel {sharded.total_seconds:.3f}s vs monolithic "
            f"{monolithic.total_seconds:.3f}s — only {speedup:.2f}x on "
            f"{NUM_CPUS} CPUs"
        )
    else:
        assert speedup >= 1 / 1.35, (
            f"single-CPU overhead too high: {1 / max(speedup, 1e-12):.2f}x "
            f"slower than monolithic"
        )


def test_sharded_serve_kernel(benchmark):
    """The representative kernel: one sharded, worker-backed batch."""
    gamora = trained_gamora(train_widths=(8,))
    circuits = [bench_multiplier(w) for w in (8, 10, 12, 8)]
    encoder = ReasoningService(gamora)
    budget = max(
        estimate_batch_memory(gamora.inference_kernel(), [encoder.encode(c)])
        for c in circuits
    )

    def run():
        service = ReasoningService(
            gamora, max_shard_bytes=budget, postprocess_workers=WORKERS
        )
        return service.reason_many(circuits)

    benchmark.pedantic(run, rounds=3, iterations=1)
