"""Ablation C — cut budget of the exact baseline reasoner.

The exact reasoner (the "ABC" comparator of Fig. 7) prunes per-node cut
lists to a priority budget.  This ablation sweeps the budget and reports
detection completeness (against construction-trace ground truth) and
runtime — demonstrating the budget at which the baseline becomes exact on
multiplier netlists, and the cost of raising it further.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table
from repro.reasoning import detect_xor_maj, extract_adder_tree
from repro.utils.timing import Timer, format_seconds

BUDGETS = (2, 4, 8, 12, 16) if FULL else (2, 4, 8, 12)
WIDTH = 24 if FULL else 16


@pytest.fixture(scope="module")
def cut_series():
    gen = bench_multiplier(WIDTH)
    # Warm the memoized truth-expansion caches so the sweep measures the
    # budget's cost, not first-touch cache population.
    detect_xor_maj(gen.aig, max_cuts=4)
    traced_sums = {a.sum_var for a in gen.trace.adders}
    traced_carries = {a.carry_var for a in gen.trace.adders if a.kind == "FA"}
    rows = []
    for budget in BUDGETS:
        with Timer() as timer:
            detection = detect_xor_maj(gen.aig, max_cuts=budget)
            tree = extract_adder_tree(gen.aig, detection)
        sum_recall = sum(1 for v in traced_sums if detection.is_xor(v)) / len(traced_sums)
        carry_recall = (
            sum(1 for v in traced_carries if detection.is_maj(v)) / len(traced_carries)
        )
        rows.append(
            {
                "budget": budget,
                "seconds": timer.elapsed,
                "sum_recall": sum_recall,
                "carry_recall": carry_recall,
                "adders": len(tree.adders),
            }
        )
    return rows


def test_ablation_cuts_series(cut_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"C={r['budget']}",
            format_seconds(r["seconds"]),
            f"{100 * r['sum_recall']:.1f}%",
            f"{100 * r['carry_recall']:.1f}%",
            r["adders"],
        ]
        for r in cut_series
    ]
    emit(
        "ablation_cuts",
        format_table(
            f"Ablation C: exact-reasoner cut budget on a {WIDTH}-bit CSA multiplier",
            ["budget", "runtime", "XOR recall", "MAJ recall", "extracted adders"],
            table,
        ),
    )


def test_ablation_cuts_recall_saturates(cut_series, benchmark):
    """A moderate budget recovers every traced root; tiny budgets miss some."""
    keep_under_benchmark_only(benchmark)
    final = cut_series[-1]
    assert final["sum_recall"] == 1.0
    assert final["carry_recall"] == 1.0


def test_ablation_cuts_runtime_grows(cut_series, benchmark):
    keep_under_benchmark_only(benchmark)
    assert cut_series[-1]["seconds"] >= cut_series[0]["seconds"] * 0.8


def test_ablation_cuts_kernel(benchmark):
    gen = bench_multiplier(WIDTH)
    benchmark.pedantic(
        lambda: detect_xor_maj(gen.aig, max_cuts=8), rounds=2, iterations=1
    )
