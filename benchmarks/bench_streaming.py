"""Streaming level-windowed inference: peak memory vs the full-graph pass.

The streamed forward pass exists so that circuits larger than any shard
budget still run: each level window materializes only its targets plus the
K-hop fan-in halo.  This benchmark measures *actual* peak allocation
(tracemalloc, which tracks NumPy buffers) of the full-graph pass against
the streamed pass at a matching window budget on wide multipliers, and
asserts the tentpole claims:

* the streamed pass is bit-identical to the full-graph pass (labels and
  logits agree exactly — not approximately);
* at a ``full/8`` window budget, measured peak memory on the 256-bit
  multiplier drops by >= 4x;
* the planner's analytic per-window estimate actually bounds what runs
  (``peak_window_bytes <= budget``).

Weights are untrained: activation *footprint* is weight-independent, and
bit-identity must hold for any weights, so training would only slow the
lane down.  Appends one record per run to ``BENCH_streaming.json``.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from common import (
    FULL,
    bench_multiplier,
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
)
from repro.core import Gamora
from repro.learn import estimate_inference_memory

WIDTHS = (256, 512) if FULL else (256,)
SMOKE_WIDTH = 64
BUDGET_DIV = 8  # window budget = full-graph estimate / BUDGET_DIV


def measure_peak(fn):
    """Run ``fn`` and return ``(result, peak_new_bytes)`` via tracemalloc."""
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    result = fn()
    peak = tracemalloc.get_traced_memory()[1] - base
    tracemalloc.stop()
    return result, peak


def streaming_row(gamora: Gamora, width: int) -> dict:
    """Measure one width: full vs streamed peak at a matching budget."""
    kernel = gamora.inference_kernel()
    data = gamora.prepare(bench_multiplier(width), with_labels=False)
    full_estimate = estimate_inference_memory(
        kernel, data.num_nodes, data.num_edges
    )
    budget = full_estimate // BUDGET_DIV
    plan = data.window_plan(budget, kernel)

    full_labels, full_peak = measure_peak(
        lambda: kernel.predict(data.features, data.adjacency)
    )
    streamed_labels, streamed_peak = measure_peak(
        lambda: kernel.predict_streamed(data.features, data.adjacency, plan)
    )
    for task in full_labels:
        np.testing.assert_array_equal(
            full_labels[task], streamed_labels[task],
            err_msg=f"width {width}: streamed labels diverged on {task!r}",
        )
    return {
        "width": width,
        "num_nodes": data.num_nodes,
        "num_windows": plan.num_windows,
        "budget_bytes": int(budget),
        "peak_window_bytes": int(plan.peak_window_bytes),
        "within_budget": plan.within_budget,
        "full_peak_bytes": int(full_peak),
        "streamed_peak_bytes": int(streamed_peak),
        "reduction": full_peak / max(streamed_peak, 1),
    }


@pytest.fixture(scope="module")
def gamora() -> Gamora:
    return Gamora(model="shallow")


@pytest.fixture(scope="module")
def series(gamora):
    return [streaming_row(gamora, width) for width in WIDTHS]


def test_streaming_memory_series(benchmark, series, gamora):
    rows = [
        [r["width"], r["num_nodes"], r["num_windows"],
         f"{r['budget_bytes'] / 2**20:.1f}",
         f"{r['full_peak_bytes'] / 2**20:.1f}",
         f"{r['streamed_peak_bytes'] / 2**20:.1f}",
         f"{r['reduction']:.1f}x"]
        for r in series
    ]
    emit("streaming_memory", format_table(
        f"Streaming vs full-graph peak memory (budget = full/{BUDGET_DIV})",
        ["width", "nodes", "windows", "budget MiB", "full MiB",
         "streamed MiB", "reduction"],
        rows,
    ))
    emit_json("BENCH_streaming", {
        "budget_divisor": BUDGET_DIV,
        "series": series,
    })
    for record in series:
        # The analytic plan honors its budget, and the measured pass
        # delivers the paper-level memory claim on the 256-bit multiplier.
        assert record["within_budget"], record
        assert record["peak_window_bytes"] <= record["budget_bytes"], record
        assert record["reduction"] >= 4.0, (
            f"width {record['width']}: streamed peak only "
            f"{record['reduction']:.2f}x below full-graph (need >= 4x)"
        )

    data = gamora.prepare(bench_multiplier(WIDTHS[0]), with_labels=False)
    kernel = gamora.inference_kernel()
    plan = data.window_plan(
        estimate_inference_memory(kernel, data.num_nodes, data.num_edges)
        // BUDGET_DIV,
        kernel,
    )
    benchmark.pedantic(
        lambda: kernel.predict_streamed(data.features, data.adjacency, plan),
        rounds=3, iterations=1,
    )


def test_streaming_smoke(benchmark, gamora):
    """CI-lane guard at 64 bits: budget honored, bits identical, record
    appended to the BENCH_streaming.json trajectory."""
    record = streaming_row(gamora, SMOKE_WIDTH)
    assert record["within_budget"], record
    assert record["num_windows"] > 1, record
    assert record["streamed_peak_bytes"] < record["full_peak_bytes"], record
    emit_json("BENCH_streaming", {"smoke": True, **record})
    keep_under_benchmark_only(benchmark)
