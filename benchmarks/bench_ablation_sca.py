"""Ablation B — the downstream payoff: SCA verification with adder trees.

The paper motivates Gamora by the cost of adder-tree extraction inside
algebraic multiplier verification.  This bench quantifies that payoff:
naive gate-level backward rewriting vs adder-aware rewriting (exact tree)
vs adder-aware rewriting with the tree *predicted by Gamora*.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, trained_gamora
from repro.utils.timing import format_seconds
from repro.verify import TermExplosion, verify_multiplier

WIDTHS = (4, 6, 8, 12) if FULL else (4, 6, 8)
NAIVE_BUDGET = 2_000_000


@pytest.fixture(scope="module")
def sca_series():
    gamora = trained_gamora(train_widths=(8,))
    rows = []
    for width in WIDTHS:
        gen = bench_multiplier(width)
        smart = verify_multiplier(gen, mode="adder")
        predicted_tree = gamora.reason(gen).tree
        learned = verify_multiplier(gen, mode="adder", tree=predicted_tree)
        try:
            naive = verify_multiplier(gen, mode="naive", max_terms=NAIVE_BUDGET)
            naive_cell = (
                f"{format_seconds(naive.seconds)} / {naive.peak_terms}t"
                + ("" if naive.ok else " (FAILED)")
            )
            naive_peak = naive.peak_terms
        except TermExplosion:
            naive_cell = f">budget ({NAIVE_BUDGET}t)"
            naive_peak = NAIVE_BUDGET
        rows.append(
            {
                "width": width,
                "smart": smart,
                "learned": learned,
                "naive_cell": naive_cell,
                "naive_peak": naive_peak,
            }
        )
    return rows


def test_ablation_sca_series(sca_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{format_seconds(r['smart'].seconds)} / {r['smart'].peak_terms}t",
            f"{format_seconds(r['learned'].seconds)} / {r['learned'].peak_terms}t",
            r["naive_cell"],
        ]
        for r in sca_series
    ]
    emit(
        "ablation_sca",
        format_table(
            "Ablation B: SCA verification — exact tree vs Gamora tree vs naive",
            ["design", "adder-aware (exact)", "adder-aware (Gamora)", "naive"],
            table,
        ),
    )


def test_ablation_sca_all_verify(sca_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for row in sca_series:
        assert row["smart"].ok
        assert row["learned"].ok, (
            f"{row['width']}-bit: Gamora-predicted tree must still verify"
        )


def test_ablation_sca_adder_tree_pays_off(sca_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for row in sca_series:
        assert row["smart"].peak_terms < row["naive_peak"], (
            f"{row['width']}-bit: adder-aware rewriting should stay compact"
        )


def test_ablation_sca_kernel(benchmark):
    gen = bench_multiplier(WIDTHS[-1])
    result = benchmark.pedantic(
        lambda: verify_multiplier(gen, mode="adder"), rounds=3, iterations=1
    )
    assert result.ok
