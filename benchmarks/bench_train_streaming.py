"""Windowed minibatch training: peak memory vs the full-batch epoch.

The windowed trainer exists so that training memory follows the byte
budget, not the circuit: each window backpropagates through its K-hop halo
only, and gradient accumulation across windows reproduces the full-batch
gradient.  This benchmark measures *actual* peak allocation (tracemalloc,
which tracks NumPy buffers) of one full-batch training epoch against one
windowed epoch at a ``full/8`` budget on the 128-bit CSA multiplier, and
asserts the tentpole claims:

* accumulated window gradients match the full-batch gradients to float
  tolerance (the plan is a memory knob, not a semantics knob);
* at a ``full/8`` budget, the measured windowed peak is >= 4x below the
  full-batch peak;
* the measured peak actually stays under the byte budget the analytic
  backward-pass model planned against.

Labels are structural (cut-sweep ground truth would dominate the lane);
gradient equivalence and the activation footprint are label-source
independent.  Appends one record per run to ``BENCH_train_streaming.json``.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from common import (
    FULL,
    bench_multiplier,
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
)
from repro.core import Gamora
from repro.learn import TrainConfig, plan_training_windows, train_model
from repro.learn.infer import estimate_training_memory
from repro.learn.trainer import epoch_gradients

WIDTH = 128  # the acceptance-pinned series point
SMOKE_WIDTH = 32
BUDGET_DIV = 8  # training budget = full-batch estimate / BUDGET_DIV


def measure_peak(fn):
    """Run ``fn`` and return ``(result, peak_new_bytes, seconds)``."""
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    peak = tracemalloc.get_traced_memory()[1] - base
    tracemalloc.stop()
    return result, peak, seconds


def train_streaming_row(width: int, check_gradients: bool = True) -> dict:
    """Measure one width: full-batch vs windowed training epoch peaks.

    The plan is computed outside the measured region (planning is
    preprocessing, like data loading in the paper's measurements); the
    measured region is exactly one epoch of gradient computation.
    """
    gamora = Gamora(model="shallow")
    data = gamora.prepare(bench_multiplier(width), labels_source="structural")
    model = gamora.net
    full_estimate = estimate_training_memory(
        model, data.num_nodes, data.num_edges
    )
    budget = full_estimate // BUDGET_DIV
    plan = plan_training_windows(data, model, budget)

    full_grads, full_peak, full_seconds = measure_peak(
        lambda: epoch_gradients(model, data, TrainConfig())
    )
    windowed_grads, windowed_peak, windowed_seconds = measure_peak(
        lambda: epoch_gradients(
            model, data, TrainConfig(max_window_bytes=budget), plan=plan
        )
    )
    if check_gradients:
        for name in full_grads:
            np.testing.assert_allclose(
                windowed_grads[name], full_grads[name],
                rtol=1e-7, atol=1e-12,
                err_msg=f"width {width}: windowed gradients diverged in {name}",
            )
    return {
        "width": width,
        "num_nodes": data.num_nodes,
        "num_edges": data.num_edges,
        "num_windows": plan.num_windows,
        "budget_bytes": int(budget),
        "full_estimate_bytes": int(full_estimate),
        "peak_window_bytes": int(plan.peak_window_bytes),
        "within_budget": plan.within_budget,
        "full_peak_bytes": int(full_peak),
        "windowed_peak_bytes": int(windowed_peak),
        "reduction": full_peak / max(windowed_peak, 1),
        "full_epoch_seconds": full_seconds,
        "windowed_epoch_seconds": windowed_seconds,
        "gradients_match": bool(check_gradients),
    }


@pytest.fixture(scope="module")
def series():
    widths = (WIDTH, 192) if FULL else (WIDTH,)
    return [train_streaming_row(width) for width in widths]


def test_train_streaming_memory(benchmark, series):
    rows = [
        [r["width"], r["num_nodes"], r["num_windows"],
         f"{r['budget_bytes'] / 2**20:.1f}",
         f"{r['full_peak_bytes'] / 2**20:.1f}",
         f"{r['windowed_peak_bytes'] / 2**20:.1f}",
         f"{r['reduction']:.1f}x",
         f"{r['full_epoch_seconds']:.1f}s",
         f"{r['windowed_epoch_seconds']:.1f}s"]
        for r in series
    ]
    emit("train_streaming_memory", format_table(
        f"Windowed vs full-batch training epoch peak "
        f"(budget = full/{BUDGET_DIV})",
        ["width", "nodes", "windows", "budget MiB", "full MiB",
         "windowed MiB", "reduction", "full epoch", "windowed epoch"],
        rows,
    ))
    emit_json("BENCH_train_streaming", {
        "budget_divisor": BUDGET_DIV,
        "series": series,
    })
    for record in series:
        # The analytic backward-pass model honors its budget, the measured
        # epoch stays under it, and the windowed peak delivers the >= 4x
        # claim against full-batch — with bitwise-checked gradient parity.
        assert record["within_budget"], record
        assert record["peak_window_bytes"] <= record["budget_bytes"], record
        assert record["windowed_peak_bytes"] <= record["budget_bytes"], (
            f"width {record['width']}: measured windowed peak "
            f"{record['windowed_peak_bytes']} exceeds budget "
            f"{record['budget_bytes']}"
        )
        assert record["reduction"] >= 4.0, (
            f"width {record['width']}: windowed peak only "
            f"{record['reduction']:.2f}x below full-batch (need >= 4x)"
        )

    gamora = Gamora(model="shallow")
    data = gamora.prepare(bench_multiplier(SMOKE_WIDTH),
                          labels_source="structural")
    budget = estimate_training_memory(
        gamora.net, data.num_nodes, data.num_edges
    ) // BUDGET_DIV
    plan = plan_training_windows(data, gamora.net, budget)
    benchmark.pedantic(
        lambda: train_model(
            data, None,
            TrainConfig(epochs=1, max_window_bytes=budget, history=False),
            model=gamora.net, plan=plan,
        ),
        rounds=3, iterations=1,
    )


def test_train_streaming_smoke(benchmark):
    """CI-lane guard at 32 bits: budget honored by the *measured* epoch,
    gradients match full-batch, record appended to the trajectory."""
    record = train_streaming_row(SMOKE_WIDTH)
    assert record["within_budget"], record
    assert record["num_windows"] > 1, record
    assert record["windowed_peak_bytes"] <= record["budget_bytes"], record
    assert record["windowed_peak_bytes"] < record["full_peak_bytes"], record
    emit_json("BENCH_train_streaming", {"smoke": True, **record})
    keep_under_benchmark_only(benchmark)
