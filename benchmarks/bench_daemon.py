"""Sustained-load benchmark for the always-on serving daemon.

Four client threads hammer one in-process :class:`GamoraDaemon` with a
mixed request stream drawn from a small structure pool (heavy repetition,
like real traffic).  The daemon's cross-request micro-batching is the
thing under test: arrivals inside one ``batch_window_ms`` coalesce into a
single ``reason_many`` call, where structural-hash dedup collapses
identical circuits across clients and the warm result LRU serves repeats
outright.

Reported: request throughput, mean/worst queue wait, the coalescing
ratio (requests per micro-batch), and how many forward passes the whole
stream actually cost.  Asserted: every response matches the sequential
path, micro-batching genuinely happened (batches < requests), and dedup
kept forward passes strictly below the request count.  The JSON record
lands in ``benchmarks/results/BENCH_daemon.json`` for trajectory plots.
"""

from __future__ import annotations

import threading

import pytest

from common import (
    FULL,
    bench_multiplier,
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
    trained_gamora,
)
from repro.serve import GamoraDaemon
from repro.utils.timing import format_seconds

CLIENTS = 4
REQUESTS_PER_CLIENT = 16 if FULL else 6
# Small pool, heavy repetition: the regime micro-batching is built for.
POOL_WIDTHS = (8, 10, 12)
WINDOW_MS = 25.0


@pytest.fixture(scope="module")
def daemon_run():
    gamora = trained_gamora(train_widths=(8,))
    pool = [bench_multiplier(width).aig for width in POOL_WIDTHS]
    expected = [gamora.reason(aig) for aig in pool]

    stats_by_client: list[list] = [[] for _ in range(CLIENTS)]
    mismatches = []
    barrier = threading.Barrier(CLIENTS)

    with GamoraDaemon(gamora, batch_window_ms=WINDOW_MS,
                      max_batch=64) as daemon:
        def client(client_id: int) -> None:
            barrier.wait()
            for index in range(REQUESTS_PER_CLIENT):
                which = (client_id + index) % len(pool)
                outcome, stats = daemon.submit(pool[which])
                stats_by_client[client_id].append(stats)
                want = expected[which]
                if (outcome.tree.num_full_adders != want.tree.num_full_adders
                        or outcome.num_mismatches != want.num_mismatches):
                    mismatches.append((client_id, index))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(CLIENTS)]
        from repro.utils.timing import Timer
        with Timer() as wall:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        snapshot = daemon.scheduler.stats()

    return {
        "wall_seconds": wall.elapsed,
        "scheduler": snapshot,
        "per_request": [s for client in stats_by_client for s in client],
        "mismatches": mismatches,
    }


def test_daemon_sustained_load(daemon_run, benchmark):
    """Coalescing + dedup under concurrent clients, answers unchanged."""
    keep_under_benchmark_only(benchmark)
    snapshot = daemon_run["scheduler"]
    per_request = daemon_run["per_request"]
    total = CLIENTS * REQUESTS_PER_CLIENT

    assert daemon_run["mismatches"] == []
    assert snapshot["completed"] == total
    assert snapshot["failed"] == 0 and snapshot["rejected"] == 0
    # Micro-batching happened: strictly fewer batches than requests, and
    # dedup + the warm cache kept forward passes below the request count.
    assert snapshot["batches"] < total
    assert snapshot["num_shards"] < total
    assert snapshot["max_coalesced"] > 1

    waits = [s.queue_wait_seconds for s in per_request]
    throughput = total / max(daemon_run["wall_seconds"], 1e-9)
    coalescing = total / max(snapshot["batches"], 1)
    emit(
        "daemon_serve",
        format_table(
            f"Daemon sustained load ({CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} requests, {len(POOL_WIDTHS)} unique "
            f"structures, window {WINDOW_MS:.0f}ms)",
            ["metric", "value"],
            [
                ["wall time", format_seconds(daemon_run["wall_seconds"])],
                ["throughput", f"{throughput:.1f} req/s"],
                ["micro-batches", snapshot["batches"]],
                ["coalescing ratio", f"{coalescing:.2f} req/batch"],
                ["forward passes", snapshot["num_shards"]],
                ["cache hits", snapshot["result_hits"]],
                ["mean queue wait", format_seconds(sum(waits) / len(waits))],
                ["max queue wait", format_seconds(max(waits))],
            ],
        ),
    )
    emit_json(
        "BENCH_daemon",
        {
            "benchmark": "daemon_serve",
            "full": FULL,
            "clients": CLIENTS,
            "requests": total,
            "unique_structures": len(POOL_WIDTHS),
            "window_ms": WINDOW_MS,
            "wall_seconds": daemon_run["wall_seconds"],
            "throughput_rps": throughput,
            "batches": snapshot["batches"],
            "coalescing_ratio": coalescing,
            "forward_passes": snapshot["num_shards"],
            "result_hits": snapshot["result_hits"],
            "mean_queue_wait_seconds": sum(waits) / len(waits),
            "max_queue_wait_seconds": max(waits),
        },
    )


def test_daemon_kernel(benchmark):
    """Representative kernel: one coalesced micro-batch through the daemon."""
    gamora = trained_gamora(train_widths=(8,))
    pool = [bench_multiplier(width).aig for width in POOL_WIDTHS]

    def run():
        with GamoraDaemon(gamora, batch_window_ms=5.0,
                          result_cache_size=0) as daemon:
            tickets = [daemon.submit_async(aig) for aig in pool * 2]
            return [ticket.result(120) for ticket in tickets]

    benchmark.pedantic(run, rounds=3, iterations=1)
