"""Array-shaped FA/HA pairing vs the legacy per-root extraction loop.

PR 3 vectorized cut enumeration and NPN matching, which left
``extract_adder_tree`` — bipartite matching, per-adder ``_cone_between``
DFS, per-call carry-pool rebuild — as the dominant per-root Python loop on
the post-processing hot path.  This series isolates exactly that stage:
both engines receive the *same* precomputed detection (the fast cut sweep,
bit-identical to legacy), so the timings compare pairing implementations,
nothing else, on growing CSA multipliers.

Claims asserted:

* ≥ 3x on the 64-bit CSA multiplier (the PR's acceptance bar);
* ≥ 1.5x on a small (16-bit) multiplier — the CI perf-smoke lane
  (``-k smoke``) runs just this quick check on every push;
* fast and legacy recover bit-identical adder trees while doing it.

Each run also appends a machine-readable record to
``benchmarks/results/BENCH_pairing.json`` (the trajectory artifact), so
speedup history survives across runs.
"""

from __future__ import annotations

import pytest

from common import (
    FULL,
    bench_multiplier,
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
)
from repro.reasoning import detect_xor_maj, extract_adder_tree
from repro.utils.timing import Timer, format_seconds

WIDTHS = (16, 32, 64, 96) if FULL else (16, 32, 64)


def _prepared(width: int):
    """Multiplier plus a shared detection: pairing input for both engines."""
    gen = bench_multiplier(width)
    return gen.aig, detect_xor_maj(gen.aig)


def _time_engines(aig, detection, rounds: int = 3):
    """Best-of-N for *both* engines: symmetric protocol, so one-time costs
    (levels array, the cached carry pool, allocator warmup) are charged to
    neither."""
    legacy_seconds = []
    for _ in range(rounds):
        with Timer() as legacy_timer:
            legacy = extract_adder_tree(aig, detection, engine="legacy")
        legacy_seconds.append(legacy_timer.elapsed)
    fast_seconds = []
    for _ in range(rounds):
        with Timer() as fast_timer:
            fast = extract_adder_tree(aig, detection, engine="fast")
        fast_seconds.append(fast_timer.elapsed)
    assert fast.adders == legacy.adders
    assert fast.consumed == legacy.consumed
    return min(legacy_seconds), min(fast_seconds), fast


@pytest.fixture(scope="module")
def pairing_series():
    rows = []
    for width in WIDTHS:
        aig, detection = _prepared(width)
        legacy_seconds, fast_seconds, fast = _time_engines(aig, detection)
        rows.append(
            {
                "width": width,
                "nodes": aig.num_vars,
                "legacy": legacy_seconds,
                "fast": fast_seconds,
                "speedup": legacy_seconds / max(fast_seconds, 1e-9),
                "full_adders": fast.num_full_adders,
                "half_adders": fast.num_half_adders,
            }
        )
    emit_json(
        "BENCH_pairing",
        {
            "benchmark": "pairing_fast",
            "full": FULL,
            "series": [
                {key: row[key] for key in
                 ("width", "nodes", "legacy", "fast", "speedup")}
                for row in rows
            ],
        },
    )
    return rows


def test_pairing_fast_series(pairing_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{r['nodes']}",
            format_seconds(r["legacy"]),
            format_seconds(r["fast"]),
            f"{r['speedup']:.1f}x",
            f"{r['full_adders']}",
            f"{r['half_adders']}",
        ]
        for r in pairing_series
    ]
    emit(
        "pairing_fast",
        format_table(
            "Array-shaped vs per-root extract_adder_tree, CSA multipliers",
            ["design", "|V|", "legacy", "fast", "speedup", "FA", "HA"],
            table,
        ),
    )


def test_pairing_fast_speedup_64bit(pairing_series, benchmark):
    """The PR's acceptance bar: ≥3x on the 64-bit CSA multiplier."""
    keep_under_benchmark_only(benchmark)
    row = next(r for r in pairing_series if r["width"] == 64)
    assert row["speedup"] >= 3.0, (
        f"64-bit: expected >=3x over the per-root pairing loop, "
        f"got {row['speedup']:.2f}x"
    )


def test_pairing_fast_speedup_grows_with_size(pairing_series, benchmark):
    """The per-root loop pays per adder; the array passes amortize.  The
    gap must not collapse as designs grow."""
    keep_under_benchmark_only(benchmark)
    assert pairing_series[-1]["speedup"] > 0.5 * pairing_series[0]["speedup"]


def test_smoke_fast_pairing_speedup(benchmark):
    """CI perf-smoke lane: a 16-bit multiplier must stay >=1.5x, quickly.

    Regression guard for the array-shaped pairing itself — if a change
    drags it back toward per-root Python costs, this fails in minutes.
    """
    aig, detection = _prepared(16)
    legacy_seconds, fast_seconds, _ = _time_engines(aig, detection)
    keep_under_benchmark_only(benchmark)
    speedup = legacy_seconds / max(fast_seconds, 1e-9)
    emit_json(
        "BENCH_pairing",
        {
            "benchmark": "pairing_fast_smoke",
            "series": [{"width": 16, "nodes": aig.num_vars,
                        "legacy": legacy_seconds, "fast": fast_seconds,
                        "speedup": speedup}],
        },
    )
    assert speedup >= 1.5, (
        f"16-bit: array pairing regressed below 1.5x ({speedup:.2f}x)"
    )


def test_pairing_fast_kernel(benchmark):
    aig, detection = _prepared(WIDTHS[-1])
    benchmark.pedantic(
        lambda: extract_adder_tree(aig, detection, engine="fast"),
        rounds=3, iterations=1,
    )
