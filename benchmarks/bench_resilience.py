"""Sustained-load benchmark for the serving stack under injected faults.

The same 4-client mixed request stream as ``bench_daemon.py`` runs twice
against an in-process :class:`GamoraDaemon` with the result cache off (so
every request really computes): once clean, once with a
:class:`~repro.serve.resilience.FaultPlan` arming hard crashes
(``exit`` kind — an OOM-kill / segfault, not a polite exception) on the
``postprocess.worker`` fault point: every worker's first task plus a 10%
sustained rate after that.  Each crash breaks the whole
``ProcessPoolExecutor``; the pool's bounded executor replacement and the
in-process fallback are what keep requests flowing.

Asserted: the faulted run loses **zero** requests, every answer stays
bit-identical to the sequential path, and end-to-end throughput stays
within 2x of the clean baseline.  Reported: both throughputs, the
slowdown factor, and the recovery counters (fallbacks, degraded
requests).  The JSON record lands in
``benchmarks/results/BENCH_resilience.json`` for trajectory plots.
"""

from __future__ import annotations

import threading

import pytest

from common import (
    FULL,
    bench_multiplier,
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
    trained_gamora,
)
from repro.serve import FaultPlan, GamoraDaemon
from repro.serve import resilience
from repro.utils.timing import Timer, format_seconds

CLIENTS = 4
REQUESTS_PER_CLIENT = 16 if FULL else 6
POOL_WIDTHS = (8, 10, 12)
WINDOW_MS = 25.0
CRASH_RATE = 0.1

FAULT_PLAN = {
    "seed": 2023,
    "faults": [
        # Every worker's very first task dies outright, so even the
        # short-mode run provably exercises pool replacement and the
        # in-process fallback (a pure rate draw could miss at this
        # volume).  Subsequent tasks crash at the sustained rate.
        {"point": "postprocess.worker", "kind": "exit", "at": [1]},
        {"point": "postprocess.worker", "kind": "exit",
         "rate": CRASH_RATE},
    ],
}


def _run_load(gamora, pool, expected, fault_plan=None) -> dict:
    mismatches = []
    fallbacks = 0
    barrier = threading.Barrier(CLIENTS)
    lock = threading.Lock()

    with GamoraDaemon(gamora, batch_window_ms=WINDOW_MS, max_batch=64,
                      result_cache_size=0, postprocess_workers=2,
                      fault_plan=fault_plan) as daemon:
        def client(client_id: int) -> None:
            nonlocal fallbacks
            barrier.wait()
            for index in range(REQUESTS_PER_CLIENT):
                which = (client_id + index) % len(pool)
                outcome, stats = daemon.submit(pool[which])
                want = expected[which]
                with lock:
                    fallbacks += stats.batch_stats.get(
                        "postprocess_fallbacks", 0
                    )
                if (outcome.tree.num_full_adders != want.tree.num_full_adders
                        or outcome.num_mismatches != want.num_mismatches):
                    mismatches.append((client_id, index))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(CLIENTS)]
        with Timer() as wall:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        snapshot = daemon.scheduler.stats()
    resilience.install_plan(None)  # never leak the plan past this run
    return {
        "wall_seconds": wall.elapsed,
        "scheduler": snapshot,
        "mismatches": mismatches,
        "fallback_observations": fallbacks,
    }


@pytest.fixture(scope="module")
def resilience_run():
    gamora = trained_gamora(train_widths=(8,))
    pool = [bench_multiplier(width).aig for width in POOL_WIDTHS]
    expected = [gamora.reason(aig) for aig in pool]
    clean = _run_load(gamora, pool, expected)
    faulted = _run_load(gamora, pool, expected,
                        fault_plan=FaultPlan.from_dict(FAULT_PLAN))
    return {"clean": clean, "faulted": faulted}


def test_throughput_under_worker_crashes(resilience_run, benchmark):
    """A 10% worker-crash rate costs latency, never requests or answers."""
    keep_under_benchmark_only(benchmark)
    clean = resilience_run["clean"]
    faulted = resilience_run["faulted"]
    total = CLIENTS * REQUESTS_PER_CLIENT

    # Zero lost requests, bit-identical answers, no typed failures: the
    # crashes were absorbed by executor replacement + in-process fallback.
    for run in (clean, faulted):
        assert run["mismatches"] == []
        assert run["scheduler"]["completed"] == total
        assert run["scheduler"]["failed"] == 0
        assert run["scheduler"]["rejected"] == 0
    # The guaranteed first-task crash means recovery provably ran.
    assert faulted["fallback_observations"] >= 1

    clean_rps = total / max(clean["wall_seconds"], 1e-9)
    faulted_rps = total / max(faulted["wall_seconds"], 1e-9)
    slowdown = clean_rps / max(faulted_rps, 1e-9)
    assert slowdown <= 2.0, (
        f"faulted throughput {faulted_rps:.1f} req/s is more than 2x below "
        f"the clean baseline {clean_rps:.1f} req/s"
    )

    emit(
        "resilience_serve",
        format_table(
            f"Daemon under {CRASH_RATE:.0%} worker-crash rate "
            f"({CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
            f"window {WINDOW_MS:.0f}ms)",
            ["metric", "clean", "faulted"],
            [
                ["wall time", format_seconds(clean["wall_seconds"]),
                 format_seconds(faulted["wall_seconds"])],
                ["throughput", f"{clean_rps:.1f} req/s",
                 f"{faulted_rps:.1f} req/s"],
                ["slowdown", "1.00x", f"{slowdown:.2f}x"],
                ["completed", clean["scheduler"]["completed"],
                 faulted["scheduler"]["completed"]],
                ["failed", clean["scheduler"]["failed"],
                 faulted["scheduler"]["failed"]],
                ["fallback observations",
                 clean["fallback_observations"],
                 faulted["fallback_observations"]],
            ],
        ),
    )
    emit_json(
        "BENCH_resilience",
        {
            "benchmark": "resilience_serve",
            "full": FULL,
            "clients": CLIENTS,
            "requests": total,
            "crash_rate": CRASH_RATE,
            "window_ms": WINDOW_MS,
            "clean_wall_seconds": clean["wall_seconds"],
            "faulted_wall_seconds": faulted["wall_seconds"],
            "clean_throughput_rps": clean_rps,
            "faulted_throughput_rps": faulted_rps,
            "slowdown": slowdown,
            "clean_completed": clean["scheduler"]["completed"],
            "faulted_completed": faulted["scheduler"]["completed"],
            "faulted_failed": faulted["scheduler"]["failed"],
            "fallback_observations": faulted["fallback_observations"],
        },
    )
