"""Figure 5 — reasoning accuracy after technology mapping.

Reproduces the paper's Fig. 5: CSA and Booth multipliers mapped with the
simple (MCNC-reduced) and complex (ASAP7-like, multi-output adder cells)
libraries, evaluated (a) with models trained on unmapped netlists
("trained w/o tech mapping" — the generalization test) and (b) with models
retrained on mapped netlists of the same small sizes.

Paper claims checked:
* simple mapping generalizes better than complex 7nm-like mapping;
* retraining recovers accuracy for both libraries;
* post-mapping accuracy stays above 90% with retraining (paper: >92%).

Known deviation (see EXPERIMENTS.md): our from-scratch area mapper
restructures more aggressively than ABC's, so the no-retraining accuracy
under *simple* mapping lands in the mid-80s rather than the paper's >99%;
the simple-vs-complex ordering and the retraining recovery both reproduce.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, percent, trained_gamora
from repro.techmap import asap7_like, map_unmap, mcnc_reduced

EVAL_WIDTHS = (12, 16, 24) if FULL else (12, 16)
TRAIN_WIDTH = 8
LIBRARIES = [("simple", mcnc_reduced), ("7nm", asap7_like)]
KINDS = ["csa", "booth"] if FULL else ["csa"]

_MAPPED_CACHE: dict[tuple, object] = {}


def mapped(width: int, kind: str, lib_name: str):
    key = (width, kind, lib_name)
    if key not in _MAPPED_CACHE:
        library = dict(LIBRARIES)[lib_name]()
        _MAPPED_CACHE[key] = map_unmap(bench_multiplier(width, kind).aig, library)
    return _MAPPED_CACHE[key]


def _series(kind: str) -> dict[str, dict[str, dict[int, float]]]:
    """accuracy[lib]['plain'|'generalize'|'retrain'][eval_width]."""
    base_model = "shallow" if kind == "csa" else "deep"
    base = trained_gamora(train_widths=(TRAIN_WIDTH,), kind=kind, model=base_model)
    out: dict[str, dict[str, dict[int, float]]] = {}
    for lib_name, _lib in LIBRARIES:
        # Paper Sec. IV-B3: complex mapping needs larger training data;
        # retrain on two mapped sizes with a deeper budget.
        retrained = trained_gamora(
            train_widths=(TRAIN_WIDTH,),
            kind=kind,
            model="deep",
            epochs=450,
            train_circuits=(
                mapped(TRAIN_WIDTH, kind, lib_name),
                mapped(TRAIN_WIDTH + 2, kind, lib_name),
            ),
            cache_tag=f"retrain-{lib_name}-{kind}",
        )
        rows: dict[str, dict[int, float]] = {"plain": {}, "generalize": {}, "retrain": {}}
        for width in EVAL_WIDTHS:
            rows["plain"][width] = base.evaluate(
                bench_multiplier(width, kind), labels_source="structural"
            )["mean"]
            mapped_aig = mapped(width, kind, lib_name)
            rows["generalize"][width] = base.evaluate(mapped_aig)["mean"]
            rows["retrain"][width] = retrained.evaluate(mapped_aig)["mean"]
        out[lib_name] = rows
    return out


@pytest.fixture(scope="module")
def techmap_series():
    return {kind: _series(kind) for kind in KINDS}


def test_fig5_series(techmap_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for kind, per_lib in techmap_series.items():
        for lib_name, rows in per_lib.items():
            table_rows = [
                [setting] + [percent(values[w]) for w in EVAL_WIDTHS]
                for setting, values in rows.items()
            ]
            emit(
                "fig5_techmap",
                format_table(
                    f"Fig.5: {kind.upper()} multipliers, {lib_name} mapping "
                    f"(trained on Mult{TRAIN_WIDTH})",
                    ["setting"] + [f"{w}-bit" for w in EVAL_WIDTHS],
                    table_rows,
                ),
            )


def test_fig5_retraining_recovers(techmap_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for kind, per_lib in techmap_series.items():
        for lib_name, rows in per_lib.items():
            for width in EVAL_WIDTHS:
                assert rows["retrain"][width] >= rows["generalize"][width] - 0.02, (
                    f"{kind}/{lib_name}/{width}: retraining should recover accuracy"
                )
                # Paper: >92% after complex mapping with retraining;
                # allow margin for the CPU-scale training budget.
                assert rows["retrain"][width] > 0.88


def test_fig5_simple_generalizes_better_than_complex(techmap_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for kind, per_lib in techmap_series.items():
        for width in EVAL_WIDTHS:
            assert (
                per_lib["simple"]["generalize"][width]
                >= per_lib["7nm"]["generalize"][width] - 0.02
            ), f"{kind}/{width}: simple mapping should generalize better"


def test_fig5_mapping_kernel(benchmark):
    """Time the representative kernel: map+unmap of the eval design."""
    aig = bench_multiplier(EVAL_WIDTHS[0]).aig
    benchmark.pedantic(
        lambda: map_unmap(aig, asap7_like()), rounds=2, iterations=1
    )
