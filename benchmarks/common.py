"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark prints the series its paper figure plots (and appends them
to ``benchmarks/results/``), asserts the figure's qualitative claims, and
uses ``pytest-benchmark`` to time the representative kernel.

Sizing: defaults are CPU-scale (each file runs in roughly a minute); set
``GAMORA_BENCH_FULL=1`` to raise sweep ceilings toward paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import Gamora
from repro.generators import make_multiplier
from repro.learn import TrainConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FULL = bool(int(os.environ.get("GAMORA_BENCH_FULL", "0")))

_MODEL_CACHE: dict[tuple, Gamora] = {}
_MULT_CACHE: dict[tuple, object] = {}


def bench_multiplier(width: int, kind: str = "csa"):
    """Cached multiplier generation (benchmarks reuse sizes heavily)."""
    key = (width, kind)
    if key not in _MULT_CACHE:
        _MULT_CACHE[key] = make_multiplier(width, kind)
    return _MULT_CACHE[key]


def trained_gamora(train_widths: tuple[int, ...] = (8,), kind: str = "csa",
                   model: str = "shallow", feature_mode: str = "full",
                   single_task: bool = False, epochs: int = 250,
                   labels_source: str = "structural",
                   train_circuits: tuple | None = None,
                   cache_tag: str = "") -> Gamora:
    """Train (once per configuration) and cache a Gamora instance."""
    key = (train_widths, kind, model, feature_mode, single_task, epochs, cache_tag)
    if key not in _MODEL_CACHE:
        gamora = Gamora(
            model=model,
            feature_mode=feature_mode,
            single_task=single_task,
            train_config=TrainConfig(epochs=epochs),
        )
        circuits = (
            list(train_circuits)
            if train_circuits is not None
            else [bench_multiplier(w, kind) for w in train_widths]
        )
        gamora.fit(circuits, labels_source=labels_source)
        _MODEL_CACHE[key] = gamora
    return _MODEL_CACHE[key]


def format_table(title: str, header: list[str], rows: list[list]) -> str:
    """Fixed-width table rendering for figure series."""
    widths = [
        max(len(str(header[col])), *(len(str(row[col])) for row in rows))
        for col in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Print a figure series and persist it under ``benchmarks/results``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "a") as stream:
        stream.write(text + "\n\n")


def emit_json(name: str, record: dict) -> None:
    """Append one run record to ``benchmarks/results/<name>.json``.

    The file holds a JSON list — one entry per benchmark run — so repeated
    runs build a trajectory artifact that CI or plots can consume directly,
    unlike the human-oriented tables ``emit`` appends as text.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (OSError, ValueError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")


def percent(value: float) -> str:
    return f"{100.0 * value:.2f}%"


def keep_under_benchmark_only(benchmark, fn=None) -> None:
    """Mark a figure-series test as a benchmark so ``--benchmark-only`` runs it.

    The heavy work lives in module-scoped fixtures (trained models, sweep
    series); the test itself checks the figure's claims.  Registering a
    one-round benchmark of ``fn`` (or a no-op) keeps these tests from being
    skipped when the suite is invoked with ``--benchmark-only``.
    """
    benchmark.pedantic(fn if fn is not None else (lambda: None),
                       rounds=1, iterations=1)
