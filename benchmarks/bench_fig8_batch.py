"""Figure 8 — batched reasoning: runtime per design and memory vs batch size.

Reproduces the paper's Fig. 8 through the real batched serving path
(:class:`repro.serve.ReasoningService`): multiple designs are merged into
one block-diagonal graph and inferred in a single pass.  Two series are
reported:

* the classic Fig. 8 sweep — average runtime per design for batch sizes
  1–32 and the (analytic) memory footprint against the paper's 40 GB A100
  budget line, now via ``batched_inference(..., split=True)`` so each
  design gets its own fanned-out predictions;
* an end-to-end serving comparison — a request stream of mixed 8–16-bit
  multipliers (with repeated designs, as under real traffic) pushed through
  ``ReasoningService.reason_many`` versus a sequential ``Gamora.reason``
  loop, with per-stage timings and the structural-hash cache counters.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, trained_gamora
from repro.learn import (
    A100_MEMORY_BYTES,
    batched_inference,
    estimate_inference_memory,
)
from repro.serve import ReasoningService
from repro.utils.timing import Timer, format_seconds

BATCH_SIZES = (1, 2, 4, 8, 16, 32) if FULL else (1, 2, 4, 8)
DESIGN_WIDTH = 64 if FULL else 32
NUM_DESIGNS = max(BATCH_SIZES)

# The serving comparison: a batch-size-8 request stream over mixed
# 8-16-bit multipliers in which popular designs repeat (3 unique
# structures), the workload the structural-hash dedup/cache targets.
SERVE_STREAM_WIDTHS = (16, 8, 12, 16, 8, 12, 16, 16)


@pytest.fixture(scope="module")
def batch_series():
    gamora = trained_gamora(train_widths=(8,))
    base = gamora.prepare(bench_multiplier(DESIGN_WIDTH), with_labels=False)
    graphs = [base] * NUM_DESIGNS
    rows = []
    for batch_size in BATCH_SIZES:
        results = batched_inference(gamora.net, graphs, batch_size=batch_size,
                                    split=True)
        total_seconds = sum(r.seconds for r in results)
        per_design = total_seconds / NUM_DESIGNS
        memory = estimate_inference_memory(
            gamora.net,
            base.num_nodes * batch_size,
            base.num_edges * batch_size,
        )
        rows.append(
            {
                "batch": batch_size,
                "per_design": per_design,
                "memory": memory,
            }
        )
    return rows


@pytest.fixture(scope="module")
def serve_comparison():
    gamora = trained_gamora(train_widths=(8,))
    circuits = [bench_multiplier(w) for w in SERVE_STREAM_WIDTHS]

    with Timer() as sequential_timer:
        sequential = [gamora.reason(circuit) for circuit in circuits]

    service = ReasoningService(gamora)
    cold = service.reason_many(circuits)  # fresh caches: within-batch dedup only
    warm = service.reason_many(circuits)  # steady state: result-LRU hits

    # The invariant that makes batching safe: identical trees per circuit.
    for left, right in zip(sequential, cold):
        assert left.tree.num_full_adders == right.tree.num_full_adders
        assert left.tree.num_half_adders == right.tree.num_half_adders

    return {
        "sequential_seconds": sequential_timer.elapsed,
        "cold": cold.stats,
        "warm": warm.stats,
        "cache": service.cache_stats(),
    }


def test_fig8_series(batch_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"bs={r['batch']}",
            format_seconds(r["per_design"]),
            f"{r['memory'] / 1024 ** 3:.3f} GiB",
            f"{100.0 * r['memory'] / A100_MEMORY_BYTES:.2f}%",
        ]
        for r in batch_series
    ]
    emit(
        "fig8_batch",
        format_table(
            f"Fig.8: batched reasoning over {NUM_DESIGNS} x "
            f"{DESIGN_WIDTH}-bit CSA multipliers",
            ["batch size", "runtime/design", "est. memory", "of A100 40GB"],
            table,
        ),
    )


def test_fig8_batching_stays_bounded(batch_series, benchmark):
    """Per-design runtime must stay within a small factor across batches.

    On the paper's A100, batching *shrinks* per-design time (kernel-launch
    amortization).  Our CPU backend has no launch overhead to amortize, so
    the reproducible part of Fig. 8 is the bounded per-design cost and the
    linear memory growth; see EXPERIMENTS.md for this documented deviation.
    """
    keep_under_benchmark_only(benchmark)
    solo = batch_series[0]["per_design"]
    batched = batch_series[-1]["per_design"]
    assert batched <= solo * 5.0, (
        f"batched per-design runtime {batched:.4f}s vs solo {solo:.4f}s"
    )


def test_fig8_memory_scales_linearly(batch_series, benchmark):
    keep_under_benchmark_only(benchmark)
    first, last = batch_series[0], batch_series[-1]
    ratio = last["memory"] / first["memory"]
    expected = last["batch"] / first["batch"]
    assert 0.8 * expected <= ratio <= 1.2 * expected


def test_fig8_memory_under_gpu_budget(batch_series, benchmark):
    """At CPU-bench sizes every batch fits the paper's A100 budget; the
    full sweep shows the same saturation trend the paper reports."""
    keep_under_benchmark_only(benchmark)
    assert batch_series[0]["memory"] < A100_MEMORY_BYTES


def test_fig8_service_speedup(serve_comparison, benchmark):
    """End-to-end serving throughput: batched path >= 2x sequential reason.

    At batch size 8 over mixed 8-16-bit multipliers with repeated designs,
    the service's structural-hash dedup computes each unique structure once
    per batch while the sequential loop re-reasons every request, so the
    batched path must clear 2x; the steady-state (warm result-LRU) pass is
    reported alongside.
    """
    keep_under_benchmark_only(benchmark)
    sequential = serve_comparison["sequential_seconds"]
    cold = serve_comparison["cold"]
    warm = serve_comparison["warm"]
    cold_speedup = sequential / cold.total_seconds
    warm_speedup = sequential / max(warm.total_seconds, 1e-12)
    emit(
        "fig8_service",
        format_table(
            f"Batched serving vs sequential reason "
            f"(stream widths {SERVE_STREAM_WIDTHS})",
            ["path", "total", "speedup", "detail"],
            [
                ["sequential", format_seconds(sequential), "1.00x",
                 f"{len(SERVE_STREAM_WIDTHS)} full reason() calls"],
                ["batched cold", format_seconds(cold.total_seconds),
                 f"{cold_speedup:.2f}x", cold.summary()],
                ["batched warm", format_seconds(warm.total_seconds),
                 f"{warm_speedup:.2f}x", warm.summary()],
            ],
        ),
    )
    assert cold.unique_circuits == len(set(SERVE_STREAM_WIDTHS))
    assert warm.result_hits == len(SERVE_STREAM_WIDTHS)
    assert cold_speedup >= 2.0, (
        f"batched path {cold.total_seconds:.3f}s vs sequential "
        f"{sequential:.3f}s — only {cold_speedup:.2f}x"
    )


def test_fig8_batch_kernel(benchmark):
    gamora = trained_gamora(train_widths=(8,))
    base = gamora.prepare(bench_multiplier(DESIGN_WIDTH), with_labels=False)
    graphs = [base] * 4
    benchmark.pedantic(
        lambda: batched_inference(gamora.net, graphs, batch_size=4),
        rounds=3,
        iterations=1,
    )
