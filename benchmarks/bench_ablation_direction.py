"""Ablation A — message-passing direction of the aggregation operator.

DESIGN.md calls out the neighborhood convention as a design choice: Boolean
function information flows fan-in -> node, so aggregating over fan-ins
should dominate fan-out or symmetric aggregation for this task.
"""

from __future__ import annotations

import pytest

from common import keep_under_benchmark_only, FULL, bench_multiplier, emit, format_table, percent
from repro.core import Gamora
from repro.learn import TrainConfig

DIRECTIONS = ("in", "out", "both")
EVAL_WIDTHS = (16, 32) if FULL else (16,)
TRAIN_WIDTH = 8


@pytest.fixture(scope="module")
def direction_series():
    series: dict[str, dict[int, float]] = {}
    for direction in DIRECTIONS:
        gamora = Gamora(
            model="shallow",
            direction=direction,
            train_config=TrainConfig(epochs=250),
        )
        gamora.fit([bench_multiplier(TRAIN_WIDTH)], labels_source="structural")
        series[direction] = {
            w: gamora.evaluate(bench_multiplier(w), labels_source="structural")["mean"]
            for w in EVAL_WIDTHS
        }
    return series


def test_ablation_direction_series(direction_series, benchmark):
    keep_under_benchmark_only(benchmark)
    rows = [
        [direction] + [percent(values[w]) for w in EVAL_WIDTHS]
        for direction, values in direction_series.items()
    ]
    emit(
        "ablation_direction",
        format_table(
            f"Ablation A: aggregation direction (trained on Mult{TRAIN_WIDTH}, CSA)",
            ["direction"] + [f"{w}-bit" for w in EVAL_WIDTHS],
            rows,
        ),
    )


def test_ablation_fanin_dominates(direction_series, benchmark):
    keep_under_benchmark_only(benchmark)
    for width in EVAL_WIDTHS:
        assert direction_series["in"][width] >= direction_series["out"][width] - 0.02, (
            "fan-in aggregation should beat fan-out for Boolean reasoning"
        )


def test_ablation_direction_kernel(benchmark):
    gamora = Gamora(model="shallow", direction="in",
                    train_config=TrainConfig(epochs=30))
    benchmark.pedantic(
        lambda: gamora.fit([bench_multiplier(6)], labels_source="structural"),
        rounds=1,
        iterations=1,
    )
