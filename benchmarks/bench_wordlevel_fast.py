"""Array-native detection→word-level pipeline vs the legacy dict path.

PR 3 vectorized the cut sweep and PR 4 the FA/HA pairing, but the serving
path still stitched the stages together through ``XorMajDetection`` dict
builds and walked the extracted tree with per-adder Python loops to
produce the word-level report (the paper's Sec. II-B payoff).  This series
measures the whole post-GNN path — ``extract_from_predictions`` straight
through ``analyze_adder_tree`` — with ``engine="fast"`` (candidate arrays
end to end, zero detection dicts, Kahn-wavefront ranks) against
``engine="legacy"`` (per-node cut re-derivation, dict pairing, per-adder
report walk), on growing CSA multipliers.

Labels are the exact ground truth — deterministic, model-free, and on
multipliers essentially identical to what a trained Gamora predicts — so
the comparison isolates the reason→report serving path itself.

Claims asserted:

* ≥ 2x on the 64-bit CSA multiplier (the PR's acceptance bar);
* ≥ 1.5x on a small (16-bit) multiplier — the CI perf-smoke lane
  (``-k smoke``) runs just this quick check on every push;
* fast and legacy produce bit-identical adder trees *and* word-level
  reports while doing it.

Each run appends a machine-readable record to
``benchmarks/results/BENCH_wordlevel.json`` (the trajectory artifact,
uploaded by CI alongside ``BENCH_pairing.json``).
"""

from __future__ import annotations

import pytest

from common import (
    FULL,
    bench_multiplier,
    emit,
    emit_json,
    format_table,
    keep_under_benchmark_only,
)
from repro.core.postprocess import extract_from_predictions
from repro.reasoning import analyze_adder_tree
from repro.reasoning.adder_tree import ground_truth_labels
from repro.utils.timing import Timer, format_seconds

WIDTHS = (16, 32, 64, 96) if FULL else (16, 32, 64)


def _labels_for(width: int):
    gen = bench_multiplier(width)
    return gen.aig, ground_truth_labels(gen.aig)


def _run(aig, labels, engine: str):
    """One reason→report pass: post-processing + word-level analysis."""
    extraction = extract_from_predictions(aig, labels, engine=engine)
    report = analyze_adder_tree(aig, extraction.tree, engine=engine)
    return extraction, report


def _time_engines(aig, labels, rounds: int = 2):
    """Best-of-N for *both* engines: symmetric protocol, so one-time
    warmup (NPN lru_cache population, allocator) is charged to neither."""
    legacy_seconds = []
    for _ in range(rounds):
        with Timer() as legacy_timer:
            legacy, legacy_report = _run(aig, labels, "legacy")
        legacy_seconds.append(legacy_timer.elapsed)
    fast_seconds = []
    for _ in range(rounds):
        with Timer() as fast_timer:
            fast, fast_report = _run(aig, labels, "fast")
        fast_seconds.append(fast_timer.elapsed)
    assert fast.tree.adders == legacy.tree.adders
    assert fast_report == legacy_report
    return min(legacy_seconds), min(fast_seconds), fast_report


@pytest.fixture(scope="module")
def wordlevel_series():
    rows = []
    for width in WIDTHS:
        aig, labels = _labels_for(width)
        # The 64-bit legacy pass costs seconds; one round there keeps the
        # default sweep around a minute without changing the verdict.
        rounds = 2 if width < 64 else 1
        legacy_seconds, fast_seconds, report = _time_engines(
            aig, labels, rounds=rounds)
        rows.append(
            {
                "width": width,
                "nodes": aig.num_vars,
                "legacy": legacy_seconds,
                "fast": fast_seconds,
                "speedup": legacy_seconds / max(fast_seconds, 1e-9),
                "adders": report.num_adders,
                "depth": report.depth,
            }
        )
    emit_json(
        "BENCH_wordlevel",
        {
            "benchmark": "wordlevel_fast",
            "full": FULL,
            "series": [
                {key: row[key] for key in
                 ("width", "nodes", "legacy", "fast", "speedup")}
                for row in rows
            ],
        },
    )
    return rows


def test_wordlevel_fast_series(wordlevel_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{r['nodes']}",
            format_seconds(r["legacy"]),
            format_seconds(r["fast"]),
            f"{r['speedup']:.1f}x",
            f"{r['adders']}",
            f"{r['depth']}",
        ]
        for r in wordlevel_series
    ]
    emit(
        "wordlevel_fast",
        format_table(
            "Array-native vs legacy reason→word-level-report, CSA multipliers",
            ["design", "|V|", "legacy", "fast", "speedup", "adders", "depth"],
            table,
        ),
    )


def test_wordlevel_fast_speedup_64bit(wordlevel_series, benchmark):
    """The PR's acceptance bar: ≥2x on the 64-bit CSA multiplier."""
    keep_under_benchmark_only(benchmark)
    row = next(r for r in wordlevel_series if r["width"] == 64)
    assert row["speedup"] >= 2.0, (
        f"64-bit: expected >=2x over the dict/per-adder path, "
        f"got {row['speedup']:.2f}x"
    )


def test_wordlevel_fast_speedup_grows_with_size(wordlevel_series, benchmark):
    """The dict path pays per node and per adder; the array passes
    amortize.  The gap must not collapse as designs grow."""
    keep_under_benchmark_only(benchmark)
    assert wordlevel_series[-1]["speedup"] > 0.5 * wordlevel_series[0]["speedup"]


def test_smoke_fast_wordlevel_speedup(benchmark):
    """CI perf-smoke lane: a 16-bit multiplier must stay >=1.5x, quickly.

    Regression guard for the array-native serving path itself — if a
    change reintroduces dict round-trips or per-adder walks, this fails
    in minutes.
    """
    aig, labels = _labels_for(16)
    legacy_seconds, fast_seconds, _ = _time_engines(aig, labels)
    keep_under_benchmark_only(benchmark)
    speedup = legacy_seconds / max(fast_seconds, 1e-9)
    emit_json(
        "BENCH_wordlevel",
        {
            "benchmark": "wordlevel_fast_smoke",
            "series": [{"width": 16, "nodes": aig.num_vars,
                        "legacy": legacy_seconds, "fast": fast_seconds,
                        "speedup": speedup}],
        },
    )
    assert speedup >= 1.5, (
        f"16-bit: array-native pipeline regressed below 1.5x ({speedup:.2f}x)"
    )


def test_wordlevel_fast_kernel(benchmark):
    aig, labels = _labels_for(WIDTHS[-1])
    benchmark.pedantic(
        lambda: _run(aig, labels, "fast"),
        rounds=3, iterations=1,
    )
