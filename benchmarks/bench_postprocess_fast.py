"""Vectorized post-processing vs the legacy per-node cut path.

Post-processing (cut verification + adder-tree extraction) is the ~30:1
dominant serving cost; PR 2 parallelized it, this PR makes it faster.  The
series measures :func:`repro.core.postprocess.extract_from_predictions`
with ``engine="fast"`` (one vectorized whole-graph cut sweep shared by LSB
repair and candidate verification) against ``engine="legacy"`` (per-node
``node_cuts`` re-derivation around every flagged candidate), on growing
CSA multipliers.

Labels are the exact ground truth — deterministic, model-free, and on
multipliers essentially identical to what a trained Gamora predicts — so
the comparison isolates the post-processing stage itself.

Claims asserted:

* ≥ 5x on the 32-bit CSA multiplier (the PR's acceptance bar);
* ≥ 2x on a small (16-bit) multiplier — the CI perf-smoke lane
  (``-k smoke``) runs just this quick check on every push;
* fast and legacy recover identical adder trees while doing it.
"""

from __future__ import annotations

import pytest

from common import FULL, bench_multiplier, emit, format_table, keep_under_benchmark_only
from repro.core.postprocess import extract_from_predictions
from repro.reasoning.adder_tree import ground_truth_labels
from repro.utils.timing import Timer, format_seconds

WIDTHS = (8, 16, 32, 48) if FULL else (8, 16, 32)


def _labels_for(width: int):
    gen = bench_multiplier(width)
    return gen.aig, ground_truth_labels(gen.aig)


def _time_engines(aig, labels, rounds: int = 2):
    """Best-of-N for *both* engines: symmetric protocol, so one-time
    warmup (NPN lru_cache population, allocator) is charged to neither."""
    legacy_seconds = []
    for _ in range(rounds):
        with Timer() as legacy_timer:
            legacy = extract_from_predictions(aig, labels, engine="legacy")
        legacy_seconds.append(legacy_timer.elapsed)
    fast_seconds = []
    for _ in range(rounds):
        with Timer() as fast_timer:
            fast = extract_from_predictions(aig, labels, engine="fast")
        fast_seconds.append(fast_timer.elapsed)
    assert fast.tree.adders == legacy.tree.adders
    assert fast.num_mismatches == legacy.num_mismatches
    return min(legacy_seconds), min(fast_seconds), fast


@pytest.fixture(scope="module")
def speedup_series():
    rows = []
    for width in WIDTHS:
        aig, labels = _labels_for(width)
        legacy_seconds, fast_seconds, fast = _time_engines(aig, labels)
        rows.append(
            {
                "width": width,
                "nodes": aig.num_vars,
                "legacy": legacy_seconds,
                "fast": fast_seconds,
                "speedup": legacy_seconds / max(fast_seconds, 1e-9),
                "full_adders": fast.tree.num_full_adders,
            }
        )
    return rows


def test_postprocess_fast_series(speedup_series, benchmark):
    keep_under_benchmark_only(benchmark)
    table = [
        [
            f"{r['width']}-bit",
            f"{r['nodes']}",
            format_seconds(r["legacy"]),
            format_seconds(r["fast"]),
            f"{r['speedup']:.1f}x",
            f"{r['full_adders']}",
        ]
        for r in speedup_series
    ]
    emit(
        "postprocess_fast",
        format_table(
            "Vectorized vs legacy extract_from_predictions, CSA multipliers",
            ["design", "|V|", "legacy", "fast", "speedup", "FA"],
            table,
        ),
    )


def test_postprocess_fast_speedup_32bit(speedup_series, benchmark):
    """The PR's acceptance bar: ≥5x on the 32-bit CSA multiplier."""
    keep_under_benchmark_only(benchmark)
    row = next(r for r in speedup_series if r["width"] == 32)
    assert row["speedup"] >= 5.0, (
        f"32-bit: expected >=5x over the legacy per-node path, "
        f"got {row['speedup']:.2f}x"
    )


def test_postprocess_fast_speedup_grows_with_size(speedup_series, benchmark):
    """The per-node path pays per flagged candidate; the sweep amortizes.
    The gap must not collapse as designs grow."""
    keep_under_benchmark_only(benchmark)
    assert speedup_series[-1]["speedup"] > 0.5 * speedup_series[0]["speedup"]


def test_smoke_fast_engine_speedup(benchmark):
    """CI perf-smoke lane: a 16-bit multiplier must stay >=2x, quickly.

    Regression guard for the vectorized path itself — if a change drags the
    fast engine back toward per-node Python costs, this fails in minutes.
    """
    aig, labels = _labels_for(16)
    legacy_seconds, fast_seconds, _ = _time_engines(aig, labels)
    keep_under_benchmark_only(benchmark)
    speedup = legacy_seconds / max(fast_seconds, 1e-9)
    assert speedup >= 2.0, (
        f"16-bit: vectorized engine regressed below 2x ({speedup:.2f}x)"
    )


def test_postprocess_fast_kernel(benchmark):
    aig, labels = _labels_for(WIDTHS[-1])
    benchmark.pedantic(
        lambda: extract_from_predictions(aig, labels, engine="fast"),
        rounds=3, iterations=1,
    )
