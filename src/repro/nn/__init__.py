"""NumPy neural-network substrate: autodiff, layers, optimizers."""

from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, spmm
from repro.nn.layers import Linear, Module, SAGEConv
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.init import glorot_uniform, kaiming_uniform, zeros

__all__ = [
    "Tensor",
    "concat",
    "is_grad_enabled",
    "no_grad",
    "spmm",
    "Linear",
    "Module",
    "SAGEConv",
    "Adam",
    "Optimizer",
    "SGD",
    "glorot_uniform",
    "kaiming_uniform",
    "zeros",
]
