"""Minimal reverse-mode automatic differentiation over NumPy arrays.

The paper trains GraphSAGE with PyTorch Geometric; this module provides the
equivalent substrate without torch: a :class:`Tensor` wrapping an
``np.ndarray`` with a gradient tape.  The op set is deliberately small —
exactly what multi-task GraphSAGE training needs (dense/sparse matmul,
broadcasting add, ReLU, concat, row gather, log-softmax, NLL, dropout) —
and every op's backward pass is finite-difference-checked in the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["Tensor", "spmm", "concat", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling tape construction (inference mode)."""

    def __enter__(self) -> None:
        _GRAD_ENABLED.append(False)

    def __exit__(self, *exc_info: object) -> None:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array plus (optionally) a node on the gradient tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False,
                 parents: tuple["Tensor", ...] = (), backward=None) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    # ------------------------------------------------------------------
    # Autograd engine
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-accumulate gradients from this (scalar) tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient needs a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in seen or not current.requires_grad:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    stack.append((parent, False))

        visit(self)
        self.grad = np.asarray(grad, dtype=np.float64)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor(out_data, needs, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor(-self.data, self.requires_grad, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor(out_data, needs, (self, other), backward)

    __rmul__ = __mul__

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data @ other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor(out_data, needs, (self, other), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Differentiable row gather ``self[indices]`` (axis 0).

        The windowed forward pass uses this to pull a halo block's output
        rows out of its input block.  Backward scatter-adds the gradient
        back onto the gathered rows (``np.add.at``, so repeated indices
        accumulate correctly).
        """
        indices = np.asarray(indices, dtype=np.int64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor(self.data[indices], self.requires_grad, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor(self.data * mask, self.requires_grad, (self,), backward)

    def sum(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor(self.data.sum(), self.requires_grad, (self,), backward)

    def mean(self) -> "Tensor":
        scale = 1.0 / self.data.size

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.broadcast_to(grad * scale, self.shape).copy())

        return Tensor(self.data.mean(), self.requires_grad, (self,), backward)

    def log_softmax(self) -> "Tensor":
        """Row-wise log-softmax (last axis), numerically stabilized."""
        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        out_data = shifted - log_z
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad - softmax * grad.sum(axis=-1, keepdims=True))

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def nll_loss(self, targets: np.ndarray,
                 sample_weight: np.ndarray | None = None,
                 total_weight: float | None = None) -> "Tensor":
        """Mean negative log-likelihood of integer ``targets``.

        ``self`` holds log-probabilities of shape ``(N, C)``; optional
        ``sample_weight`` re-weights (or masks, with zeros) each row.

        ``total_weight`` overrides the normalizer (default: the sum of the
        sample weights).  Windowed training passes the *whole-graph* mask
        total here so that the per-window losses — each computed over one
        window's rows only — sum exactly to the full-batch loss, making
        accumulate-all-then-step gradient-equivalent to a full-batch step.
        """
        targets = np.asarray(targets, dtype=np.int64)
        rows = np.arange(self.data.shape[0])
        if sample_weight is None:
            sample_weight = np.ones(self.data.shape[0])
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        total = sample_weight.sum() if total_weight is None else float(total_weight)
        if total <= 0:
            raise ValueError("nll_loss needs positive total sample weight")
        picked = self.data[rows, targets]
        loss = -(picked * sample_weight).sum() / total

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                full[rows, targets] = -sample_weight / total
                self._accumulate(full * grad)

        return Tensor(loss, self.requires_grad, (self,), backward)

    def dropout(self, p: float, rng: np.random.Generator,
                training: bool = True) -> "Tensor":
        """Inverted dropout; identity when not training or ``p == 0``."""
        if not training or p <= 0.0:
            return self
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        mask = (rng.random(self.shape) >= p) / (1.0 - p)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor(self.data * mask, self.requires_grad, (self,), backward)


def concat(tensors: list[Tensor], axis: int = 1) -> Tensor:
    """Concatenate along ``axis`` with gradient routing to every input."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    needs = any(t.requires_grad for t in tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor(data, needs, tuple(tensors), backward)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse (constant) × dense (differentiable) product: ``A @ X``.

    The adjacency operator of message passing.  ``A`` carries no gradient;
    ``grad_X = Aᵀ @ grad_out``.
    """
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(csr.T @ grad)

    return Tensor(out_data, dense.requires_grad, (dense,), backward)
