"""Gradient-descent optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and clears gradients.

    Gradient accumulation is first-class: ``backward()`` *adds* into
    ``param.grad``, so several losses (e.g. one per streaming window) can
    be backpropagated between a ``zero_grad()`` and the ``step()`` that
    consumes their sum.  ``zero_grad`` therefore marks accumulation
    boundaries, and ``step`` applies whatever has accumulated since the
    last one — parameters whose grad is still ``None`` are left untouched.
    """

    def __init__(self, parameters: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check_slot_arrays(self, name: str, arrays: list[np.ndarray]) -> list[np.ndarray]:
        """Validate per-parameter slot arrays restored from a checkpoint."""
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"{name}: expected {len(self.parameters)} arrays, "
                f"got {len(arrays)}"
            )
        out = []
        for index, (param, array) in enumerate(zip(self.parameters, arrays)):
            array = np.asarray(array, dtype=np.float64)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"{name}[{index}]: shape {array.shape} != "
                    f"{param.data.shape}"
                )
            out.append(array.copy())
        return out


class SGD(Optimizer):
    """Vanilla / momentum SGD with optional weight decay."""

    def __init__(self, parameters: list[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {
            "kind": "sgd",
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "sgd":
            raise ValueError(f"not an SGD state dict: {state.get('kind')!r}")
        self._velocity = self._check_slot_arrays("velocity", state["velocity"])


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; the training default."""

    def __init__(self, parameters: list[Tensor], lr: float = 0.01,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Moments and step count — everything a bit-identical resume needs."""
        return {
            "kind": "adam",
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "adam":
            raise ValueError(f"not an Adam state dict: {state.get('kind')!r}")
        m = self._check_slot_arrays("m", state["m"])
        v = self._check_slot_arrays("v", state["v"])
        self._step_count = int(state["step_count"])
        self._m = m
        self._v = v
