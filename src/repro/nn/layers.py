"""Neural modules: Linear, GraphSAGE convolution, and the Module base.

``SAGEConv`` implements Eq. (1) of the paper exactly:

    h_N(v) = mean of neighbor embeddings,
    h_v    = sigma(W · concat(h_v, h_N(v)))

with neighborhoods given by a pre-normalized sparse adjacency operator (see
:func:`repro.learn.data.adjacency_operator` for direction conventions).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.nn.init import glorot_uniform, zeros
from repro.nn.tensor import Tensor, concat, spmm

__all__ = ["Module", "Linear", "SAGEConv"]


class Module:
    """Tiny nn.Module analogue: parameter registry + state dict I/O."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def parameters(self) -> list[Tensor]:
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        items = [(prefix + name, p) for name, p in self._parameters.items()]
        for mod_name, module in self._modules.items():
            items.extend(module.named_parameters(prefix + mod_name + "."))
        return items

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name}: shape {value.shape} != {param.data.shape}"
                )
            param.data = value.copy()


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Glorot initialization."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(glorot_uniform((in_features, out_features), rng))
        )
        self.bias = (
            self.register_parameter("bias", Tensor(zeros((out_features,))))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward


class SAGEConv(Module):
    """GraphSAGE convolution in the concat form of the paper's Eq. (1).

    ``forward(x, adj)`` expects ``adj`` to be a row-normalized (mean
    aggregation) sparse operator: row ``v`` averages the chosen
    neighborhood of ``v``.  Nodes with no neighbors aggregate to zeros.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(glorot_uniform((2 * in_features, out_features), rng))
        )
        self.bias = (
            self.register_parameter("bias", Tensor(zeros((out_features,))))
            if bias
            else None
        )

    def forward(self, x: Tensor, adj: sp.spmatrix) -> Tensor:
        neighborhood = spmm(adj, x)
        out = concat([x, neighborhood], axis=1) @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward

    def forward_block(self, x: Tensor, sub_adj: sp.spmatrix,
                      self_index: np.ndarray) -> Tensor:
        """Eq. (1) on one halo block of the windowed execution plan.

        ``x`` holds the layer's input block (rows ``B_j``), ``sub_adj`` the
        sub-CSR slice ``adjacency[B_{j+1}][:, B_j]``, and ``self_index``
        locates the output rows ``B_{j+1}`` inside ``B_j`` — so the concat
        pairs each output row's own embedding with its aggregated fan-in,
        exactly as :meth:`forward` does on the full graph.  Gradients flow
        through both the gather and the sparse product, which is what lets
        windowed training accumulate full-batch-equivalent gradients.
        """
        neighborhood = spmm(sub_adj, x)
        out = concat([x.take_rows(self_index), neighborhood], axis=1) @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
