"""Weight initializers (Glorot/Kaiming), seeded for reproducibility."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "kaiming_uniform", "zeros"]


def glorot_uniform(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — the PyG default for SAGEConv weights."""
    fan_in, fan_out = shape[0], shape[1]
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He uniform, suited to ReLU trunks."""
    fan_in = shape[0]
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
