"""Vectorized k ≤ 3 priority-cut enumeration over struct-of-arrays storage.

This is the array-shaped twin of :mod:`repro.aig.cuts`: instead of per-node
Python loops over :class:`~repro.aig.cuts.Cut` dataclasses, the whole graph
is swept bottom-up one topological level at a time and every step of the
merge — leaf union, feasibility, truth recomputation, dedup, dominance
filtering, ranking — is a NumPy pass over all nodes of the level at once.
With k ≤ 3 every cut function fits in a uint8 and every truth manipulation
becomes a table lookup, which is what makes the sweep array-shaped.

Array cut format
----------------
A :class:`CutArrays` holds, for ``N = aig.num_vars`` and ``C = max_cuts + 1``
slots per node (the ``+ 1`` is the trivial cut):

``leaves`` : ``(N, C, 3) int32``
    Cut leaves, ascending within each slot, padded with ``pad = num_vars``
    (an id no real variable can take).  Slot order is *identical* to the
    legacy enumerator's list order: non-trivial cuts ranked by
    ``(size, leaves)``, dominance-filtered, truncated to ``max_cuts``, then
    the trivial cut ``(var,)`` last.
``truths`` : ``(N, C) uint8``
    Truth table of the root over the slot's leaves (root positive polarity),
    masked to the cut's ``2**size`` valid bits — numerically equal to the
    legacy :attr:`Cut.truth` integer.
``sizes`` : ``(N, C) int8``
    Number of leaves per slot (0 for unused slots).
``counts`` : ``(N,) int32``
    Number of valid slots per node; PIs and the constant node have exactly
    their trivial cut.

Equivalence with the legacy enumerator (same cuts, same truths, same slot
order, including truncation and dominance edge cases) is enforced by
``tests/test_fast_cuts.py``; the Cut-object API remains the differential
oracle and the entry point for ``k > 3`` (technology mapping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aig.cuts import TRIVIAL_TRUTH, Cut, CutSet
from repro.aig.graph import AIG

__all__ = [
    "CutArrays",
    "enumerate_cuts_arrays",
    "classify_cut_arrays",
    "matched_leaf_sets",
]

# Truth-domain mask by cut size: 2**(2**size) - 1, saturated past size 3
# (oversized unions are infeasible and masked out later anyway).
_WIDTH_MASK = np.array([1, 3, 15, 255, 255, 255, 255], dtype=np.uint8)

# Union-slot bit by leaf position (slots 0..2); positions 3..5 only occur
# on infeasible unions and contribute nothing.
_SLOT_BIT = np.array([1, 2, 4, 0, 0, 0], dtype=np.uint8)

# Upper bound on candidate cells materialized per vectorized chunk; keeps
# peak scratch memory level-independent on huge levels.  The merge holds a
# handful of (cells, 6) int32/int64 scratch arrays at once, so 2^18 cells
# bounds the transient footprint to a few tens of MiB — which also keeps
# forked post-processing workers (one sweep each) within the serving
# layer's memory budgeting.
_CHUNK_CELLS = 1 << 18


def _safe_pack_limit() -> int:
    """Largest leaf-universe size ``v`` with ``5 * v**3 < 2**63``.

    The rank key packs ``size * vp**3 + leaves`` into one int64 with
    ``size <= k + 1 <= 4``; any pad-inclusive universe up to this bound is
    overflow-free.  Computed exactly (integer arithmetic, no float cube
    root) so the boundary cannot be off by one.
    """
    limit = int(round((np.iinfo(np.int64).max // 5) ** (1.0 / 3.0)))
    while 5 * limit ** 3 >= np.iinfo(np.int64).max:
        limit -= 1
    while 5 * (limit + 1) ** 3 < np.iinfo(np.int64).max:
        limit += 1
    return limit


_SAFE_PACK_LIMIT = _safe_pack_limit()


def _build_expand_lut() -> np.ndarray:
    """``EXPAND_LUT[mask, t]``: re-express truth ``t`` on 3 variables.

    ``t`` is a function of ``popcount(mask)`` variables; source variable
    ``i`` becomes the ``i``-th set bit of ``mask`` in the 3-variable target
    domain.  Entry 0 is unused (every cut has at least one leaf).
    """
    lut = np.zeros((8, 256), dtype=np.uint8)
    minterms = np.arange(8, dtype=np.uint16)
    tables = np.arange(256, dtype=np.uint16)
    for mask in range(1, 8):
        positions = [p for p in range(3) if (mask >> p) & 1]
        src = np.zeros(8, dtype=np.uint16)
        for i, pos in enumerate(positions):
            src |= ((minterms >> pos) & 1) << i
        bits = (tables[:, None] >> src[None, :]) & 1  # (256 tables, 8 minterms)
        lut[mask] = (bits << minterms[None, :]).sum(axis=1).astype(np.uint8)
    return lut


EXPAND_LUT = _build_expand_lut()


@dataclass
class CutArrays:
    """Struct-of-arrays priority cuts for every variable (format above)."""

    leaves: np.ndarray  # (N, C, 3) int32, padded with num_vars
    truths: np.ndarray  # (N, C) uint8
    sizes: np.ndarray  # (N, C) int8
    counts: np.ndarray  # (N,) int32
    k: int
    max_cuts: int

    @property
    def num_vars(self) -> int:
        return self.leaves.shape[0]

    def cuts_of(self, var: int) -> CutSet:
        """Legacy ``list[Cut]`` adapter for one variable (slot order kept)."""
        out: CutSet = []
        for slot in range(int(self.counts[var])):
            size = int(self.sizes[var, slot])
            out.append(
                Cut(
                    tuple(int(x) for x in self.leaves[var, slot, :size]),
                    int(self.truths[var, slot]),
                )
            )
        return out

    def to_cutsets(self) -> list[CutSet]:
        """Full conversion to the legacy per-variable cut lists."""
        return [self.cuts_of(var) for var in range(self.num_vars)]

    def __repr__(self) -> str:
        return (
            f"CutArrays(num_vars={self.num_vars}, k={self.k}, "
            f"max_cuts={self.max_cuts}, total_cuts={int(self.counts.sum())})"
        )


def enumerate_cuts_arrays(aig: AIG, k: int = 3, max_cuts: int = 8,
                          include_trivial: bool = True,
                          pack_limit: int | None = None,
                          restrict_to=None) -> CutArrays:
    """Enumerate priority cuts for the whole graph in one bottom-up sweep.

    Produces exactly the cuts (and slot order) of
    :func:`repro.aig.cuts.enumerate_cuts` with the same parameters, but as
    :class:`CutArrays` and with all per-level work vectorized.  Only
    ``k ∈ {2, 3}`` is supported — larger cuts do not fit the uint8 truth
    domain; use the legacy enumerator for those.

    ``pack_limit`` overrides the int64-packing threshold that triggers
    per-level leaf compaction on huge graphs (testing hook: a small value
    forces the compaction path on small graphs).

    ``restrict_to`` limits the sweep to the transitive fan-in cones of the
    given root variables: nodes outside the cones keep ``counts == 0``.
    Restricted nodes get *exactly* the cuts the full sweep would give them
    (a node's cuts depend only on its fan-in cone), so consumers that only
    read cone nodes — e.g. LSB repair — can skip the rest of the graph.
    """
    if k < 2:
        raise ValueError("cut size k must be at least 2")
    if k > 3:
        raise ValueError(
            f"fast cut engine handles k <= 3 (got k={k}); "
            "use repro.aig.cuts.enumerate_cuts for wider cuts"
        )
    if max_cuts < 1:
        raise ValueError("max_cuts must be at least 1")
    num_vars = aig.num_vars
    slots = max_cuts + (1 if include_trivial else 0)
    # Slot capacity never exceeded: ranked cuts are truncated to max_cuts
    # and the trivial cut takes one more slot.
    pad = num_vars
    leaves = np.full((num_vars, slots, 3), pad, dtype=np.int32)
    truths = np.zeros((num_vars, slots), dtype=np.uint8)
    sizes = np.zeros((num_vars, slots), dtype=np.int8)
    counts = np.zeros(num_vars, dtype=np.int32)

    # Constant node and PIs carry only their trivial cut (legacy behavior:
    # the constant is treated as an opaque leaf variable).
    boundary = np.arange(aig.num_inputs + 1)
    leaves[boundary, 0, 0] = boundary
    truths[boundary, 0] = TRIVIAL_TRUTH
    sizes[boundary, 0] = 1
    counts[boundary] = 1

    if aig.num_ands == 0:
        return CutArrays(leaves, truths, sizes, counts, k, max_cuts)

    fanin0, fanin1 = aig.fanin_arrays()
    state = (leaves, truths, sizes, counts)
    if pack_limit is None:
        pack_limit = _SAFE_PACK_LIMIT
    elif pack_limit < 6 * slots + 2:
        # Even a single-node chunk brings up to 6*slots distinct leaves
        # (plus the pad) into one compacted universe; a limit below that
        # cannot be honored and would wrap the int64 rank keys.
        raise ValueError(
            f"pack_limit must be at least {6 * slots + 2} "
            f"for max_cuts={max_cuts}, got {pack_limit}"
        )
    # Chunk size bounds two things at once: scratch memory (fixed cell
    # budget per chunk) and — on graphs big enough to need per-level leaf
    # compaction — the compacted leaf universe, which must stay under the
    # int64 packing limit (each node contributes at most 6*slots leaves).
    step = max(1, min(_CHUNK_CELLS // (slots * slots),
                      (pack_limit - 2) // (6 * slots)))
    cone_mask = None
    if restrict_to is not None:
        cone_mask = np.zeros(num_vars, dtype=bool)
        cone_mask[list(aig.transitive_fanin(restrict_to))] = True
    for batch in aig.and_level_batches():
        if cone_mask is not None:
            batch = batch[cone_mask[batch]]
            if not len(batch):
                continue
        for chunk in range(0, len(batch), step):
            _merge_level(
                aig, batch[chunk:chunk + step], fanin0, fanin1, state,
                k=k, max_cuts=max_cuts, include_trivial=include_trivial,
                pad=pad, pack_limit=pack_limit,
            )
    return CutArrays(leaves, truths, sizes, counts, k, max_cuts)


_ARANGE_CACHE: dict[int, np.ndarray] = {}
_ARANGE_CACHE_MAX = 512  # cache only small sizes (cut-slot counts, narrow
# levels): bounds the module-global to <1 MiB total while covering the
# sizes that recur every level; big per-chunk aranges are cheap relative
# to the passes around them and would pin memory for the process lifetime.


def _arange(n: int) -> np.ndarray:
    if n > _ARANGE_CACHE_MAX:
        return np.arange(n)
    got = _ARANGE_CACHE.get(n)
    if got is None:
        got = _ARANGE_CACHE[n] = np.arange(n)
    return got


def _merge_level(aig: AIG, batch: np.ndarray, fanin0: np.ndarray,
                 fanin1: np.ndarray, state, *, k: int, max_cuts: int,
                 include_trivial: bool, pad: int, pack_limit: int) -> None:
    """Merge, rank and store the cuts of one level's nodes, vectorized."""
    leaves, truths, sizes, counts = state
    m = len(batch)
    v0 = fanin0[batch] >> 1
    v1 = fanin1[batch] >> 1

    c0 = counts[v0]
    c1 = counts[v1]
    C0 = int(c0.max())
    C1 = int(c1.max())

    # Candidate grid: every (cut of fanin0) x (cut of fanin1) combination.
    l0 = leaves[v0, :C0]  # (m, C0, 3)
    l1 = leaves[v1, :C1]
    t0 = truths[v0, :C0]  # (m, C0)
    t1 = truths[v1, :C1]

    # Leaf ids must fit the packed int64 sort/dominance keys below; when
    # the graph is too large for that (~beyond 1.2M variables), compact
    # this level's leaf universe to dense local ids first.
    lut = None
    if pad + 1 > pack_limit:
        lut = np.unique(
            np.concatenate([l0.reshape(m, -1), l1.reshape(m, -1)], axis=1)
        )
        if lut[-1] != pad:
            lut = np.append(lut, np.int32(pad))
        l0 = np.searchsorted(lut, l0).astype(np.int32)
        l1 = np.searchsorted(lut, l1).astype(np.int32)
        pad = len(lut) - 1
        # Guaranteed by the caller's chunk sizing (<= 6*slots leaves per
        # node); a violation would silently wrap the int64 rank keys.
        assert pad + 1 <= pack_limit, "compacted leaf universe too large"

    valid = (
        (_arange(C0)[None, :, None] < c0[:, None, None])
        & (_arange(C1)[None, None, :] < c1[:, None, None])
    )  # (m, C0, C1)

    # Leaf union via one sort over the 6 padded leaf slots.  Each leaf is
    # tagged with its provenance (bit 0: fan-in 0, bit 1: fan-in 1) in the
    # two low key bits, so sorting keeps duplicate leaves adjacent (run
    # length at most 2 — leaves are unique within one cut) and the tags
    # recover, per unique leaf, which fan-in cut(s) contributed it.
    tagged = np.concatenate(
        [
            np.broadcast_to((l0 * 4 + 1)[:, :, None, :], (m, C0, C1, 3)),
            np.broadcast_to((l1 * 4 + 2)[:, None, :, :], (m, C0, C1, 3)),
        ],
        axis=-1,
    )  # (m, C0, C1, 6)
    merged = np.sort(tagged, axis=-1)
    leaf = merged >> 2
    tag = merged & 3
    same = leaf[..., 1:] == leaf[..., :-1]
    fresh = np.empty(leaf.shape, dtype=bool)
    fresh[..., 0] = leaf[..., 0] != pad
    fresh[..., 1:] = ~same & (leaf[..., 1:] != pad)
    run_tags = tag.copy()
    run_tags[..., :-1] |= np.where(same, tag[..., 1:], 0)
    size = fresh.sum(axis=-1, dtype=np.int16)  # (m, C0, C1)
    # Oversized unions get size k+1: infeasible, and ranked past every
    # real cut by the size-major sort key below.
    size = np.where(valid & (size <= k), size, np.int16(k + 1))

    # Compact each union to its first three slots (slot 3 is a spill bin
    # for duplicate/pad/overflow entries; feasible unions never reach it).
    position = np.cumsum(fresh, axis=-1) - 1
    slot = np.where(fresh & (position < 3), position, 3)
    union = np.full((m, C0, C1, 4), pad, dtype=np.int32)
    cells = m * C0 * C1
    union.reshape(-1)[
        (_arange(cells).reshape(m, C0, C1, 1) * 4 + slot).reshape(-1)
    ] = leaf.reshape(-1)
    union = union[..., :3]

    # Where each fan-in cut's leaves sit inside the union, as a 3-bit
    # position mask — the key into EXPAND_LUT.
    bits = _SLOT_BIT[position] * fresh
    mask0 = (bits * (run_tags & 1).astype(np.uint8)).sum(
        axis=-1, dtype=np.uint8
    )
    mask1 = (bits * ((run_tags >> 1) & 1).astype(np.uint8)).sum(
        axis=-1, dtype=np.uint8
    )

    # Truth of the AND over the union leaves: expand each fan-in function,
    # complement negated edges (byte-wide flip, masked to the domain), AND.
    flip0 = ((fanin0[batch] & 1) * 0xFF).astype(np.uint8)
    flip1 = ((fanin1[batch] & 1) * 0xFF).astype(np.uint8)
    t0e = EXPAND_LUT[mask0, np.broadcast_to(t0[:, :, None], (m, C0, C1))]
    t1e = EXPAND_LUT[mask1, np.broadcast_to(t1[:, None, :], (m, C0, C1))]
    truth = ((t0e ^ flip0[:, None, None]) & (t1e ^ flip1[:, None, None])
             & _WIDTH_MASK[size])

    # Flatten the candidate grid and rank per node by (size, leaves) — the
    # legacy sort key — as a single packed int64 key per candidate.
    grid = C0 * C1
    cand_size = size.reshape(m, grid)
    vp = np.int64(pad + 1)
    u64 = union.reshape(m, grid, 3).astype(np.int64)
    packed = (u64[..., 0] * vp + u64[..., 1]) * vp + u64[..., 2]
    order = np.argsort(cand_size * (vp * vp * vp) + packed, axis=-1)

    flat = (_arange(m)[:, None] * grid + order).reshape(-1)
    packed = packed.reshape(-1)[flat].reshape(m, grid)
    cand_size = cand_size.reshape(-1)[flat].reshape(m, grid)
    cand_leaves = union.reshape(-1, 3)[flat].reshape(m, grid, 3)
    cand_ok = cand_size <= k

    # Dedup: merge paths reproducing the same leaf set produce the same
    # root function, so keeping the first occurrence matches the legacy
    # ``setdefault`` exactly.
    live = cand_ok.copy()
    if grid > 1:
        live[:, 1:] &= packed[:, 1:] != packed[:, :-1]

    # Dominance: a cut is dropped when a strictly smaller live cut is a
    # leaf-subset.  With k ≤ 3 the only dominators are singletons and
    # pairs, so subset testing is a few keyed membership checks.
    dominated = _dominated(cand_leaves, cand_size, live, vp)
    keep = live & ~dominated
    rank = np.cumsum(keep, axis=1) - 1
    final = keep & (rank < max_cuts)

    rows, cols = np.nonzero(final)
    dest = batch[rows]
    dest_slot = rank[rows, cols]
    picked = cand_leaves[rows, cols]
    if lut is not None:
        picked = lut[picked]
    leaves[dest, dest_slot] = picked
    truths[dest, dest_slot] = truth.reshape(m, grid)[rows, order[rows, cols]]
    sizes[dest, dest_slot] = cand_size[rows, cols].astype(np.int8)
    kept = final.sum(axis=1)
    if include_trivial:
        leaves[batch, kept, 0] = batch.astype(np.int32)
        truths[batch, kept] = TRIVIAL_TRUTH
        sizes[batch, kept] = 1
        counts[batch] = kept + 1
    else:
        counts[batch] = kept


def _member(values: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted 1D key array, searchsorted-style."""
    index = np.searchsorted(sorted_keys, values)
    np.minimum(index, len(sorted_keys) - 1, out=index)
    return sorted_keys[index] == values


def _dominated(cand_leaves: np.ndarray, cand_size: np.ndarray,
               live: np.ndarray, vp: np.int64) -> np.ndarray:
    """Which live candidates are dominated by a smaller live candidate.

    Exactness note: testing against *all* live smaller cuts (not just the
    ones the legacy loop had kept so far) is equivalent — dominance is
    transitive, the sort is by size, and a dominating cut always precedes
    its victim — so this reproduces the sequential filter bit for bit.
    """
    m, grid = cand_size.shape
    l64 = cand_leaves.astype(np.int64)
    node_base = (np.arange(m, dtype=np.int64) * vp)[:, None]
    dominated = np.zeros((m, grid), dtype=bool)

    single = live & (cand_size == 1)
    if single.any():
        bigger = live & (cand_size >= 2)
        if bigger.any():
            single_keys = np.sort((node_base + l64[..., 0])[single])
            hit = _member(node_base[:, :, None] + l64, single_keys)
            dominated |= bigger & hit.any(axis=-1)

    pair = live & (cand_size == 2)
    if pair.any():
        triple = live & (cand_size == 3)
        if triple.any():
            pair_base = (node_base * vp)[:, :, None]
            sub_pairs = l64[..., [0, 0, 1]] * vp + l64[..., [1, 2, 2]]
            keys = np.sort(
                (pair_base[..., 0] + l64[..., 0] * vp + l64[..., 1])[pair]
            )
            hit = _member(pair_base + sub_pairs, keys)
            dominated |= triple & hit.any(axis=-1)
    return dominated


def classify_cut_arrays(cuts: CutArrays) -> tuple[np.ndarray, np.ndarray]:
    """Per-slot XOR/MAJ membership masks, one fancy-indexing expression each.

    Returns boolean ``(N, C)`` arrays ``(is_xor, is_maj)``: slot matches the
    NPN class of XOR2 (2-leaf cuts) / XOR3 / MAJ3 (3-leaf cuts).  The two
    masks are disjoint because NPN orbits partition the truth tables.
    """
    from repro.aig.npn import IS_MAJ3_LUT, IS_XOR2_LUT, IS_XOR3_LUT

    valid = (
        np.arange(cuts.truths.shape[1])[None, :] < cuts.counts[:, None]
    )
    two = valid & (cuts.sizes == 2)
    three = valid & (cuts.sizes == 3)
    is_xor = (two & IS_XOR2_LUT[cuts.truths]) | (three & IS_XOR3_LUT[cuts.truths])
    is_maj = three & IS_MAJ3_LUT[cuts.truths]
    return is_xor, is_maj


def _collect_leaf_sets(cuts: CutArrays,
                       mask: np.ndarray) -> dict[int, list[tuple[int, ...]]]:
    """Group a slot mask into the legacy ``var -> [leaf tuples]`` mapping."""
    rows, slot = np.nonzero(mask)
    out: dict[int, list[tuple[int, ...]]] = {}
    if rows.size == 0:
        return out
    picked_leaves = cuts.leaves[rows, slot].tolist()
    picked_sizes = cuts.sizes[rows, slot].tolist()
    for var, leaf_row, size in zip(rows.tolist(), picked_leaves, picked_sizes):
        out.setdefault(var, []).append(tuple(leaf_row[:size]))
    return out


def matched_leaf_sets(
    cuts: CutArrays,
) -> tuple[dict[int, list[tuple[int, ...]]], dict[int, list[tuple[int, ...]]]]:
    """XOR- and MAJ-matching cuts of every node, in legacy detection shape.

    Returns ``(xor_sets, maj_sets)`` where each maps a root variable to its
    matching leaf tuples in slot (= legacy list) order — the exact payload
    :class:`~repro.reasoning.xor_maj.XorMajDetection` stores.
    """
    is_xor, is_maj = classify_cut_arrays(cuts)
    return _collect_leaf_sets(cuts, is_xor), _collect_leaf_sets(cuts, is_maj)
