"""Vectorized k ≤ 3 priority-cut enumeration over struct-of-arrays storage.

This is the array-shaped twin of :mod:`repro.aig.cuts`: instead of per-node
Python loops over :class:`~repro.aig.cuts.Cut` dataclasses, the whole graph
is swept bottom-up one topological level at a time and every step of the
merge — leaf union, feasibility, truth recomputation, dedup, dominance
filtering, ranking — is a NumPy pass over all nodes of the level at once.
With k ≤ 3 every cut function fits in a uint8 and every truth manipulation
becomes a table lookup, which is what makes the sweep array-shaped.

Array cut format
----------------
A :class:`CutArrays` holds, for ``N = aig.num_vars`` and ``C = max_cuts + 1``
slots per node (the ``+ 1`` is the trivial cut):

``leaves`` : ``(N, C, 3) int32``
    Cut leaves, ascending within each slot, padded with ``pad = num_vars``
    (an id no real variable can take).  Slot order is *identical* to the
    legacy enumerator's list order: non-trivial cuts ranked by
    ``(size, leaves)``, dominance-filtered, truncated to ``max_cuts``, then
    the trivial cut ``(var,)`` last.
``truths`` : ``(N, C) uint8``
    Truth table of the root over the slot's leaves (root positive polarity),
    masked to the cut's ``2**size`` valid bits — numerically equal to the
    legacy :attr:`Cut.truth` integer.
``sizes`` : ``(N, C) int8``
    Number of leaves per slot (0 for unused slots).
``counts`` : ``(N,) int32``
    Number of valid slots per node; PIs and the constant node have exactly
    their trivial cut.

Equivalence with the legacy enumerator (same cuts, same truths, same slot
order, including truncation and dominance edge cases) is enforced by
``tests/test_fast_cuts.py``; the Cut-object API remains the differential
oracle and the entry point for ``k > 3`` (technology mapping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aig.cuts import TRIVIAL_TRUTH, Cut, CutSet
from repro.aig.graph import AIG
from repro.kernels.numpy_backend import _SAFE_PACK_LIMIT, EXPAND_LUT  # noqa: F401
from repro.kernels.registry import get_kernel

__all__ = [
    "CutArrays",
    "enumerate_cuts_arrays",
    "classify_cut_arrays",
    "matched_leaf_sets",
]


@dataclass
class CutArrays:
    """Struct-of-arrays priority cuts for every variable (format above)."""

    leaves: np.ndarray  # (N, C, 3) int32, padded with num_vars
    truths: np.ndarray  # (N, C) uint8
    sizes: np.ndarray  # (N, C) int8
    counts: np.ndarray  # (N,) int32
    k: int
    max_cuts: int

    @property
    def num_vars(self) -> int:
        return self.leaves.shape[0]

    def cuts_of(self, var: int) -> CutSet:
        """Legacy ``list[Cut]`` adapter for one variable (slot order kept)."""
        out: CutSet = []
        for slot in range(int(self.counts[var])):
            size = int(self.sizes[var, slot])
            out.append(
                Cut(
                    tuple(int(x) for x in self.leaves[var, slot, :size]),
                    int(self.truths[var, slot]),
                )
            )
        return out

    def to_cutsets(self) -> list[CutSet]:
        """Full conversion to the legacy per-variable cut lists."""
        return [self.cuts_of(var) for var in range(self.num_vars)]

    def __repr__(self) -> str:
        return (
            f"CutArrays(num_vars={self.num_vars}, k={self.k}, "
            f"max_cuts={self.max_cuts}, total_cuts={int(self.counts.sum())})"
        )


def enumerate_cuts_arrays(aig: AIG, k: int = 3, max_cuts: int = 8,
                          include_trivial: bool = True,
                          pack_limit: int | None = None,
                          restrict_to=None) -> CutArrays:
    """Enumerate priority cuts for the whole graph in one bottom-up sweep.

    Produces exactly the cuts (and slot order) of
    :func:`repro.aig.cuts.enumerate_cuts` with the same parameters, but as
    :class:`CutArrays` and with all per-level work vectorized.  Only
    ``k ∈ {2, 3}`` is supported — larger cuts do not fit the uint8 truth
    domain; use the legacy enumerator for those.

    ``pack_limit`` overrides the int64-packing threshold that triggers
    per-level leaf compaction on huge graphs (testing hook: a small value
    forces the compaction path on small graphs).

    ``restrict_to`` limits the sweep to the transitive fan-in cones of the
    given root variables: nodes outside the cones keep ``counts == 0``.
    Restricted nodes get *exactly* the cuts the full sweep would give them
    (a node's cuts depend only on its fan-in cone), so consumers that only
    read cone nodes — e.g. LSB repair — can skip the rest of the graph.
    """
    if k < 2:
        raise ValueError("cut size k must be at least 2")
    if k > 3:
        raise ValueError(
            f"fast cut engine handles k <= 3 (got k={k}); "
            "use repro.aig.cuts.enumerate_cuts for wider cuts"
        )
    if max_cuts < 1:
        raise ValueError("max_cuts must be at least 1")
    num_vars = aig.num_vars
    slots = max_cuts + (1 if include_trivial else 0)
    # Slot capacity never exceeded: ranked cuts are truncated to max_cuts
    # and the trivial cut takes one more slot.
    pad = num_vars
    leaves = np.full((num_vars, slots, 3), pad, dtype=np.int32)
    truths = np.zeros((num_vars, slots), dtype=np.uint8)
    sizes = np.zeros((num_vars, slots), dtype=np.int8)
    counts = np.zeros(num_vars, dtype=np.int32)

    # Constant node and PIs carry only their trivial cut (legacy behavior:
    # the constant is treated as an opaque leaf variable).
    boundary = np.arange(aig.num_inputs + 1)
    leaves[boundary, 0, 0] = boundary
    truths[boundary, 0] = TRIVIAL_TRUTH
    sizes[boundary, 0] = 1
    counts[boundary] = 1

    if aig.num_ands == 0:
        return CutArrays(leaves, truths, sizes, counts, k, max_cuts)

    fanin0, fanin1 = aig.fanin_arrays()
    if pack_limit is None:
        pack_limit = _SAFE_PACK_LIMIT
    elif pack_limit < 6 * slots + 2:
        # Even a single-node chunk brings up to 6*slots distinct leaves
        # (plus the pad) into one compacted universe; a limit below that
        # cannot be honored and would wrap the int64 rank keys.
        raise ValueError(
            f"pack_limit must be at least {6 * slots + 2} "
            f"for max_cuts={max_cuts}, got {pack_limit}"
        )
    cone_mask = None
    if restrict_to is not None:
        cone_mask = np.zeros(num_vars, dtype=bool)
        cone_mask[list(aig.transitive_fanin(restrict_to))] = True
    # The per-level merge is a registered kernel (repro.kernels): the
    # numpy implementation chunks the level internally, a compiled one
    # loops the nodes; both fill the same columns bit-identically.
    merge = get_kernel("merge_level")
    for batch in aig.and_level_batches():
        if cone_mask is not None:
            batch = batch[cone_mask[batch]]
            if not len(batch):
                continue
        merge(batch, fanin0, fanin1, leaves, truths, sizes, counts,
              k=k, max_cuts=max_cuts, include_trivial=include_trivial,
              pad=pad, pack_limit=pack_limit)
    return CutArrays(leaves, truths, sizes, counts, k, max_cuts)


def classify_cut_arrays(cuts: CutArrays) -> tuple[np.ndarray, np.ndarray]:
    """Per-slot XOR/MAJ membership masks, one fancy-indexing expression each.

    Returns boolean ``(N, C)`` arrays ``(is_xor, is_maj)``: slot matches the
    NPN class of XOR2 (2-leaf cuts) / XOR3 / MAJ3 (3-leaf cuts).  The two
    masks are disjoint because NPN orbits partition the truth tables.
    """
    from repro.aig.npn import IS_MAJ3_LUT, IS_XOR2_LUT, IS_XOR3_LUT

    valid = (
        np.arange(cuts.truths.shape[1])[None, :] < cuts.counts[:, None]
    )
    two = valid & (cuts.sizes == 2)
    three = valid & (cuts.sizes == 3)
    is_xor = (two & IS_XOR2_LUT[cuts.truths]) | (three & IS_XOR3_LUT[cuts.truths])
    is_maj = three & IS_MAJ3_LUT[cuts.truths]
    return is_xor, is_maj


def _collect_leaf_sets(cuts: CutArrays,
                       mask: np.ndarray) -> dict[int, list[tuple[int, ...]]]:
    """Group a slot mask into the legacy ``var -> [leaf tuples]`` mapping."""
    rows, slot = np.nonzero(mask)
    out: dict[int, list[tuple[int, ...]]] = {}
    if rows.size == 0:
        return out
    picked_leaves = cuts.leaves[rows, slot].tolist()
    picked_sizes = cuts.sizes[rows, slot].tolist()
    for var, leaf_row, size in zip(rows.tolist(), picked_leaves, picked_sizes):
        out.setdefault(var, []).append(tuple(leaf_row[:size]))
    return out


def matched_leaf_sets(
    cuts: CutArrays,
) -> tuple[dict[int, list[tuple[int, ...]]], dict[int, list[tuple[int, ...]]]]:
    """XOR- and MAJ-matching cuts of every node, in legacy detection shape.

    Returns ``(xor_sets, maj_sets)`` where each maps a root variable to its
    matching leaf tuples in slot (= legacy list) order — the exact payload
    :class:`~repro.reasoning.xor_maj.XorMajDetection` stores.
    """
    is_xor, is_maj = classify_cut_arrays(cuts)
    return _collect_leaf_sets(cuts, is_xor), _collect_leaf_sets(cuts, is_maj)
