"""NPN (negation–permutation–negation) equivalence of small functions.

Two functions are NPN-equivalent when one can be obtained from the other by
permuting inputs, complementing a subset of inputs, and optionally
complementing the output.  The paper labels "negation-permutation-negation
equivalent functions" as XOR/MAJ (Sec. III-B2), so both the exact reasoner
and the technology matcher work modulo NPN.

Brute-force canonicalization is used: for k ≤ 4 there are at most
``4! * 2^4 * 2 = 768`` transforms, and the handful of distinct truth tables
appearing in practice are cached.

For the vectorized reasoner the same membership tests are also exported as
256-entry boolean lookup tables (``IS_XOR2_LUT`` / ``IS_XOR3_LUT`` /
``IS_MAJ3_LUT``): with k ≤ 3 every cut function is a uint8, so classifying
every cut of every node collapses to one fancy-indexing expression over
these tables (see :func:`repro.aig.fast_cuts.classify_cut_arrays`).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations

import numpy as np

from repro.aig.truth import truth_from_function, truth_mask

__all__ = [
    "apply_transform",
    "npn_canon",
    "npn_class",
    "all_npn_transforms",
    "NpnTransform",
    "XOR2_TRUTHS",
    "XOR3_TRUTHS",
    "MAJ3_TRUTHS",
    "IS_XOR2_LUT",
    "IS_XOR3_LUT",
    "IS_MAJ3_LUT",
    "is_xor_truth",
    "is_maj_truth",
    "XOR2",
    "XOR3",
    "MAJ3",
    "AND2",
]

# Reference truth tables (over 2 or 3 variables).
XOR2 = truth_from_function(lambda a, b: a ^ b, 2)  # 0x6
XOR3 = truth_from_function(lambda a, b, c: a ^ b ^ c, 3)  # 0x96
MAJ3 = truth_from_function(lambda a, b, c: (a & b) | (a & c) | (b & c), 3)  # 0xe8
AND2 = truth_from_function(lambda a, b: a & b, 2)  # 0x8

NpnTransform = tuple[tuple[int, ...], tuple[int, ...], int]
"""``(perm, input_flips, output_flip)``: new input ``j`` feeds original input
``perm[j]``, optionally complemented by ``input_flips[j]``."""


def apply_transform(table: int, num_vars: int, perm: tuple[int, ...],
                    flips: tuple[int, ...], out_flip: int) -> int:
    """Apply an NPN transform to ``table``.

    The result ``t'`` satisfies ``t'(x_0..x_{k-1}) = t(y_0..y_{k-1}) ^ out_flip``
    where ``y_{perm[j]} = x_j ^ flips[j]``.
    """
    out = 0
    for minterm in range(1 << num_vars):
        src = 0
        for j in range(num_vars):
            bit = ((minterm >> j) & 1) ^ flips[j]
            if bit:
                src |= 1 << perm[j]
        value = ((table >> src) & 1) ^ out_flip
        if value:
            out |= 1 << minterm
    return out


def _all_transforms(num_vars: int):
    for perm in permutations(range(num_vars)):
        for flip_bits in range(1 << num_vars):
            flips = tuple((flip_bits >> j) & 1 for j in range(num_vars))
            for out_flip in (0, 1):
                yield perm, flips, out_flip


@lru_cache(maxsize=1 << 16)
def npn_canon(table: int, num_vars: int) -> int:
    """Canonical (minimum) truth table over the NPN orbit of ``table``."""
    table &= truth_mask(num_vars)
    return min(
        apply_transform(table, num_vars, perm, flips, out_flip)
        for perm, flips, out_flip in _all_transforms(num_vars)
    )


@lru_cache(maxsize=4096)
def npn_class(table: int, num_vars: int) -> frozenset[int]:
    """The full NPN orbit of ``table`` as a set of truth tables."""
    table &= truth_mask(num_vars)
    return frozenset(
        apply_transform(table, num_vars, perm, flips, out_flip)
        for perm, flips, out_flip in _all_transforms(num_vars)
    )


@lru_cache(maxsize=4096)
def all_npn_transforms(table: int, num_vars: int) -> dict[int, NpnTransform]:
    """Map every truth table in the orbit of ``table`` to one transform
    producing it.  Used by the technology matcher to recover pin assignments.
    """
    table &= truth_mask(num_vars)
    orbit: dict[int, NpnTransform] = {}
    for perm, flips, out_flip in _all_transforms(num_vars):
        transformed = apply_transform(table, num_vars, perm, flips, out_flip)
        orbit.setdefault(transformed, (perm, flips, out_flip))
    return orbit


# Precomputed membership sets for the hot path of the exact reasoner.
XOR2_TRUTHS = npn_class(XOR2, 2)
XOR3_TRUTHS = npn_class(XOR3, 3)
MAJ3_TRUTHS = npn_class(MAJ3, 3)


def _membership_lut(truth_set: frozenset[int]) -> np.ndarray:
    lut = np.zeros(256, dtype=bool)
    lut[list(truth_set)] = True
    return lut


# The same orbits as 256-entry boolean LUTs, indexable by uint8 truth
# arrays.  XOR2 truths occupy the low 16 entries (2-variable tables are
# 4 bits); callers gate on cut size, so the shared 256-wide domain is safe.
IS_XOR2_LUT = _membership_lut(XOR2_TRUTHS)
IS_XOR3_LUT = _membership_lut(XOR3_TRUTHS)
IS_MAJ3_LUT = _membership_lut(MAJ3_TRUTHS)


def is_xor_truth(table: int, num_vars: int) -> bool:
    """True when ``table`` is NPN-equivalent to XOR2 (k=2) or XOR3 (k=3)."""
    if num_vars == 2:
        return table in XOR2_TRUTHS
    if num_vars == 3:
        return table in XOR3_TRUTHS
    return False


def is_maj_truth(table: int, num_vars: int) -> bool:
    """True when ``table`` is NPN-equivalent to MAJ3 (k=3 only)."""
    return num_vars == 3 and table in MAJ3_TRUTHS
