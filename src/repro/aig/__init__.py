"""And-Inverter Graph substrate: data structure, I/O, simulation, cuts, NPN.

This package is the Boolean-network foundation the whole reproduction rests
on — the role ABC's AIG package plays for the original Gamora.
"""

from repro.aig.graph import AIG, CONST0, CONST1, lit_neg, lit_not, lit_var, make_lit
from repro.aig.aiger import dumps_aag, loads_aag, read_aiger, write_aag, write_aig
from repro.aig.simulate import (
    evaluate_bits,
    exhaustive_patterns,
    exhaustive_simulate,
    random_simulate,
    simulate,
    simulation_equivalent,
)
from repro.aig.cuts import Cut, enumerate_cuts, node_cuts
from repro.aig.fast_cuts import (
    CutArrays,
    classify_cut_arrays,
    enumerate_cuts_arrays,
    matched_leaf_sets,
)
from repro.aig.truth import (
    expand_truth,
    truth_from_function,
    truth_mask,
    truth_support,
    var_truth,
)
from repro.aig.transform import cleanup, compose, extract_cone, miter
from repro.aig.npn import (
    AND2,
    MAJ3,
    XOR2,
    XOR3,
    all_npn_transforms,
    apply_transform,
    is_maj_truth,
    is_xor_truth,
    npn_canon,
    npn_class,
)

__all__ = [
    "AIG",
    "cleanup",
    "compose",
    "extract_cone",
    "miter",
    "CONST0",
    "CONST1",
    "lit_neg",
    "lit_not",
    "lit_var",
    "make_lit",
    "dumps_aag",
    "loads_aag",
    "read_aiger",
    "write_aag",
    "write_aig",
    "evaluate_bits",
    "exhaustive_patterns",
    "exhaustive_simulate",
    "random_simulate",
    "simulate",
    "simulation_equivalent",
    "Cut",
    "CutArrays",
    "classify_cut_arrays",
    "enumerate_cuts",
    "enumerate_cuts_arrays",
    "matched_leaf_sets",
    "node_cuts",
    "expand_truth",
    "truth_from_function",
    "truth_mask",
    "truth_support",
    "var_truth",
    "AND2",
    "MAJ3",
    "XOR2",
    "XOR3",
    "all_npn_transforms",
    "apply_transform",
    "is_maj_truth",
    "is_xor_truth",
    "npn_canon",
    "npn_class",
]
