"""K-feasible cut enumeration with on-the-fly cut functions.

A *cut* of node ``n`` is a set of nodes whose values completely determine
``n`` (Sec. II-A of the paper).  Cuts are the unit of functional matching in
both the exact reasoner (detecting XOR3/MAJ3 roots) and the technology
mapper.  We implement the standard bottom-up merge with *priority cuts*:
per-node cut lists are deduplicated, dominance-filtered and truncated to a
budget, which bounds runtime on multi-million-node networks.

Every cut carries the truth table of its root expressed over the cut leaves
(in the root's positive polarity), computed incrementally during the merge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import AIG, lit_neg, lit_var
from repro.aig.truth import expand_truth, truth_mask

__all__ = ["Cut", "CutSet", "enumerate_cuts", "node_cuts"]

TRIVIAL_TRUTH = 0b10  # function "x" of the single leaf


@dataclass(frozen=True)
class Cut:
    """An immutable cut: sorted leaf variables plus the root's cut function."""

    leaves: tuple[int, ...]
    truth: int

    @property
    def size(self) -> int:
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True when this cut's leaves are a subset of ``other``'s."""
        return set(self.leaves) <= set(other.leaves)

    def __repr__(self) -> str:
        return f"Cut({self.leaves}, truth=0x{self.truth:x})"


CutSet = list[Cut]


def _merge_leaves(a: tuple[int, ...], b: tuple[int, ...], k: int) -> tuple[int, ...] | None:
    """Sorted union of two sorted leaf tuples, or None when larger than ``k``."""
    if a == b:
        return a
    merged: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        va, vb = a[i], b[j]
        if va == vb:
            merged.append(va)
            i += 1
            j += 1
        elif va < vb:
            merged.append(va)
            i += 1
        else:
            merged.append(vb)
            j += 1
        if len(merged) > k:
            return None
    rest = a[i:] if i < len_a else b[j:]
    if len(merged) + len(rest) > k:
        return None
    merged.extend(rest)
    return tuple(merged)


def _positions(sub: tuple[int, ...], full: tuple[int, ...]) -> tuple[int, ...]:
    """Position of each element of ``sub`` inside ``full`` (both sorted)."""
    pos = []
    j = 0
    for leaf in sub:
        while full[j] != leaf:
            j += 1
        pos.append(j)
    return tuple(pos)


def _filter_and_rank(cuts: list[Cut], max_cuts: int) -> list[Cut]:
    """Deduplicate, remove dominated cuts, rank by size, truncate."""
    unique: dict[tuple[int, ...], Cut] = {}
    for cut in cuts:
        unique.setdefault(cut.leaves, cut)
    items = sorted(unique.values(), key=lambda c: (c.size, c.leaves))
    kept: list[Cut] = []
    for cut in items:
        if any(existing.dominates(cut) for existing in kept):
            continue
        kept.append(cut)
        if len(kept) >= max_cuts:
            break
    return kept


def enumerate_cuts(aig: AIG, k: int = 3, max_cuts: int = 8,
                   include_trivial: bool = True) -> list[CutSet]:
    """Enumerate up to ``max_cuts`` ``k``-feasible cuts for every variable.

    Returns a list indexed by variable; PIs and the constant get only their
    trivial cut.  The trivial cut of each AND node is appended after the
    ranked non-trivial cuts (it is required for merging at fan-outs but is
    never interesting for matching).
    """
    if k < 2:
        raise ValueError("cut size k must be at least 2")
    if max_cuts < 1:
        raise ValueError("max_cuts must be at least 1")
    num_vars = aig.num_vars
    all_cuts: list[CutSet] = [[] for _ in range(num_vars)]
    all_cuts[0] = [Cut((0,), TRIVIAL_TRUTH)]  # constant node (never referenced)
    for var in aig.input_vars():
        all_cuts[var] = [Cut((var,), TRIVIAL_TRUTH)]

    for var, f0, f1 in aig.iter_ands():
        v0, v1 = lit_var(f0), lit_var(f1)
        n0, n1 = lit_neg(f0), lit_neg(f1)
        merged: list[Cut] = []
        for c0 in all_cuts[v0]:
            for c1 in all_cuts[v1]:
                leaves = _merge_leaves(c0.leaves, c1.leaves, k)
                if leaves is None:
                    continue
                width = len(leaves)
                mask = truth_mask(width)
                t0 = expand_truth(c0.truth, _positions(c0.leaves, leaves), width)
                t1 = expand_truth(c1.truth, _positions(c1.leaves, leaves), width)
                if n0:
                    t0 = ~t0 & mask
                if n1:
                    t1 = ~t1 & mask
                merged.append(Cut(leaves, t0 & t1))
        kept = _filter_and_rank(merged, max_cuts)
        if include_trivial:
            kept.append(Cut((var,), TRIVIAL_TRUTH))
        all_cuts[var] = kept
    return all_cuts


def node_cuts(aig: AIG, var: int, k: int = 3, max_cuts: int = 8,
              depth_limit: int = 6) -> CutSet:
    """Cuts of a single node, computed over a depth-bounded local cone.

    Used by the post-processor, which re-derives cuts locally around nodes
    the GNN flagged instead of enumerating the whole network.  Nodes more
    than ``depth_limit`` levels below ``var`` are treated as cut leaves —
    sound for XOR/MAJ verification, whose structures span at most four
    levels, and it keeps the per-node cost constant instead of cone-sized.
    """
    if max_cuts < 1:
        raise ValueError("max_cuts must be at least 1")
    depth: dict[int, int] = {var: 0}
    frontier = [var]
    while frontier:
        current = frontier.pop()
        level = depth[current]
        if level >= depth_limit or not aig.is_and(current):
            continue
        f0, f1 = aig.fanins(current)
        for child in (lit_var(f0), lit_var(f1)):
            if child not in depth or depth[child] > level + 1:
                depth[child] = level + 1
                frontier.append(child)
    cone = sorted(depth)
    cuts: dict[int, CutSet] = {}
    for cone_var in cone:
        if not aig.is_and(cone_var) or depth[cone_var] >= depth_limit:
            cuts[cone_var] = [Cut((cone_var,), TRIVIAL_TRUTH)]
            continue
        f0, f1 = aig.fanins(cone_var)
        v0, v1 = lit_var(f0), lit_var(f1)
        n0, n1 = lit_neg(f0), lit_neg(f1)
        merged: list[Cut] = []
        for c0 in cuts[v0]:
            for c1 in cuts[v1]:
                leaves = _merge_leaves(c0.leaves, c1.leaves, k)
                if leaves is None:
                    continue
                width = len(leaves)
                mask = truth_mask(width)
                t0 = expand_truth(c0.truth, _positions(c0.leaves, leaves), width)
                t1 = expand_truth(c1.truth, _positions(c1.leaves, leaves), width)
                if n0:
                    t0 = ~t0 & mask
                if n1:
                    t1 = ~t1 & mask
                merged.append(Cut(leaves, t0 & t1))
        kept = _filter_and_rank(merged, max_cuts)
        kept.append(Cut((cone_var,), TRIVIAL_TRUTH))
        cuts[cone_var] = kept
    return cuts[var]
