"""Bit-parallel AIG simulation on NumPy uint64 words.

Simulation is the workhorse for validating every substrate in this repo:
generated multipliers are checked bit-exactly against Python integer
multiplication, and technology-mapped netlists are checked equivalent to
their sources.  Evaluation is *levelized*: nodes are grouped by topological
level and each level is computed with vectorized gather/XOR/AND, so a
64-lane random sweep of a million-node network takes milliseconds rather
than a Python-loop eternity.
"""

from __future__ import annotations

import numpy as np

from repro.aig.graph import AIG, lit_neg, lit_var
from repro.utils.rng import seeded_rng

__all__ = [
    "simulate",
    "random_simulate",
    "exhaustive_patterns",
    "exhaustive_simulate",
    "evaluate_bits",
    "simulation_equivalent",
]

_ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def _level_schedule(aig: AIG) -> list[np.ndarray]:
    """AND variables grouped by topological level, each as an int64 array."""
    levels = aig.levels()
    buckets: dict[int, list[int]] = {}
    for var in aig.and_vars():
        buckets.setdefault(levels[var], []).append(var)
    return [np.asarray(buckets[lev], dtype=np.int64) for lev in sorted(buckets)]


def simulate(aig: AIG, input_words: np.ndarray) -> np.ndarray:
    """Simulate with explicit input words.

    Parameters
    ----------
    input_words:
        ``uint64`` array of shape ``(num_inputs, W)``; bit ``b`` of word
        ``w`` of row ``i`` is the value of input ``i`` in pattern
        ``64 * w + b``.

    Returns
    -------
    ``uint64`` array of shape ``(num_outputs, W)`` with output values,
    complemented output literals already applied.
    """
    input_words = np.ascontiguousarray(input_words, dtype=np.uint64)
    if input_words.ndim != 2 or input_words.shape[0] != aig.num_inputs:
        raise ValueError(
            f"expected input shape ({aig.num_inputs}, W), got {input_words.shape}"
        )
    num_words = input_words.shape[1]
    values = np.zeros((aig.num_vars, num_words), dtype=np.uint64)
    if aig.num_inputs:
        values[1:1 + aig.num_inputs] = input_words

    fanin0, fanin1 = aig.fanin_arrays()
    for batch in _level_schedule(aig):
        f0 = fanin0[batch]
        f1 = fanin1[batch]
        lhs = values[f0 >> 1]
        rhs = values[f1 >> 1]
        mask0 = np.where((f0 & 1).astype(bool), _ALL_ONES, np.uint64(0))[:, None]
        mask1 = np.where((f1 & 1).astype(bool), _ALL_ONES, np.uint64(0))[:, None]
        values[batch] = (lhs ^ mask0) & (rhs ^ mask1)

    outputs = np.empty((aig.num_outputs, num_words), dtype=np.uint64)
    for row, lit in enumerate(aig.outputs):
        word = values[lit_var(lit)]
        outputs[row] = ~word if lit_neg(lit) else word
    return outputs


def random_simulate(aig: AIG, num_words: int = 4,
                    seed: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Simulate ``64 * num_words`` uniformly random patterns.

    Returns ``(input_words, output_words)`` so callers can cross-check
    against a reference model pattern by pattern.
    """
    rng = seeded_rng(seed)
    inputs = rng.integers(0, 1 << 64, size=(aig.num_inputs, num_words), dtype=np.uint64)
    return inputs, simulate(aig, inputs)


def exhaustive_patterns(num_inputs: int) -> np.ndarray:
    """All ``2^num_inputs`` patterns packed into uint64 words.

    Row ``i`` holds the elementary truth table of input ``i``: in pattern
    ``m`` (global bit index), input ``i`` takes the value of bit ``i`` of
    ``m``.  Practical up to ~20 inputs.
    """
    if num_inputs > 24:
        raise ValueError("exhaustive simulation beyond 24 inputs is impractical")
    total = 1 << num_inputs
    num_words = max(1, total // 64)
    patterns = np.zeros((num_inputs, num_words), dtype=np.uint64)
    pattern_index = np.arange(total, dtype=np.uint64)
    for i in range(num_inputs):
        bits = (pattern_index >> np.uint64(i)) & np.uint64(1)
        if total < 64:
            word = np.uint64(0)
            for m in range(total):
                if bits[m]:
                    word |= np.uint64(1) << np.uint64(m)
            patterns[i, 0] = word
        else:
            packed = np.packbits(
                bits.astype(np.uint8).reshape(num_words, 64), axis=1, bitorder="little"
            )
            patterns[i] = packed.view(np.uint64).reshape(num_words)
    return patterns


def exhaustive_simulate(aig: AIG) -> np.ndarray:
    """Outputs under all input patterns (see :func:`exhaustive_patterns`).

    When fewer than 64 patterns exist, bits beyond ``2^num_inputs`` are
    masked off so results compare cleanly across networks.
    """
    out = simulate(aig, exhaustive_patterns(aig.num_inputs))
    total = 1 << aig.num_inputs
    if total < 64:
        out &= np.uint64((1 << total) - 1)
    return out


def evaluate_bits(aig: AIG, input_bits: list[int] | tuple[int, ...]) -> list[int]:
    """Evaluate a single pattern given one 0/1 value per input."""
    if len(input_bits) != aig.num_inputs:
        raise ValueError(f"expected {aig.num_inputs} input bits, got {len(input_bits)}")
    words = np.asarray(
        [[_ALL_ONES if bit else np.uint64(0)] for bit in input_bits], dtype=np.uint64
    ).reshape(aig.num_inputs, 1)
    out = simulate(aig, words)
    return [int(word[0] & np.uint64(1)) for word in out]


def simulation_equivalent(left: AIG, right: AIG, num_words: int = 16,
                          seed: int | None = None) -> bool:
    """Check two AIGs agree on all outputs.

    Exhaustive when there are ≤ 14 inputs (a proof for combinational
    networks); otherwise a ``64 * num_words``-pattern random check, which on
    arithmetic netlists is a strong smoke test rather than a proof.
    """
    if left.num_inputs != right.num_inputs or left.num_outputs != right.num_outputs:
        return False
    if left.num_inputs <= 14:
        return bool(np.array_equal(exhaustive_simulate(left), exhaustive_simulate(right)))
    rng = seeded_rng(seed)
    inputs = rng.integers(0, 1 << 64, size=(left.num_inputs, num_words), dtype=np.uint64)
    return bool(np.array_equal(simulate(left, inputs), simulate(right, inputs)))
