"""Reader/writer for the AIGER interchange format (ASCII ``.aag`` and
binary ``.aig``), combinational subset.

The paper's pipeline consumes AIGs produced by ABC; this module lets the
reproduction exchange netlists with ABC or any AIGER-speaking tool.  Only
combinational networks are supported (no latches), which covers every
benchmark in the paper.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.aig.graph import AIG, lit_neg, lit_not, lit_var

__all__ = ["write_aag", "write_aig", "read_aiger", "dumps_aag", "loads_aag"]


def dumps_aag(aig: AIG) -> str:
    """Serialize to the ASCII AIGER format as a string."""
    max_var = aig.num_vars - 1
    lines = [f"aag {max_var} {aig.num_inputs} 0 {aig.num_outputs} {aig.num_ands}"]
    for var in aig.input_vars():
        lines.append(str(2 * var))
    for lit in aig.outputs:
        lines.append(str(lit))
    for var, f0, f1 in aig.iter_ands():
        # AIGER requires rhs0 >= rhs1; AIG normalizes f0 <= f1.
        lines.append(f"{2 * var} {f1} {f0}")
    for index, name in enumerate(aig.input_names):
        lines.append(f"i{index} {name}")
    for index, name in enumerate(aig.output_names):
        lines.append(f"o{index} {name}")
    lines.append("c")
    lines.append(aig.name)
    return "\n".join(lines) + "\n"


def write_aag(aig: AIG, path: str | Path) -> None:
    """Write the ASCII ``.aag`` format."""
    Path(path).write_text(dumps_aag(aig))


def _encode_varint(value: int) -> bytes:
    """AIGER's LEB128-style delta encoding."""
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _decode_varint(stream: io.BufferedIOBase) -> int:
    value = 0
    shift = 0
    while True:
        byte = stream.read(1)
        if not byte:
            raise ValueError("truncated binary AIGER file")
        part = byte[0]
        value |= (part & 0x7F) << shift
        if not part & 0x80:
            return value
        shift += 7


def write_aig(aig: AIG, path: str | Path) -> None:
    """Write the binary ``.aig`` format (delta-encoded ANDs)."""
    max_var = aig.num_vars - 1
    with open(path, "wb") as stream:
        header = f"aig {max_var} {aig.num_inputs} 0 {aig.num_outputs} {aig.num_ands}\n"
        stream.write(header.encode("ascii"))
        for lit in aig.outputs:
            stream.write(f"{lit}\n".encode("ascii"))
        for var, f0, f1 in aig.iter_ands():
            lhs = 2 * var
            rhs0, rhs1 = max(f0, f1), min(f0, f1)
            stream.write(_encode_varint(lhs - rhs0))
            stream.write(_encode_varint(rhs0 - rhs1))
        symbols = [f"i{k} {name}\n" for k, name in enumerate(aig.input_names)]
        symbols += [f"o{k} {name}\n" for k, name in enumerate(aig.output_names)]
        stream.write("".join(symbols).encode("ascii"))
        stream.write(f"c\n{aig.name}\n".encode("ascii"))


def loads_aag(text: str, name: str = "aig") -> AIG:
    """Parse ASCII AIGER text into an :class:`AIG` (re-strashed)."""
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty AIGER input")
    return _parse_ascii(lines, name)


def read_aiger(path: str | Path, name: str | None = None) -> AIG:
    """Read a ``.aag`` or ``.aig`` file, auto-detected from the header."""
    data = Path(path).read_bytes()
    title = name if name is not None else Path(path).stem
    if data.startswith(b"aag"):
        return _parse_ascii(data.decode("ascii").splitlines(), title)
    if data.startswith(b"aig"):
        return _parse_binary(data, title)
    raise ValueError(f"{path}: not an AIGER file (header {data[:3]!r})")


def _parse_header(line: str) -> tuple[int, int, int, int, int]:
    parts = line.split()
    if len(parts) != 6 or parts[0] not in ("aag", "aig"):
        raise ValueError(f"malformed AIGER header: {line!r}")
    try:
        max_var, num_in, num_latch, num_out, num_and = (
            int(p) for p in parts[1:]
        )
    except ValueError:
        raise ValueError(f"non-numeric AIGER header field: {line!r}") from None
    if min(max_var, num_in, num_latch, num_out, num_and) < 0:
        raise ValueError(f"negative count in AIGER header: {line!r}")
    if num_latch:
        raise ValueError("sequential AIGER (latches) is not supported")
    if num_in + num_and > max_var:
        raise ValueError(
            f"AIGER header claims {num_in} inputs + {num_and} ANDs "
            f"but only {max_var} variables: {line!r}"
        )
    return max_var, num_in, num_latch, num_out, num_and


def _apply_symbols(aig: AIG, lines: list[str], input_map: dict[int, int]) -> None:
    names_in = dict(enumerate(aig.input_names))
    names_out = dict(enumerate(aig.output_names))
    for line in lines:
        if line.startswith("c"):
            break
        if not line or line[0] not in "io":
            continue
        kind = line[0]
        head, _, symbol = line[1:].partition(" ")
        if not head.isdigit() or not symbol:
            continue
        index = int(head)
        if kind == "i" and index in names_in:
            names_in[index] = symbol
        elif kind == "o" and index in names_out:
            names_out[index] = symbol
    aig._input_names = [names_in[k] for k in sorted(names_in)]
    aig._output_names = [names_out[k] for k in sorted(names_out)]


def _translate(lit: int, lit_map: dict[int, int]) -> int:
    var_lit = lit_map.get(lit & ~1)
    if var_lit is None:
        raise ValueError(f"literal {lit} used before definition")
    return lit_not(var_lit) if lit & 1 else var_lit


def _take_line(lines: list[str], cursor: int, what: str) -> str:
    """The next definition line, or a clear error for truncated input."""
    if cursor >= len(lines):
        raise ValueError(
            f"truncated AIGER input: expected {what} on line {cursor + 1}"
        )
    return lines[cursor]


def _take_int(line: str, what: str) -> int:
    """The line's single leading integer, validated as a literal."""
    fields = line.split()
    if not fields:
        raise ValueError(f"blank AIGER line where {what} was expected")
    try:
        value = int(fields[0])
    except ValueError:
        raise ValueError(
            f"non-numeric AIGER {what}: {fields[0]!r}"
        ) from None
    if value < 0:
        raise ValueError(f"negative AIGER {what}: {value}")
    return value


def _parse_ascii(lines: list[str], name: str) -> AIG:
    max_var, num_in, _latches, num_out, num_and = _parse_header(lines[0])
    aig = AIG(name=name)
    lit_map: dict[int, int] = {0: 0}
    cursor = 1
    for _ in range(num_in):
        file_lit = _take_int(_take_line(lines, cursor, "an input literal"),
                             "input literal")
        if file_lit < 2 or file_lit & 1:
            raise ValueError(
                f"invalid AIGER input literal {file_lit}: inputs must be "
                "positive even literals"
            )
        if file_lit in lit_map:
            raise ValueError(f"duplicate AIGER definition of literal {file_lit}")
        lit_map[file_lit] = aig.add_input()
        cursor += 1
    output_lits = []
    for _ in range(num_out):
        output_lits.append(
            _take_int(_take_line(lines, cursor, "an output literal"),
                      "output literal")
        )
        cursor += 1
    for _ in range(num_and):
        fields = _take_line(lines, cursor, "an AND definition").split()
        if len(fields) != 3:
            raise ValueError(
                f"malformed AIGER AND line (need 'lhs rhs0 rhs1'): "
                f"{lines[cursor]!r}"
            )
        try:
            lhs, rhs0, rhs1 = (int(p) for p in fields)
        except ValueError:
            raise ValueError(
                f"non-numeric AIGER AND line: {lines[cursor]!r}"
            ) from None
        cursor += 1
        if lhs < 2 or lhs & 1:
            raise ValueError(
                f"invalid AIGER AND literal {lhs}: definitions must be "
                "positive even literals"
            )
        if min(rhs0, rhs1) < 0:
            raise ValueError(f"negative fan-in literal in AND {lhs}")
        if lhs in lit_map:
            raise ValueError(f"duplicate AIGER definition of literal {lhs}")
        lit_map[lhs] = aig.add_and(
            _translate(rhs0, lit_map), _translate(rhs1, lit_map)
        )
    for lit in output_lits:
        aig.add_output(_translate(lit, lit_map))
    _apply_symbols(aig, lines[cursor:], lit_map)
    return aig


def _parse_binary(data: bytes, name: str) -> AIG:
    stream = io.BytesIO(data)
    header = b""
    while not header.endswith(b"\n"):
        byte = stream.read(1)
        if not byte:
            raise ValueError("truncated binary AIGER header")
        header += byte
    max_var, num_in, _latches, num_out, num_and = _parse_header(header.decode("ascii"))

    aig = AIG(name=name)
    lit_map: dict[int, int] = {0: 0}
    for index in range(num_in):
        # Binary AIGER fixes input literals to 2, 4, ..., 2 * num_in.
        lit_map[2 * (index + 1)] = aig.add_input()

    output_lits = []
    for _ in range(num_out):
        line = b""
        while not line.endswith(b"\n"):
            byte = stream.read(1)
            if not byte:  # EOF mid-line: would loop forever otherwise
                raise ValueError("truncated binary AIGER file")
            line += byte
        try:
            output_lits.append(int(line.strip()))
        except ValueError:
            raise ValueError(
                f"non-numeric binary AIGER output literal: {line!r}"
            ) from None

    for index in range(num_and):
        lhs = 2 * (num_in + index + 1)
        delta0 = _decode_varint(stream)
        delta1 = _decode_varint(stream)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        lit_map[lhs] = aig.add_and(
            _translate(rhs0, lit_map), _translate(rhs1, lit_map)
        )
    for lit in output_lits:
        aig.add_output(_translate(lit, lit_map))
    rest = stream.read().decode("ascii", errors="replace").splitlines()
    _apply_symbols(aig, rest, lit_map)
    return aig
