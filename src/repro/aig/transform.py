"""Structural AIG transformations: cleanup, cone extraction, composition.

The utility passes every AIG-based flow needs around the core reasoning:

* :func:`cleanup` — drop logic not reachable from the outputs (dangling
  nodes accumulate during experiments that rebuild or corrupt netlists);
* :func:`extract_cone` — a standalone AIG computing selected outputs;
* :func:`compose` — parallel composition over shared inputs;
* :func:`miter` — the XOR-OR equivalence miter used by CEC flows
  (:mod:`repro.verify.cec` proves the miter constant-0 with BDDs).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.aig.graph import AIG, CONST0, lit_neg, lit_not, lit_var, make_lit

__all__ = ["cleanup", "extract_cone", "compose", "miter", "relabel_copy"]


def _copy_cone(source: AIG, target: AIG, roots: Sequence[int],
               input_map: dict[int, int]) -> dict[int, int]:
    """Copy the cones of ``roots`` (literals) into ``target``.

    ``input_map`` maps source PI variables to target literals.  Returns a
    var->literal map for every copied variable.  Nodes are visited in
    topological (variable) order, so hashing in ``target`` re-canonicalizes
    the copied logic.
    """
    needed = source.transitive_fanin([lit_var(lit) for lit in roots])
    mapping: dict[int, int] = {0: CONST0}
    for var in sorted(needed):
        if source.is_input(var):
            if var not in input_map:
                raise ValueError(f"no mapping for source input variable {var}")
            mapping[var] = input_map[var]
    for var in sorted(needed):
        if not source.is_and(var):
            continue
        f0, f1 = source.fanins(var)
        lit0 = mapping[lit_var(f0)] ^ lit_neg(f0)
        lit1 = mapping[lit_var(f1)] ^ lit_neg(f1)
        mapping[var] = target.add_and(lit0, lit1)
    return mapping


def cleanup(aig: AIG) -> AIG:
    """Rebuild without logic unreachable from the primary outputs.

    Keeps the full PI interface (dangling inputs stay, as tools expect),
    renumbering AND nodes compactly.
    """
    fresh = AIG(name=aig.name)
    input_map = {
        var: fresh.add_input(name)
        for var, name in zip(aig.input_vars(), aig.input_names)
    }
    mapping = _copy_cone(aig, fresh, aig.outputs, input_map)
    for lit, name in zip(aig.outputs, aig.output_names):
        fresh.add_output(mapping[lit_var(lit)] ^ lit_neg(lit), name)
    return fresh


def extract_cone(aig: AIG, output_indices: Sequence[int],
                 name: str | None = None) -> AIG:
    """Standalone AIG computing the selected outputs.

    Only PIs in the cone's support are kept (a *cone* is usually much
    narrower than the parent interface); their order follows the parent.
    """
    roots = [aig.outputs[i] for i in output_indices]
    support_vars = sorted(
        var for var in aig.transitive_fanin([lit_var(r) for r in roots])
        if aig.is_input(var)
    )
    cone = AIG(name=name or f"{aig.name}_cone")
    input_map = {
        var: cone.add_input(aig.input_names[var - 1]) for var in support_vars
    }
    mapping = _copy_cone(aig, cone, roots, input_map)
    for index in output_indices:
        lit = aig.outputs[index]
        cone.add_output(mapping[lit_var(lit)] ^ lit_neg(lit),
                        aig.output_names[index])
    return cone


def relabel_copy(aig: AIG, name: str | None = None) -> AIG:
    """A strash-canonicalized copy (useful to normalize read-in netlists)."""
    return cleanup(aig) if name is None else _renamed(cleanup(aig), name)


def _renamed(aig: AIG, name: str) -> AIG:
    aig.name = name
    return aig


def compose(left: AIG, right: AIG, name: str | None = None) -> AIG:
    """Parallel composition over a shared input interface.

    Both networks must have the same input count; the result exposes
    ``left``'s outputs followed by ``right``'s.
    """
    if left.num_inputs != right.num_inputs:
        raise ValueError(
            f"input counts differ: {left.num_inputs} vs {right.num_inputs}"
        )
    merged = AIG(name=name or f"{left.name}+{right.name}")
    inputs = [merged.add_input(n) for n in left.input_names]
    for source, prefix in ((left, "l"), (right, "r")):
        input_map = dict(zip(source.input_vars(), inputs))
        mapping = _copy_cone(source, merged, source.outputs, input_map)
        for lit, out_name in zip(source.outputs, source.output_names):
            merged.add_output(mapping[lit_var(lit)] ^ lit_neg(lit),
                              f"{prefix}_{out_name}")
    return merged


def miter(left: AIG, right: AIG, name: str | None = None) -> AIG:
    """Equivalence miter: one output = OR of pairwise output XORs.

    The networks are equivalent iff the miter output is constant 0 — the
    standard reduction used by combinational equivalence checking.
    """
    if left.num_inputs != right.num_inputs:
        raise ValueError("miter requires identical input counts")
    if left.num_outputs != right.num_outputs:
        raise ValueError("miter requires identical output counts")
    combined = AIG(name=name or f"miter({left.name},{right.name})")
    inputs = [combined.add_input(n) for n in left.input_names]
    mappings = []
    for source in (left, right):
        input_map = dict(zip(source.input_vars(), inputs))
        mappings.append(_copy_cone(source, combined, source.outputs, input_map))
    differences = []
    for l_lit, r_lit in zip(left.outputs, right.outputs):
        l_copy = mappings[0][lit_var(l_lit)] ^ lit_neg(l_lit)
        r_copy = mappings[1][lit_var(r_lit)] ^ lit_neg(r_lit)
        differences.append(combined.add_xor(l_copy, r_copy))
    combined.add_output(combined.add_or_multi(differences), "diff")
    return combined
