"""Truth-table manipulation for small (≤6-input) Boolean functions.

Truth tables are plain Python integers: bit ``m`` of the integer is the
function value on minterm ``m`` (input ``i`` contributes bit ``i`` of ``m``).
This exact-integer representation keeps cut-function computation allocation
free and hashable, which the cut enumerator and the NPN matcher rely on.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "MAX_TRUTH_VARS",
    "truth_mask",
    "var_truth",
    "truth_complement",
    "expand_truth",
    "truth_to_string",
    "truth_from_function",
    "cofactors",
    "truth_support",
]

MAX_TRUTH_VARS = 6


def truth_mask(num_vars: int) -> int:
    """All-ones mask for a ``num_vars``-input truth table."""
    return (1 << (1 << num_vars)) - 1


@lru_cache(maxsize=None)
def var_truth(index: int, num_vars: int) -> int:
    """Truth table of the projection function ``x_index`` among ``num_vars``."""
    if not 0 <= index < num_vars:
        raise ValueError(f"variable index {index} out of range for {num_vars} vars")
    table = 0
    for minterm in range(1 << num_vars):
        if minterm & (1 << index):
            table |= 1 << minterm
    return table


def truth_complement(table: int, num_vars: int) -> int:
    """Complement within the ``num_vars``-input domain."""
    return ~table & truth_mask(num_vars)


@lru_cache(maxsize=1 << 18)
def expand_truth(table: int, positions: tuple[int, ...], num_vars: int) -> int:
    """Re-express ``table`` on a larger variable set.

    ``table`` is a function of ``len(positions)`` variables; variable ``i`` of
    the source becomes variable ``positions[i]`` of the ``num_vars``-variable
    target.  Heavily memoized: cut merging re-expands the same handful of
    XOR/MAJ/AND shapes millions of times on multiplier netlists.
    """
    if len(positions) == num_vars and positions == tuple(range(num_vars)):
        return table
    out = 0
    for minterm in range(1 << num_vars):
        src = 0
        for i, pos in enumerate(positions):
            if minterm & (1 << pos):
                src |= 1 << i
        if table & (1 << src):
            out |= 1 << minterm
    return out


def truth_to_string(table: int, num_vars: int) -> str:
    """Hex rendering padded to the domain size, e.g. ``0x96`` for XOR3."""
    digits = max(1, (1 << num_vars) // 4)
    return f"0x{table:0{digits}x}"


def truth_from_function(func, num_vars: int) -> int:
    """Build a truth table from a Python predicate over input bit-tuples.

    >>> truth_from_function(lambda a, b: a ^ b, 2)
    6
    """
    table = 0
    for minterm in range(1 << num_vars):
        bits = tuple((minterm >> i) & 1 for i in range(num_vars))
        if func(*bits):
            table |= 1 << minterm
    return table


def cofactors(table: int, index: int, num_vars: int) -> tuple[int, int]:
    """Negative and positive cofactors with respect to variable ``index``.

    Both cofactors are returned as functions of the same ``num_vars``
    variables (the cofactored variable becomes don't-care).
    """
    mask_pos = var_truth(index, num_vars)
    mask_neg = truth_complement(mask_pos, num_vars)
    shift = 1 << index
    neg = table & mask_neg
    neg |= neg << shift
    pos = table & mask_pos
    pos |= pos >> shift
    return neg & truth_mask(num_vars), pos & truth_mask(num_vars)


def truth_support(table: int, num_vars: int) -> tuple[int, ...]:
    """Indices of variables the function actually depends on."""
    support = []
    for index in range(num_vars):
        neg, pos = cofactors(table, index, num_vars)
        if neg != pos:
            support.append(index)
    return tuple(support)
