"""And-Inverter Graph (AIG) core data structure.

An AIG is the uniform Boolean-network representation used throughout the
paper: every internal node is a two-input AND gate and edges may be
complemented (inverters).  We follow the AIGER literal convention:

* a *variable* is an integer index; variable ``0`` is the constant FALSE;
* a *literal* is ``2 * var + neg`` where ``neg`` is 1 when the edge is
  complemented, so literal ``0`` is constant false and literal ``1`` constant
  true;
* primary inputs occupy variables ``1 .. num_inputs`` and AND nodes follow,
  which makes the variable order a topological order by construction.

The class performs constant folding and structural hashing (*strash*) on the
fly, mirroring ABC's ``strash``: an AND over the same (normalized) literal
pair is created only once, and trivial ANDs fold to existing literals.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.kernels.registry import LEVELS_SCALAR_CUTOFF, get_kernel

__all__ = [
    "AIG",
    "lit_var",
    "lit_neg",
    "lit_not",
    "make_lit",
    "CONST0",
    "CONST1",
]

CONST0 = 0  # literal: constant false
CONST1 = 1  # literal: constant true


def make_lit(var: int, neg: bool | int = 0) -> int:
    """Build a literal from a variable index and a complement flag."""
    return 2 * var + int(bool(neg))


def lit_var(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1


def lit_neg(lit: int) -> int:
    """1 if the literal is complemented, else 0."""
    return lit & 1


def lit_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


class AIG:
    """A combinational And-Inverter Graph with structural hashing.

    Typical construction::

        aig = AIG(name="toy")
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output(aig.add_xor(a, b), "y")

    Variables are topologically ordered (fan-ins of a node always have
    smaller variable indices), so iterating ``aig.and_vars()`` visits nodes
    in a valid evaluation order.
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        # Parallel arrays indexed by variable; entry 0 is the constant node.
        # For PIs and the constant, fan-in literals are stored as -1.
        self._fanin0: list[int] = [-1]
        self._fanin1: list[int] = [-1]
        self._num_inputs = 0
        self._input_names: list[str] = []
        self._outputs: list[int] = []  # literals
        self._output_names: list[str] = []
        self._strash: dict[tuple[int, int], int] = {}
        self._levels: list[int] | None = None  # lazy cache
        self._levels_arr = None  # lazy np.int64 twin of _levels
        self._fanin_arrays = None  # lazy np.int64 twins of _fanin0/_fanin1
        self._pair_groups = None  # lazy fan-in pair index (array form)
        self._pair_index: dict | None = None  # lazy fan-in pair index (dict)
        self._shash: tuple[tuple[int, int], str] | None = None  # lazy cache

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str | None = None) -> int:
        """Create a primary input and return its (positive) literal.

        Inputs must be created before any AND node so that variables stay
        topologically ordered in the AIGER convention.
        """
        if self.num_ands:
            raise ValueError("all primary inputs must be created before AND nodes")
        self._num_inputs += 1
        var = len(self._fanin0)
        self._fanin0.append(-1)
        self._fanin1.append(-1)
        self._input_names.append(name if name is not None else f"i{self._num_inputs - 1}")
        self._invalidate_structure_caches()
        return make_lit(var)

    def _invalidate_structure_caches(self) -> None:
        """Drop every derived-structure cache after a node is appended."""
        self._levels = None
        self._levels_arr = None
        self._fanin_arrays = None
        self._pair_groups = None
        self._pair_index = None

    def add_inputs(self, count: int, prefix: str = "i") -> list[int]:
        """Create ``count`` primary inputs named ``prefix0 .. prefix{count-1}``."""
        return [self.add_input(f"{prefix}{k}") for k in range(count)]

    def add_and(self, a: int, b: int) -> int:
        """AND of two literals with constant folding and structural hashing."""
        self._check_lit(a)
        self._check_lit(b)
        # Constant folding.
        if a == CONST0 or b == CONST0 or a == lit_not(b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1 or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return make_lit(existing)
        var = len(self._fanin0)
        self._fanin0.append(a)
        self._fanin1.append(b)
        self._strash[key] = var
        self._invalidate_structure_caches()
        return make_lit(var)

    def add_output(self, lit: int, name: str | None = None) -> None:
        """Register a primary output driven by ``lit``."""
        self._check_lit(lit)
        self._outputs.append(lit)
        self._output_names.append(name if name is not None else f"o{len(self._outputs) - 1}")

    # Derived gates -----------------------------------------------------
    def add_not(self, a: int) -> int:
        """Inversion is free in an AIG: just complement the literal."""
        return lit_not(a)

    def add_or(self, a: int, b: int) -> int:
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_nand(self, a: int, b: int) -> int:
        return lit_not(self.add_and(a, b))

    def add_nor(self, a: int, b: int) -> int:
        return self.add_and(lit_not(a), lit_not(b))

    def add_xor(self, a: int, b: int) -> int:
        """XOR via the standard 3-AND decomposition ``(a·¬b) + (¬a·b)``."""
        return self.add_or(self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b))

    def add_xnor(self, a: int, b: int) -> int:
        return lit_not(self.add_xor(a, b))

    def add_mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """``sel ? then_lit : else_lit``."""
        return self.add_or(self.add_and(sel, then_lit), self.add_and(lit_not(sel), else_lit))

    def add_maj3(self, a: int, b: int, c: int) -> int:
        """Majority-of-three as ``a·b + c·(a+b)`` (the carry-out form)."""
        return self.add_or(self.add_and(a, b), self.add_and(c, self.add_or(a, b)))

    def add_and_multi(self, lits: Iterable[int]) -> int:
        """Balanced AND over arbitrarily many literals."""
        items = list(lits)
        if not items:
            return CONST1
        while len(items) > 1:
            items = [
                self.add_and(items[k], items[k + 1]) if k + 1 < len(items) else items[k]
                for k in range(0, len(items), 2)
            ]
        return items[0]

    def add_or_multi(self, lits: Iterable[int]) -> int:
        """Balanced OR over arbitrarily many literals."""
        return lit_not(self.add_and_multi(lit_not(x) for x in lits))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables including the constant node."""
        return len(self._fanin0)

    @property
    def num_inputs(self) -> int:
        return self._num_inputs

    @property
    def num_ands(self) -> int:
        return len(self._fanin0) - 1 - self._num_inputs

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_edges(self) -> int:
        """Number of AND fan-in edges (two per AND node)."""
        return 2 * self.num_ands

    @property
    def outputs(self) -> list[int]:
        """Output literals, in declaration order."""
        return list(self._outputs)

    @property
    def output_names(self) -> list[str]:
        return list(self._output_names)

    @property
    def input_names(self) -> list[str]:
        return list(self._input_names)

    def input_vars(self) -> range:
        """Variable indices of the primary inputs."""
        return range(1, 1 + self._num_inputs)

    def input_lit(self, index: int) -> int:
        """Literal of the ``index``-th primary input."""
        if not 0 <= index < self._num_inputs:
            raise IndexError(f"input index {index} out of range")
        return make_lit(1 + index)

    def and_vars(self) -> range:
        """Variable indices of AND nodes, in topological order."""
        return range(1 + self._num_inputs, self.num_vars)

    def is_const(self, var: int) -> bool:
        return var == 0

    def is_input(self, var: int) -> bool:
        return 1 <= var <= self._num_inputs

    def is_and(self, var: int) -> bool:
        return var > self._num_inputs and var < self.num_vars

    def fanin0(self, var: int) -> int:
        """First fan-in literal of an AND variable."""
        if not self.is_and(var):
            raise ValueError(f"variable {var} is not an AND node")
        return self._fanin0[var]

    def fanin1(self, var: int) -> int:
        """Second fan-in literal of an AND variable."""
        if not self.is_and(var):
            raise ValueError(f"variable {var} is not an AND node")
        return self._fanin1[var]

    def fanins(self, var: int) -> tuple[int, int]:
        """Both fan-in literals of an AND variable."""
        return self.fanin0(var), self.fanin1(var)

    def find_and(self, a: int, b: int) -> int | None:
        """Return the existing AND literal over ``(a, b)`` or None.

        Performs the same normalization as :meth:`add_and` but never creates
        a node; used by the reasoning code to locate half-adder carries.
        """
        if a > b:
            a, b = b, a
        var = self._strash.get((a, b))
        return None if var is None else make_lit(var)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    # Below this many AND nodes the per-node Python recurrence beats the
    # wavefront sweep's per-round kernel call overhead (a few µs per level).
    # The tunable constant lives in the kernel registry (one knob for the
    # whole repo); this stays a class attribute so tests can monkeypatch it.
    _LEVELS_VECTOR_MIN = LEVELS_SCALAR_CUTOFF

    def levels_array(self) -> "object":
        """Topological level of every variable as a cached int64 array.

        PIs and the constant are level 0.  Computed by the registered
        ``kahn_propagate`` kernel (:mod:`repro.kernels`): a longest-path
        wavefront over the AND→AND CSR fan-out index, with every AND
        seeded at level 1 so primary-input fan-ins contribute without
        appearing as graph nodes — O(|V| + |E|) work, replacing the old
        per-node Python recurrence on large graphs.  Small graphs (fewer
        than ``_LEVELS_VECTOR_MIN`` ANDs) keep the scalar loop, which has
        lower constant overhead there.
        """
        import numpy as np

        if self._levels_arr is not None:
            return self._levels_arr
        num = self.num_vars
        first = 1 + self._num_inputs
        n_ands = num - first
        if n_ands < self._LEVELS_VECTOR_MIN:
            lev = [0] * num
            fanin0, fanin1 = self._fanin0, self._fanin1
            for var in range(first, num):
                lev[var] = 1 + max(lev[fanin0[var] >> 1], lev[fanin1[var] >> 1])
            self._levels = lev
            self._levels_arr = np.asarray(lev, dtype=np.int64)
            return self._levels_arr
        f0v = np.asarray(self._fanin0[first:], dtype=np.int64) >> 1
        f1v = np.asarray(self._fanin1[first:], dtype=np.int64) >> 1
        # Number of *AND* fan-ins per AND node (0-based): the Kahn indegree.
        indegree = (f0v >= first).astype(np.int64) + (f1v >= first)
        # CSR index: AND producer -> the AND nodes that read it.
        src = np.concatenate([f0v, f1v]) - first
        dst = np.concatenate([np.arange(n_ands), np.arange(n_ands)])
        keep = src >= 0
        src, dst = src[keep], dst[keep]
        order = np.argsort(src, kind="stable")
        src_sorted, dst_sorted = src[order], dst[order]
        bounds = np.searchsorted(src_sorted, np.arange(n_ands + 1))
        values = np.ones(n_ands, dtype=np.int64)
        get_kernel("kahn_propagate")(bounds, dst_sorted, indegree, values)
        lev = np.zeros(num, dtype=np.int64)
        lev[first:] = values
        self._levels_arr = lev
        return lev

    def levels(self) -> list[int]:
        """Topological level of every variable (PIs and constant are 0)."""
        if self._levels is None:
            self._levels = self.levels_array().tolist()
        return self._levels

    def depth(self) -> int:
        """Maximum level over the output cones (0 for constant outputs)."""
        if not self._outputs:
            return 0
        lev = self.levels()
        return max(lev[lit_var(o)] for o in self._outputs)

    def fanout_counts(self) -> list[int]:
        """Number of AND fan-outs per variable (output edges not counted)."""
        import numpy as np

        if self.num_ands == 0:
            return [0] * self.num_vars
        first = 1 + self._num_inputs
        readers = np.concatenate([
            np.asarray(self._fanin0[first:], dtype=np.int64) >> 1,
            np.asarray(self._fanin1[first:], dtype=np.int64) >> 1,
        ])
        return np.bincount(readers, minlength=self.num_vars).tolist()

    def and_pair_groups(self) -> tuple["object", "object", "object"]:
        """AND nodes grouped by their (unordered) fan-in variable pair.

        Returns ``(keys, starts, members)``: ``keys`` is a sorted int64
        array of packed pair keys ``lo * num_vars + hi`` (``lo < hi``;
        same-variable pairs are skipped), ``members`` holds the AND
        variables grouped by key — ascending within each group — and
        ``starts`` has ``len(keys) + 1`` offsets so group ``g`` is
        ``members[starts[g]:starts[g + 1]]``.  This is the array form of
        the half-adder carry pool; it is cached and invalidated whenever a
        node is appended, so batch callers pay the build once per graph.
        """
        import numpy as np

        if self._pair_groups is not None:
            return self._pair_groups
        first = 1 + self._num_inputs
        if self.num_ands == 0:
            empty = np.zeros(0, dtype=np.int64)
            self._pair_groups = (empty, np.zeros(1, dtype=np.int64), empty)
            return self._pair_groups
        f0v = np.asarray(self._fanin0[first:], dtype=np.int64) >> 1
        f1v = np.asarray(self._fanin1[first:], dtype=np.int64) >> 1
        lo = np.minimum(f0v, f1v)
        hi = np.maximum(f0v, f1v)
        keep = lo != hi
        members = np.arange(first, self.num_vars, dtype=np.int64)[keep]
        key = lo[keep] * np.int64(self.num_vars) + hi[keep]
        order = np.argsort(key, kind="stable")  # stable: members stay ascending
        sorted_key, members = key[order], members[order]
        if len(sorted_key):
            group_first = np.r_[True, sorted_key[1:] != sorted_key[:-1]]
            keys = sorted_key[group_first]
            starts = np.r_[np.flatnonzero(group_first), len(sorted_key)]
        else:
            keys = sorted_key
            starts = np.zeros(1, dtype=np.int64)
        self._pair_groups = (keys, starts.astype(np.int64), members)
        return self._pair_groups

    def and_pair_index(self) -> dict[tuple[int, int], list[int]]:
        """Dict view of :meth:`and_pair_groups`: ``(lo, hi) -> [and vars]``.

        Candidate lists are ascending.  The mapping is cached on the graph
        (rebuilt after any node append) and shared between callers — treat
        it as read-only.
        """
        if self._pair_index is not None:
            return self._pair_index
        keys, starts, members = self.and_pair_groups()
        num = self.num_vars
        member_list = members.tolist()
        start_list = starts.tolist()
        index: dict[tuple[int, int], list[int]] = {}
        for g, key in enumerate(keys.tolist()):
            index[(key // num, key % num)] = member_list[
                start_list[g]:start_list[g + 1]
            ]
        self._pair_index = index
        return index

    def fanouts(self) -> list[list[int]]:
        """Adjacency list: for each variable, the AND variables that read it."""
        outs: list[list[int]] = [[] for _ in range(self.num_vars)]
        for var in self.and_vars():
            outs[self._fanin0[var] >> 1].append(var)
            outs[self._fanin1[var] >> 1].append(var)
        return outs

    def transitive_fanin(self, roots: Iterable[int]) -> set[int]:
        """Set of variables in the transitive fan-in cone of ``roots`` (vars)."""
        seen: set[int] = set()
        stack = [v for v in roots]
        while stack:
            var = stack.pop()
            if var in seen:
                continue
            seen.add(var)
            if self.is_and(var):
                stack.append(self._fanin0[var] >> 1)
                stack.append(self._fanin1[var] >> 1)
        return seen

    def transitive_fanin_array(self, roots: Iterable[int]) -> "object":
        """:meth:`transitive_fanin` as a sorted int64 variable array.

        A reverse-reachability wavefront over :meth:`fanin_arrays`: each
        round gathers both fan-in variables of every AND in the frontier
        in one vectorized step and keeps only the never-seen ones, so the
        Python-level iteration count is the cone depth, not its size.
        Same membership as the set-based walk (roots included, PIs and
        the constant included where reached).
        """
        import numpy as np

        seen = np.zeros(self.num_vars, dtype=bool)
        frontier = np.fromiter(roots, dtype=np.int64)
        fanin0, fanin1 = self.fanin_arrays()
        first_and = 1 + self._num_inputs
        while frontier.size:
            seen[frontier] = True
            ands = frontier[frontier >= first_and]
            if not ands.size:
                break
            reached = np.concatenate([fanin0[ands] >> 1, fanin1[ands] >> 1])
            frontier = np.unique(reached[~seen[reached]])
        return np.flatnonzero(seen)

    def iter_ands(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(var, fanin0_lit, fanin1_lit)`` for every AND node."""
        for var in self.and_vars():
            yield var, self._fanin0[var], self._fanin1[var]

    def and_level_batches(self) -> Iterator["object"]:
        """Yield AND variables grouped by topological level, as int64 arrays.

        Levels come in ascending order and variables keep their index order
        within a level.  This is the wavefront every vectorized bottom-up
        sweep iterates (cut enumeration, structural hashing): a level's
        nodes depend only on values already computed for earlier batches.
        """
        import numpy as np

        if self.num_ands == 0:
            return
        level = self.levels_array()
        and_vars = np.arange(1 + self._num_inputs, self.num_vars,
                             dtype=np.int64)
        order = np.argsort(level[and_vars], kind="stable")
        ordered = and_vars[order]
        ordered_level = level[ordered]
        starts = np.flatnonzero(
            np.r_[True, ordered_level[1:] != ordered_level[:-1]]
        )
        for begin, end in zip(starts, np.append(starts[1:], len(ordered))):
            yield ordered[begin:end]

    def fanin_arrays(self) -> tuple["object", "object"]:
        """Fan-in literals as two NumPy int64 arrays of length ``num_vars``.

        Entries for the constant node and PIs are ``-1``.  Used by the
        vectorized simulator, the feature encoder, and the pairing engine.
        Cached (the list→array conversion is a measurable per-call cost on
        big graphs); treat the returned arrays as read-only.
        """
        import numpy as np

        if self._fanin_arrays is None:
            self._fanin_arrays = (
                np.asarray(self._fanin0, dtype=np.int64),
                np.asarray(self._fanin1, dtype=np.int64),
            )
        return self._fanin_arrays

    def structural_hash(self) -> str:
        """128-bit hex digest of the circuit *structure* (not node ids).

        The hash is computed bottom-up: every node's 64-bit mixing value is
        derived only from its fan-ins' values (with complement bits folded
        in, commutatively combined) and one final ``hashlib.blake2b`` folds
        in a version tag, the input count, and every output value in
        declaration order.  The per-node step is level-batched NumPy
        (splitmix64-style avalanche over whole topological levels at once)
        instead of a per-node ``blake2b`` loop, which is what keeps it
        usable at millions of nodes.  Consequences:

        * it is deterministic across processes, runs and platforms (fixed
          mixing constants, little-endian byte fold, no salting), so it can
          key persistent or cross-process caches; the digest carries a
          version-tagged prefix (``aig-shash-v2``) — bump it whenever the
          mixing scheme changes so stale persistent entries can never be
          mistaken for current ones;
        * it is invariant under AND-node id permutation: two AIGs built from
          equivalent construction orders hash identically even though their
          variable numbering differs;
        * it is sensitive to anything that changes the computed function's
          wiring — input count/order, output order, output polarity, and
          gate structure all change the digest.

        Names (``self.name``, port symbols) are deliberately excluded: the
        hash identifies structure, which is what reasoning results depend
        on.  Because an :class:`AIG` is append-only, the digest is memoized
        on ``(num_vars, num_outputs)``.  Used by
        :mod:`repro.serve` to key the encoded-graph and reasoning-result
        LRU caches.
        """
        import hashlib

        import numpy as np

        key = (self.num_vars, self.num_outputs)
        if self._shash is not None and self._shash[0] == key:
            return self._shash[1]

        def mix(x: "np.ndarray") -> "np.ndarray":
            # splitmix64 finalizer: full-avalanche 64-bit mixing, wraps on
            # overflow (uint64 arithmetic), endian-independent.
            z = x + np.uint64(0x9E3779B97F4A7C15)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            return z ^ (z >> np.uint64(31))

        flip = np.uint64(0xA5A5A5A5A5A5A5A5)  # complement-edge marker
        node = np.zeros(self.num_vars, dtype=np.uint64)
        # 1-element array: uint64 *scalar* overflow would warn, arrays wrap.
        node[0] = mix(np.array([0x636F6E737430], dtype=np.uint64))[0]  # "const0"
        if self._num_inputs:
            node[1:1 + self._num_inputs] = mix(
                np.uint64(0x7069) + np.arange(self._num_inputs, dtype=np.uint64)
            )
        if self.num_ands:
            fanin0 = np.asarray(self._fanin0, dtype=np.int64)
            fanin1 = np.asarray(self._fanin1, dtype=np.int64)
            for batch in self.and_level_batches():
                f0 = fanin0[batch]
                f1 = fanin1[batch]
                a = node[f0 >> 1] ^ (f0 & 1).astype(np.uint64) * flip
                b = node[f1 >> 1] ^ (f1 & 1).astype(np.uint64) * flip
                node[batch] = mix(mix(np.maximum(a, b)) ^ np.minimum(a, b))
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            b"aig-shash-v2:%d:%d:" % (self._num_inputs, len(self._outputs))
        )
        if self._outputs:
            out = np.asarray(self._outputs, dtype=np.int64)
            out_mix = node[out >> 1] ^ (out & 1).astype(np.uint64) * flip
            digest.update(out_mix.astype("<u8").tobytes())
        result = digest.hexdigest()
        self._shash = (key, result)
        return result

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_lit(self, lit: int) -> None:
        if lit < 0 or (lit >> 1) >= self.num_vars:
            raise ValueError(f"literal {lit} references an unknown variable")

    def stats(self) -> dict[str, int]:
        """Summary statistics (the |V|/|E| annotations of Fig. 7)."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "ands": self.num_ands,
            "nodes": self.num_vars,
            "edges": self.num_edges,
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        return (
            f"AIG(name={self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, ands={self.num_ands})"
        )
