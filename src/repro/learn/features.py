"""Node feature encoding (paper Sec. III-B1).

Three binary features per node fuse Boolean function into the graph:

* feature 0 — node type: 0 for PI/constant, 1 for an internal AND;
* feature 1 — first fan-in edge complemented;
* feature 2 — second fan-in edge complemented.

This compressed encoding lets AIGs stay homogeneous graphs (no edge
features) and is the paper's key to memory efficiency at scale.  The
``"structural"`` mode keeps only feature 0 — the ablation of Fig. 4 that
drops functional information.
"""

from __future__ import annotations

import numpy as np

from repro.aig.graph import AIG

__all__ = ["FEATURE_MODES", "encode_features", "num_features"]

FEATURE_MODES = ("full", "structural")


def num_features(mode: str = "full") -> int:
    """Feature dimensionality for a mode."""
    if mode == "full":
        return 3
    if mode == "structural":
        return 1
    raise ValueError(f"unknown feature mode {mode!r}; expected one of {FEATURE_MODES}")


def encode_features(aig: AIG, mode: str = "full") -> np.ndarray:
    """Encode per-variable features as a float array ``(num_vars, F)``.

    Row 0 is the constant node (all zeros, PI-like); PIs get ``[0, 0, 0]``;
    an AND with both fan-ins complemented gets ``[1, 1, 1]`` — exactly the
    examples given for the paper's Fig. 3(b).
    """
    width = num_features(mode)
    features = np.zeros((aig.num_vars, width), dtype=np.float64)
    fanin0, fanin1 = aig.fanin_arrays()
    and_slice = np.array(list(aig.and_vars()), dtype=np.int64)
    if and_slice.size:
        features[and_slice, 0] = 1.0
        if mode == "full":
            features[and_slice, 1] = (fanin0[and_slice] & 1).astype(np.float64)
            features[and_slice, 2] = (fanin1[and_slice] & 1).astype(np.float64)
    return features
