"""Batched inference and the analytic memory model (Figs. 7 and 8).

``timed_inference`` measures the GNN-side runtime that Fig. 7 compares
against exact reasoning; ``batched_inference`` reproduces Fig. 8's batching
sweep; ``estimate_inference_memory`` is the documented activation-size
model standing in for the paper's A100 memory measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learn.data import GraphData, batch_graphs, unbatch_predictions
from repro.learn.fast import FastInference, compile_inference
from repro.learn.model import GamoraNet
from repro.utils.timing import Timer

__all__ = [
    "InferenceResult",
    "timed_inference",
    "batched_inference",
    "estimate_inference_memory",
    "estimate_batch_memory",
    "estimate_window_memory",
    "estimate_training_memory",
    "A100_MEMORY_BYTES",
]

A100_MEMORY_BYTES = 40 * 1024 ** 3  # the paper's single-GPU budget line


@dataclass
class InferenceResult:
    """Predictions plus the wall-clock seconds they took."""

    predictions: dict[str, np.ndarray]
    seconds: float
    num_nodes: int
    num_edges: int


def timed_inference(model: GamoraNet | FastInference,
                    data: GraphData) -> InferenceResult:
    """One full-graph forward pass, timed.

    A :class:`GamoraNet` is compiled to the float32 deployment kernel
    first (compilation excluded from the timing, like moving a model to
    the GPU is in the paper's measurements); pass a pre-compiled
    :class:`FastInference` to skip recompilation across calls.
    """
    kernel = model if isinstance(model, FastInference) else compile_inference(model)
    with Timer() as timer:
        predictions = kernel.predict(data.features, data.adjacency)
    return InferenceResult(predictions, timer.elapsed, data.num_nodes, data.num_edges)


def batched_inference(model: GamoraNet | FastInference, graphs: list[GraphData],
                      batch_size: int = 1,
                      split: bool = False) -> list[InferenceResult]:
    """Run inference over ``graphs`` in block-diagonal batches.

    Returns one :class:`InferenceResult` per batch; per-design runtime is
    ``result.seconds / len(batch)``, the quantity Fig. 8 plots.  Batch
    assembly (the block-diagonal merge) is preprocessing and is excluded
    from the timings, as data loading is in the paper.

    With ``split=True`` the merged predictions are fanned back out and one
    result per *design* is returned instead (batch seconds amortized evenly
    across the batch) — the shape consumers like
    :class:`repro.serve.ReasoningService` want.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    kernel = model if isinstance(model, FastInference) else compile_inference(model)
    results: list[InferenceResult] = []
    for start in range(0, len(graphs), batch_size):
        chunk = graphs[start:start + batch_size]
        merged = chunk[0] if len(chunk) == 1 else batch_graphs(chunk)
        batch_result = timed_inference(kernel, merged)
        if not split:
            results.append(batch_result)
            continue
        per_design = unbatch_predictions(
            batch_result.predictions, [g.num_nodes for g in chunk]
        )
        share = batch_result.seconds / len(chunk)
        results.extend(
            InferenceResult(predictions, share, graph.num_nodes, graph.num_edges)
            for predictions, graph in zip(per_design, chunk)
        )
    return results


def _model_spec(model: GamoraNet | FastInference):
    """Uniform layer-width/parameter view over the two model flavors.

    Returns ``(conv_widths, shared_width, heads_width, feature_dim,
    num_parameters, default_bytes_per_value)``.  The default byte width is
    what makes the estimators price the path actually being run: 8 for the
    float64 training tensors of a :class:`GamoraNet`, the snapshot dtype's
    itemsize (4 for the stock float32 kernel) for a compiled
    :class:`FastInference` — previously the serving path was priced at
    float64 and shard/window planning over-provisioned ~2x.
    """
    if isinstance(model, FastInference):
        conv_widths = model.conv_widths()
        heads_width = sum(model.head_widths().values())
        params = model.num_parameters()
        default_bpv = model.itemsize
    else:
        conv_widths = [(c.in_features, c.out_features) for c in model.convs]
        heads_width = sum(h.out_features for h in model.heads.values())
        params = model.num_parameters()
        default_bpv = 8
    feature_dim = conv_widths[0][0] if conv_widths else 1
    return (conv_widths, model.config.shared, heads_width, feature_dim,
            params, default_bpv)


def estimate_inference_memory(model: GamoraNet | FastInference,
                              num_nodes: int, num_edges: int,
                              bytes_per_value: int | None = None,
                              index_bytes: int = 8) -> int:
    """Peak-resident bytes of one inference pass (documented model).

    Counts, per SAGE layer, the live activations of the concat formulation
    (input ``N×F_in``, aggregated neighborhood ``N×F_in``, concat buffer
    ``N×2F_in``, output ``N×F_out``), the shared/head activations, the CSR
    adjacency (``nnz`` values + ``nnz`` column indices + ``N+1`` offsets),
    and the feature matrix.  This reproduces the linear-in-(batch × |V|)
    scaling of the paper's Fig. 8 memory curves; absolute numbers depend on
    ``bytes_per_value``, which defaults to the byte width of the path the
    model actually runs (8 for the float64 ``GamoraNet`` tensors, the
    snapshot itemsize — 4 — for a compiled ``FastInference`` kernel).
    """
    (conv_widths, shared_width, heads_width, feature_dim,
     num_parameters, default_bpv) = _model_spec(model)
    if bytes_per_value is None:
        bytes_per_value = default_bpv
    total = num_nodes * feature_dim * bytes_per_value  # input features
    total += num_edges * (bytes_per_value + index_bytes) + (num_nodes + 1) * index_bytes

    peak_layer = 0
    width_in = feature_dim
    for layer_in, layer_out in conv_widths:
        live = num_nodes * (
            layer_in  # layer input
            + layer_in  # aggregated neighborhood
            + 2 * layer_in  # concat buffer
            + layer_out  # layer output
        ) * bytes_per_value
        peak_layer = max(peak_layer, live)
        width_in = layer_out
    shared_live = num_nodes * (width_in + shared_width) * bytes_per_value
    head_live = num_nodes * (shared_width + 2 * heads_width) * bytes_per_value
    total += max(peak_layer, shared_live, head_live)
    # Model weights are negligible but counted for completeness.
    total += num_parameters * bytes_per_value
    return int(total)


def estimate_batch_memory(model: GamoraNet | FastInference,
                          graphs: list[GraphData],
                          bytes_per_value: int | None = None,
                          index_bytes: int = 8) -> int:
    """Estimated peak bytes of one block-diagonal pass over ``graphs``.

    The block-diagonal merge concatenates nodes and edges, so the estimate
    is :func:`estimate_inference_memory` at the summed sizes — the quantity
    the serving layer's shard planner keeps under ``max_shard_bytes``.
    """
    return estimate_inference_memory(
        model,
        sum(g.num_nodes for g in graphs),
        sum(g.num_edges for g in graphs),
        bytes_per_value=bytes_per_value,
        index_bytes=index_bytes,
    )


def estimate_window_memory(model: GamoraNet | FastInference,
                           block_sizes: list[int], block_edges: list[int],
                           bytes_per_value: int | None = None,
                           index_bytes: int = 8,
                           training: bool = False) -> int:
    """Peak-resident bytes of one streamed window (analytic model).

    The window-plan twin of :func:`estimate_inference_memory`: node counts
    come from the per-layer halo blocks (``block_sizes[j]`` feeds conv
    ``j``; the last entry is the target count) and edge counts from the
    per-layer sub-CSR slices.  Each conv's live set is its input block, the
    gathered self rows, the aggregated neighborhood, the concat buffer, the
    output rows, and the sliced adjacency; the shared/head stages run on
    the targets only.  Monotone in window size — growing a window can only
    grow every block — which is what lets
    :meth:`~repro.learn.data.GraphData.window_plan` binary-search window
    sizes against a byte budget.

    With ``training=True`` the model prices the *backward* pass instead of
    a forward-only sweep: the autodiff tape retains every layer's
    intermediates simultaneously (layers sum instead of max), backward
    materializes a same-shaped gradient for each retained activation, and
    the parameter slots (gradient + both Adam moments) ride along.  This
    is the cost the windowed trainer plans against.
    """
    (conv_widths, shared_width, heads_width, feature_dim,
     num_parameters, default_bpv) = _model_spec(model)
    if bytes_per_value is None:
        bytes_per_value = default_bpv
    if len(block_sizes) != len(conv_widths) + 1:
        raise ValueError(
            f"expected {len(conv_widths) + 1} block sizes for "
            f"{len(conv_widths)} conv layers, got {len(block_sizes)}"
        )
    if len(block_edges) != len(conv_widths):
        raise ValueError(
            f"expected {len(conv_widths)} block edge counts, "
            f"got {len(block_edges)}"
        )
    targets = block_sizes[-1]
    total = block_sizes[0] * feature_dim * bytes_per_value  # gathered features
    if training:
        # Tape cost: every intermediate of every conv layer stays live
        # until backward (gathered self rows, aggregated neighborhood,
        # concat buffer, and the matmul/bias/relu output chain), and each
        # gets a same-shaped gradient — hence the sum over layers and the
        # final doubling.  Index arrays and sub-CSR slices are also pinned
        # by the tape closures for the whole window.
        activations = 0
        for j, (layer_in, layer_out) in enumerate(conv_widths):
            rows_in, rows_out = block_sizes[j], block_sizes[j + 1]
            activations += (
                rows_out * layer_in  # gathered self rows
                + rows_out * layer_in  # aggregated neighborhood
                + 2 * rows_out * layer_in  # concat buffer
                + 3 * rows_out * layer_out  # matmul + bias + relu outputs
            ) * bytes_per_value
            total += block_edges[j] * (bytes_per_value + index_bytes)
            total += (rows_out + 1) * index_bytes  # sub-CSR offsets
            total += rows_in * index_bytes  # block index array
        # Shared trunk (matmul + bias + relu) and per-head chain (matmul +
        # bias + log-softmax output + its cached softmax), targets only.
        activations += targets * 3 * shared_width * bytes_per_value
        activations += targets * 4 * heads_width * bytes_per_value
        total += 2 * activations  # every retained activation + its gradient
        # Parameter, gradient, and the two Adam moment arrays.
        total += num_parameters * bytes_per_value * 4
        return int(total)
    peak_layer = 0
    width_in = feature_dim
    for j, (layer_in, layer_out) in enumerate(conv_widths):
        rows_in, rows_out = block_sizes[j], block_sizes[j + 1]
        live = (
            rows_in * layer_in  # input block
            + rows_out * layer_in  # gathered self rows
            + rows_out * layer_in  # aggregated neighborhood
            + 2 * rows_out * layer_in  # concat buffer
            + rows_out * layer_out  # output rows
        ) * bytes_per_value
        live += block_edges[j] * (bytes_per_value + index_bytes)
        live += (rows_out + 1) * index_bytes  # sub-CSR offsets
        live += rows_in * index_bytes  # block index array
        peak_layer = max(peak_layer, live)
        width_in = layer_out
    shared_live = targets * (width_in + shared_width) * bytes_per_value
    head_live = targets * (shared_width + 2 * heads_width) * bytes_per_value
    total += max(peak_layer, shared_live, head_live)
    total += num_parameters * bytes_per_value
    return int(total)


def estimate_training_memory(model: GamoraNet,
                             num_nodes: int, num_edges: int,
                             bytes_per_value: int | None = None,
                             index_bytes: int = 8) -> int:
    """Estimated peak bytes of one *full-batch* training epoch.

    The degenerate-plan view of :func:`estimate_window_memory`: every halo
    block is the whole node set and every sub-CSR slice is the whole
    adjacency.  Benchmarks use this to pick the windowed trainer's byte
    budget as a fraction of what the full-batch loop would need.
    """
    (conv_widths, _shared, _heads, _feature_dim,
     _params, _bpv) = _model_spec(model)
    return estimate_window_memory(
        model,
        [num_nodes] * (len(conv_widths) + 1),
        [num_edges] * len(conv_widths),
        bytes_per_value=bytes_per_value,
        index_bytes=index_bytes,
        training=True,
    )
