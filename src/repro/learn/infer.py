"""Batched inference and the analytic memory model (Figs. 7 and 8).

``timed_inference`` measures the GNN-side runtime that Fig. 7 compares
against exact reasoning; ``batched_inference`` reproduces Fig. 8's batching
sweep; ``estimate_inference_memory`` is the documented activation-size
model standing in for the paper's A100 memory measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learn.data import GraphData, batch_graphs, unbatch_predictions
from repro.learn.fast import FastInference, compile_inference
from repro.learn.model import GamoraNet
from repro.utils.timing import Timer

__all__ = [
    "InferenceResult",
    "timed_inference",
    "batched_inference",
    "estimate_inference_memory",
    "estimate_batch_memory",
    "A100_MEMORY_BYTES",
]

A100_MEMORY_BYTES = 40 * 1024 ** 3  # the paper's single-GPU budget line


@dataclass
class InferenceResult:
    """Predictions plus the wall-clock seconds they took."""

    predictions: dict[str, np.ndarray]
    seconds: float
    num_nodes: int
    num_edges: int


def timed_inference(model: GamoraNet | FastInference,
                    data: GraphData) -> InferenceResult:
    """One full-graph forward pass, timed.

    A :class:`GamoraNet` is compiled to the float32 deployment kernel
    first (compilation excluded from the timing, like moving a model to
    the GPU is in the paper's measurements); pass a pre-compiled
    :class:`FastInference` to skip recompilation across calls.
    """
    kernel = model if isinstance(model, FastInference) else compile_inference(model)
    with Timer() as timer:
        predictions = kernel.predict(data.features, data.adjacency)
    return InferenceResult(predictions, timer.elapsed, data.num_nodes, data.num_edges)


def batched_inference(model: GamoraNet | FastInference, graphs: list[GraphData],
                      batch_size: int = 1,
                      split: bool = False) -> list[InferenceResult]:
    """Run inference over ``graphs`` in block-diagonal batches.

    Returns one :class:`InferenceResult` per batch; per-design runtime is
    ``result.seconds / len(batch)``, the quantity Fig. 8 plots.  Batch
    assembly (the block-diagonal merge) is preprocessing and is excluded
    from the timings, as data loading is in the paper.

    With ``split=True`` the merged predictions are fanned back out and one
    result per *design* is returned instead (batch seconds amortized evenly
    across the batch) — the shape consumers like
    :class:`repro.serve.ReasoningService` want.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    kernel = model if isinstance(model, FastInference) else compile_inference(model)
    results: list[InferenceResult] = []
    for start in range(0, len(graphs), batch_size):
        chunk = graphs[start:start + batch_size]
        merged = chunk[0] if len(chunk) == 1 else batch_graphs(chunk)
        batch_result = timed_inference(kernel, merged)
        if not split:
            results.append(batch_result)
            continue
        per_design = unbatch_predictions(
            batch_result.predictions, [g.num_nodes for g in chunk]
        )
        share = batch_result.seconds / len(chunk)
        results.extend(
            InferenceResult(predictions, share, graph.num_nodes, graph.num_edges)
            for predictions, graph in zip(per_design, chunk)
        )
    return results


def estimate_inference_memory(model: GamoraNet, num_nodes: int, num_edges: int,
                              bytes_per_value: int = 8,
                              index_bytes: int = 8) -> int:
    """Peak-resident bytes of one inference pass (documented model).

    Counts, per SAGE layer, the live activations of the concat formulation
    (input ``N×F_in``, aggregated neighborhood ``N×F_in``, concat buffer
    ``N×2F_in``, output ``N×F_out``), the shared/head activations, the CSR
    adjacency (``nnz`` values + ``nnz`` column indices + ``N+1`` offsets),
    and the feature matrix.  This reproduces the linear-in-(batch × |V|)
    scaling of the paper's Fig. 8 memory curves; absolute numbers depend on
    ``bytes_per_value`` (8 for our float64 CPU path, 4 for a float32 GPU).
    """
    config = model.config
    feature_dim = model.convs[0].in_features if model.convs else 1
    total = num_nodes * feature_dim * bytes_per_value  # input features
    total += num_edges * (bytes_per_value + index_bytes) + (num_nodes + 1) * index_bytes

    peak_layer = 0
    width_in = feature_dim
    for conv in model.convs:
        live = num_nodes * (
            width_in  # layer input
            + width_in  # aggregated neighborhood
            + 2 * width_in  # concat buffer
            + conv.out_features  # layer output
        ) * bytes_per_value
        peak_layer = max(peak_layer, live)
        width_in = conv.out_features
    shared_live = num_nodes * (width_in + config.shared) * bytes_per_value
    heads_width = sum(
        head.out_features for head in model.heads.values()
    )
    head_live = num_nodes * (config.shared + 2 * heads_width) * bytes_per_value
    total += max(peak_layer, shared_live, head_live)
    # Model weights are negligible but counted for completeness.
    total += model.num_parameters() * bytes_per_value
    return int(total)


def estimate_batch_memory(model: GamoraNet, graphs: list[GraphData],
                          bytes_per_value: int = 8,
                          index_bytes: int = 8) -> int:
    """Estimated peak bytes of one block-diagonal pass over ``graphs``.

    The block-diagonal merge concatenates nodes and edges, so the estimate
    is :func:`estimate_inference_memory` at the summed sizes — the quantity
    the serving layer's shard planner keeps under ``max_shard_bytes``.
    """
    return estimate_inference_memory(
        model,
        sum(g.num_nodes for g in graphs),
        sum(g.num_edges for g in graphs),
        bytes_per_value=bytes_per_value,
        index_bytes=index_bytes,
    )
