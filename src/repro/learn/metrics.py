"""Accuracy metrics for multi-task node classification.

The paper reports "reasoning accuracy" per design; we expose per-task
accuracies, their mean (the headline number used in our figures), the joint
all-tasks-correct accuracy, and confusion matrices for error analysis.
"""

from __future__ import annotations

import numpy as np

__all__ = ["task_accuracy", "multitask_accuracy", "confusion_matrix", "per_class_recall"]


def task_accuracy(predicted: np.ndarray, target: np.ndarray,
                  mask: np.ndarray | None = None) -> float:
    """Fraction of (masked) nodes with the correct label."""
    predicted = np.asarray(predicted)
    target = np.asarray(target)
    if mask is not None:
        predicted = predicted[mask]
        target = target[mask]
    if predicted.size == 0:
        raise ValueError("no nodes selected for accuracy")
    return float(np.mean(predicted == target))


def multitask_accuracy(predictions: dict[str, np.ndarray],
                       targets: dict[str, np.ndarray],
                       mask: np.ndarray | None = None) -> dict[str, float]:
    """Per-task, mean, and joint accuracy.

    ``joint`` counts a node correct only when all tasks agree with ground
    truth — the strictest notion, controlling extraction quality.
    """
    results: dict[str, float] = {}
    joint: np.ndarray | None = None
    for task, target in targets.items():
        predicted = predictions[task]
        results[task] = task_accuracy(predicted, target, mask)
        correct = np.asarray(predicted) == np.asarray(target)
        joint = correct if joint is None else (joint & correct)
    assert joint is not None
    if mask is not None:
        joint = joint[mask]
    results["mean"] = float(np.mean([results[t] for t in targets]))
    results["joint"] = float(np.mean(joint))
    return results


def confusion_matrix(predicted: np.ndarray, target: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``matrix[t, p]`` counts nodes of true class ``t`` predicted ``p``."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(np.asarray(target).ravel(), np.asarray(predicted).ravel()):
        matrix[int(t), int(p)] += 1
    return matrix


def per_class_recall(predicted: np.ndarray, target: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Recall per true class (NaN-free: empty classes report 1.0)."""
    matrix = confusion_matrix(predicted, target, num_classes)
    totals = matrix.sum(axis=1)
    recall = np.ones(num_classes, dtype=np.float64)
    for cls in range(num_classes):
        if totals[cls] > 0:
            recall[cls] = matrix[cls, cls] / totals[cls]
    return recall
