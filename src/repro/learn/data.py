"""Graph dataset construction: adjacency operators, labels, batching.

A :class:`GraphData` is the full-graph training/inference unit: node
features, the row-normalized sparse aggregation operator (mean aggregator of
GraphSAGE), multi-task labels, and a node mask (the constant node is never
classified).  ``batch_graphs`` block-diagonally stacks graphs for the
batched reasoning experiment of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.aig.graph import AIG
from repro.learn.features import encode_features
from repro.reasoning.adder_tree import ground_truth_labels
from repro.reasoning.structural import detect_xor_maj_structural
from repro.reasoning.xor_maj import detect_xor_maj

__all__ = [
    "GraphData",
    "adjacency_operator",
    "build_graph_data",
    "batch_graphs",
    "unbatch_predictions",
]

DIRECTIONS = ("in", "out", "both")
TASKS = ("root", "xor", "maj")


@dataclass
class GraphData:
    """One AIG prepared for GraphSAGE: operator + features (+ labels)."""

    name: str
    features: np.ndarray  # (N, F) float
    adjacency: sp.csr_matrix  # (N, N) row-normalized aggregation operator
    labels: dict[str, np.ndarray] | None = None  # task -> (N,) int
    mask: np.ndarray | None = None  # (N,) bool: nodes that count
    sizes: list[int] = field(default_factory=list)  # per-graph node counts

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def num_feature_dims(self) -> int:
        return self.features.shape[1]

    @property
    def num_edges(self) -> int:
        return int(self.adjacency.nnz)

    def node_mask(self) -> np.ndarray:
        if self.mask is not None:
            return self.mask
        return np.ones(self.num_nodes, dtype=bool)


def adjacency_operator(aig: AIG, direction: str = "in") -> sp.csr_matrix:
    """Row-normalized neighborhood-mean operator for message passing.

    ``direction='in'`` aggregates a node's fan-ins (Boolean information
    flows from inputs toward outputs — the reasoning direction);
    ``'out'`` aggregates fan-outs; ``'both'`` the union.  Rows of nodes with
    no neighbors (PIs under ``'in'``) stay zero, so they aggregate nothing.
    """
    if direction not in DIRECTIONS:
        raise ValueError(f"unknown direction {direction!r}; expected {DIRECTIONS}")
    num_vars = aig.num_vars
    fanin0, fanin1 = aig.fanin_arrays()
    and_vars = np.array(list(aig.and_vars()), dtype=np.int64)
    if and_vars.size == 0:
        return sp.csr_matrix((num_vars, num_vars))
    src = np.concatenate([fanin0[and_vars] >> 1, fanin1[and_vars] >> 1])
    dst = np.concatenate([and_vars, and_vars])

    rows_list = []
    cols_list = []
    if direction in ("in", "both"):
        rows_list.append(dst)
        cols_list.append(src)
    if direction in ("out", "both"):
        rows_list.append(src)
        cols_list.append(dst)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(num_vars, num_vars))
    # Mean aggregation: normalize each row by its degree.
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, degrees, out=np.zeros_like(degrees), where=degrees > 0)
    return sp.diags(scale) @ matrix


def build_graph_data(aig: AIG, feature_mode: str = "full", direction: str = "in",
                     with_labels: bool = True,
                     labels_source: str = "functional") -> GraphData:
    """Prepare one AIG for training or inference.

    ``labels_source='functional'`` uses the exact cut-based reasoner (always
    correct, slower); ``'structural'`` uses the linear-time pattern matcher
    (exact on generated multipliers, recommended for very wide operands).
    """
    labels = None
    if with_labels:
        if labels_source == "functional":
            detection = detect_xor_maj(aig)
        elif labels_source == "structural":
            detection = detect_xor_maj_structural(aig)
        else:
            raise ValueError(f"unknown labels_source {labels_source!r}")
        labels = ground_truth_labels(aig, detection)
    mask = np.ones(aig.num_vars, dtype=bool)
    mask[0] = False  # the constant node is not a classification target
    return GraphData(
        name=aig.name,
        features=encode_features(aig, feature_mode),
        adjacency=adjacency_operator(aig, direction),
        labels=labels,
        mask=mask,
        sizes=[aig.num_vars],
    )


def batch_graphs(graphs: list[GraphData]) -> GraphData:
    """Block-diagonal batch: one big disconnected graph (Fig. 8 batching)."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    if len({g.num_feature_dims for g in graphs}) != 1:
        raise ValueError("all graphs in a batch need the same feature width")
    features = np.vstack([g.features for g in graphs])
    adjacency = sp.block_diag([g.adjacency for g in graphs], format="csr")
    mask = np.concatenate([g.node_mask() for g in graphs])
    labels = None
    if all(g.labels is not None for g in graphs):
        labels = {
            task: np.concatenate([g.labels[task] for g in graphs])
            for task in TASKS
        }
    return GraphData(
        name=f"batch[{','.join(g.name for g in graphs)}]",
        features=features,
        adjacency=adjacency,
        labels=labels,
        mask=mask,
        sizes=[n for g in graphs for n in g.sizes],
    )


def unbatch_predictions(predictions: dict[str, np.ndarray],
                        sizes: list[int]) -> list[dict[str, np.ndarray]]:
    """Split block-diagonal per-node predictions back into per-graph dicts.

    ``sizes`` is the node count of each member graph in batch order (e.g.
    ``[g.num_nodes for g in graphs]`` or the merged graph's ``sizes``).
    Rows are copied, so the returned arrays do not pin the merged batch in
    memory — they are safe to hold in a long-lived cache.
    """
    total = sum(sizes)
    for task, array in predictions.items():
        if array.shape[0] != total:
            raise ValueError(
                f"prediction task {task!r} has {array.shape[0]} rows, "
                f"but sizes sum to {total}"
            )
    split: list[dict[str, np.ndarray]] = []
    offset = 0
    for size in sizes:
        split.append({
            task: array[offset:offset + size].copy()
            for task, array in predictions.items()
        })
        offset += size
    return split
