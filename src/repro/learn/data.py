"""Graph dataset construction: adjacency operators, labels, batching.

A :class:`GraphData` is the full-graph training/inference unit: node
features, the row-normalized sparse aggregation operator (mean aggregator of
GraphSAGE), multi-task labels, and a node mask (the constant node is never
classified).  ``batch_graphs`` block-diagonally stacks graphs for the
batched reasoning experiment of Fig. 8.

For circuits too large to materialize every activation at once,
:meth:`GraphData.window_plan` slices the node set — in topological-level
order, so each window's receptive field stays local — into memory-bounded
*windows*.  Each window carries the K-hop halo blocks the conv stack needs
(the minibatch-SAGE idiom: target nodes plus per-layer neighbor blocks), and
:meth:`repro.learn.fast.FastInference.predict_streamed` evaluates them one
at a time with bit-identical labels to the full-graph pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.aig.graph import AIG
from repro.learn.features import encode_features
from repro.reasoning.adder_tree import ground_truth_labels
from repro.reasoning.structural import detect_xor_maj_structural
from repro.reasoning.xor_maj import detect_xor_maj
from repro.utils.arrays import ragged_gather, sorted_unique

__all__ = [
    "GraphData",
    "Window",
    "WindowPlan",
    "adjacency_operator",
    "build_graph_data",
    "batch_graphs",
    "halo_blocks",
    "sub_adjacency",
    "unbatch_predictions",
]

DIRECTIONS = ("in", "out", "both")
TASKS = ("root", "xor", "maj")


@dataclass
class Window:
    """One streaming unit: target nodes plus the analytic cost of their halo.

    ``block_sizes``/``block_edges`` describe the per-layer halo blocks
    (``block_sizes[0]`` is the outermost block feeding conv 0;
    ``block_sizes[-1] == len(targets)``).  Only the *sizes* are stored —
    the executor recomputes the block index arrays per window, so a plan
    over a multi-million-node graph stays small.

    Training plans additionally carry the window's share of the graph's
    supervision: ``labels``/``mask`` are the per-target slices the trainer
    feeds the loss, aligned row-for-row with ``targets`` (their combined
    size across a plan equals the graph's, so this costs nothing extra).
    Inference plans leave both ``None``.
    """

    targets: np.ndarray  # sorted node ids whose outputs this window owns
    block_sizes: list[int]  # |B_0| .. |B_K|, outermost first
    block_edges: list[int]  # sub-CSR nnz per conv layer (rows = B_{j+1})
    estimated_bytes: int  # analytic peak for this window
    labels: dict[str, np.ndarray] | None = None  # task -> per-target labels
    mask: np.ndarray | None = None  # per-target supervision mask

    @property
    def num_targets(self) -> int:
        return int(self.targets.size)


@dataclass
class WindowPlan:
    """A full cover of one graph's nodes by memory-bounded windows."""

    num_nodes: int
    num_hops: int  # conv layers the halo was built for
    max_window_bytes: int
    windows: list[Window] = field(default_factory=list)

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    @property
    def peak_window_bytes(self) -> int:
        return max((w.estimated_bytes for w in self.windows), default=0)

    @property
    def within_budget(self) -> bool:
        """False when even the minimum window exceeded the budget."""
        return self.peak_window_bytes <= self.max_window_bytes

    def summary(self) -> str:
        return (
            f"{self.num_windows} window(s), peak "
            f"{self.peak_window_bytes / 1024 ** 2:.1f}MiB "
            f"(budget {self.max_window_bytes / 1024 ** 2:.1f}MiB)"
        )


def halo_blocks(adjacency: sp.csr_matrix, targets: np.ndarray,
                num_hops: int) -> list[np.ndarray]:
    """Per-layer neighbor blocks ``[B_0, ..., B_K]`` for a target window.

    ``B_K`` is ``targets``; each ``B_{j}`` adds the adjacency columns of
    ``B_{j+1}``'s rows (the fan-in halo conv layer ``j`` reads).  Blocks are
    sorted int64 arrays, so layer ``j``'s output rows can be located in its
    input block by ``searchsorted``.
    """
    indptr = adjacency.indptr
    indices = adjacency.indices
    blocks = [np.asarray(targets, dtype=np.int64)]
    for _ in range(num_hops):
        rows = blocks[0]
        flat = ragged_gather(indptr[rows], indptr[rows + 1])
        cols = indices[flat].astype(np.int64, copy=False)
        blocks.insert(0, sorted_unique(np.concatenate([rows, cols])))
    return blocks


def sub_adjacency(adjacency: sp.csr_matrix, rows: np.ndarray,
                  cols: np.ndarray) -> sp.csr_matrix:
    """CSR submatrix ``adjacency[rows][:, cols]`` preserving entry order.

    ``cols`` must be sorted and contain every column referenced by ``rows``
    (a halo block does, by construction).  The slice is a direct gather of
    the parent's value/index arrays — per-row entry *storage order* is kept,
    so a sparse·dense product accumulates in exactly the full-graph order
    and the streamed pass stays bit-identical to the monolithic one.
    """
    indptr = adjacency.indptr
    starts = indptr[rows]
    ends = indptr[rows + 1]
    flat = ragged_gather(starts, ends)
    sub_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(ends - starts, out=sub_indptr[1:])
    sub_indices = np.searchsorted(cols, adjacency.indices[flat])
    return sp.csr_matrix(
        (adjacency.data[flat], sub_indices, sub_indptr),
        shape=(len(rows), len(cols)),
    )


@dataclass
class GraphData:
    """One AIG prepared for GraphSAGE: operator + features (+ labels)."""

    name: str
    features: np.ndarray  # (N, F) float
    adjacency: sp.csr_matrix  # (N, N) row-normalized aggregation operator
    labels: dict[str, np.ndarray] | None = None  # task -> (N,) int
    mask: np.ndarray | None = None  # (N,) bool: nodes that count
    sizes: list[int] = field(default_factory=list)  # per-graph node counts
    levels: np.ndarray | None = None  # (N,) int topological level per node

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def num_feature_dims(self) -> int:
        return self.features.shape[1]

    @property
    def num_edges(self) -> int:
        return int(self.adjacency.nnz)

    def node_mask(self) -> np.ndarray:
        if self.mask is not None:
            return self.mask
        return np.ones(self.num_nodes, dtype=bool)

    def node_levels(self) -> np.ndarray:
        """Topological levels, or all-zero when none were recorded.

        Levels only steer window *locality* (nodes of adjacent levels share
        fan-in halos); streaming correctness never depends on them, so a
        flat fallback is always safe — it just yields wider halos.
        """
        if self.levels is not None:
            return self.levels
        return np.zeros(self.num_nodes, dtype=np.int64)

    def _attach_training_slices(self, window: Window) -> Window:
        """Fill a window's label/mask slices from this graph's supervision."""
        if self.labels is not None:
            window.labels = {
                task: np.ascontiguousarray(array[window.targets])
                for task, array in self.labels.items()
            }
        window.mask = np.ascontiguousarray(self.node_mask()[window.targets])
        return window

    def window_plan(self, max_window_bytes: int, model,
                    training: bool = False) -> WindowPlan:
        """Slice this graph into memory-bounded streaming windows.

        Nodes are taken in topological-level-major order (stable, so window
        boundaries may land mid-level) and packed greedily: each window is
        grown — doubling, then binary refinement, both exact because
        :func:`~repro.learn.infer.estimate_window_memory` is monotone in
        window size — to the largest slice whose halo stays under
        ``max_window_bytes``.  ``model`` (a ``GamoraNet`` or compiled
        :class:`~repro.learn.fast.FastInference`) supplies the layer widths
        and dtype for the cost model and the hop count for the halo.

        ``training=True`` prices each window with the backward-pass cost
        model (tape activations + gradients + optimizer slots) instead of
        the forward-only one, and attaches the per-window label/mask slices
        the trainer's loss consumes — the same plan shape otherwise, so
        trainer and streamed inference share one execution-plan machinery.

        Every window keeps at least two targets (a lone trailing node is
        folded into its neighbor): single-row float32 matmuls take BLAS's
        GEMV path, whose accumulation order differs from the GEMM rows, and
        bit-identity with the full-graph pass would be lost.  A window that
        exceeds the budget even at the minimum size is kept (and reported
        via :attr:`WindowPlan.within_budget`) — streaming degrades to the
        smallest feasible footprint rather than refusing the circuit.
        """
        from repro.learn.infer import estimate_window_memory

        if max_window_bytes is None or max_window_bytes <= 0:
            raise ValueError("max_window_bytes must be a positive byte count")
        num_hops = model.config.num_layers
        order = np.argsort(self.node_levels(), kind="stable")
        indptr = self.adjacency.indptr
        total = self.num_nodes

        def evaluate(start: int, size: int) -> Window:
            targets = np.sort(order[start:start + size])
            blocks = halo_blocks(self.adjacency, targets, num_hops)
            sizes = [int(b.size) for b in blocks]
            edges = [
                int((indptr[rows + 1] - indptr[rows]).sum())
                for rows in blocks[1:]
            ]
            cost = estimate_window_memory(model, sizes, edges,
                                          training=training)
            return Window(targets, sizes, edges, int(cost))

        windows: list[Window] = []
        pos = 0
        while pos < total:
            remaining = total - pos
            size = min(2, remaining)
            window = evaluate(pos, size)
            if window.estimated_bytes <= max_window_bytes and size < remaining:
                low = size  # largest size known to fit
                high = remaining
                while low < high:
                    trial = min(low * 2, remaining)
                    candidate = evaluate(pos, trial)
                    if candidate.estimated_bytes <= max_window_bytes:
                        window, low, size = candidate, trial, trial
                        if trial == remaining:
                            high = trial
                    else:
                        high = trial - 1
                        break
                while low < high:
                    mid = (low + high + 1) // 2
                    candidate = evaluate(pos, mid)
                    if candidate.estimated_bytes <= max_window_bytes:
                        window, low, size = candidate, mid, mid
                    else:
                        high = mid - 1
            if remaining - size == 1:
                # Never leave a single-node tail (the GEMV caveat above):
                # shrink to leave a 2-node tail, or absorb the straggler.
                size = size - 1 if size >= 3 else remaining
                window = evaluate(pos, size)
            if training:
                self._attach_training_slices(window)
            windows.append(window)
            pos += size
        return WindowPlan(total, num_hops, int(max_window_bytes), windows)

    def full_window_plan(self, model, training: bool = False) -> WindowPlan:
        """The degenerate one-window plan: the whole graph as one window.

        This is what the trainer runs when no byte budget is set — the
        full-batch loop expressed as a trivial execution plan, so budgeted
        and unbudgeted training share one epoch driver.  The budget is set
        to the window's own estimated cost, so ``within_budget`` holds and
        ``peak_window_bytes`` reports the full-batch footprint.
        """
        from repro.learn.infer import estimate_window_memory

        num_hops = model.config.num_layers
        sizes = [self.num_nodes] * (num_hops + 1)
        edges = [self.num_edges] * num_hops
        cost = int(estimate_window_memory(model, sizes, edges,
                                          training=training))
        window = Window(np.arange(self.num_nodes, dtype=np.int64),
                        sizes, edges, cost)
        if training:
            self._attach_training_slices(window)
        return WindowPlan(self.num_nodes, num_hops, cost, [window])


def adjacency_operator(aig: AIG, direction: str = "in") -> sp.csr_matrix:
    """Row-normalized neighborhood-mean operator for message passing.

    ``direction='in'`` aggregates a node's fan-ins (Boolean information
    flows from inputs toward outputs — the reasoning direction);
    ``'out'`` aggregates fan-outs; ``'both'`` the union.  Rows of nodes with
    no neighbors (PIs under ``'in'``) stay zero, so they aggregate nothing.
    """
    if direction not in DIRECTIONS:
        raise ValueError(f"unknown direction {direction!r}; expected {DIRECTIONS}")
    num_vars = aig.num_vars
    fanin0, fanin1 = aig.fanin_arrays()
    and_vars = np.array(list(aig.and_vars()), dtype=np.int64)
    if and_vars.size == 0:
        return sp.csr_matrix((num_vars, num_vars))
    src = np.concatenate([fanin0[and_vars] >> 1, fanin1[and_vars] >> 1])
    dst = np.concatenate([and_vars, and_vars])

    rows_list = []
    cols_list = []
    if direction in ("in", "both"):
        rows_list.append(dst)
        cols_list.append(src)
    if direction in ("out", "both"):
        rows_list.append(src)
        cols_list.append(dst)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(num_vars, num_vars))
    # Mean aggregation: normalize each row by its degree.
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, degrees, out=np.zeros_like(degrees), where=degrees > 0)
    return sp.diags(scale) @ matrix


def build_graph_data(aig: AIG, feature_mode: str = "full", direction: str = "in",
                     with_labels: bool = True,
                     labels_source: str = "functional") -> GraphData:
    """Prepare one AIG for training or inference.

    ``labels_source='functional'`` uses the exact cut-based reasoner (always
    correct, slower); ``'structural'`` uses the linear-time pattern matcher
    (exact on generated multipliers, recommended for very wide operands).
    """
    labels = None
    if with_labels:
        if labels_source == "functional":
            detection = detect_xor_maj(aig)
        elif labels_source == "structural":
            detection = detect_xor_maj_structural(aig)
        else:
            raise ValueError(f"unknown labels_source {labels_source!r}")
        labels = ground_truth_labels(aig, detection)
    mask = np.ones(aig.num_vars, dtype=bool)
    mask[0] = False  # the constant node is not a classification target
    return GraphData(
        name=aig.name,
        features=encode_features(aig, feature_mode),
        adjacency=adjacency_operator(aig, direction),
        labels=labels,
        mask=mask,
        sizes=[aig.num_vars],
        levels=aig.levels_array().astype(np.int64, copy=True),
    )


def batch_graphs(graphs: list[GraphData]) -> GraphData:
    """Block-diagonal batch: one big disconnected graph (Fig. 8 batching)."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    if len({g.num_feature_dims for g in graphs}) != 1:
        raise ValueError("all graphs in a batch need the same feature width")
    features = np.vstack([g.features for g in graphs])
    adjacency = sp.block_diag([g.adjacency for g in graphs], format="csr")
    mask = np.concatenate([g.node_mask() for g in graphs])
    labels = None
    if all(g.labels is not None for g in graphs):
        labels = {
            task: np.concatenate([g.labels[task] for g in graphs])
            for task in TASKS
        }
    levels = None
    if all(g.levels is not None for g in graphs):
        levels = np.concatenate([g.levels for g in graphs])
    return GraphData(
        name=f"batch[{','.join(g.name for g in graphs)}]",
        features=features,
        adjacency=adjacency,
        labels=labels,
        mask=mask,
        sizes=[n for g in graphs for n in g.sizes],
        levels=levels,
    )


def unbatch_predictions(predictions: dict[str, np.ndarray],
                        sizes: list[int]) -> list[dict[str, np.ndarray]]:
    """Split block-diagonal per-node predictions back into per-graph dicts.

    ``sizes`` is the node count of each member graph in batch order (e.g.
    ``[g.num_nodes for g in graphs]`` or the merged graph's ``sizes``).
    Rows are copied, so the returned arrays do not pin the merged batch in
    memory — they are safe to hold in a long-lived cache.
    """
    total = sum(sizes)
    for task, array in predictions.items():
        if array.shape[0] != total:
            raise ValueError(
                f"prediction task {task!r} has {array.shape[0]} rows, "
                f"but sizes sum to {total}"
            )
    split: list[dict[str, np.ndarray]] = []
    offset = 0
    for size in sizes:
        split.append({
            task: array[offset:offset + size].copy()
            for task, array in predictions.items()
        })
        offset += size
    return split
