"""Learning pipeline: features, datasets, GamoraNet, training, inference."""

from repro.learn.features import FEATURE_MODES, encode_features, num_features
from repro.learn.data import (
    GraphData,
    Window,
    WindowPlan,
    adjacency_operator,
    batch_graphs,
    build_graph_data,
    halo_blocks,
    sub_adjacency,
    unbatch_predictions,
)
from repro.learn.model import (
    TASK_CLASSES,
    GamoraNet,
    ModelConfig,
    decode_single_task,
    deep_config,
    encode_single_task,
    shallow_config,
)
from repro.learn.trainer import (
    TrainConfig,
    evaluate_model,
    predict_labels,
    predict_labels_many,
    train_model,
)
from repro.learn.metrics import (
    confusion_matrix,
    multitask_accuracy,
    per_class_recall,
    task_accuracy,
)
from repro.learn.fast import FastInference, compile_inference
from repro.learn.infer import (
    A100_MEMORY_BYTES,
    InferenceResult,
    batched_inference,
    estimate_batch_memory,
    estimate_inference_memory,
    estimate_window_memory,
    timed_inference,
)

__all__ = [
    "FEATURE_MODES",
    "encode_features",
    "num_features",
    "GraphData",
    "Window",
    "WindowPlan",
    "adjacency_operator",
    "batch_graphs",
    "build_graph_data",
    "halo_blocks",
    "sub_adjacency",
    "unbatch_predictions",
    "TASK_CLASSES",
    "GamoraNet",
    "ModelConfig",
    "decode_single_task",
    "deep_config",
    "encode_single_task",
    "shallow_config",
    "TrainConfig",
    "evaluate_model",
    "predict_labels",
    "predict_labels_many",
    "train_model",
    "confusion_matrix",
    "multitask_accuracy",
    "per_class_recall",
    "task_accuracy",
    "FastInference",
    "compile_inference",
    "A100_MEMORY_BYTES",
    "InferenceResult",
    "batched_inference",
    "estimate_batch_memory",
    "estimate_inference_memory",
    "estimate_window_memory",
    "timed_inference",
]
