"""GamoraNet: multi-task GraphSAGE for Boolean reasoning (paper Sec. III).

Architecture (Sec. IV-A):

* a trunk of K ``SAGEConv`` layers with ReLU between them
  (shallow: K=4, hidden=32; deep: K=8, hidden=80);
* a shared ``Linear(hidden -> 32)`` + ReLU;
* one ``Linear(32 -> C_t)`` + log-softmax head per task
  (Task 1 root/leaf: 4 classes; Task 2 XOR and Task 3 MAJ: 2 each).

The single-task ablation (Fig. 4, left panels) collapses the three tasks
into one softmax over the 16-class product label space, which is exactly
the "single-task multi-label node classification" the paper reports as much
harder to learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.learn.features import num_features
from repro.nn.layers import Linear, Module, SAGEConv
from repro.nn.tensor import Tensor
from repro.reasoning.adder_tree import NUM_TASK1_CLASSES
from repro.utils.rng import seeded_rng

__all__ = [
    "TASK_CLASSES",
    "ModelConfig",
    "shallow_config",
    "deep_config",
    "GamoraNet",
    "encode_single_task",
    "decode_single_task",
]

TASK_CLASSES = {"root": NUM_TASK1_CLASSES, "xor": 2, "maj": 2}
_SINGLE_TASK_CLASSES = NUM_TASK1_CLASSES * 2 * 2


@dataclass
class ModelConfig:
    """Hyper-parameters of a GamoraNet instance."""

    num_layers: int = 4
    hidden: int = 32
    shared: int = 32
    feature_mode: str = "full"
    direction: str = "in"
    single_task: bool = False
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "num_layers": self.num_layers,
            "hidden": self.hidden,
            "shared": self.shared,
            "feature_mode": self.feature_mode,
            "direction": self.direction,
            "single_task": self.single_task,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelConfig":
        return cls(**payload)


def shallow_config(**overrides) -> ModelConfig:
    """4 layers x 32 hidden: CSA multipliers and simple mapping."""
    config = ModelConfig(num_layers=4, hidden=32)
    return ModelConfig(**{**config.to_dict(), **overrides})


def deep_config(**overrides) -> ModelConfig:
    """8 layers x 80 hidden: Booth multipliers and complex mapping."""
    config = ModelConfig(num_layers=8, hidden=80)
    return ModelConfig(**{**config.to_dict(), **overrides})


def encode_single_task(labels: dict[str, np.ndarray]) -> np.ndarray:
    """Product-space encoding for the single-task ablation."""
    return labels["root"] + NUM_TASK1_CLASSES * labels["xor"] \
        + 2 * NUM_TASK1_CLASSES * labels["maj"]


def decode_single_task(combined: np.ndarray) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_single_task`."""
    root = combined % NUM_TASK1_CLASSES
    rest = combined // NUM_TASK1_CLASSES
    return {"root": root, "xor": rest % 2, "maj": rest // 2}


class GamoraNet(Module):
    """Multi-task GraphSAGE node classifier."""

    def __init__(self, config: ModelConfig | None = None) -> None:
        super().__init__()
        self.config = config or ModelConfig()
        rng = seeded_rng(self.config.seed)
        in_features = num_features(self.config.feature_mode)

        self.convs: list[SAGEConv] = []
        width = in_features
        for index in range(self.config.num_layers):
            conv = SAGEConv(width, self.config.hidden, rng)
            self.register_module(f"conv{index}", conv)
            self.convs.append(conv)
            width = self.config.hidden

        self.shared = self.register_module(
            "shared", Linear(width, self.config.shared, rng)
        )
        self.heads: dict[str, Linear] = {}
        if self.config.single_task:
            head = Linear(self.config.shared, _SINGLE_TASK_CLASSES, rng)
            self.register_module("head_single", head)
            self.heads["single"] = head
        else:
            for task, classes in TASK_CLASSES.items():
                head = Linear(self.config.shared, classes, rng)
                self.register_module(f"head_{task}", head)
                self.heads[task] = head

    # ------------------------------------------------------------------
    def forward(self, features: Tensor | np.ndarray,
                adjacency: sp.spmatrix) -> dict[str, Tensor]:
        """Log-probabilities per task, each of shape ``(N, C_task)``."""
        hidden = features if isinstance(features, Tensor) else Tensor(features)
        for conv in self.convs:
            hidden = conv(hidden, adjacency).relu()
        shared = self.shared(hidden).relu()
        return {task: head(shared).log_softmax() for task, head in self.heads.items()}

    __call__ = forward

    def forward_window(self, features: Tensor | np.ndarray,
                       adjacency: sp.spmatrix,
                       targets: np.ndarray) -> dict[str, Tensor]:
        """Log-probabilities for ``targets`` only, through their K-hop halo.

        The training twin of the streamed inference pass: conv layer ``j``
        reads halo block ``B_j`` and writes rows ``B_{j+1}``, so only one
        window's activations (and, on backward, their gradients) are ever
        resident.  Gradients flow to every parameter exactly as in
        :meth:`forward` restricted to the window's receptive field, which
        makes per-window losses accumulate to the full-batch gradient.

        A window covering every node — the degenerate one-window plan —
        falls through to :meth:`forward`, so full-batch training is the
        same code path run on a trivial plan, at full-batch numerics.
        """
        from repro.learn.data import halo_blocks, sub_adjacency

        features_arr = features.data if isinstance(features, Tensor) \
            else np.asarray(features)
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size == features_arr.shape[0]:
            return self.forward(features, adjacency)
        blocks = halo_blocks(adjacency, targets, self.config.num_layers)
        hidden = Tensor(features_arr[blocks[0]])
        for j, conv in enumerate(self.convs):
            rows, cols = blocks[j + 1], blocks[j]
            sub = sub_adjacency(adjacency, rows, cols)
            self_index = np.searchsorted(cols, rows)
            hidden = conv.forward_block(hidden, sub, self_index).relu()
        shared = self.shared(hidden).relu()
        return {task: head(shared).log_softmax()
                for task, head in self.heads.items()}

    def predict(self, features: np.ndarray,
                adjacency: sp.spmatrix) -> dict[str, np.ndarray]:
        """Hard label predictions per task (always the three-task view)."""
        from repro.nn.tensor import no_grad

        with no_grad():
            log_probs = self.forward(features, adjacency)
        if self.config.single_task:
            combined = np.argmax(log_probs["single"].data, axis=1)
            return decode_single_task(combined)
        return {task: np.argmax(lp.data, axis=1) for task, lp in log_probs.items()}

    def describe(self) -> str:
        kind = "single-task" if self.config.single_task else "multi-task"
        return (
            f"GamoraNet({kind}, {self.config.num_layers} layers x "
            f"{self.config.hidden} hidden, {self.num_parameters()} parameters, "
            f"features={self.config.feature_mode}, direction={self.config.direction})"
        )
