"""Compiled inference kernel: the deployment path of the model.

Training uses the autodiff :class:`~repro.nn.tensor.Tensor` in float64 for
gradient fidelity; inference does not need a tape or double precision.
:class:`FastInference` snapshots a trained GamoraNet's weights into float32
arrays and evaluates the forward pass with raw NumPy/SciPy kernels — the
CPU analogue of the paper's optimized GPU deployment, and the engine behind
the Fig. 7/8 runtime numbers.

Tests assert label-level agreement with the reference float64 forward pass.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.learn.model import GamoraNet, decode_single_task

__all__ = ["FastInference", "compile_inference"]


class FastInference:
    """Float32 snapshot of a GamoraNet, callable on (features, adjacency)."""

    def __init__(self, model: GamoraNet) -> None:
        self.config = model.config
        self.single_task = model.config.single_task
        self._convs = [
            (
                conv.weight.data.astype(np.float32),
                conv.bias.data.astype(np.float32) if conv.bias is not None else None,
            )
            for conv in model.convs
        ]
        self._shared = (
            model.shared.weight.data.astype(np.float32),
            model.shared.bias.data.astype(np.float32),
        )
        self._heads = {
            task: (
                head.weight.data.astype(np.float32),
                head.bias.data.astype(np.float32),
            )
            for task, head in model.heads.items()
        }

    def logits(self, features: np.ndarray,
               adjacency: sp.spmatrix) -> dict[str, np.ndarray]:
        """Raw head outputs per task (softmax is monotone — skip it)."""
        hidden = np.ascontiguousarray(features, dtype=np.float32)
        adj32 = adjacency.astype(np.float32)
        for weight, bias in self._convs:
            neighborhood = adj32 @ hidden
            stacked = np.concatenate([hidden, neighborhood], axis=1)
            hidden = stacked @ weight
            if bias is not None:
                hidden += bias
            np.maximum(hidden, 0.0, out=hidden)
        shared_w, shared_b = self._shared
        shared = hidden @ shared_w + shared_b
        np.maximum(shared, 0.0, out=shared)
        return {
            task: shared @ weight + bias
            for task, (weight, bias) in self._heads.items()
        }

    def predict(self, features: np.ndarray,
                adjacency: sp.spmatrix) -> dict[str, np.ndarray]:
        """Hard labels per task, matching :meth:`GamoraNet.predict`."""
        logits = self.logits(features, adjacency)
        if self.single_task:
            return decode_single_task(np.argmax(logits["single"], axis=1))
        return {task: np.argmax(out, axis=1) for task, out in logits.items()}

    __call__ = predict


def compile_inference(model: GamoraNet) -> FastInference:
    """Snapshot ``model``'s weights into a float32 inference kernel."""
    return FastInference(model)
