"""Compiled inference kernel: the deployment path of the model.

Training uses the autodiff :class:`~repro.nn.tensor.Tensor` in float64 for
gradient fidelity; inference does not need a tape or double precision.
:class:`FastInference` snapshots a trained GamoraNet's weights into float32
arrays (``dtype`` is configurable) and evaluates the forward pass with raw
NumPy/SciPy kernels — the CPU analogue of the paper's optimized GPU
deployment, and the engine behind the Fig. 7/8 runtime numbers.

Two execution modes share the snapshot:

* :meth:`FastInference.logits` / :meth:`~FastInference.predict` — the
  monolithic full-graph pass (every activation resident at once).
* :meth:`FastInference.logits_streamed` / :meth:`~FastInference.predict_streamed`
  — the level-windowed pass over a :class:`~repro.learn.data.WindowPlan`:
  each window materializes only its targets plus the K-hop fan-in halo, so
  peak activation memory follows the window budget instead of circuit size.

The streamed pass is **bit-identical** to the full-graph pass, which takes
three invariants: the sub-CSR slice preserves per-row entry order (sparse
accumulation order is unchanged), every dense matmul output width is padded
to a BLAS-GEMM row-stable shape (multiples of 16 at >= 32 columns produce
the same bits for any >= 2-row subset of the input; skinny widths dispatch
to a small-matrix kernel whose accumulation differs), and the window plan
never emits a single-row window (one row takes the GEMV path, which is not
bit-stable against the GEMM rows either).

Tests assert label-level agreement with the reference float64 forward pass
and exact streamed/full bit-identity.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.learn.model import GamoraNet, decode_single_task

__all__ = ["FastInference", "compile_inference"]

# Smallest dense-output width whose GEMM is row-subset bit-stable; skinnier
# products are computed against a zero-padded weight and sliced back.
_STABLE_WIDTH = 32


def _pad_stable(weight: np.ndarray) -> np.ndarray:
    """Zero-pad a weight's output columns up to a GEMM row-stable width."""
    width = weight.shape[1]
    stable = max(_STABLE_WIDTH, -(-width // 16) * 16)
    if stable == width:
        return weight
    padded = np.zeros((weight.shape[0], stable), dtype=weight.dtype)
    padded[:, :width] = weight
    return padded


class FastInference:
    """Float32 snapshot of a GamoraNet, callable on (features, adjacency)."""

    def __init__(self, model: GamoraNet, dtype=np.float32) -> None:
        self.config = model.config
        self.single_task = model.config.single_task
        self.dtype = np.dtype(dtype)

        def snap(weight, bias, out_width):
            return (
                _pad_stable(weight.data.astype(self.dtype)),
                bias.data.astype(self.dtype) if bias is not None else None,
                out_width,
            )

        self._convs = [
            snap(conv.weight, conv.bias, conv.out_features)
            for conv in model.convs
        ]
        self._shared = snap(model.shared.weight, model.shared.bias,
                            model.shared.out_features)
        self._heads = {
            task: snap(head.weight, head.bias, head.out_features)
            for task, head in model.heads.items()
        }

    @property
    def itemsize(self) -> int:
        """Bytes per activation value — what the memory model prices."""
        return int(self.dtype.itemsize)

    @property
    def num_layers(self) -> int:
        return len(self._convs)

    def conv_widths(self) -> list[tuple[int, int]]:
        """(in_features, out_features) per conv layer, from the snapshot."""
        return [(w.shape[0] // 2, width) for w, _, width in self._convs]

    def head_widths(self) -> dict[str, int]:
        return {task: width for task, (_, _, width) in self._heads.items()}

    def num_parameters(self) -> int:
        """Snapshot value count (padding columns excluded — they are zeros)."""
        total = sum(w.shape[0] * width + (b.size if b is not None else 0)
                    for w, b, width in self._convs)
        w, b, width = self._shared
        total += w.shape[0] * width + b.size
        total += sum(w.shape[0] * width + b.size
                     for w, b, width in self._heads.values())
        return int(total)

    @staticmethod
    def _affine(hidden: np.ndarray, weight: np.ndarray,
                bias: np.ndarray | None, width: int) -> np.ndarray:
        """``hidden @ weight + bias`` through the padded, row-stable GEMM."""
        out = hidden @ weight
        if out.shape[1] != width:
            out = out[:, :width] + bias if bias is not None \
                else np.ascontiguousarray(out[:, :width])
        elif bias is not None:
            out += bias
        return out

    def logits(self, features: np.ndarray,
               adjacency: sp.spmatrix) -> dict[str, np.ndarray]:
        """Raw head outputs per task (softmax is monotone — skip it)."""
        hidden = np.ascontiguousarray(features, dtype=self.dtype)
        adj = adjacency.astype(self.dtype)
        for weight, bias, width in self._convs:
            neighborhood = adj @ hidden
            stacked = np.concatenate([hidden, neighborhood], axis=1)
            hidden = self._affine(stacked, weight, bias, width)
            np.maximum(hidden, 0.0, out=hidden)
        return self._head_logits(hidden)

    def _head_logits(self, hidden: np.ndarray) -> dict[str, np.ndarray]:
        shared_w, shared_b, shared_width = self._shared
        shared = self._affine(hidden, shared_w, shared_b, shared_width)
        np.maximum(shared, 0.0, out=shared)
        return {
            task: self._affine(shared, weight, bias, width)
            for task, (weight, bias, width) in self._heads.items()
        }

    def _window_logits(self, features: np.ndarray, adjacency: sp.spmatrix,
                       plan):
        """Yield ``(targets, head_logits)`` per window of ``plan``.

        Only the live window's halo activations are resident at any point:
        layer ``j`` reads block ``B_j`` and writes rows ``B_{j+1}``, with the
        self rows gathered by ``searchsorted`` (blocks are sorted and
        nested).  The sub-CSR slice keeps the parent's per-row entry order,
        so every multiply-accumulate happens in the full-graph order.
        """
        from repro.learn.data import halo_blocks, sub_adjacency

        if plan.num_hops != len(self._convs):
            raise ValueError(
                f"plan was built for {plan.num_hops} conv layers, "
                f"kernel has {len(self._convs)}"
            )
        if plan.num_nodes != features.shape[0]:
            raise ValueError(
                f"plan covers {plan.num_nodes} nodes, "
                f"features have {features.shape[0]}"
            )
        for window in plan.windows:
            blocks = halo_blocks(adjacency, window.targets, len(self._convs))
            hidden = np.ascontiguousarray(features[blocks[0]], dtype=self.dtype)
            for j, (weight, bias, width) in enumerate(self._convs):
                rows, cols = blocks[j + 1], blocks[j]
                sub = sub_adjacency(adjacency, rows, cols).astype(self.dtype)
                neighborhood = sub @ hidden
                self_rows = hidden[np.searchsorted(cols, rows)]
                stacked = np.concatenate([self_rows, neighborhood], axis=1)
                hidden = self._affine(stacked, weight, bias, width)
                np.maximum(hidden, 0.0, out=hidden)
            yield window.targets, self._head_logits(hidden)

    def logits_streamed(self, features: np.ndarray, adjacency: sp.spmatrix,
                        plan) -> dict[str, np.ndarray]:
        """Full-size logits assembled window by window.

        Bit-identical to :meth:`logits`; peak *activation* memory is the
        plan's window budget (the returned ``N x classes`` arrays still
        scale with the graph — use :meth:`predict_streamed` when only
        labels are needed).
        """
        num_nodes = features.shape[0]
        out: dict[str, np.ndarray] | None = None
        for targets, head_logits in self._window_logits(features, adjacency, plan):
            if out is None:
                out = {
                    task: np.empty((num_nodes, arr.shape[1]), dtype=arr.dtype)
                    for task, arr in head_logits.items()
                }
            for task, arr in head_logits.items():
                out[task][targets] = arr
        if out is None:
            out = {
                task: np.empty((num_nodes, width), dtype=self.dtype)
                for task, (_, _, width) in self._heads.items()
            }
        return out

    def predict(self, features: np.ndarray,
                adjacency: sp.spmatrix) -> dict[str, np.ndarray]:
        """Hard labels per task, matching :meth:`GamoraNet.predict`."""
        logits = self.logits(features, adjacency)
        if self.single_task:
            return decode_single_task(np.argmax(logits["single"], axis=1))
        return {task: np.argmax(out, axis=1) for task, out in logits.items()}

    def predict_streamed(self, features: np.ndarray, adjacency: sp.spmatrix,
                         plan) -> dict[str, np.ndarray]:
        """Hard labels via the streamed pass — bit-identical to :meth:`predict`.

        Logits are reduced to labels inside each window, so the resident
        footprint is one window's halo plus the ``N``-length label arrays.
        """
        num_nodes = features.shape[0]
        if self.single_task:
            single = np.empty(num_nodes, dtype=np.intp)
            for targets, logits in self._window_logits(features, adjacency, plan):
                single[targets] = np.argmax(logits["single"], axis=1)
            return decode_single_task(single)
        out = {task: np.empty(num_nodes, dtype=np.intp) for task in self._heads}
        for targets, logits in self._window_logits(features, adjacency, plan):
            for task, arr in logits.items():
                out[task][targets] = np.argmax(arr, axis=1)
        return out

    __call__ = predict


def compile_inference(model: GamoraNet, dtype=np.float32) -> FastInference:
    """Snapshot ``model``'s weights into a ``dtype`` inference kernel."""
    return FastInference(model, dtype=dtype)
