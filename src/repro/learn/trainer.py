"""Level-windowed multi-task training loop (paper Eq. 2).

Training follows the paper's protocol — small multipliers as training
graphs, Adam, and the weighted multi-task NLL ``L = alpha*l1 + beta*l2 +
gamma*l3`` with ``alpha = 0.8``, ``beta = gamma = 1`` — but runs it over
the same level-windowed execution plan streamed inference uses:

* With no byte budget (``TrainConfig.max_window_bytes is None``) the epoch
  driver runs the degenerate one-window plan — the classic full-batch loop,
  same numerics, same code path.
* With a budget, :meth:`~repro.learn.data.GraphData.window_plan` (in
  training mode, which prices the backward tape and carries per-window
  label/mask slices) covers the node set with memory-bounded windows; each
  epoch shuffles the window order (seeded), computes the loss on every
  window's targets with gradients flowing through its K-hop halo, and
  accumulates gradients across windows.  Because each window's NLL is
  normalized by the *whole-graph* mask total, the accumulate-all-then-step
  schedule (the ``step_every=0`` default) reproduces the full-batch
  gradient to float tolerance — peak memory becomes a budget knob without
  changing what is learned.  ``step_every=k`` instead steps every ``k``
  windows with per-window normalization (classic minibatch SGD).

``TrainConfig.checkpoint_every``/``checkpoint_path`` make long windowed
runs preemption-safe: checkpoints capture the model, the Adam moments, and
the shuffle RNG state, and a run restarted on an existing checkpoint
continues bit-identically to one that was never interrupted.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.learn.data import (
    GraphData,
    WindowPlan,
    batch_graphs,
    unbatch_predictions,
)
from repro.learn.metrics import multitask_accuracy
from repro.learn.model import GamoraNet, ModelConfig, encode_single_task
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Tensor
from repro.utils.rng import seeded_rng

__all__ = [
    "TrainConfig",
    "train_model",
    "evaluate_model",
    "predict_labels",
    "predict_labels_many",
    "plan_training_windows",
    "epoch_gradients",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
]

CHECKPOINT_VERSION = 1


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (model shape lives in ModelConfig)."""

    epochs: int = 220
    lr: float = 0.01
    weight_decay: float = 0.0
    alpha: float = 0.8  # Task 1 (roots) weight — paper Sec. III-B2
    beta: float = 1.0  # Task 2 (XOR) weight
    gamma: float = 1.0  # Task 3 (MAJ) weight
    log_every: int = 0  # 0 = silent
    history: bool = True
    # --- windowed execution plan ---------------------------------------
    max_window_bytes: int | None = None  # None = the one-window full batch
    seed: int | None = None  # window-order shuffle seed (None = repo default)
    shuffle: bool = True  # shuffle window order each epoch (seeded)
    step_every: int = 0  # 0 = accumulate all windows, one step per epoch;
    #                      k>0 = optimizer step every k windows (minibatch)
    # --- checkpoint/resume ---------------------------------------------
    checkpoint_every: int = 0  # epochs between checkpoints (0 = off)
    checkpoint_path: str | None = None  # resumed from when it exists


def plan_training_windows(data: GraphData, model: GamoraNet,
                          max_window_bytes: int | None) -> WindowPlan:
    """The execution plan one training epoch iterates.

    ``None`` budget: the degenerate one-window plan (full-batch training).
    Otherwise the level-windowed cover priced with the backward-pass cost
    model, each window carrying its label/mask slices.
    """
    if max_window_bytes is None:
        return data.full_window_plan(model, training=True)
    return data.window_plan(max_window_bytes, model, training=True)


def _window_labels(data: GraphData, window) -> dict[str, np.ndarray]:
    if window.labels is not None:
        return window.labels
    assert data.labels is not None, "training requires labels"
    return {task: array[window.targets] for task, array in data.labels.items()}


def _window_mask(data: GraphData, window) -> np.ndarray:
    mask = window.mask if window.mask is not None \
        else data.node_mask()[window.targets]
    return mask.astype(np.float64)


def _window_loss(model: GamoraNet, data: GraphData, window,
                 config: TrainConfig, normalizer: float) -> Tensor:
    """Weighted multi-task NLL over one window's targets.

    The forward pass runs on the window's halo blocks only; ``normalizer``
    replaces the per-call weight total in the NLL so that window losses sum
    to the full-batch loss when it is the whole-graph mask total.
    """
    log_probs = model.forward_window(data.features, data.adjacency,
                                     window.targets)
    labels = _window_labels(data, window)
    weight = _window_mask(data, window)
    if model.config.single_task:
        combined = encode_single_task(labels)
        return log_probs["single"].nll_loss(combined, weight,
                                            total_weight=normalizer)
    weights = {"root": config.alpha, "xor": config.beta, "maj": config.gamma}
    total = None
    for task, task_weight in weights.items():
        scaled = log_probs[task].nll_loss(labels[task], weight,
                                          total_weight=normalizer) * task_weight
        total = scaled if total is None else total + scaled
    return total


def epoch_gradients(model: GamoraNet, data: GraphData,
                    train_config: TrainConfig | None = None,
                    plan: WindowPlan | None = None) -> dict[str, np.ndarray]:
    """Accumulated parameter gradients of one epoch, without stepping.

    Iterates the plan's windows in order (no shuffle — gradient addition is
    order-independent up to float rounding anyway), backpropagating each
    window's globally-normalized loss so the accumulated result equals the
    full-batch gradient to float tolerance.  The equivalence test pins this
    against the degenerate one-window plan.
    """
    config = train_config or TrainConfig()
    if plan is None:
        plan = plan_training_windows(data, model, config.max_window_bytes)
    total_weight = float(data.node_mask().astype(np.float64).sum())
    model.zero_grad()
    for window in plan.windows:
        if float(_window_mask(data, window).sum()) == 0.0:
            continue  # zero-weight rows contribute nothing in full batch
        loss = _window_loss(model, data, window, config, total_weight)
        loss.backward()
        # Drop the tape before the next window's forward pass — otherwise
        # two windows' activations coexist and the peak doubles.
        del loss
    return {
        name: (param.grad.copy() if param.grad is not None
               else np.zeros_like(param.data))
        for name, param in model.named_parameters()
    }


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
def save_checkpoint(path: str | Path, model: GamoraNet, optimizer: Optimizer,
                    rng: np.random.Generator, next_epoch: int,
                    history: list[dict]) -> None:
    """Atomically persist everything a bit-identical resume needs.

    Model weights, optimizer slots (Adam moments + step count, or SGD
    velocity), the window-shuffle RNG state, the epoch cursor, and the
    history so far.  Written to a temp file and renamed, so a run preempted
    mid-save leaves the previous checkpoint intact.
    """
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        f"param:{name}": value for name, value in model.state_dict().items()
    }
    opt_state = dict(optimizer.state_dict())
    slots = {
        name: opt_state.pop(name)
        for name in ("m", "v", "velocity") if name in opt_state
    }
    for name, arrays in slots.items():
        for index, array in enumerate(arrays):
            payload[f"opt_{name}:{index}"] = array
    meta = {
        "version": CHECKPOINT_VERSION,
        "next_epoch": int(next_epoch),
        "optimizer": {**opt_state, "slots": sorted(slots)},
        "rng_state": rng.bit_generator.state,
        "history": history,
        "model_config": model.config.to_dict(),
    }
    payload["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as stream:
        np.savez(stream, **payload)
    os.replace(tmp, path)


def load_checkpoint(path: str | Path, model: GamoraNet,
                    optimizer: Optimizer,
                    rng: np.random.Generator | None = None
                    ) -> tuple[int, list[dict]]:
    """Restore a :func:`save_checkpoint` archive into live objects.

    Validates the model configuration (a checkpoint written for a different
    architecture must fail loudly, not load garbage), then restores weights,
    optimizer slots, and — when ``rng`` is given — the shuffle RNG state.
    Returns ``(next_epoch, history)``.
    """
    path = Path(path)
    archive = np.load(path, allow_pickle=False)
    meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
    if meta["version"] != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path}: version {meta['version']} != "
            f"{CHECKPOINT_VERSION}"
        )
    if meta["model_config"] != model.config.to_dict():
        raise ValueError(
            f"checkpoint {path} was written for a different model config: "
            f"{meta['model_config']} != {model.config.to_dict()}"
        )
    model.load_state_dict({
        key[len("param:"):]: archive[key]
        for key in archive.files if key.startswith("param:")
    })
    opt_state = {k: v for k, v in meta["optimizer"].items() if k != "slots"}
    for name in meta["optimizer"]["slots"]:
        opt_state[name] = [
            archive[f"opt_{name}:{index}"]
            for index in range(len(optimizer.parameters))
        ]
    optimizer.load_state_dict(opt_state)
    if rng is not None:
        rng.bit_generator.state = meta["rng_state"]
    return int(meta["next_epoch"]), list(meta["history"])


# ----------------------------------------------------------------------
# The epoch driver
# ----------------------------------------------------------------------
def train_model(train_graphs: list[GraphData] | GraphData,
                model_config: ModelConfig | None = None,
                train_config: TrainConfig | None = None,
                model: GamoraNet | None = None,
                plan: WindowPlan | None = None) -> tuple[GamoraNet, list[dict]]:
    """Train a (fresh or provided) GamoraNet on one or more graphs.

    Multiple graphs are merged block-diagonally — training over their
    disjoint union, which is how "trained with Mult2–Mult8" sweeps combine
    sizes.  Every epoch iterates the windowed execution plan (see the
    module docstring; pass ``plan`` to reuse a precomputed one), so peak
    training memory follows ``TrainConfig.max_window_bytes`` instead of
    circuit size.  Returns the model and an epoch history of losses,
    training accuracies, and the plan's ``num_windows``/
    ``peak_window_bytes``.
    """
    if isinstance(train_graphs, GraphData):
        data = train_graphs
    else:
        data = train_graphs[0] if len(train_graphs) == 1 else batch_graphs(train_graphs)
    config = train_config or TrainConfig()
    if model is None:
        model = GamoraNet(model_config)
    model.train()
    optimizer = Adam(model.parameters(), lr=config.lr,
                     weight_decay=config.weight_decay)
    rng = seeded_rng(config.seed)
    if plan is None:
        plan = plan_training_windows(data, model, config.max_window_bytes)
    plan_record = {
        "num_windows": plan.num_windows,
        "peak_window_bytes": plan.peak_window_bytes,
    }
    total_weight = float(data.node_mask().astype(np.float64).sum())
    history: list[dict] = []
    start_epoch = 0
    checkpoint = (
        Path(config.checkpoint_path) if config.checkpoint_path else None
    )
    if checkpoint is not None and checkpoint.exists():
        start_epoch, history = load_checkpoint(checkpoint, model, optimizer,
                                               rng)
    for epoch in range(start_epoch, config.epochs):
        order = np.arange(plan.num_windows)
        if config.shuffle and plan.num_windows > 1:
            order = rng.permutation(plan.num_windows)
        optimizer.zero_grad()
        epoch_loss = 0.0
        pending = 0
        for index in order:
            window = plan.windows[int(index)]
            window_weight = float(_window_mask(data, window).sum())
            if window_weight == 0.0:
                continue  # all rows masked: contributes nothing to the loss
            normalizer = window_weight if config.step_every else total_weight
            loss = _window_loss(model, data, window, config, normalizer)
            loss.backward()
            epoch_loss += float(loss.data) * (normalizer / total_weight)
            # Drop the tape before the next window's forward pass — the
            # window budget prices one window's activations, not two.
            del loss
            pending += 1
            if config.step_every and pending >= config.step_every:
                optimizer.step()
                optimizer.zero_grad()
                pending = 0
        if not config.step_every or pending:
            optimizer.step()
        if config.history and (
            config.log_every and epoch % config.log_every == 0
            or epoch == config.epochs - 1
        ):
            metrics = evaluate_model(model, data,
                                     max_window_bytes=config.max_window_bytes)
            record = {"epoch": epoch, "loss": epoch_loss, **plan_record,
                      **metrics}
            history.append(record)
            if config.log_every:
                print(
                    f"epoch {epoch:4d}  loss {epoch_loss:.4f}  "
                    f"mean acc {metrics['mean']:.4f}"
                )
        if (
            checkpoint is not None and config.checkpoint_every
            and ((epoch + 1) % config.checkpoint_every == 0
                 or epoch == config.epochs - 1)
        ):
            save_checkpoint(checkpoint, model, optimizer, rng, epoch + 1,
                            history)
    model.eval()
    return model, history


def predict_labels(model: GamoraNet, data: GraphData) -> dict[str, np.ndarray]:
    """Hard per-task predictions for every node of ``data``."""
    return model.predict(data.features, data.adjacency)


def predict_labels_many(model: GamoraNet,
                        graphs: list[GraphData]) -> list[dict[str, np.ndarray]]:
    """Predictions for many graphs through one block-diagonal forward pass.

    The graphs are merged block-diagonally, inferred in a single vectorized
    pass, and the per-node predictions are split back out per graph (same
    order as the input).  Label-identical to calling :func:`predict_labels`
    per graph — the equivalence is covered by ``tests/test_serve_batching.py``.
    """
    if not graphs:
        return []
    merged = graphs[0] if len(graphs) == 1 else batch_graphs(graphs)
    merged_predictions = predict_labels(model, merged)
    return unbatch_predictions(merged_predictions, [g.num_nodes for g in graphs])


def evaluate_model(model: GamoraNet, data: GraphData,
                   max_window_bytes: int | None = None) -> dict[str, float]:
    """Per-task / mean / joint accuracy against the graph's labels.

    With ``max_window_bytes`` set and the full-graph inference footprint
    above it, predictions run through the compiled kernel's streamed pass
    (:meth:`~repro.learn.fast.FastInference.predict_streamed`) — so
    in-training evaluation of a windowed run never reintroduces the
    full-graph memory peak the trainer just avoided.  Small graphs keep the
    exact float64 forward pass.
    """
    if data.labels is None:
        raise ValueError("evaluation requires ground-truth labels")
    if max_window_bytes is not None:
        from repro.learn.fast import compile_inference
        from repro.learn.infer import estimate_inference_memory

        kernel = compile_inference(model)
        if estimate_inference_memory(
            kernel, data.num_nodes, data.num_edges
        ) > max_window_bytes:
            window_plan = data.window_plan(max_window_bytes, kernel)
            predictions = kernel.predict_streamed(
                data.features, data.adjacency, window_plan
            )
            return multitask_accuracy(predictions, data.labels,
                                      data.node_mask())
    predictions = predict_labels(model, data)
    return multitask_accuracy(predictions, data.labels, data.node_mask())
