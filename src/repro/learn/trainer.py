"""Full-batch multi-task training loop (paper Eq. 2).

Training follows the paper's protocol: small multipliers as training
graphs, full-batch Adam, and the weighted multi-task NLL
``L = alpha*l1 + beta*l2 + gamma*l3`` with ``alpha = 0.8``,
``beta = gamma = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.learn.data import GraphData, batch_graphs, unbatch_predictions
from repro.learn.metrics import multitask_accuracy
from repro.learn.model import GamoraNet, ModelConfig, decode_single_task, encode_single_task
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor

__all__ = [
    "TrainConfig",
    "train_model",
    "evaluate_model",
    "predict_labels",
    "predict_labels_many",
]


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (model shape lives in ModelConfig)."""

    epochs: int = 220
    lr: float = 0.01
    weight_decay: float = 0.0
    alpha: float = 0.8  # Task 1 (roots) weight — paper Sec. III-B2
    beta: float = 1.0  # Task 2 (XOR) weight
    gamma: float = 1.0  # Task 3 (MAJ) weight
    log_every: int = 0  # 0 = silent
    history: bool = True


def _loss_terms(model: GamoraNet, data: GraphData,
                config: TrainConfig) -> tuple[Tensor, dict[str, Tensor]]:
    assert data.labels is not None, "training requires labels"
    mask = data.node_mask().astype(np.float64)
    log_probs = model(data.features, data.adjacency)
    if model.config.single_task:
        combined = encode_single_task(data.labels)
        loss = log_probs["single"].nll_loss(combined, mask)
        return loss, {"single": loss}
    weights = {"root": config.alpha, "xor": config.beta, "maj": config.gamma}
    terms = {
        task: log_probs[task].nll_loss(data.labels[task], mask)
        for task in weights
    }
    total = None
    for task, weight in weights.items():
        scaled = terms[task] * weight
        total = scaled if total is None else total + scaled
    return total, terms


def train_model(train_graphs: list[GraphData] | GraphData,
                model_config: ModelConfig | None = None,
                train_config: TrainConfig | None = None,
                model: GamoraNet | None = None) -> tuple[GamoraNet, list[dict]]:
    """Train a (fresh or provided) GamoraNet on one or more graphs.

    Multiple graphs are merged block-diagonally — full-batch training over
    their disjoint union, which is how "trained with Mult2–Mult8" sweeps
    combine sizes.  Returns the model and an epoch history of losses and
    training accuracies.
    """
    if isinstance(train_graphs, GraphData):
        data = train_graphs
    else:
        data = train_graphs[0] if len(train_graphs) == 1 else batch_graphs(train_graphs)
    train_config = train_config or TrainConfig()
    if model is None:
        model = GamoraNet(model_config)
    model.train()
    optimizer = Adam(model.parameters(), lr=train_config.lr,
                     weight_decay=train_config.weight_decay)
    history: list[dict] = []
    for epoch in range(train_config.epochs):
        optimizer.zero_grad()
        loss, _terms = _loss_terms(model, data, train_config)
        loss.backward()
        optimizer.step()
        if train_config.history and (
            train_config.log_every and epoch % train_config.log_every == 0
            or epoch == train_config.epochs - 1
        ):
            metrics = evaluate_model(model, data)
            record = {"epoch": epoch, "loss": float(loss.data), **metrics}
            history.append(record)
            if train_config.log_every:
                print(
                    f"epoch {epoch:4d}  loss {float(loss.data):.4f}  "
                    f"mean acc {metrics['mean']:.4f}"
                )
    model.eval()
    return model, history


def predict_labels(model: GamoraNet, data: GraphData) -> dict[str, np.ndarray]:
    """Hard per-task predictions for every node of ``data``."""
    return model.predict(data.features, data.adjacency)


def predict_labels_many(model: GamoraNet,
                        graphs: list[GraphData]) -> list[dict[str, np.ndarray]]:
    """Predictions for many graphs through one block-diagonal forward pass.

    The graphs are merged block-diagonally, inferred in a single vectorized
    pass, and the per-node predictions are split back out per graph (same
    order as the input).  Label-identical to calling :func:`predict_labels`
    per graph — the equivalence is covered by ``tests/test_serve_batching.py``.
    """
    if not graphs:
        return []
    merged = graphs[0] if len(graphs) == 1 else batch_graphs(graphs)
    merged_predictions = predict_labels(model, merged)
    return unbatch_predictions(merged_predictions, [g.num_nodes for g in graphs])


def evaluate_model(model: GamoraNet, data: GraphData) -> dict[str, float]:
    """Per-task / mean / joint accuracy against the graph's labels."""
    if data.labels is None:
        raise ValueError("evaluation requires ground-truth labels")
    predictions = predict_labels(model, data)
    return multitask_accuracy(predictions, data.labels, data.node_mask())
