"""Wall-clock timing helpers used by benchmarks and the runtime figures."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start time (for manual lap timing)."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering of a duration, e.g. ``'1.23 ms'``.

    >>> format_seconds(0.00123)
    '1.23 ms'
    >>> format_seconds(75.0)
    '1m 15.0s'
    """
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m {rem:.1f}s"
