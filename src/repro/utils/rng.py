"""Deterministic random number generation for reproducible experiments."""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20230612  # arXiv v2 date of the Gamora paper.


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator` with a fixed default seed.

    All stochastic components (weight init, dropout, random simulation
    patterns) draw from generators created here so experiments replay
    bit-identically.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
