"""Random AIG generation for fuzz-style property testing.

Every layer of the repo (I/O round-trips, cut functions, technology
mapping, CEC, transforms) is exercised against arbitrary well-formed AIGs,
not just multipliers.  The generator draws a random DAG of AND gates over
randomly complemented fan-ins; topological validity holds by construction.
"""

from __future__ import annotations

from repro.aig.graph import AIG, lit_not, make_lit
from repro.utils.rng import seeded_rng

__all__ = ["random_aig"]


def random_aig(num_inputs: int = 6, num_ands: int = 30, num_outputs: int = 4,
               seed: int | None = None, allow_constants: bool = False,
               name: str | None = None) -> AIG:
    """Draw a random combinational AIG.

    Fan-ins are sampled from all earlier variables with random complement
    bits, so structures include reconvergence, deep chains, and (because
    :meth:`AIG.add_and` folds) occasional constant/alias collapses.
    Outputs are random literals; with ``allow_constants`` they may also be
    constant or PI literals, which stresses boundary handling in consumers.
    """
    if num_inputs < 1:
        raise ValueError("need at least one input")
    rng = seeded_rng(seed)
    aig = AIG(name=name or f"random_{num_inputs}x{num_ands}_s{seed}")
    aig.add_inputs(num_inputs)

    literals = [make_lit(var) for var in aig.input_vars()]
    for _ in range(num_ands):
        first = literals[int(rng.integers(0, len(literals)))]
        second = literals[int(rng.integers(0, len(literals)))]
        if rng.random() < 0.5:
            first = lit_not(first)
        if rng.random() < 0.5:
            second = lit_not(second)
        lit = aig.add_and(first, second)
        if lit > 1:  # don't accumulate constants as fan-in candidates
            literals.append(lit)

    pool = literals if allow_constants else literals[num_inputs:] or literals
    for index in range(num_outputs):
        lit = pool[int(rng.integers(0, len(pool)))]
        if rng.random() < 0.5:
            lit = lit_not(lit)
        if allow_constants and rng.random() < 0.1:
            lit = int(rng.integers(0, 2))
        aig.add_output(lit, f"o{index}")
    return aig
