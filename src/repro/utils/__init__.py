"""Small shared utilities: timing, RNG seeding, array and formatting helpers."""

from repro.utils.timing import Timer, format_seconds
from repro.utils.rng import seeded_rng
from repro.utils.arrays import ragged_gather

__all__ = ["Timer", "format_seconds", "seeded_rng", "ragged_gather"]
