"""Small shared utilities: timing, RNG seeding, and formatting helpers."""

from repro.utils.timing import Timer, format_seconds
from repro.utils.rng import seeded_rng

__all__ = ["Timer", "format_seconds", "seeded_rng"]
