"""Shared NumPy index-arithmetic helpers for the vectorized sweeps."""

from __future__ import annotations

import numpy as np

__all__ = ["ragged_gather", "in_sorted", "sorted_unique"]


def in_sorted(values: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted 1D int64 key array.

    One ``searchsorted`` plus a gather — the hash-free membership probe the
    array-native pipeline uses everywhere a legacy path would build a set.
    """
    if len(sorted_keys) == 0:
        return np.zeros(len(values), dtype=bool)
    index = np.searchsorted(sorted_keys, values)
    np.minimum(index, len(sorted_keys) - 1, out=index)
    return sorted_keys[index] == values


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` for int64 keys via one sort.

    NumPy's hash-based integer ``unique`` costs several ms per call at the
    sizes the cone sweep sees; a sort plus one neighbor compare is an order
    of magnitude cheaper and additionally guarantees sorted output.
    """
    if len(values) < 2:
        return np.sort(values)
    ordered = np.sort(values)
    return ordered[np.r_[True, ordered[1:] != ordered[:-1]]]


def ragged_gather(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Flat indices of the ``[starts[i], ends[i])`` slices, concatenated.

    The standard CSR expansion: given per-row slice bounds into one flat
    array, produce the gather index that visits every row's slice in row
    order.  Used by the level wavefront (consumer expansion) and the
    pairing engine (cut-group and carry-pool expansion) — one home so the
    subtle ``repeat``/``cumsum`` arithmetic exists exactly once.
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return np.repeat(starts - offsets[:-1], counts) + np.arange(total)
