"""Shared NumPy index-arithmetic helpers for the vectorized sweeps."""

from __future__ import annotations

import numpy as np

__all__ = ["ragged_gather"]


def ragged_gather(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Flat indices of the ``[starts[i], ends[i])`` slices, concatenated.

    The standard CSR expansion: given per-row slice bounds into one flat
    array, produce the gather index that visits every row's slice in row
    order.  Used by the level wavefront (consumer expansion) and the
    pairing engine (cut-group and carry-pool expansion) — one home so the
    subtle ``repeat``/``cumsum`` arithmetic exists exactly once.
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return np.repeat(starts - offsets[:-1], counts) + np.arange(total)
