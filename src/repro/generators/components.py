"""Gate-level arithmetic building blocks (half/full adders) with tracing.

Generators record every half/full adder they instantiate.  These records are
*construction* ground truth: tests cross-check them against what the exact
reasoner recovers, and the word-level report uses them to validate extracted
adder trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG, CONST0, CONST1, lit_not, lit_var

__all__ = ["AdderInstance", "AdderTrace", "half_adder", "full_adder"]


@dataclass(frozen=True)
class AdderInstance:
    """One instantiated adder bit-slice.

    ``inputs`` are the operand literals, ``sum`` / ``carry`` the output
    literals.  ``kind`` is ``"FA"`` or ``"HA"``.
    """

    kind: str
    inputs: tuple[int, ...]
    sum: int
    carry: int

    @property
    def sum_var(self) -> int:
        return lit_var(self.sum)

    @property
    def carry_var(self) -> int:
        return lit_var(self.carry)


@dataclass
class AdderTrace:
    """Collects :class:`AdderInstance` records during construction."""

    adders: list[AdderInstance] = field(default_factory=list)

    def record(self, aig: AIG, kind: str, inputs: tuple[int, ...],
               sum_lit: int, carry_lit: int) -> None:
        """Record an adder, but only when it survived constant folding.

        Structural hashing can collapse an adder whose operands are
        constants or duplicates; such degenerate slices have no XOR/MAJ
        roots and must not appear in the ground truth.
        """
        if not (aig.is_and(lit_var(sum_lit)) and aig.is_and(lit_var(carry_lit))):
            return
        self.adders.append(AdderInstance(kind, inputs, sum_lit, carry_lit))

    @property
    def num_full_adders(self) -> int:
        return sum(1 for a in self.adders if a.kind == "FA")

    @property
    def num_half_adders(self) -> int:
        return sum(1 for a in self.adders if a.kind == "HA")

    def sum_vars(self) -> set[int]:
        return {a.sum_var for a in self.adders}

    def carry_vars(self) -> set[int]:
        return {a.carry_var for a in self.adders}


def half_adder(aig: AIG, a: int, b: int,
               trace: AdderTrace | None = None) -> tuple[int, int]:
    """Half adder: ``sum = a ⊕ b``, ``carry = a · b`` (3 + 1 AND nodes)."""
    sum_lit = aig.add_xor(a, b)
    carry_lit = aig.add_and(a, b)
    if trace is not None:
        trace.record(aig, "HA", (a, b), sum_lit, carry_lit)
    return sum_lit, carry_lit


def full_adder(aig: AIG, a: int, b: int, c: int,
               trace: AdderTrace | None = None) -> tuple[int, int]:
    """Full adder in the standard shared-XOR form ABC's generators emit.

    ``sum = (a ⊕ b) ⊕ c`` and ``carry = a·b + c·(a ⊕ b)`` — the carry is
    functionally MAJ3(a, b, c) and its root is NPN-equivalent to MAJ, which
    is exactly what the reasoner must detect.  Constant operands degrade the
    slice to a half adder (or to bare wires), mirroring how logic synthesis
    folds boundary slices.
    """
    operands = [a, b, c]
    for index, lit in enumerate(operands):
        if lit == CONST0:
            rest = [x for k, x in enumerate(operands) if k != index]
            return half_adder(aig, rest[0], rest[1], trace)
        if lit == CONST1:
            # a + b + 1: sum = ¬(a ⊕ b), carry = a + b.  The XOR root is the
            # same AND node (complemented), the carry is an OR — i.e. a
            # complemented AND over negated operands, still NPN-MAJ.
            rest = [x for k, x in enumerate(operands) if k != index]
            sum_lit = lit_not(aig.add_xor(rest[0], rest[1]))
            carry_lit = aig.add_or(rest[0], rest[1])
            if trace is not None:
                trace.record(aig, "HA", (rest[0], rest[1]), sum_lit, carry_lit)
            return sum_lit, carry_lit

    xor_ab = aig.add_xor(a, b)
    sum_lit = aig.add_xor(xor_ab, c)
    carry_lit = aig.add_or(aig.add_and(a, b), aig.add_and(c, xor_ab))
    if trace is not None:
        trace.record(aig, "FA", (a, b, c), sum_lit, carry_lit)
    return sum_lit, carry_lit
