"""Datapath generators beyond plain multipliers.

The paper motivates reasoning with verification and *datapath synthesis*;
these blocks give the examples and tests realistic adder-tree workloads
that are not bare multipliers:

* :func:`multi_operand_adder` — an N-operand carry-save adder tree;
* :func:`multiply_accumulate` — ``a*b + c`` (MAC), the canonical DSP block;
* :func:`dot_product` — ``sum a_i * b_i`` with a shared reduction tree;
* :func:`squarer` — ``a*a`` with folded symmetric partial products.

All are built from the traced components, so exact reasoning and Gamora
can both recover their adder trees, and all are validated bit-exactly
against Python integer arithmetic in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG, CONST0
from repro.generators.adders import Columns, reduce_columns, ripple_merge_columns
from repro.generators.components import AdderTrace

__all__ = [
    "GeneratedDatapath",
    "multi_operand_adder",
    "multiply_accumulate",
    "dot_product",
    "squarer",
]


@dataclass
class GeneratedDatapath:
    """A generated datapath block plus construction metadata."""

    aig: AIG
    kind: str
    operand_literals: list[list[int]] = field(default_factory=list)
    trace: AdderTrace = field(default_factory=AdderTrace)

    @property
    def name(self) -> str:
        return self.aig.name


def _emit_word(aig: AIG, columns: Columns, trace: AdderTrace,
               num_bits: int) -> None:
    word = ripple_merge_columns(aig, reduce_columns(aig, columns, trace=trace),
                                trace=trace)
    word = (word + [CONST0] * num_bits)[:num_bits]
    for index, bit in enumerate(word):
        aig.add_output(bit, f"s{index}")


def multi_operand_adder(width: int, num_operands: int,
                        name: str | None = None) -> GeneratedDatapath:
    """Sum of ``num_operands`` unsigned ``width``-bit words."""
    if width < 1 or num_operands < 2:
        raise ValueError("need width >= 1 and at least two operands")
    aig = AIG(name=name or f"add{num_operands}x{width}")
    operands = [aig.add_inputs(width, prefix=f"x{k}_") for k in range(num_operands)]
    trace = AdderTrace()
    columns: Columns = {}
    for bits in operands:
        for position, lit in enumerate(bits):
            columns.setdefault(position, []).append(lit)
    extra = max(1, (num_operands - 1).bit_length())
    _emit_word(aig, columns, trace, width + extra)
    return GeneratedDatapath(aig, "multi_operand_adder", operands, trace)


def _partial_product_columns(aig: AIG, a_bits: list[int],
                             b_bits: list[int]) -> Columns:
    columns: Columns = {}
    for i, b_lit in enumerate(b_bits):
        for j, a_lit in enumerate(a_bits):
            bit = aig.add_and(a_lit, b_lit)
            if bit != CONST0:
                columns.setdefault(i + j, []).append(bit)
    return columns


def multiply_accumulate(width: int, acc_width: int | None = None,
                        name: str | None = None) -> GeneratedDatapath:
    """``a * b + c`` with an accumulator fused into the reduction tree."""
    if width < 1:
        raise ValueError("width must be positive")
    acc_width = acc_width if acc_width is not None else 2 * width
    aig = AIG(name=name or f"mac{width}")
    a_bits = aig.add_inputs(width, prefix="a")
    b_bits = aig.add_inputs(width, prefix="b")
    c_bits = aig.add_inputs(acc_width, prefix="c")
    trace = AdderTrace()
    columns = _partial_product_columns(aig, a_bits, b_bits)
    for position, lit in enumerate(c_bits):
        columns.setdefault(position, []).append(lit)
    _emit_word(aig, columns, trace, max(2 * width, acc_width) + 1)
    return GeneratedDatapath(aig, "mac", [a_bits, b_bits, c_bits], trace)


def dot_product(width: int, num_terms: int,
                name: str | None = None) -> GeneratedDatapath:
    """``sum_k a_k * b_k`` sharing one reduction tree across products."""
    if width < 1 or num_terms < 1:
        raise ValueError("need width >= 1 and at least one term")
    aig = AIG(name=name or f"dot{num_terms}x{width}")
    pairs = []
    for k in range(num_terms):
        pairs.append(aig.add_inputs(width, prefix=f"a{k}_"))
    for k in range(num_terms):
        pairs.append(aig.add_inputs(width, prefix=f"b{k}_"))
    trace = AdderTrace()
    columns: Columns = {}
    for k in range(num_terms):
        product = _partial_product_columns(aig, pairs[k], pairs[num_terms + k])
        for position, bits in product.items():
            columns.setdefault(position, []).extend(bits)
    extra = max(1, num_terms.bit_length())
    _emit_word(aig, columns, trace, 2 * width + extra)
    return GeneratedDatapath(aig, "dot_product", pairs, trace)


def squarer(width: int, name: str | None = None) -> GeneratedDatapath:
    """``a * a`` with the classic symmetric partial-product folding.

    ``a_i a_j + a_j a_i`` collapses to one bit a column up and
    ``a_i a_i = a_i``, so the tree is visibly different from a generic
    multiplier — a structural variant for generalization experiments.
    """
    if width < 1:
        raise ValueError("width must be positive")
    aig = AIG(name=name or f"square{width}")
    a_bits = aig.add_inputs(width, prefix="a")
    trace = AdderTrace()
    columns: Columns = {}
    for i in range(width):
        columns.setdefault(2 * i, []).append(a_bits[i])  # a_i^2 = a_i
        for j in range(i + 1, width):
            bit = aig.add_and(a_bits[i], a_bits[j])
            columns.setdefault(i + j + 1, []).append(bit)  # doubled product
    _emit_word(aig, columns, trace, 2 * width)
    return GeneratedDatapath(aig, "squarer", [a_bits], trace)
