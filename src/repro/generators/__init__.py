"""Benchmark-circuit generators: adders and multipliers in AIG form."""

from repro.generators.components import AdderInstance, AdderTrace, full_adder, half_adder
from repro.generators.adders import (
    Columns,
    reduce_columns,
    ripple_carry_adder,
    ripple_merge_columns,
)
from repro.generators.datapath import (
    GeneratedDatapath,
    dot_product,
    multi_operand_adder,
    multiply_accumulate,
    squarer,
)
from repro.generators.multipliers import (
    GeneratedMultiplier,
    booth_multiplier,
    csa_multiplier,
    make_multiplier,
)

__all__ = [
    "AdderInstance",
    "AdderTrace",
    "full_adder",
    "half_adder",
    "Columns",
    "reduce_columns",
    "ripple_carry_adder",
    "ripple_merge_columns",
    "GeneratedDatapath",
    "dot_product",
    "multi_operand_adder",
    "multiply_accumulate",
    "squarer",
    "GeneratedMultiplier",
    "booth_multiplier",
    "csa_multiplier",
    "make_multiplier",
]
