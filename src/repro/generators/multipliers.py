"""Integer multiplier generators: CSA array and radix-4 Booth.

These are the benchmark family of the paper (Sec. IV-A): unsigned n-bit
multipliers in AIG form, generated the way ABC's generators build them —
AND-gate partial products reduced by traced half/full adders.  The returned
:class:`GeneratedMultiplier` bundles the AIG with operand pin maps and the
construction-time adder trace used as auxiliary ground truth.

Bit-exactness of every generator is enforced by tests against Python integer
multiplication across random operand sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG, CONST0, lit_not
from repro.generators.adders import Columns, reduce_columns, ripple_merge_columns
from repro.generators.components import AdderTrace

__all__ = ["GeneratedMultiplier", "csa_multiplier", "booth_multiplier", "make_multiplier"]


@dataclass
class GeneratedMultiplier:
    """A generated multiplier plus construction metadata."""

    aig: AIG
    width: int
    kind: str  # "csa" or "booth"
    a_literals: list[int] = field(default_factory=list)
    b_literals: list[int] = field(default_factory=list)
    trace: AdderTrace = field(default_factory=AdderTrace)

    @property
    def name(self) -> str:
        return self.aig.name


def _product_columns_csa(aig: AIG, a_bits: list[int], b_bits: list[int]) -> list[Columns]:
    """Partial-product rows ``pp[i][j] = a_j · b_i`` at weight ``2^(i+j)``."""
    rows: list[Columns] = []
    for i, b_lit in enumerate(b_bits):
        row: Columns = {}
        for j, a_lit in enumerate(a_bits):
            bit = aig.add_and(a_lit, b_lit)
            if bit != CONST0:
                row.setdefault(i + j, []).append(bit)
        rows.append(row)
    return rows


def csa_multiplier(width: int, style: str = "array", name: str | None = None) -> GeneratedMultiplier:
    """Unsigned ``width × width`` carry-save multiplier.

    ``style`` selects the reduction: ``'array'`` (default — the CSA array of
    the paper), ``'wallace'`` or ``'dadda'``.
    """
    if width < 1:
        raise ValueError("multiplier width must be positive")
    aig = AIG(name=name or f"mult{width}_csa_{style}")
    a_bits = aig.add_inputs(width, prefix="a")
    b_bits = aig.add_inputs(width, prefix="b")
    trace = AdderTrace()

    rows = _product_columns_csa(aig, a_bits, b_bits)
    if style == "array":
        reduced = reduce_columns(aig, rows, style="array", trace=trace)
    else:
        reduced = reduce_columns(aig, rows, style=style, trace=trace)
    product = ripple_merge_columns(aig, reduced, trace=trace)

    product = (product + [CONST0] * (2 * width))[: 2 * width]
    for index, bit in enumerate(product):
        aig.add_output(bit, f"p{index}")
    return GeneratedMultiplier(aig, width, "csa", a_bits, b_bits, trace)


def _booth_rows(aig: AIG, a_bits: list[int], b_bits: list[int]) -> list[Columns]:
    """Radix-4 Booth partial-product rows for unsigned operands.

    Digit ``d_i = b_{2i-1} + b_{2i} - 2·b_{2i+1}`` (out-of-range ``b`` bits
    are zero) selects ``{-2,-1,0,1,2}·a``.  Each row contributes:

    * magnitude bits ``(single·a_j + double·a_{j-1}) ⊕ neg`` at weight
      ``2^(2i+j)`` for ``j = 0..n``,
    * the two's-complement correction ``neg`` at weight ``2^(2i)``,
    * sign-extension copies of ``neg`` for weights above the magnitude.

    Constant folding silently removes the all-zero entries of the top rows,
    so boundary rows degrade gracefully exactly as in synthesized netlists.
    """
    width = len(a_bits)
    product_bits = 2 * width
    num_rows = width // 2 + 1

    def b_at(index: int) -> int:
        if index < 0 or index >= width:
            return CONST0
        return b_bits[index]

    def a_at(index: int) -> int:
        if index < 0 or index >= width:
            return CONST0
        return a_bits[index]

    rows: list[Columns] = []
    for i in range(num_rows):
        low, mid, high = b_at(2 * i - 1), b_at(2 * i), b_at(2 * i + 1)
        single = aig.add_xor(low, mid)
        double = aig.add_or(
            aig.add_and(high, aig.add_nor(mid, low)),
            aig.add_and(lit_not(high), aig.add_and(mid, low)),
        )
        neg = high
        row: Columns = {}
        shift = 2 * i
        for j in range(width + 1):
            magnitude = aig.add_or(
                aig.add_and(single, a_at(j)), aig.add_and(double, a_at(j - 1))
            )
            bit = aig.add_xor(magnitude, neg)
            if bit != CONST0 and shift + j < product_bits:
                row.setdefault(shift + j, []).append(bit)
        # Two's-complement +1 correction for negative digits.
        if neg != CONST0:
            row.setdefault(shift, []).append(neg)
        # Sign extension of the (width+1)-bit magnitude field.
        for position in range(shift + width + 1, product_bits):
            if neg != CONST0:
                row.setdefault(position, []).append(neg)
        rows.append(row)
    return rows


def booth_multiplier(width: int, style: str = "wallace",
                     name: str | None = None) -> GeneratedMultiplier:
    """Unsigned ``width × width`` radix-4 Booth-encoded multiplier.

    Booth encoding makes the netlist structurally far more complex than the
    CSA array (selector logic, negations, sign extension) — the property the
    paper leans on to stress generalization (Sec. IV-B2).
    """
    if width < 2:
        raise ValueError("booth multiplier needs width >= 2")
    aig = AIG(name=name or f"mult{width}_booth_{style}")
    a_bits = aig.add_inputs(width, prefix="a")
    b_bits = aig.add_inputs(width, prefix="b")
    trace = AdderTrace()

    rows = _booth_rows(aig, a_bits, b_bits)
    reduced = reduce_columns(aig, rows, style=style, trace=trace)
    product = ripple_merge_columns(aig, reduced, trace=trace)

    product = (product + [CONST0] * (2 * width))[: 2 * width]
    for index, bit in enumerate(product):
        aig.add_output(bit, f"p{index}")
    return GeneratedMultiplier(aig, width, "booth", a_bits, b_bits, trace)


def make_multiplier(width: int, kind: str = "csa", **kwargs) -> GeneratedMultiplier:
    """Factory used by benchmark sweeps: ``kind`` in {'csa', 'booth'}."""
    if kind == "csa":
        return csa_multiplier(width, **kwargs)
    if kind == "booth":
        return booth_multiplier(width, **kwargs)
    raise ValueError(f"unknown multiplier kind {kind!r}")
