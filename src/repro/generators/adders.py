"""Word-level adder construction: ripple chains and carry-save reduction.

The carry-save reducers operate on *columns*: ``columns[p]`` is the list of
literals whose weights are ``2^p``.  Three reduction styles are provided —
``array`` (the row-by-row carry-save array of the paper's CSA multipliers),
``wallace`` and ``dadda`` trees — all built exclusively from the traced
half/full adders of :mod:`repro.generators.components`, so their adder trees
are recoverable by symbolic reasoning.
"""

from __future__ import annotations

from repro.aig.graph import AIG, CONST0
from repro.generators.components import AdderTrace, full_adder, half_adder

__all__ = [
    "ripple_carry_adder",
    "reduce_columns",
    "ripple_merge_columns",
    "Columns",
]

Columns = dict[int, list[int]]


def ripple_carry_adder(aig: AIG, a_bits: list[int], b_bits: list[int],
                       carry_in: int = CONST0,
                       trace: AdderTrace | None = None) -> tuple[list[int], int]:
    """Classic ripple-carry adder over two equal-width bit vectors.

    Returns ``(sum_bits, carry_out)``.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    carry = carry_in
    sum_bits = []
    for a, b in zip(a_bits, b_bits):
        bit, carry = full_adder(aig, a, b, carry, trace)
        sum_bits.append(bit)
    return sum_bits, carry


def _add_bit(columns: Columns, position: int, lit: int) -> None:
    if lit == CONST0:
        return
    columns.setdefault(position, []).append(lit)


def _wallace_pass(aig: AIG, columns: Columns, trace: AdderTrace | None) -> Columns:
    result: Columns = {}
    for position in sorted(columns):
        bits = columns[position]
        index = 0
        while len(bits) - index >= 3:
            s, c = full_adder(aig, bits[index], bits[index + 1], bits[index + 2], trace)
            _add_bit(result, position, s)
            _add_bit(result, position + 1, c)
            index += 3
        remaining = bits[index:]
        if len(remaining) == 2:
            s, c = half_adder(aig, remaining[0], remaining[1], trace)
            _add_bit(result, position, s)
            _add_bit(result, position + 1, c)
        elif len(remaining) == 1:
            _add_bit(result, position, remaining[0])
    return result


def _dadda_targets(max_height: int) -> list[int]:
    targets = [2]
    while targets[-1] < max_height:
        targets.append(int(targets[-1] * 3 / 2))
    return targets


def _dadda_pass(aig: AIG, columns: Columns, target: int,
                trace: AdderTrace | None) -> Columns:
    result: Columns = {}
    positions = sorted(columns)
    for position in positions:
        bits = list(columns.pop(position, [])) + list(result.pop(position, []))
        while len(bits) > target:
            if len(bits) == target + 1:
                s, c = half_adder(aig, bits.pop(), bits.pop(), trace)
            else:
                s, c = full_adder(aig, bits.pop(), bits.pop(), bits.pop(), trace)
            bits.append(s)
            _add_bit(result, position + 1, c)
        for lit in bits:
            _add_bit(result, position, lit)
    return result


def _array_accumulate(aig: AIG, rows: list[Columns],
                      trace: AdderTrace | None) -> Columns:
    """Row-by-row carry-save accumulation: the *array* multiplier structure.

    The accumulator keeps at most two bits per column; each new row is folded
    in with one rank of half/full adders whose carries feed the next column,
    exactly like the adder array inside a CSA multiplier layout.
    """
    if not rows:
        return {}
    acc = rows[0]
    for row in rows[1:]:
        next_acc: Columns = {}
        carries: Columns = {}
        position = 0
        limit = max([p for p in acc] + [p for p in row], default=-1)
        while position <= limit or any(p >= position for p in carries):
            bits = acc.get(position, []) + row.get(position, []) + carries.pop(position, [])
            while len(bits) >= 3:
                s, c = full_adder(aig, bits[0], bits[1], bits[2], trace)
                bits = [s] + bits[3:]
                carries.setdefault(position + 1, []).append(c)
            # Up to two bits may remain: the carry-save accumulator
            # tolerates height 2 until the final vector merge.
            for lit in bits:
                _add_bit(next_acc, position, lit)
            position += 1
        acc = next_acc
    return acc


def reduce_columns(aig: AIG, columns_or_rows, style: str = "wallace",
                   trace: AdderTrace | None = None) -> Columns:
    """Reduce partial-product bits to at most two per column.

    ``style='array'`` expects a list of row column-dicts and accumulates them
    sequentially; ``'wallace'`` / ``'dadda'`` expect (or merge into) a single
    column-dict and reduce all columns in parallel passes.
    """
    if style == "array":
        if not isinstance(columns_or_rows, list):
            raise TypeError("array reduction expects a list of row columns")
        return _array_accumulate(aig, columns_or_rows, trace)

    if isinstance(columns_or_rows, list):
        merged: Columns = {}
        for row in columns_or_rows:
            for position, bits in row.items():
                for lit in bits:
                    _add_bit(merged, position, lit)
        columns = merged
    else:
        columns = {p: list(bits) for p, bits in columns_or_rows.items()}

    if style == "wallace":
        while any(len(bits) > 2 for bits in columns.values()):
            columns = _wallace_pass(aig, columns, trace)
        return columns
    if style == "dadda":
        max_height = max((len(bits) for bits in columns.values()), default=0)
        targets = [t for t in reversed(_dadda_targets(max(2, max_height))) if t < max_height]
        for target in targets:
            columns = _dadda_pass(aig, columns, target, trace)
        return columns
    raise ValueError(f"unknown reduction style {style!r}")


def ripple_merge_columns(aig: AIG, columns: Columns,
                         trace: AdderTrace | None = None) -> list[int]:
    """Final vector-merge: ripple the ≤2-bit columns into a single word."""
    if not columns:
        return []
    bits_out: list[int] = []
    carry = CONST0
    top = max(columns)
    for position in range(0, top + 1):
        bits = list(columns.get(position, []))
        if carry != CONST0:
            bits.append(carry)
        carry = CONST0
        if len(bits) == 0:
            bits_out.append(CONST0)
        elif len(bits) == 1:
            bits_out.append(bits[0])
        elif len(bits) == 2:
            s, carry = half_adder(aig, bits[0], bits[1], trace)
            bits_out.append(s)
        elif len(bits) == 3:
            s, carry = full_adder(aig, bits[0], bits[1], bits[2], trace)
            bits_out.append(s)
        else:  # pragma: no cover - reducers guarantee ≤ 2 bits + carry
            raise AssertionError(f"column {position} too tall: {len(bits)}")
    if carry != CONST0:
        bits_out.append(carry)
    return bits_out
