"""Word-level abstraction on top of extracted adder trees.

Groups matched FA/HA slices into the carry-save reduction DAG and produces
the summary a verification flow consumes: tree depth (ranks), partial
products feeding the tree, and which adder outputs drive primary outputs.
This is the "word-level abstraction" payoff the paper targets (Sec. II-B):
once the adder tree is known, the multiplier collapses from tens of
thousands of AND nodes to a few hundred arithmetic slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG, lit_var
from repro.reasoning.adder_tree import AdderTree

__all__ = [
    "WordLevelReport",
    "analyze_adder_tree",
    "partial_product_leaves",
    "compare_adder_trees",
]


@dataclass
class WordLevelReport:
    """Summary of an extracted adder tree as a word-level structure."""

    num_full_adders: int
    num_half_adders: int
    num_links: int
    ranks: list[list[int]] = field(default_factory=list)  # adder indexes by depth
    pp_leaves: set[int] = field(default_factory=set)  # leaves that are PP ANDs
    pi_leaves: set[int] = field(default_factory=set)  # leaves that are PIs
    output_roots: set[int] = field(default_factory=set)  # roots driving POs

    @property
    def depth(self) -> int:
        return len(self.ranks)

    @property
    def num_adders(self) -> int:
        return self.num_full_adders + self.num_half_adders

    def summary(self) -> str:
        return (
            f"adder tree: {self.num_full_adders} FA + {self.num_half_adders} HA, "
            f"{self.num_links} links, depth {self.depth}, "
            f"{len(self.pp_leaves)} partial-product leaves, "
            f"{len(self.pi_leaves)} PI leaves, "
            f"{len(self.output_roots)} output-driving roots"
        )


def partial_product_leaves(aig: AIG, tree: AdderTree) -> tuple[set[int], set[int]]:
    """Split adder-tree leaves into partial-product ANDs and direct PIs.

    In a multiplier, every leaf that is not another adder's output should be
    either a primary input or an AND of primary inputs (a partial product) —
    a useful sanity invariant that tests assert on generated multipliers.
    """
    internal_outputs = tree.root_vars()
    pp_leaves: set[int] = set()
    pi_leaves: set[int] = set()
    for leaf in tree.leaf_vars():
        if leaf in internal_outputs:
            continue
        if aig.is_input(leaf):
            pi_leaves.add(leaf)
        elif aig.is_and(leaf):
            pp_leaves.add(leaf)
    return pp_leaves, pi_leaves


def compare_adder_trees(reference: AdderTree, candidate: AdderTree) -> dict[str, float]:
    """Precision/recall/F1 of ``candidate`` slices against ``reference``.

    A slice matches when both roots coincide — the criterion that matters
    for downstream rewriting.  Used to score prediction-based extraction
    against exact reasoning (the gap of the paper's Fig. 3(d) vs 3(e)).
    """
    ref_pairs = {(a.sum_var, a.carry_var) for a in reference.adders}
    cand_pairs = {(a.sum_var, a.carry_var) for a in candidate.adders}
    if not ref_pairs and not cand_pairs:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    hits = len(ref_pairs & cand_pairs)
    precision = hits / len(cand_pairs) if cand_pairs else 0.0
    recall = hits / len(ref_pairs) if ref_pairs else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def analyze_adder_tree(aig: AIG, tree: AdderTree) -> WordLevelReport:
    """Build the word-level report: ranks, leaf classes, output linkage."""
    links = tree.links()
    num_adders = len(tree.adders)

    # Longest-path rank of each adder inside the DAG.
    incoming: dict[int, list[int]] = {i: [] for i in range(num_adders)}
    for src, dst in links:
        incoming[dst].append(src)
    rank = [0] * num_adders
    # adders listed in topological order already (extraction iterates
    # variables in topological order), but recompute defensively.
    changed = True
    while changed:
        changed = False
        for dst, sources in incoming.items():
            if sources:
                best = 1 + max(rank[s] for s in sources)
                if best > rank[dst]:
                    rank[dst] = best
                    changed = True

    ranks: list[list[int]] = []
    for index in range(num_adders):
        while len(ranks) <= rank[index]:
            ranks.append([])
        ranks[rank[index]].append(index)

    pp_leaves, pi_leaves = partial_product_leaves(aig, tree)
    root_vars = tree.root_vars()
    output_roots = {
        lit_var(lit) for lit in aig.outputs if lit_var(lit) in root_vars
    }
    return WordLevelReport(
        num_full_adders=tree.num_full_adders,
        num_half_adders=tree.num_half_adders,
        num_links=len(links),
        ranks=ranks,
        pp_leaves=pp_leaves,
        pi_leaves=pi_leaves,
        output_roots=output_roots,
    )
