"""Word-level abstraction on top of extracted adder trees.

Groups matched FA/HA slices into the carry-save reduction DAG and produces
the summary a verification flow consumes: tree depth (ranks), partial
products feeding the tree, and which adder outputs drive primary outputs.
This is the "word-level abstraction" payoff the paper targets (Sec. II-B):
once the adder tree is known, the multiplier collapses from tens of
thousands of AND nodes to a few hundred arithmetic slices.

Engine/adapter boundary
-----------------------
:func:`analyze_adder_tree` runs on the tree's struct-of-arrays core by
default (``engine="fast"``): ranks come from a Kahn wavefront over the
cached CSR link index, leaf classification and output linkage are single
vectorized membership passes, and no per-adder Python walk remains.  The
original per-adder loop is preserved as ``engine="legacy"`` — the
differential-test oracle and the runtime baseline of
``benchmarks/bench_wordlevel_fast.py``.  Both produce identical
:class:`WordLevelReport` values: the report normalizes its collections on
construction (sorted lists), so equality is well-defined and stable across
runs regardless of which engine — or which set-iteration order — built it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aig.graph import AIG, lit_var
from repro.reasoning.adder_tree import KIND_FA, KIND_HA, AdderTree
from repro.kernels.registry import get_kernel
from repro.utils.arrays import in_sorted

__all__ = [
    "WordLevelReport",
    "analyze_adder_tree",
    "analyze_adder_trees",
    "partial_product_leaves",
    "compare_adder_trees",
]


@dataclass
class WordLevelReport:
    """Summary of an extracted adder tree as a word-level structure.

    All collections are normalized on construction — ``ranks`` levels are
    ascending adder indexes, ``pp_leaves`` / ``pi_leaves`` /
    ``output_roots`` are sorted deduplicated lists — so two reports over
    the same tree compare equal no matter which engine built them or what
    iteration order their inputs arrived in (sets used to leak their
    run-dependent order here).
    """

    num_full_adders: int
    num_half_adders: int
    num_links: int
    ranks: list[list[int]] = field(default_factory=list)  # adder indexes by depth
    pp_leaves: list[int] = field(default_factory=list)  # leaves that are PP ANDs
    pi_leaves: list[int] = field(default_factory=list)  # leaves that are PIs
    output_roots: list[int] = field(default_factory=list)  # roots driving POs

    def __post_init__(self) -> None:
        self.ranks = [sorted(int(i) for i in level) for level in self.ranks]
        self.pp_leaves = sorted({int(v) for v in self.pp_leaves})
        self.pi_leaves = sorted({int(v) for v in self.pi_leaves})
        self.output_roots = sorted({int(v) for v in self.output_roots})

    @property
    def depth(self) -> int:
        return len(self.ranks)

    @property
    def num_adders(self) -> int:
        return self.num_full_adders + self.num_half_adders

    def summary(self) -> str:
        return (
            f"adder tree: {self.num_full_adders} FA + {self.num_half_adders} HA, "
            f"{self.num_links} links, depth {self.depth}, "
            f"{len(self.pp_leaves)} partial-product leaves, "
            f"{len(self.pi_leaves)} PI leaves, "
            f"{len(self.output_roots)} output-driving roots"
        )


def partial_product_leaves(aig: AIG, tree: AdderTree) -> tuple[set[int], set[int]]:
    """Split adder-tree leaves into partial-product ANDs and direct PIs.

    In a multiplier, every leaf that is not another adder's output should be
    either a primary input or an AND of primary inputs (a partial product) —
    a useful sanity invariant that tests assert on generated multipliers.
    """
    pp_arr, pi_arr = _classify_external_leaves(aig, tree)
    return set(pp_arr.tolist()), set(pi_arr.tolist())


def _classify_external_leaves(aig: AIG,
                              tree: AdderTree) -> tuple[np.ndarray, np.ndarray]:
    """Sorted (pp, pi) leaf arrays: one vectorized membership pass."""
    core = tree.arrays()
    leaves = core.leaf_vars()
    external = leaves[~in_sorted(leaves, core.root_vars())]
    first_and = 1 + aig.num_inputs
    pp = external[(external >= first_and) & (external < aig.num_vars)]
    pi = external[(external >= 1) & (external < first_and)]
    return pp, pi


def compare_adder_trees(reference: AdderTree, candidate: AdderTree) -> dict[str, float]:
    """Precision/recall/F1 of ``candidate`` slices against ``reference``.

    A slice matches when both roots coincide — the criterion that matters
    for downstream rewriting.  Used to score prediction-based extraction
    against exact reasoning (the gap of the paper's Fig. 3(d) vs 3(e)).
    Joins the two trees' cached packed root-pair keys
    (:meth:`~repro.reasoning.adder_tree.AdderTreeArrays.root_pair_keys`)
    instead of rebuilding Python pair sets on every call.
    """
    ref_keys = reference.arrays().root_pair_keys()
    cand_keys = candidate.arrays().root_pair_keys()
    if not len(ref_keys) and not len(cand_keys):
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    hits = len(np.intersect1d(ref_keys, cand_keys, assume_unique=True))
    precision = hits / len(cand_keys) if len(cand_keys) else 0.0
    recall = hits / len(ref_keys) if len(ref_keys) else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def analyze_adder_tree(aig: AIG, tree: AdderTree,
                       engine: str = "fast") -> WordLevelReport:
    """Build the word-level report: ranks, leaf classes, output linkage.

    ``engine="fast"`` (default) runs entirely on the tree's array core —
    a Kahn wavefront over the cached CSR link index for the ranks, one
    membership pass each for leaf classes and output roots;
    ``engine="legacy"`` keeps the original per-adder Python walk as the
    differential oracle and runtime baseline.  Reports are identical.
    """
    if engine == "fast":
        return _analyze_fast(aig, tree)
    if engine != "legacy":
        raise ValueError(f"engine must be 'fast' or 'legacy', got {engine!r}")
    return _analyze_legacy(aig, tree)


def _core_ranks(core) -> np.ndarray:
    """Longest-path rank per adder row of one (or a merged) array core.

    Runs the registered ``kahn_propagate`` kernel (:mod:`repro.kernels`,
    shared with :meth:`AIG.levels_array`): a frontier of rank-final adders
    pushes ``rank + 1`` through the CSR fan-out index; an adder joins the
    next frontier when its last incoming edge resolves.  The adder DAG
    inherits acyclicity
    from the AIG (links follow variable topological order), so every adder
    is processed exactly once.  On a block-diagonal merged core the
    components are disjoint, so ranks equal the per-tree ones.
    """
    num_adders = len(core)
    src, dst = core.link_edges()
    rank = np.zeros(num_adders, dtype=np.int64)
    if len(src):
        indptr, consumers = core.link_csr()
        indegree = np.bincount(dst, minlength=num_adders)
        get_kernel("kahn_propagate")(
            np.asarray(indptr, dtype=np.int64),
            np.asarray(consumers, dtype=np.int64),
            indegree, rank,
        )
    return rank


def _ranks_to_levels(rank: np.ndarray) -> list[list[int]]:
    """Group row indexes by rank: ``levels[d]`` lists rank-``d`` adders."""
    if not len(rank):
        return []
    order = np.argsort(rank, kind="stable")  # ascending index per rank
    ordered = rank[order]
    depth = int(ordered[-1]) + 1
    bounds = np.searchsorted(ordered, np.arange(depth + 1))
    return [order[bounds[level]:bounds[level + 1]].tolist()
            for level in range(depth)]


def _analyze_fast(aig: AIG, tree: AdderTree) -> WordLevelReport:
    core = tree.arrays()
    src, _ = core.link_edges()
    ranks = _ranks_to_levels(_core_ranks(core))
    pp, pi = _classify_external_leaves(aig, tree)
    out_vars = np.unique(np.asarray(aig.outputs, dtype=np.int64) >> 1)
    output_roots = out_vars[in_sorted(out_vars, core.root_vars())]
    return WordLevelReport(
        num_full_adders=int(np.count_nonzero(core.kind == KIND_FA)),
        num_half_adders=int(np.count_nonzero(core.kind == KIND_HA)),
        num_links=len(src),
        ranks=ranks,
        pp_leaves=pp.tolist(),
        pi_leaves=pi.tolist(),
        output_roots=output_roots.tolist(),
    )


def analyze_adder_trees(items, engine: str = "fast") -> list[WordLevelReport]:
    """Batched :func:`analyze_adder_tree` over ``(aig, tree)`` pairs.

    Concatenates the trees' :class:`~repro.reasoning.adder_tree.AdderTreeArrays`
    cores into one block-diagonal core — each tree's variable columns
    offset by its circuit's cumulative ``num_vars``, exactly the
    :func:`~repro.learn.data.batch_graphs` idiom — and runs the link
    derivation plus the Kahn rank wavefront **once** over the merged rows.
    The variable ranges are disjoint, so no link can cross trees and the
    merged ranks equal the per-tree ones; per-circuit leaf classification
    and output linkage then shell out the merged arrays by row/var range.

    Returns one :class:`WordLevelReport` per input pair, in order, equal
    to calling :func:`analyze_adder_tree` per pair (the differential tests
    pin this).  ``engine="legacy"`` — or any non-fast engine — falls back
    to the per-pair call, keeping the oracle trivially correct.
    """
    items = list(items)
    if engine != "fast" or not items:
        return [analyze_adder_tree(aig, tree, engine=engine)
                for aig, tree in items]

    from repro.reasoning.adder_tree import _LEAF_PAD, AdderTreeArrays

    cores = [tree.arrays() for _, tree in items]
    rows = np.fromiter((len(c) for c in cores), np.int64, len(cores))
    row_base = np.concatenate([[0], np.cumsum(rows)])
    var_counts = np.fromiter((aig.num_vars for aig, _ in items),
                             np.int64, len(items))
    var_base = np.concatenate([[0], np.cumsum(var_counts)])
    # AdderTreeArrays stores int32 columns; the merged variable space must
    # fit or the offsets would silently wrap.  Batches anywhere near 2**31
    # total variables shard upstream long before word-level analysis.
    if var_base[-1] >= np.iinfo(np.int32).max:
        return [analyze_adder_tree(aig, tree) for aig, tree in items]

    width = max(3, max(c.leaves.shape[1] for c in cores))
    merged_leaves = np.full((int(row_base[-1]), width), _LEAF_PAD,
                            dtype=np.int64)
    merged_sum = np.zeros(int(row_base[-1]), dtype=np.int64)
    merged_carry = np.zeros_like(merged_sum)
    for index, core in enumerate(cores):
        lo, hi = row_base[index], row_base[index + 1]
        if lo == hi:
            continue
        base = var_base[index]
        merged_sum[lo:hi] = core.sum_var.astype(np.int64) + base
        merged_carry[lo:hi] = core.carry_var.astype(np.int64) + base
        block = core.leaves.astype(np.int64)
        live = block != _LEAF_PAD
        merged_leaves[lo:hi, :block.shape[1]] = np.where(
            live, block + base, _LEAF_PAD
        )
    merged = AdderTreeArrays(
        np.concatenate([c.kind for c in cores]),
        merged_sum, merged_carry, merged_leaves,
        np.concatenate([c.leaf_count for c in cores]),
    )

    rank = _core_ranks(merged)
    src, dst = merged.link_edges()
    # Edges never cross trees, so the consumer row locates each edge's tree.
    links_per = np.bincount(
        np.searchsorted(row_base, dst, side="right") - 1, minlength=len(items)
    ) if len(dst) else np.zeros(len(items), dtype=np.int64)

    # External leaves of the merged core, split back per tree by var range.
    merged_roots = merged.root_vars()
    merged_leaf_vars = merged.leaf_vars()
    external = merged_leaf_vars[~in_sorted(merged_leaf_vars, merged_roots)]
    ext_bounds = np.searchsorted(external, var_base)

    reports: list[WordLevelReport] = []
    for index, (aig, _) in enumerate(items):
        core = cores[index]
        base = var_base[index]
        local_rank = rank[row_base[index]:row_base[index + 1]]
        local_external = (
            external[ext_bounds[index]:ext_bounds[index + 1]] - base
        )
        first_and = 1 + aig.num_inputs
        pp = local_external[(local_external >= first_and)
                            & (local_external < aig.num_vars)]
        pi = local_external[(local_external >= 1)
                            & (local_external < first_and)]
        out_vars = np.unique(np.asarray(aig.outputs, dtype=np.int64) >> 1)
        output_roots = out_vars[in_sorted(out_vars + base, merged_roots)]
        reports.append(WordLevelReport(
            num_full_adders=int(np.count_nonzero(core.kind == KIND_FA)),
            num_half_adders=int(np.count_nonzero(core.kind == KIND_HA)),
            num_links=int(links_per[index]),
            ranks=_ranks_to_levels(local_rank),
            pp_leaves=pp.tolist(),
            pi_leaves=pi.tolist(),
            output_roots=output_roots.tolist(),
        ))
    return reports


def _analyze_legacy(aig: AIG, tree: AdderTree) -> WordLevelReport:
    """The original per-adder walk, kept verbatim as the oracle/baseline
    (including its own dict-based link construction — the fast engine must
    beat *this*, not a half-vectorized hybrid)."""
    producer_of: dict[int, int] = {}
    for index, adder in enumerate(tree.adders):
        producer_of[adder.sum_var] = index
        producer_of[adder.carry_var] = index
    links: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for index, adder in enumerate(tree.adders):
        for leaf in adder.leaves:
            source = producer_of.get(leaf)
            if source is None or source == index:
                continue
            edge = (source, index)
            if edge not in seen:
                seen.add(edge)
                links.append(edge)
    num_adders = len(tree.adders)

    # Longest-path rank of each adder inside the DAG.
    incoming: dict[int, list[int]] = {i: [] for i in range(num_adders)}
    for src, dst in links:
        incoming[dst].append(src)
    rank = [0] * num_adders
    # adders listed in topological order already (extraction iterates
    # variables in topological order), but recompute defensively.
    changed = True
    while changed:
        changed = False
        for dst, sources in incoming.items():
            if sources:
                best = 1 + max(rank[s] for s in sources)
                if best > rank[dst]:
                    rank[dst] = best
                    changed = True

    ranks: list[list[int]] = []
    for index in range(num_adders):
        while len(ranks) <= rank[index]:
            ranks.append([])
        ranks[rank[index]].append(index)

    internal_outputs = {v for a in tree.adders
                        for v in (a.sum_var, a.carry_var)}
    pp_leaves: set[int] = set()
    pi_leaves: set[int] = set()
    for adder in tree.adders:
        for leaf in adder.leaves:
            if leaf in internal_outputs:
                continue
            if aig.is_input(leaf):
                pi_leaves.add(leaf)
            elif aig.is_and(leaf):
                pp_leaves.add(leaf)
    output_roots = {
        lit_var(lit) for lit in aig.outputs if lit_var(lit) in internal_outputs
    }
    return WordLevelReport(
        num_full_adders=sum(1 for a in tree.adders if a.kind == "FA"),
        num_half_adders=sum(1 for a in tree.adders if a.kind == "HA"),
        num_links=len(links),
        ranks=ranks,
        pp_leaves=pp_leaves,
        pi_leaves=pi_leaves,
        output_roots=output_roots,
    )
