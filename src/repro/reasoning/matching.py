"""Deterministic maximum bipartite matching (Kuhn's augmenting paths).

The FA pairing stage matches MAJ roots against XOR roots sharing a leaf
set.  A maximum matching is generally not unique, so *which* one an
algorithm returns depends on its traversal order — ``networkx``'s
Hopcroft–Karp, used here previously, walks adjacency in graph-insertion
order, which made the extracted :class:`~repro.reasoning.adder_tree.AdderTree`
a function of dict-insertion order inside the detection.  This module pins
the traversal completely: left vertices are processed in ascending order
and each adjacency list is sorted, so the matching — and everything
downstream of it — is a pure function of the edge *set*.  Both the legacy
per-root pairing loop and the vectorized
:mod:`~repro.reasoning.fast_pairing` engine resolve their ambiguous
components through this one implementation, which is what makes them
bit-identical.
"""

from __future__ import annotations

__all__ = ["maximum_bipartite_matching"]


def maximum_bipartite_matching(
    adjacency: dict[int, list[int]],
) -> dict[int, int]:
    """Maximum matching of a bipartite graph, deterministically.

    ``adjacency`` maps each left vertex to an iterable of right vertices.
    Kuhn's algorithm with a fixed order: left vertices ascending, neighbors
    ascending, depth-first augmentation.  The DFS is iterative — on
    adversarial graphs an augmenting path can touch every vertex, which
    would overflow Python's recursion limit.  Returns ``{left: right}``.
    """
    adj = {left: sorted(set(partners)) for left, partners in adjacency.items()}
    match_left: dict[int, int] = {}
    match_right: dict[int, int] = {}
    for root in sorted(adj):
        # Alternating-path DFS from ``root``.  ``parent`` records the left
        # vertex through which each right vertex was discovered and
        # ``came_from`` the right vertex whose current match led the DFS to
        # a left vertex, so a successful path can be flipped backwards.
        parent: dict[int, int] = {}
        came_from: dict[int, int | None] = {root: None}
        visited: set[int] = set()
        stack = [(root, iter(adj[root]))]
        free_right: int | None = None
        while stack and free_right is None:
            left, neighbors = stack[-1]
            advanced = False
            for right in neighbors:
                if right in visited:
                    continue
                visited.add(right)
                parent[right] = left
                owner = match_right.get(right)
                if owner is None:
                    free_right = right
                else:
                    came_from[owner] = right
                    stack.append((owner, iter(adj[owner])))
                advanced = True
                break
            if not advanced:
                stack.pop()
        if free_right is None:
            continue
        right: int | None = free_right
        while right is not None:
            left = parent[right]
            match_right[right] = left
            match_left[left] = right
            right = came_from[left]
    return match_left
