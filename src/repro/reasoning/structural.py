"""Fast structural XOR/MAJ detection (the structural-hashing analogue).

Where :mod:`repro.reasoning.xor_maj` matches cut *functions*, this module
pattern-matches the small number of AND/INV shapes that XOR and MAJ roots
take in generated netlists — the Pythonic counterpart of ABC's structural
recognizers (``Aig_ObjIsExor`` etc.).  It is sound (a match implies the
function) but deliberately incomplete: re-decomposed netlists, e.g. after
technology mapping, need the functional detector.  Its value is speed — it
is linear in the node count with tiny constants, which makes exact ground
truth practical for very large generated multipliers.
"""

from __future__ import annotations

from repro.aig.graph import AIG, lit_neg, lit_not, lit_var
from repro.reasoning.xor_maj import XorMajDetection

__all__ = ["detect_xor_maj_structural", "match_xor_operands"]


def match_xor_operands(aig: AIG, var: int) -> tuple[int, int] | None:
    """If ``var`` tops a 3-AND XOR structure, return its operand literals.

    The shape is ``t = AND(¬u, ¬v)`` with ``u = AND(p, q)`` and
    ``v = AND(¬p, ¬q)``; then ``t = p ⊕ q`` exactly (for any operand literal
    polarities — ``XNOR(a, b)`` is simply ``a ⊕ ¬b``).  Returns ``(p, q)``
    taken from the inner AND whose literals appear positive-first, or None
    when the shape does not match.
    """
    if not aig.is_and(var):
        return None
    f0, f1 = aig.fanins(var)
    if not (lit_neg(f0) and lit_neg(f1)):
        return None
    u, v = lit_var(f0), lit_var(f1)
    if u == v or not (aig.is_and(u) and aig.is_and(v)):
        return None
    u0, u1 = aig.fanins(u)
    v0, v1 = aig.fanins(v)
    if {u0, u1} == {lit_not(v0), lit_not(v1)}:
        return u0, u1
    return None


def _match_maj(aig: AIG, var: int,
               xor_ops: dict[int, tuple[int, int]]) -> tuple[int, int, int] | None:
    """Match OR-of-AND carry roots: ``g + c·x`` with ``x ≡ l0 ⊕ l1``.

    ``var = AND(¬q0, ¬q1)`` (an OR root, possibly complemented at its
    reader), ``g = AND(l0, l1)``, and the other branch ``AND(c, x)`` where
    ``x`` computes ``l0 ⊕ l1`` either as an XOR structure (full-adder form)
    or as ``l0 + l1`` (the ``a·b + c·(a+b)`` majority form).  Any literal
    polarities are accepted — the function is then ``MAJ(l0, l1, c)`` over
    possibly-complemented inputs, which stays in the MAJ NPN class.

    Returns the three leaf *variables* or None.
    """
    f0, f1 = aig.fanins(var)
    if not (lit_neg(f0) and lit_neg(f1)):
        return None
    for g_var, t_var in ((lit_var(f0), lit_var(f1)), (lit_var(f1), lit_var(f0))):
        if not (aig.is_and(g_var) and aig.is_and(t_var)):
            continue
        l0, l1 = aig.fanins(g_var)
        if lit_var(l0) == lit_var(l1):
            continue
        t0, t1 = aig.fanins(t_var)
        for c_lit, x_lit in ((t0, t1), (t1, t0)):
            x_var = lit_var(x_lit)
            leaves = (lit_var(l0), lit_var(l1), lit_var(c_lit))
            if len(set(leaves)) != 3:
                continue
            # Full-adder form: x computes l0 ⊕ l1 through an XOR structure.
            ops = xor_ops.get(x_var)
            if ops is not None:
                p, q = ops
                if {lit_var(p), lit_var(q)} == {lit_var(l0), lit_var(l1)}:
                    parity = lit_neg(p) ^ lit_neg(q) ^ lit_neg(x_lit)
                    if parity == (lit_neg(l0) ^ lit_neg(l1)):
                        return leaves
            # Majority form: x = l0 + l1 stored as ¬(¬l0 · ¬l1).
            if lit_neg(x_lit) and aig.is_and(x_var):
                x0, x1 = aig.fanins(x_var)
                if {x0, x1} == {lit_not(l0), lit_not(l1)}:
                    return leaves
    return None


def detect_xor_maj_structural(aig: AIG) -> XorMajDetection:
    """Linear-time structural detection of XOR and MAJ roots.

    Covers the shapes emitted by :mod:`repro.generators` (shared-XOR full
    adders, OR-form majorities).  Tests assert agreement with the functional
    detector on generated multipliers; for re-decomposed (mapped) netlists
    use :func:`repro.reasoning.xor_maj.detect_xor_maj`.
    """
    detection = XorMajDetection()
    xor_ops: dict[int, tuple[int, int]] = {}
    for var in aig.and_vars():
        ops = match_xor_operands(aig, var)
        if ops is not None:
            xor_ops[var] = ops
            leaves = tuple(sorted({lit_var(ops[0]), lit_var(ops[1])}))
            if len(leaves) == 2:
                detection.xor_roots[var] = [leaves]

    for var in aig.and_vars():
        # XOR3 root: an XOR structure whose operand is itself an XOR root.
        ops = xor_ops.get(var)
        if ops is not None:
            for first, second in ((ops[0], ops[1]), (ops[1], ops[0])):
                inner = xor_ops.get(lit_var(first))
                if inner is not None:
                    leaves = tuple(sorted({
                        lit_var(inner[0]), lit_var(inner[1]), lit_var(second)
                    }))
                    if len(leaves) == 3:
                        detection.xor_roots.setdefault(var, []).append(leaves)
        maj = _match_maj(aig, var, xor_ops)
        if maj is not None:
            detection.maj_roots.setdefault(var, []).append(tuple(sorted(maj)))
    return detection
