"""Array-shaped FA/HA pairing: the vectorized twin of the extraction loops.

This is to :func:`repro.reasoning.adder_tree.extract_adder_tree` what
:mod:`repro.aig.fast_cuts` is to the Cut-object enumerator: the same
result, produced by whole-graph array passes instead of per-root Python
loops.  The stages map one-to-one onto the legacy extractor:

* **candidate grouping** — XOR/MAJ roots and their matching leaf sets are
  flattened into struct-of-arrays form (:class:`PairingCandidates`), either
  straight from a :class:`~repro.aig.fast_cuts.CutArrays` sweep (label
  generation and the array-native serving path, which also filters rows
  with :meth:`PairingCandidates.select_roots` /
  :meth:`~PairingCandidates.restrict_roots` instead of rebuilding dicts)
  or from a prediction-verified
  :class:`~repro.reasoning.xor_maj.XorMajDetection`
  (:meth:`~PairingCandidates.to_detection` is the inverse adapter).  Rows
  are canonically sorted, which is what makes the whole pipeline
  independent of dict-insertion order;
* **FA edge construction** — MAJ and XOR3 candidates are joined on a packed
  leaf-triple key with one ``searchsorted`` pass (sort-based grouping
  instead of per-root dict probing), self-pairs dropped, and parallel
  ``(maj, xor)`` edges collapsed to their lexicographically smallest shared
  leaf set;
* **matching** — connected components that are a single MAJ–XOR pair (the
  overwhelming majority on adder trees) are matched wholesale in array
  form; only the ambiguous remainder — e.g. Booth netlists where several
  roots share coincident leaf sets — goes through the deterministic
  :func:`~repro.reasoning.matching.maximum_bipartite_matching`.  The split
  is exact: an isolated pair is matched by Kuhn's algorithm no matter when
  it is visited, so pre-matching it cannot change the rest of the matching;
* **cone consumption** — matched slices' interiors are computed for *all*
  adders at once by a level-ordered frontier sweep over ``(node, owner)``
  pairs (:func:`batched_cones`) instead of one ``_cone_between`` DFS per
  root, and conflicts (a root claimed by an earlier slice's interior) are
  detected vectorized; only when one exists — never on clean adder trees —
  does emission fall back to the sequential consume-as-you-go order;
* **HA selection** — the carry pool comes from the cached
  :meth:`AIG.and_pair_groups <repro.aig.graph.AIG.and_pair_groups>` index
  (built once per graph, not once per call), candidates interior to their
  own XOR are filtered in one vectorized membership pass, and the remaining
  first-free-carry scan is O(1) boolean-array probes per root.

Matched slices are emitted straight into the tree's struct-of-arrays core
(:class:`~repro.reasoning.adder_tree.AdderTreeArrays`) — the
``ExtractedAdder`` objects, the ``consumed`` set and the detection dicts
exist only as lazy views on the result.  Bit-for-bit equivalence with
``engine="legacy"`` — same adders, same order, same ``consumed`` set — is
enforced by ``tests/test_fast_pairing.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aig.graph import AIG
from repro.kernels.registry import get_kernel
from repro.reasoning.adder_tree import (
    KIND_FA,
    KIND_HA,
    AdderTree,
    AdderTreeArrays,
)
from repro.reasoning.matching import maximum_bipartite_matching
from repro.reasoning.xor_maj import XorMajDetection
from repro.utils.arrays import in_sorted, ragged_gather, sorted_unique

__all__ = [
    "PairingCandidates",
    "batched_cones",
    "fast_extract_adder_tree",
    "pair_candidates",
]

# Shared sorted-key helpers live in repro.utils.arrays now; the old private
# names are kept as aliases for the call sites below.
_in_sorted = in_sorted
_sorted_unique = sorted_unique


def _flatten_leaf_sets(
    leaf_sets_by_var: dict[int, list[tuple[int, ...]]],
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Split a ``var -> [leaf tuples]`` mapping into 2- and 3-leaf arrays.

    Returns ``((vars2, leaves2_flat), (vars3, leaves3_flat))``.  The
    iteration stays at C speed (``chain.from_iterable`` + ``fromiter``):
    per-tuple Python work is what made dict flattening a hot spot.
    """
    from itertools import chain

    count = len(leaf_sets_by_var)
    sets_per_var = np.fromiter(
        map(len, leaf_sets_by_var.values()), np.int64, count
    )
    num_sets = int(sets_per_var.sum())
    if num_sets == 0:
        empty = np.zeros(0, dtype=np.int64)
        return (empty, empty), (empty, empty)
    var_of_set = np.repeat(
        np.fromiter(leaf_sets_by_var.keys(), np.int64, count), sets_per_var
    )
    flat_sets = list(chain.from_iterable(leaf_sets_by_var.values()))
    widths = np.fromiter(map(len, flat_sets), np.int64, num_sets)
    flat_leaves = np.fromiter(
        chain.from_iterable(flat_sets), np.int64, int(widths.sum())
    )
    offsets = np.concatenate([[0], np.cumsum(widths)[:-1]])
    rows2 = np.flatnonzero(widths == 2)
    rows3 = np.flatnonzero(widths == 3)
    return (
        (var_of_set[rows2],
         flat_leaves[offsets[rows2][:, None] + np.arange(2)].ravel()),
        (var_of_set[rows3],
         flat_leaves[offsets[rows3][:, None] + np.arange(3)].ravel()),
    )


def _canonical_rows(vars_: list[int] | np.ndarray,
                    leaves: list | np.ndarray,
                    width: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort candidate rows by ``(var, leaves)`` and drop exact duplicates.

    This is the determinism anchor: whatever order the detection inserted
    roots or listed leaf sets, candidates come out in one canonical order
    (the order the legacy loop sees after its own sort).  ``leaves`` may be
    a flat sequence of ``len(vars_) * width`` ints.
    """
    if len(vars_) == 0:
        return (np.zeros(0, dtype=np.int64),
                np.zeros((0, width), dtype=np.int64))
    var_column = np.asarray(vars_, dtype=np.int64)
    leaf_rows = np.asarray(leaves, dtype=np.int64).reshape(len(var_column),
                                                           width)
    order = np.lexsort(
        tuple(leaf_rows[:, col] for col in range(width - 1, -1, -1))
        + (var_column,)
    )
    var_column, leaf_rows = var_column[order], leaf_rows[order]
    if len(var_column) > 1:
        distinct = np.r_[
            True,
            (var_column[1:] != var_column[:-1])
            | np.any(leaf_rows[1:] != leaf_rows[:-1], axis=1),
        ]
        var_column, leaf_rows = var_column[distinct], leaf_rows[distinct]
    return var_column, leaf_rows


@dataclass
class PairingCandidates:
    """XOR/MAJ candidate cuts flattened to arrays, in canonical row order.

    ``xor2_*`` rows are the half-adder sum candidates (2-leaf XOR cuts),
    ``xor3_*`` / ``maj_*`` the full-adder sum/carry candidates.  Every
    array pair is sorted by ``(root var, leaves)`` with duplicates removed.
    """

    num_vars: int
    xor2_var: np.ndarray  # (X2,) int64
    xor2_leaves: np.ndarray  # (X2, 2) int64, ascending per row
    xor3_var: np.ndarray  # (X3,) int64
    xor3_leaves: np.ndarray  # (X3, 3) int64
    maj_var: np.ndarray  # (M,) int64
    maj_leaves: np.ndarray  # (M, 3) int64

    @classmethod
    def from_detection(cls, detection: XorMajDetection,
                       num_vars: int) -> "PairingCandidates":
        """Flatten a (possibly arbitrarily ordered) detection result."""
        x2, x3_xor = _flatten_leaf_sets(detection.xor_roots)
        _, maj3 = _flatten_leaf_sets(detection.maj_roots)
        return cls(num_vars, *_canonical_rows(*x2, 2),
                   *_canonical_rows(*x3_xor, 3),
                   *_canonical_rows(*maj3, 3))

    @classmethod
    def from_cut_arrays(cls, cuts) -> "PairingCandidates":
        """Build straight from a whole-graph cut sweep — no dicts probed."""
        from repro.aig.fast_cuts import classify_cut_arrays

        is_xor, is_maj = classify_cut_arrays(cuts)
        xr, xs = np.nonzero(is_xor)
        two = cuts.sizes[xr, xs] == 2
        mr, ms = np.nonzero(is_maj)
        return cls(
            cuts.num_vars,
            *_canonical_rows(xr[two], cuts.leaves[xr[two], xs[two], :2], 2),
            *_canonical_rows(xr[~two], cuts.leaves[xr[~two], xs[~two]], 3),
            *_canonical_rows(mr, cuts.leaves[mr, ms], 3),
        )

    # ------------------------------------------------------------------
    # Array-native filtering (the serving path never builds dicts)
    # ------------------------------------------------------------------
    def xor_root_vars(self) -> np.ndarray:
        """Sorted unique variables with at least one XOR candidate cut."""
        cached = getattr(self, "_xor_root_vars", None)
        if cached is None:
            cached = sorted_unique(np.concatenate([self.xor2_var,
                                                   self.xor3_var]))
            self._xor_root_vars = cached
        return cached

    def maj_root_vars(self) -> np.ndarray:
        """Sorted unique variables with at least one MAJ candidate cut."""
        cached = getattr(self, "_maj_root_vars", None)
        if cached is None:
            cached = sorted_unique(self.maj_var)
            self._maj_root_vars = cached
        return cached

    def select_roots(self, xor_allowed: np.ndarray,
                     maj_allowed: np.ndarray) -> "PairingCandidates":
        """Rows whose root is in the given sorted allow-lists.

        One membership pass per row group — the vectorized equivalent of
        building a prediction-verified :class:`XorMajDetection` and
        re-flattening it, minus every dict.  Canonical row order is
        preserved (filtering a sorted array keeps it sorted).
        """
        keep2 = in_sorted(self.xor2_var, xor_allowed)
        keep3 = in_sorted(self.xor3_var, xor_allowed)
        keepm = in_sorted(self.maj_var, maj_allowed)
        return PairingCandidates(
            self.num_vars,
            self.xor2_var[keep2], self.xor2_leaves[keep2],
            self.xor3_var[keep3], self.xor3_leaves[keep3],
            self.maj_var[keepm], self.maj_leaves[keepm],
        )

    def restrict_roots(self, allowed: np.ndarray) -> "PairingCandidates":
        """Rows whose root is in one sorted allow-list (LSB-cone repair)."""
        return self.select_roots(allowed, allowed)

    def to_detection(self) -> XorMajDetection:
        """Dict-form adapter for the legacy oracle and the public API.

        Reconstructs exactly the mapping
        :func:`~repro.aig.fast_cuts.matched_leaf_sets` would have produced
        for these rows: per variable, 2-leaf cuts before 3-leaf cuts, each
        group in ascending leaf order — the enumerators' slot order.  Only
        adapter/compat paths call this; ``engine="fast"`` extraction never
        does.
        """
        xor_roots: dict[int, list[tuple[int, ...]]] = {}
        for var, row in zip(self.xor2_var.tolist(),
                            self.xor2_leaves.tolist()):
            xor_roots.setdefault(var, []).append(tuple(row))
        for var, row in zip(self.xor3_var.tolist(),
                            self.xor3_leaves.tolist()):
            xor_roots.setdefault(var, []).append(tuple(row))
        maj_roots: dict[int, list[tuple[int, ...]]] = {}
        for var, row in zip(self.maj_var.tolist(), self.maj_leaves.tolist()):
            maj_roots.setdefault(var, []).append(tuple(row))
        return XorMajDetection(xor_roots=xor_roots, maj_roots=maj_roots)


def batched_cones(aig: AIG, root_vars: np.ndarray, root_owner: np.ndarray,
                  leaf_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Interior ``(node, owner)`` pairs of many cones in one frontier sweep.

    ``leaf_matrix`` holds one row of leaf variables per owner (one matched
    adder / HA candidate); ``root_owner[i]`` is the row owning root
    ``root_vars[i]``, so an owner may contribute several roots (an FA's sum
    and carry).  The pairs returned are exactly what ``_cone_between``
    collects: AND variables reachable from the owner's roots without
    crossing that owner's leaves, the roots themselves included.  Instead
    of one DFS per root, every cone advances together, one level of its own
    depth per round: the frontier holds ``(node, owner)`` pairs packed into
    int64 keys, a round expands the whole frontier with a handful of NumPy
    passes, and leaf crossings are caught by comparing each child against
    its owner's leaf row — a couple of gathers, no sorted-set probing.  The
    round count is the deepest cone's leaf-free path length — a few levels
    for real adder slices — while each round's cost is one pass over all
    live cones at that depth, no matter how many adders the wavefront
    spans.

    The sweep itself is the ``cone_sweep`` registered kernel
    (:mod:`repro.kernels`): the numpy implementation advances all cones'
    frontiers together with whole-array passes, a compiled backend runs
    one stamped DFS per owner — both return the same sorted pairs.
    """
    fanin0, fanin1 = aig.fanin_arrays()
    return get_kernel("cone_sweep")(
        1 + aig.num_inputs,
        fanin0 >> 1,
        fanin1 >> 1,
        np.asarray(root_vars, dtype=np.int64),
        np.asarray(root_owner, dtype=np.int64),
        np.asarray(leaf_matrix, dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# Full adders
# ---------------------------------------------------------------------------

def _full_adder_edges(cands: PairingCandidates
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate ``(maj, xor)`` pairs with their canonical shared leaves.

    One sort-based join on the packed leaf-triple key replaces the legacy
    per-root dict probing; parallel edges (a pair sharing several leaf
    sets) collapse to the smallest leaf triple, matching the determinized
    legacy loop's first-in-sorted-order choice.
    """
    if not len(cands.maj_var) or not len(cands.xor3_var):
        return (np.zeros(0, dtype=np.int64),) * 2 + (
            np.zeros((0, 3), dtype=np.int64),)
    # Packed leaf-triple keys.  A raw num_vars**3 pack overflows int64 past
    # ~2M variables; only then compact the leaf universe to dense ids first
    # (order-preserving, so key comparisons are unchanged).
    lut = None
    ml, xl = cands.maj_leaves, cands.xor3_leaves
    if cands.num_vars ** 3 >= np.iinfo(np.int64).max:  # Python ints: exact
        lut = _sorted_unique(np.concatenate([ml.ravel(), xl.ravel()]))
        assert len(lut) ** 3 < np.iinfo(np.int64).max, "leaf universe too large"
        ml = np.searchsorted(lut, ml)
        xl = np.searchsorted(lut, xl)
        stride = np.int64(len(lut))
    else:
        stride = np.int64(cands.num_vars)
    maj_key = (ml[:, 0] * stride + ml[:, 1]) * stride + ml[:, 2]
    xor_key = (xl[:, 0] * stride + xl[:, 1]) * stride + xl[:, 2]

    # The join itself is the ``fa_join`` registered kernel; key packing and
    # leaf unpacking stay here so every backend sees the same int64 keys.
    edge_maj, edge_xor, edge_key = get_kernel("fa_join")(
        np.asarray(cands.maj_var, dtype=np.int64), maj_key,
        np.asarray(cands.xor3_var, dtype=np.int64), xor_key,
    )
    if not len(edge_maj):
        return (np.zeros(0, dtype=np.int64),) * 2 + (
            np.zeros((0, 3), dtype=np.int64),)
    inner = edge_key // stride
    leaves = np.column_stack([inner // stride, inner % stride,
                              edge_key % stride])
    if lut is not None:
        leaves = lut[leaves]
    return edge_maj, edge_xor, leaves


def _match_full_adders(edge_maj: np.ndarray, edge_xor: np.ndarray,
                       edge_leaves: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic maximum matching over the candidate edges.

    Isolated pairs — a MAJ with one partner whose partner has only it —
    are matched in one vectorized pass; every such pair belongs to the
    maximum matching Kuhn's algorithm returns, independent of visit order,
    because no augmenting path can route through a degree-1–degree-1 edge.
    Only the ambiguous remainder runs the Python matcher.
    """
    if not len(edge_maj):
        return edge_maj, edge_xor, edge_leaves
    _, maj_inverse, maj_degree = np.unique(
        edge_maj, return_inverse=True, return_counts=True
    )
    _, xor_inverse, xor_degree = np.unique(
        edge_xor, return_inverse=True, return_counts=True
    )
    isolated = (maj_degree[maj_inverse] == 1) & (xor_degree[xor_inverse] == 1)
    picked = [np.flatnonzero(isolated)]
    rest = np.flatnonzero(~isolated)
    if len(rest):
        adjacency: dict[int, list[int]] = {}
        for maj, xor in zip(edge_maj[rest].tolist(), edge_xor[rest].tolist()):
            adjacency.setdefault(maj, []).append(xor)
        matching = maximum_bipartite_matching(adjacency)
        if matching:
            # Edges are sorted by (maj, xor): locate each matched pair's row
            # (and thereby its canonical leaves) by packed-key search.
            span = np.int64(np.max(edge_xor)) + 1
            pair_keys = edge_maj * span + edge_xor
            wanted = np.array(sorted(matching.items()), dtype=np.int64)
            picked.append(
                np.searchsorted(pair_keys, wanted[:, 0] * span + wanted[:, 1])
            )
    rows = np.sort(np.concatenate(picked))
    # Emission order is ascending MAJ var; rows are sorted by (maj, xor)
    # and each maj appears in at most one match, so row order is maj order.
    return edge_maj[rows], edge_xor[rows], edge_leaves[rows]


def _emit_full_adders(aig: AIG, consumed: np.ndarray,
                      fa_maj: np.ndarray, fa_xor: np.ndarray,
                      fa_leaves: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Matched FA columns in ascending-MAJ order, cones consumed.

    Returns ``(sum_var, carry_var, leaves)`` columns for the emitted rows
    (the array core's FA block — no per-adder objects are created).  The
    batched path emits every matched pair and consumes the union of
    interiors in two array stores.  That is exactly the sequential result
    unless some pair's root lies inside another pair's cone (or doubles as
    the other side of a second pair) — detected vectorized; only then does
    the legacy consume-as-you-go loop run, over interiors that were still
    computed in one batched sweep.
    """
    count = len(fa_maj)
    if count == 0:
        return fa_xor, fa_maj, fa_leaves
    owner = np.arange(count, dtype=np.int64)
    root_vars = np.concatenate([fa_xor, fa_maj])
    root_owner = np.concatenate([owner, owner])
    interior_node, interior_owner = batched_cones(
        aig, root_vars, root_owner, fa_leaves,
    )

    roots_sorted = np.sort(root_vars)
    conflict = bool(len(roots_sorted) > 1
                    and np.any(roots_sorted[1:] == roots_sorted[:-1]))
    if not conflict:
        owner_of_root = np.full(aig.num_vars, -1, dtype=np.int64)
        owner_of_root[root_vars] = root_owner
        hit = owner_of_root[interior_node]
        conflict = bool(np.any((hit >= 0) & (hit != interior_owner)))
    if not conflict:
        consumed[interior_node] = True
        consumed[root_vars] = True  # non-AND roots are outside the sweep
        return fa_xor, fa_maj, fa_leaves

    maj_list = fa_maj.tolist()
    xor_list = fa_xor.tolist()
    order = np.argsort(interior_owner, kind="stable")
    interior_node = interior_node[order]
    starts = np.searchsorted(interior_owner[order],
                             np.arange(count + 1)).tolist()
    kept: list[int] = []
    for index in range(count):
        maj, xor = maj_list[index], xor_list[index]
        if consumed[maj] or consumed[xor]:
            continue
        kept.append(index)
        consumed[interior_node[starts[index]:starts[index + 1]]] = True
        consumed[maj] = True
        consumed[xor] = True
    rows = np.asarray(kept, dtype=np.int64)
    return fa_xor[rows], fa_maj[rows], fa_leaves[rows]


# ---------------------------------------------------------------------------
# Half adders
# ---------------------------------------------------------------------------

def _emit_half_adders(aig: AIG, consumed: np.ndarray,
                      cands: PairingCandidates
                      ) -> tuple[list[int], list[int], list[list[int]]]:
    """Match XOR2 roots with free carry ANDs, in canonical order.

    Returns ``(sum_vars, carry_vars, leaf_rows)`` columns for the emitted
    HA rows.  Everything order-dependent is precomputed in array form — the
    carry pool slice per candidate (own-interior ANDs already filtered out
    by one vectorized membership pass) and the per-candidate interior node
    lists — so the remaining scan is the legacy selection semantics at O(1)
    Python work per candidate: first non-consumed carry wins, its cone is
    consumed, later candidates of the same root are skipped.
    """
    ha_sum: list[int] = []
    ha_carry: list[int] = []
    ha_leaves: list[list[int]] = []
    if not len(cands.xor2_var):
        return ha_sum, ha_carry, ha_leaves
    pool_keys, pool_starts, pool_members = aig.and_pair_groups()
    stride = np.int64(aig.num_vars)
    pair_key = cands.xor2_leaves[:, 0] * stride + cands.xor2_leaves[:, 1]
    if len(pool_keys) == 0:
        return ha_sum, ha_carry, ha_leaves
    group = np.searchsorted(pool_keys, pair_key)
    group_clipped = np.minimum(group, len(pool_keys) - 1)
    has_pool = (group < len(pool_keys)) & (pool_keys[group_clipped] == pair_key)
    # Roots already consumed (FA interiors and roots) can only be skipped
    # by the selection loop; dropping them here keeps the cone sweep and
    # carry filtering proportional to the *live* candidates.  ``consumed``
    # only grows during selection, so the prefilter can never unskip one.
    active = np.flatnonzero(has_pool & ~consumed[cands.xor2_var])
    if not len(active):
        return ha_sum, ha_carry, ha_leaves
    owner = np.arange(len(active), dtype=np.int64)
    interior_node, interior_owner = batched_cones(
        aig, cands.xor2_var[active], owner, cands.xor2_leaves[active],
    )
    interior_keys = np.sort(interior_owner * stride + interior_node)

    slice_start = pool_starts[group_clipped[active]]
    slice_end = pool_starts[group_clipped[active] + 1]
    flat = ragged_gather(slice_start, slice_end)
    carry = pool_members[flat]
    carry_owner = np.repeat(owner, slice_end - slice_start)
    outside = ~_in_sorted(carry_owner * stride + carry, interior_keys)
    carry = carry[outside]
    carry_owner = carry_owner[outside]
    carry_starts = np.searchsorted(
        carry_owner, np.arange(len(active) + 1)
    ).tolist()
    carry_list = carry.tolist()

    order = np.argsort(interior_owner, kind="stable")
    interior_sorted = interior_node[order]
    interior_starts = np.searchsorted(
        interior_owner[order], np.arange(len(active) + 1)
    ).tolist()

    var_list = cands.xor2_var[active].tolist()
    leaf_rows = cands.xor2_leaves[active].tolist()
    for index in range(len(active)):
        xor = var_list[index]
        if consumed[xor]:
            continue
        matched_carry = -1
        for candidate in carry_list[
            carry_starts[index]:carry_starts[index + 1]
        ]:
            if not consumed[candidate]:
                matched_carry = candidate
                break
        if matched_carry < 0:
            continue
        ha_sum.append(xor)
        ha_carry.append(matched_carry)
        ha_leaves.append(leaf_rows[index])
        consumed[
            interior_sorted[interior_starts[index]:interior_starts[index + 1]]
        ] = True
        consumed[xor] = True
        consumed[matched_carry] = True
    return ha_sum, ha_carry, ha_leaves


def _assemble_core(fa_sum: np.ndarray, fa_carry: np.ndarray,
                   fa_leaves: np.ndarray, ha_sum: list[int],
                   ha_carry: list[int],
                   ha_leaves: list[list[int]]) -> AdderTreeArrays:
    """Concatenate the FA block and HA rows into one array core."""
    num_fa, num_ha = len(fa_sum), len(ha_sum)
    count = num_fa + num_ha
    if count == 0:
        return AdderTreeArrays.empty()
    kind = np.empty(count, dtype=np.uint8)
    kind[:num_fa] = KIND_FA
    kind[num_fa:] = KIND_HA
    sum_var = np.empty(count, dtype=np.int32)
    sum_var[:num_fa] = fa_sum
    sum_var[num_fa:] = ha_sum
    carry_var = np.empty(count, dtype=np.int32)
    carry_var[:num_fa] = fa_carry
    carry_var[num_fa:] = ha_carry
    leaves = np.full((count, 3), -1, dtype=np.int32)
    leaves[:num_fa] = fa_leaves
    if num_ha:
        leaves[num_fa:, :2] = ha_leaves
    leaf_count = np.empty(count, dtype=np.int8)
    leaf_count[:num_fa] = 3
    leaf_count[num_fa:] = 2
    return AdderTreeArrays(kind, sum_var, carry_var, leaves, leaf_count)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def pair_candidates(aig: AIG, cands: PairingCandidates,
                    detection: XorMajDetection | None = None) -> AdderTree:
    """Pair candidate arrays into an :class:`AdderTree`, dict-free.

    The array-native pairing core: FA matching, cone consumption and HA
    selection all run on the candidate arrays, the result is emitted
    straight into the tree's struct-of-arrays core, and the ``consumed``
    set / ``adders`` list / ``detection`` dicts exist only as lazy views.
    ``detection``, when the caller already has one, is attached for the
    object view; otherwise ``tree.detection`` adapts from ``cands`` on
    first access.
    """
    consumed = np.zeros(aig.num_vars, dtype=bool)
    fa_sum, fa_carry, fa_leaves = _emit_full_adders(
        aig, consumed,
        *_match_full_adders(*_full_adder_edges(cands)),
    )
    ha_sum, ha_carry, ha_leaves = _emit_half_adders(aig, consumed, cands)
    core = _assemble_core(fa_sum, fa_carry, fa_leaves,
                          ha_sum, ha_carry, ha_leaves)
    return AdderTree(core=core, consumed_mask=consumed,
                     detection=detection, candidates=cands)


def fast_extract_adder_tree(aig: AIG,
                            detection: XorMajDetection | None = None,
                            max_cuts: int = 10,
                            candidates: PairingCandidates | None = None,
                            ) -> AdderTree:
    """Array-shaped equivalent of ``extract_adder_tree(engine="legacy")``.

    With ``candidates`` the caller already holds the flattened rows (the
    array-native post-processing path) and pairing runs directly on them;
    with ``detection`` the dict form is flattened first (legacy-oracle and
    public-API compatibility); with neither, the whole pipeline — cut
    sweep, classification, pairing — shares one
    :class:`~repro.aig.fast_cuts.CutArrays` pass and the candidate arrays
    are built straight from the classification masks.  Every route is
    bit-identical to the legacy loop: same adders in the same order, same
    ``consumed`` set.
    """
    if candidates is not None:
        cands = candidates
    elif detection is not None:
        cands = PairingCandidates.from_detection(detection, aig.num_vars)
    else:
        from repro.aig.fast_cuts import enumerate_cuts_arrays

        arrays = enumerate_cuts_arrays(aig, k=3, max_cuts=max_cuts)
        cands = PairingCandidates.from_cut_arrays(arrays)
    return pair_candidates(aig, cands, detection=detection)
