"""Exact functional detection of XOR/MAJ roots via cut enumeration.

This is the reproduction's equivalent of the conventional reasoning flow the
paper compares against (ABC's algebraic-rewriting adder extraction, Yu et
al. TCAD'17): enumerate k-feasible cuts, compute each cut's function, and
flag roots whose cut function is NPN-equivalent to XOR2/XOR3 or MAJ3.  It is
exact but slow — which is precisely its role as the Fig. 7 baseline — and it
is the source of ground-truth labels for training and accuracy evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.aig.cuts import enumerate_cuts
from repro.aig.graph import AIG
from repro.aig.npn import is_maj_truth, is_xor_truth

__all__ = ["XorMajDetection", "detect_xor_maj", "ha_carry_candidates"]

LeafSets = dict[int, list[tuple[int, ...]]]


@dataclass
class XorMajDetection:
    """XOR/MAJ root detection result.

    ``xor_roots`` / ``maj_roots`` map a root variable to the list of leaf
    tuples (cuts) under which its function is NPN-XOR / NPN-MAJ.

    ``constructions`` counts every instance ever built (process-wide).
    The serving path is required to stay dict-free — ``engine="fast"``
    post-processing keeps candidates in array form end to end and only
    adapts to this class lazily — and the counter is what the tests
    assert that with.
    """

    xor_roots: LeafSets = field(default_factory=dict)
    maj_roots: LeafSets = field(default_factory=dict)

    constructions: ClassVar[int] = 0

    def __post_init__(self) -> None:
        XorMajDetection.constructions += 1

    @property
    def num_xor(self) -> int:
        return len(self.xor_roots)

    @property
    def num_maj(self) -> int:
        return len(self.maj_roots)

    def is_xor(self, var: int) -> bool:
        return var in self.xor_roots

    def is_maj(self, var: int) -> bool:
        return var in self.maj_roots


def detect_xor_maj(aig: AIG, max_cuts: int = 10,
                   engine: str = "fast") -> XorMajDetection:
    """Detect all XOR2/XOR3 and MAJ3 roots by exact cut-function matching.

    Every AND node's 2- and 3-feasible cuts are checked against the NPN
    classes of XOR and MAJ.  Negation-permutation-negation equivalents count
    (paper Sec. III-B2), so complemented roots (XNOR, minority) and
    complemented leaves are all detected.

    ``engine="fast"`` (default) runs the vectorized array sweep of
    :mod:`repro.aig.fast_cuts` — same cuts, same classification, same
    result; ``engine="legacy"`` keeps the original per-node Cut-object loop
    as the differential oracle and runtime baseline.
    """
    if engine == "fast":
        from repro.aig.fast_cuts import enumerate_cuts_arrays, matched_leaf_sets

        arrays = enumerate_cuts_arrays(aig, k=3, max_cuts=max_cuts)
        xor_sets, maj_sets = matched_leaf_sets(arrays)
        return XorMajDetection(xor_roots=xor_sets, maj_roots=maj_sets)
    if engine != "legacy":
        raise ValueError(f"engine must be 'fast' or 'legacy', got {engine!r}")
    detection = XorMajDetection()
    all_cuts = enumerate_cuts(aig, k=3, max_cuts=max_cuts)
    for var in aig.and_vars():
        xor_cuts: list[tuple[int, ...]] = []
        maj_cuts: list[tuple[int, ...]] = []
        for cut in all_cuts[var]:
            if cut.size == 2 and is_xor_truth(cut.truth, 2):
                xor_cuts.append(cut.leaves)
            elif cut.size == 3:
                if is_xor_truth(cut.truth, 3):
                    xor_cuts.append(cut.leaves)
                elif is_maj_truth(cut.truth, 3):
                    maj_cuts.append(cut.leaves)
        if xor_cuts:
            detection.xor_roots[var] = xor_cuts
        if maj_cuts:
            detection.maj_roots[var] = maj_cuts
    return detection


def ha_carry_candidates(aig: AIG) -> dict[tuple[int, int], list[int]]:
    """AND nodes keyed by their fan-in variable pair: half-adder carry pool.

    The carry of a half adder over operand *literals* ``(l0, l1)`` is the
    AND ``l0·l1`` — and because slice operands may arrive complemented
    (boundary ``a+b+1`` folds produce inverted sums), the carry AND can
    carry any fan-in polarity combination.  All of them satisfy the
    algebraic half-adder identity ``sum + 2·carry = l0 + l1`` for suitable
    literals, so every two-distinct-variable AND is a candidate; the
    extractor filters out the ones interior to the paired XOR structure.

    The pool is pure graph structure, so it is built once per AIG and
    cached there (:meth:`~repro.aig.graph.AIG.and_pair_index`, invalidated
    on node append) — callers that loop over prediction batches no longer
    rebuild the full AND-pair mapping on every extraction.  Treat the
    returned mapping as read-only; candidate lists are ascending.
    """
    return aig.and_pair_index()
