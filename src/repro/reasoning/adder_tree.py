"""Adder extraction: pair XOR/MAJ roots into FAs/HAs and derive labels.

Implements the second half of conventional reasoning (paper Sec. II-B and
III-B3): XOR and MAJ roots with *identical inputs* are matched into full
adders, XOR2 roots with a matching equal-polarity AND become half adders,
and the matched slices yield the multi-task ground-truth labels:

* Task 1 — adder boundary: ``other / root / leaf / root+leaf``;
* Task 2 — XOR root (binary);
* Task 3 — MAJ root (binary), including matched half-adder carries
  (MAJ3 with a constant input, cf. node 10 of the paper's Fig. 3).

Engine/adapter boundary
-----------------------
:class:`AdderTree` is stored as a struct-of-arrays core
(:class:`AdderTreeArrays`: kind/sum/carry/leaf int32 columns plus a cached
CSR link index) so the serving-path consumers — word-level analysis,
``compare_adder_trees``, SCA relation resolution — run whole-tree array
passes instead of per-adder Python walks.  The original object views are
preserved as thin accessors: ``tree.adders`` (a list of
:class:`ExtractedAdder`), ``tree.consumed`` (a set), and
``tree.detection`` (an :class:`~repro.reasoning.xor_maj.XorMajDetection`)
are materialized lazily from the arrays on first access, so legacy callers
and the differential test oracle keep working unchanged while the fast
path never pays for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aig.graph import AIG, lit_var
from repro.reasoning.matching import maximum_bipartite_matching
from repro.reasoning.xor_maj import (
    XorMajDetection,
    detect_xor_maj,
    ha_carry_candidates,
)
from repro.utils.arrays import sorted_unique

__all__ = [
    "ExtractedAdder",
    "AdderTree",
    "AdderTreeArrays",
    "KIND_FA",
    "KIND_HA",
    "extract_adder_tree",
    "TASK1_OTHER",
    "TASK1_ROOT",
    "TASK1_LEAF",
    "TASK1_ROOT_LEAF",
    "NUM_TASK1_CLASSES",
    "ground_truth_labels",
]

TASK1_OTHER = 0
TASK1_ROOT = 1
TASK1_LEAF = 2
TASK1_ROOT_LEAF = 3
NUM_TASK1_CLASSES = 4

# Kind codes of the array core.  The object view maps them back to the
# ExtractedAdder kind strings.
KIND_FA = 0
KIND_HA = 1
_KIND_NAMES = ("FA", "HA")

# Leaf-column pad of the array core (HA rows use 2 of the 3 slots).  -1 is
# outside the variable range, so membership passes can never match it.
_LEAF_PAD = -1


@dataclass(frozen=True)
class ExtractedAdder:
    """A matched adder slice: sum root, carry root, and input leaves."""

    kind: str  # "FA" or "HA"
    sum_var: int
    carry_var: int
    leaves: tuple[int, ...]


class AdderTreeArrays:
    """Struct-of-arrays core of an :class:`AdderTree`.

    One row per matched slice, in emission order (identical to the legacy
    ``adders`` list order):

    * ``kind`` — ``(A,)`` uint8, :data:`KIND_FA` / :data:`KIND_HA`;
    * ``sum_var`` / ``carry_var`` — ``(A,)`` int32 root variables;
    * ``leaves`` — ``(A, W)`` int32 leaf variables, padded with ``-1``
      (``W`` is 3 for engine-built trees);
    * ``leaf_count`` — ``(A,)`` int8 live leaves per row.

    Derived indexes are built lazily and cached: the link edge list /
    CSR fan-out index (:meth:`link_edges` / :meth:`link_csr`), sorted
    root and leaf variable arrays, and the packed ``(sum, carry)`` keys
    :func:`~repro.reasoning.wordlevel.compare_adder_trees` joins on.
    """

    __slots__ = ("kind", "sum_var", "carry_var", "leaves", "leaf_count",
                 "_links", "_link_csr", "_root_vars", "_leaf_vars",
                 "_root_pair_keys")

    def __init__(self, kind: np.ndarray, sum_var: np.ndarray,
                 carry_var: np.ndarray, leaves: np.ndarray,
                 leaf_count: np.ndarray) -> None:
        self.kind = np.asarray(kind, dtype=np.uint8)
        self.sum_var = np.asarray(sum_var, dtype=np.int32)
        self.carry_var = np.asarray(carry_var, dtype=np.int32)
        self.leaves = np.asarray(leaves, dtype=np.int32)
        self.leaf_count = np.asarray(leaf_count, dtype=np.int8)
        self._links = None
        self._link_csr = None
        self._root_vars = None
        self._leaf_vars = None
        self._root_pair_keys = None

    def __len__(self) -> int:
        return len(self.kind)

    # Pickle support for the cached-payload path (__slots__ classes have
    # no __dict__; the derived indexes are dropped and rebuilt on demand).
    def __getstate__(self):
        return (self.kind, self.sum_var, self.carry_var, self.leaves,
                self.leaf_count)

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    @classmethod
    def empty(cls) -> "AdderTreeArrays":
        return cls(np.zeros(0, np.uint8), np.zeros(0, np.int32),
                   np.zeros(0, np.int32),
                   np.full((0, 3), _LEAF_PAD, np.int32),
                   np.zeros(0, np.int8))

    @classmethod
    def from_adders(cls, adders: list[ExtractedAdder]) -> "AdderTreeArrays":
        """Column form of an object-view adder list (the legacy builder)."""
        count = len(adders)
        if count == 0:
            return cls.empty()
        width = max(3, max(len(a.leaves) for a in adders))
        kind = np.fromiter((0 if a.kind == "FA" else 1 for a in adders),
                           np.uint8, count)
        sum_var = np.fromiter((a.sum_var for a in adders), np.int32, count)
        carry_var = np.fromiter((a.carry_var for a in adders), np.int32, count)
        leaves = np.full((count, width), _LEAF_PAD, dtype=np.int32)
        leaf_count = np.zeros(count, dtype=np.int8)
        for row, adder in enumerate(adders):
            leaf_count[row] = len(adder.leaves)
            leaves[row, :len(adder.leaves)] = adder.leaves
        return cls(kind, sum_var, carry_var, leaves, leaf_count)

    def to_adders(self) -> list[ExtractedAdder]:
        """Materialize the object view (lazy ``tree.adders`` accessor)."""
        kinds = self.kind.tolist()
        sums = self.sum_var.tolist()
        carries = self.carry_var.tolist()
        counts = self.leaf_count.tolist()
        rows = self.leaves.tolist()
        return [
            ExtractedAdder(_KIND_NAMES[kinds[i]], sums[i], carries[i],
                           tuple(rows[i][:counts[i]]))
            for i in range(len(kinds))
        ]

    # ------------------------------------------------------------------
    # Cached derived indexes
    # ------------------------------------------------------------------
    def root_vars(self) -> np.ndarray:
        """Sorted unique root variables (sums and carries)."""
        if self._root_vars is None:
            self._root_vars = sorted_unique(np.concatenate(
                [self.sum_var.astype(np.int64),
                 self.carry_var.astype(np.int64)]
            ))
        return self._root_vars

    def leaf_vars(self) -> np.ndarray:
        """Sorted unique leaf variables (pad excluded)."""
        if self._leaf_vars is None:
            flat = self.leaves.ravel().astype(np.int64)
            self._leaf_vars = sorted_unique(flat[flat != _LEAF_PAD])
        return self._leaf_vars

    def root_pair_keys(self) -> np.ndarray:
        """Sorted unique ``(sum << 32) | carry`` keys, one per slice kind.

        The join key :func:`~repro.reasoning.wordlevel.compare_adder_trees`
        intersects — cached here so repeated scoring of the same tree
        (prediction sweeps) packs the roots once.
        """
        if self._root_pair_keys is None:
            self._root_pair_keys = np.unique(
                (self.sum_var.astype(np.int64) << 32)
                | self.carry_var.astype(np.int64)
            )
        return self._root_pair_keys

    def link_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Adder-DAG edges ``(producer_row, consumer_row)``, deduplicated.

        Semantics of the legacy ``AdderTree.links()``: one edge per
        ``(producer, consumer)`` pair even when the consumer reads both the
        sum and the carry of the same producer, in first-occurrence order
        over the consumers' leaf lists — computed by one vectorized
        producer-gather plus a stable sort-dedup instead of the per-adder
        dict walk.
        """
        if self._links is not None:
            return self._links
        count = len(self)
        empty = np.zeros(0, dtype=np.int64)
        if count == 0:
            self._links = (empty, empty)
            return self._links
        bound = int(max(self.sum_var.max(), self.carry_var.max(),
                        self.leaves.max())) + 1
        producer = np.full(bound, -1, dtype=np.int64)
        # Interleaved (sum, carry) assignment per row, rows ascending:
        # duplicate roots resolve exactly like the sequential dict build
        # (last write wins).
        pairs = np.column_stack([self.sum_var, self.carry_var]).ravel()
        producer[pairs] = np.repeat(np.arange(count, dtype=np.int64), 2)
        flat = self.leaves.ravel().astype(np.int64)
        consumer = np.repeat(np.arange(count, dtype=np.int64),
                             self.leaves.shape[1])
        valid = flat != _LEAF_PAD
        flat, consumer = flat[valid], consumer[valid]
        src = producer[flat]
        keep = (src >= 0) & (src != consumer)
        src, consumer = src[keep], consumer[keep]
        if len(src):
            key = src * count + consumer
            order = np.argsort(key, kind="stable")
            ordered = key[order]
            first = np.r_[True, ordered[1:] != ordered[:-1]]
            rows = np.sort(order[first])
            src, consumer = src[rows], consumer[rows]
        self._links = (src, consumer)
        return self._links

    def link_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR fan-out of :meth:`link_edges`: ``(indptr, consumers)``.

        ``consumers[indptr[p]:indptr[p + 1]]`` lists the rows consuming
        producer ``p``'s outputs — the index the word-level Kahn wavefront
        (and any other batched tree consumer) expands frontiers through.
        """
        if self._link_csr is None:
            src, dst = self.link_edges()
            order = np.argsort(src, kind="stable")
            indptr = np.searchsorted(src[order],
                                     np.arange(len(self) + 1, dtype=np.int64))
            self._link_csr = (indptr, dst[order])
        return self._link_csr


class AdderTree:
    """Extraction result with lookup indexes and linkage helpers.

    ``consumed`` holds every variable claimed by a matched slice (roots plus
    cone interiors); nodes in it cannot appear in further matches.

    The canonical storage is the array core (:meth:`arrays`); ``adders``,
    ``consumed`` and ``detection`` are thin object views materialized on
    first access.  Trees may equally be built the legacy way — appending
    :class:`ExtractedAdder` objects to ``adders`` — in which case the array
    core is derived (and re-derived if the list grew since).
    """

    def __init__(self, adders: list[ExtractedAdder] | None = None,
                 detection: XorMajDetection | None = None,
                 consumed: set[int] | None = None,
                 candidates=None,
                 core: AdderTreeArrays | None = None,
                 consumed_mask: np.ndarray | None = None) -> None:
        if core is not None and adders is not None:
            raise ValueError("pass either adders or core, not both")
        self._core = core
        self._core_from_len = len(core) if core is not None else None
        # Core-built trees (the engine path) keep their cached core; trees
        # built from a list re-derive it per arrays() call, because the
        # list is freely mutable and a stale core would silently poison
        # every array consumer.
        self._from_core = core is not None
        self._adders = list(adders) if adders is not None else (
            None if core is not None else [])
        self._detection = detection
        self.candidates = candidates  # PairingCandidates | None (lazy adapter)
        if consumed is not None:
            self._consumed: set[int] | None = set(consumed)
            self._consumed_mask = None
        else:
            self._consumed = None if consumed_mask is not None else set()
            self._consumed_mask = consumed_mask

    # ------------------------------------------------------------------
    # Thin object views over the array core
    # ------------------------------------------------------------------
    @property
    def adders(self) -> list[ExtractedAdder]:
        if self._adders is None:
            self._adders = self._core.to_adders()
            self._core_from_len = len(self._adders)
        # Handing out the mutable list view forfeits the cached core: the
        # caller may mutate it in place (not just append), and a stale
        # core would silently diverge from ``adders`` in every array
        # consumer.  Pure-array paths never touch this property, so the
        # serving pipeline keeps its cached core and link indexes.
        self._from_core = False
        return self._adders

    @property
    def detection(self) -> XorMajDetection | None:
        """The detection behind this tree, adapted from the candidate
        arrays on first access when the fast path never built the dicts."""
        if self._detection is None and self.candidates is not None:
            self._detection = self.candidates.to_detection()
        return self._detection

    @detection.setter
    def detection(self, value: XorMajDetection | None) -> None:
        self._detection = value

    @property
    def consumed(self) -> set[int]:
        if self._consumed is None:
            self._consumed = set(np.flatnonzero(self._consumed_mask).tolist())
        return self._consumed

    @consumed.setter
    def consumed(self, value: set[int]) -> None:
        self._consumed = value
        self._consumed_mask = None

    def arrays(self) -> AdderTreeArrays:
        """The struct-of-arrays core (built from ``adders`` if needed).

        Engine-built trees return their cached core (its derived indexes —
        link CSR, root-pair keys — survive across calls; the materialized
        ``adders`` view is read-only by contract, though appends are still
        detected).  List-built trees re-derive the core on every call:
        their list is freely mutable, including same-length in-place
        replacement, and array consumers must always see the current
        content.
        """
        if self._adders is None:
            return self._core
        if self._from_core and self._core_from_len == len(self._adders):
            return self._core
        self._core = AdderTreeArrays.from_adders(self._adders)
        self._core_from_len = len(self._adders)
        self._from_core = False  # the list holds the truth from here on
        return self._core

    # ------------------------------------------------------------------
    @property
    def num_full_adders(self) -> int:
        if self._adders is None:
            return int(np.count_nonzero(self._core.kind == KIND_FA))
        return sum(1 for a in self._adders if a.kind == "FA")

    @property
    def num_half_adders(self) -> int:
        if self._adders is None:
            return int(np.count_nonzero(self._core.kind == KIND_HA))
        return sum(1 for a in self._adders if a.kind == "HA")

    def root_vars(self) -> set[int]:
        return set(self.arrays().root_vars().tolist())

    def leaf_vars(self) -> set[int]:
        return set(self.arrays().leaf_vars().tolist())

    def by_root(self) -> dict[int, ExtractedAdder]:
        index: dict[int, ExtractedAdder] = {}
        for adder in self.adders:
            index[adder.sum_var] = adder
            index[adder.carry_var] = adder
        return index

    def links(self) -> list[tuple[int, int]]:
        """Edges of the adder DAG: ``(producer_index, consumer_index)``
        whenever one adder's output variable is another adder's leaf.

        Each edge appears once even when the consumer reads *both* the sum
        and the carry of the same producer (routine in compressor trees),
        in first-occurrence order over the consumers' leaf lists.  Backed
        by the cached :meth:`AdderTreeArrays.link_edges` index.
        """
        src, dst = self.arrays().link_edges()
        return list(zip(src.tolist(), dst.tolist()))

    def __eq__(self, other) -> bool:
        """Value equality over the former dataclass fields.

        Matches the pre-array-core ``@dataclass`` semantics — adders,
        detection, consumed — so core-built and list-built trees with the
        same content compare equal.  Comparing a fast-path tree
        materializes its lazy views (equality is not a serving-path
        operation).
        """
        if not isinstance(other, AdderTree):
            return NotImplemented
        return (self.adders == other.adders
                and self.consumed == other.consumed
                and self.detection == other.detection)

    __hash__ = None  # mutable, like the non-frozen dataclass it replaced

    def __repr__(self) -> str:
        return (
            f"AdderTree({self.num_full_adders} FA, "
            f"{self.num_half_adders} HA)"
        )


def _cone_between(aig: AIG, root: int, leaves: set[int]) -> set[int]:
    """AND variables strictly inside the cone of ``root`` above ``leaves``."""
    inside: set[int] = set()
    stack = [root]
    while stack:
        var = stack.pop()
        if var in inside or var in leaves or not aig.is_and(var):
            continue
        inside.add(var)
        f0, f1 = aig.fanins(var)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return inside


def _sorted_leaf_sets(leaf_sets: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Candidate leaf sets in canonical ``(size, leaves)`` order.

    Engine-produced detections already list cuts this way (the enumerators
    rank by size then leaves), so this is a no-op there — it exists so
    hand-built or shuffled detections extract identically: pairing must be
    a function of the candidate *set*, never of list or dict order.
    """
    return sorted(leaf_sets, key=lambda leaves: (len(leaves), leaves))


def extract_adder_tree(aig: AIG, detection: XorMajDetection | None = None,
                       max_cuts: int = 10, engine: str = "fast") -> AdderTree:
    """Pair XOR and MAJ roots with identical inputs into FAs and HAs.

    Full adders are matched first (3-leaf XOR/MAJ pairs); the cone interior
    of each matched adder is consumed so its private XOR/AND sub-structures
    (the shared propagate XOR, the generate AND) cannot be re-extracted as
    spurious half adders — mirroring how exact rewriting consumes matched
    slices.

    ``engine="fast"`` (default) runs the array-shaped pairing of
    :mod:`repro.reasoning.fast_pairing` — sort-based candidate grouping,
    vectorized matching, batched cone consumption; ``engine="legacy"``
    keeps the per-root loop below as the differential oracle and runtime
    baseline.  Both are deterministic (candidates in sorted order, one
    shared matching algorithm) and produce bit-identical trees.
    """
    if engine == "fast":
        from repro.reasoning.fast_pairing import fast_extract_adder_tree

        return fast_extract_adder_tree(aig, detection=detection,
                                       max_cuts=max_cuts)
    if engine != "legacy":
        raise ValueError(f"engine must be 'fast' or 'legacy', got {engine!r}")
    if detection is None:
        detection = detect_xor_maj(aig, max_cuts=max_cuts)

    xor_by_leaves: dict[tuple[int, ...], list[int]] = {}
    for var in sorted(detection.xor_roots):
        for leaves in _sorted_leaf_sets(detection.xor_roots[var]):
            xor_by_leaves.setdefault(leaves, []).append(var)

    tree = AdderTree(detection=detection)
    consumed = tree.consumed

    # --- Full adders: MAJ3 root + XOR3 root over the same leaves ---------
    # Maximum bipartite matching between MAJ and XOR roots sharing a leaf
    # set: greedy pairing can starve a later MAJ of its only partner on
    # Booth netlists, where XOR roots admit several coincident leaf sets.
    # The matcher's traversal order is pinned (ascending roots, sorted
    # adjacency), so the chosen matching is independent of detection
    # insertion order — and identical to the fast engine's.
    pair_leaves: dict[tuple[int, int], tuple[int, ...]] = {}
    adjacency: dict[int, list[int]] = {}
    for maj_var in sorted(detection.maj_roots):
        for leaves in _sorted_leaf_sets(detection.maj_roots[maj_var]):
            if len(leaves) != 3:  # an FA slice is 3-leaf by definition
                continue
            for xor_var in xor_by_leaves.get(leaves, ()):
                if xor_var == maj_var:
                    continue
                pair_leaves.setdefault((maj_var, xor_var), leaves)
                adjacency.setdefault(maj_var, []).append(xor_var)
    matching = maximum_bipartite_matching(adjacency)
    for maj_var in sorted(adjacency):
        xor_var = matching.get(maj_var)
        if xor_var is None:
            continue
        if maj_var in consumed or xor_var in consumed:
            continue
        leaves = pair_leaves[(maj_var, xor_var)]
        leaf_set = set(leaves)
        interior = _cone_between(aig, xor_var, leaf_set)
        interior |= _cone_between(aig, maj_var, leaf_set)
        tree.adders.append(ExtractedAdder("FA", xor_var, maj_var, leaves))
        consumed |= interior
        consumed.add(xor_var)
        consumed.add(maj_var)

    # --- Half adders: XOR2 root + an AND over the same variable pair ------
    # The AND may have any fan-in polarities (complemented slice operands
    # are common at folded boundaries), but must not be one of the XOR's
    # own interior nodes, which share the same leaf pair.
    carry_pool = ha_carry_candidates(aig)
    for xor_var in sorted(detection.xor_roots):
        if xor_var in consumed:
            continue
        for leaves in _sorted_leaf_sets(detection.xor_roots[xor_var]):
            if len(leaves) != 2:
                continue
            pair = (leaves[0], leaves[1])
            leaf_set = set(leaves)
            interior = _cone_between(aig, xor_var, leaf_set)
            carry_var = next(
                (
                    c
                    for c in carry_pool.get(pair, ())
                    if c not in consumed and c not in interior
                ),
                None,
            )
            if carry_var is None:
                continue
            tree.adders.append(ExtractedAdder("HA", xor_var, carry_var, pair))
            consumed |= interior
            consumed.add(xor_var)
            consumed.add(carry_var)
            break

    return tree


def ground_truth_labels(aig: AIG, detection: XorMajDetection | None = None,
                        tree: AdderTree | None = None,
                        max_cuts: int = 10,
                        engine: str = "fast") -> dict[str, np.ndarray]:
    """Multi-task node labels over all variables (constant + PIs + ANDs).

    Returns arrays of length ``aig.num_vars``:

    * ``"root"`` — Task 1 classes (other/root/leaf/root+leaf);
    * ``"xor"`` — Task 2 binary XOR-root labels;
    * ``"maj"`` — Task 3 binary MAJ-root labels.

    ``engine`` selects the detection sweep and pairing implementation
    (``"fast"``/``"legacy"``); the labels are identical either way.
    """
    if detection is None:
        detection = detect_xor_maj(aig, max_cuts=max_cuts, engine=engine)
    if tree is None:
        tree = extract_adder_tree(aig, detection, engine=engine)

    num_vars = aig.num_vars
    xor_label = np.zeros(num_vars, dtype=np.int64)
    maj_label = np.zeros(num_vars, dtype=np.int64)
    root_label = np.zeros(num_vars, dtype=np.int64)

    for var in detection.xor_roots:
        xor_label[var] = 1
    for var in detection.maj_roots:
        maj_label[var] = 1
    for adder in tree.adders:
        if adder.kind == "HA":
            # Matched half-adder carries are MAJ3(a, b, const) — labeled MAJ
            # exactly as ABC's ground truth labels the paper's node 10.
            maj_label[adder.carry_var] = 1

    roots = tree.root_vars()
    leaves = tree.leaf_vars()
    for var in roots:
        root_label[var] = TASK1_ROOT
    for var in leaves:
        root_label[var] = TASK1_ROOT_LEAF if var in roots else TASK1_LEAF
    return {"root": root_label, "xor": xor_label, "maj": maj_label}
