"""Adder extraction: pair XOR/MAJ roots into FAs/HAs and derive labels.

Implements the second half of conventional reasoning (paper Sec. II-B and
III-B3): XOR and MAJ roots with *identical inputs* are matched into full
adders, XOR2 roots with a matching equal-polarity AND become half adders,
and the matched slices yield the multi-task ground-truth labels:

* Task 1 — adder boundary: ``other / root / leaf / root+leaf``;
* Task 2 — XOR root (binary);
* Task 3 — MAJ root (binary), including matched half-adder carries
  (MAJ3 with a constant input, cf. node 10 of the paper's Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aig.graph import AIG, lit_var
from repro.reasoning.matching import maximum_bipartite_matching
from repro.reasoning.xor_maj import (
    XorMajDetection,
    detect_xor_maj,
    ha_carry_candidates,
)

__all__ = [
    "ExtractedAdder",
    "AdderTree",
    "extract_adder_tree",
    "TASK1_OTHER",
    "TASK1_ROOT",
    "TASK1_LEAF",
    "TASK1_ROOT_LEAF",
    "NUM_TASK1_CLASSES",
    "ground_truth_labels",
]

TASK1_OTHER = 0
TASK1_ROOT = 1
TASK1_LEAF = 2
TASK1_ROOT_LEAF = 3
NUM_TASK1_CLASSES = 4


@dataclass(frozen=True)
class ExtractedAdder:
    """A matched adder slice: sum root, carry root, and input leaves."""

    kind: str  # "FA" or "HA"
    sum_var: int
    carry_var: int
    leaves: tuple[int, ...]


@dataclass
class AdderTree:
    """Extraction result with lookup indexes and linkage helpers.

    ``consumed`` holds every variable claimed by a matched slice (roots plus
    cone interiors); nodes in it cannot appear in further matches.
    """

    adders: list[ExtractedAdder] = field(default_factory=list)
    detection: XorMajDetection | None = None
    consumed: set[int] = field(default_factory=set)

    @property
    def num_full_adders(self) -> int:
        return sum(1 for a in self.adders if a.kind == "FA")

    @property
    def num_half_adders(self) -> int:
        return sum(1 for a in self.adders if a.kind == "HA")

    def root_vars(self) -> set[int]:
        roots: set[int] = set()
        for adder in self.adders:
            roots.add(adder.sum_var)
            roots.add(adder.carry_var)
        return roots

    def leaf_vars(self) -> set[int]:
        leaves: set[int] = set()
        for adder in self.adders:
            leaves.update(adder.leaves)
        return leaves

    def by_root(self) -> dict[int, ExtractedAdder]:
        index: dict[int, ExtractedAdder] = {}
        for adder in self.adders:
            index[adder.sum_var] = adder
            index[adder.carry_var] = adder
        return index

    def links(self) -> list[tuple[int, int]]:
        """Edges of the adder DAG: ``(producer_index, consumer_index)``
        whenever one adder's output variable is another adder's leaf.

        Each edge appears once even when the consumer reads *both* the sum
        and the carry of the same producer (routine in compressor trees),
        in first-occurrence order over the consumers' leaf lists.
        """
        producer_of: dict[int, int] = {}
        for index, adder in enumerate(self.adders):
            producer_of[adder.sum_var] = index
            producer_of[adder.carry_var] = index
        edges: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for index, adder in enumerate(self.adders):
            for leaf in adder.leaves:
                source = producer_of.get(leaf)
                if source is None or source == index:
                    continue
                edge = (source, index)
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
        return edges


def _cone_between(aig: AIG, root: int, leaves: set[int]) -> set[int]:
    """AND variables strictly inside the cone of ``root`` above ``leaves``."""
    inside: set[int] = set()
    stack = [root]
    while stack:
        var = stack.pop()
        if var in inside or var in leaves or not aig.is_and(var):
            continue
        inside.add(var)
        f0, f1 = aig.fanins(var)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return inside


def _sorted_leaf_sets(leaf_sets: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Candidate leaf sets in canonical ``(size, leaves)`` order.

    Engine-produced detections already list cuts this way (the enumerators
    rank by size then leaves), so this is a no-op there — it exists so
    hand-built or shuffled detections extract identically: pairing must be
    a function of the candidate *set*, never of list or dict order.
    """
    return sorted(leaf_sets, key=lambda leaves: (len(leaves), leaves))


def extract_adder_tree(aig: AIG, detection: XorMajDetection | None = None,
                       max_cuts: int = 10, engine: str = "fast") -> AdderTree:
    """Pair XOR and MAJ roots with identical inputs into FAs and HAs.

    Full adders are matched first (3-leaf XOR/MAJ pairs); the cone interior
    of each matched adder is consumed so its private XOR/AND sub-structures
    (the shared propagate XOR, the generate AND) cannot be re-extracted as
    spurious half adders — mirroring how exact rewriting consumes matched
    slices.

    ``engine="fast"`` (default) runs the array-shaped pairing of
    :mod:`repro.reasoning.fast_pairing` — sort-based candidate grouping,
    vectorized matching, batched cone consumption; ``engine="legacy"``
    keeps the per-root loop below as the differential oracle and runtime
    baseline.  Both are deterministic (candidates in sorted order, one
    shared matching algorithm) and produce bit-identical trees.
    """
    if engine == "fast":
        from repro.reasoning.fast_pairing import fast_extract_adder_tree

        return fast_extract_adder_tree(aig, detection=detection,
                                       max_cuts=max_cuts)
    if engine != "legacy":
        raise ValueError(f"engine must be 'fast' or 'legacy', got {engine!r}")
    if detection is None:
        detection = detect_xor_maj(aig, max_cuts=max_cuts)

    xor_by_leaves: dict[tuple[int, ...], list[int]] = {}
    for var in sorted(detection.xor_roots):
        for leaves in _sorted_leaf_sets(detection.xor_roots[var]):
            xor_by_leaves.setdefault(leaves, []).append(var)

    tree = AdderTree(detection=detection)
    consumed = tree.consumed

    # --- Full adders: MAJ3 root + XOR3 root over the same leaves ---------
    # Maximum bipartite matching between MAJ and XOR roots sharing a leaf
    # set: greedy pairing can starve a later MAJ of its only partner on
    # Booth netlists, where XOR roots admit several coincident leaf sets.
    # The matcher's traversal order is pinned (ascending roots, sorted
    # adjacency), so the chosen matching is independent of detection
    # insertion order — and identical to the fast engine's.
    pair_leaves: dict[tuple[int, int], tuple[int, ...]] = {}
    adjacency: dict[int, list[int]] = {}
    for maj_var in sorted(detection.maj_roots):
        for leaves in _sorted_leaf_sets(detection.maj_roots[maj_var]):
            if len(leaves) != 3:  # an FA slice is 3-leaf by definition
                continue
            for xor_var in xor_by_leaves.get(leaves, ()):
                if xor_var == maj_var:
                    continue
                pair_leaves.setdefault((maj_var, xor_var), leaves)
                adjacency.setdefault(maj_var, []).append(xor_var)
    matching = maximum_bipartite_matching(adjacency)
    for maj_var in sorted(adjacency):
        xor_var = matching.get(maj_var)
        if xor_var is None:
            continue
        if maj_var in consumed or xor_var in consumed:
            continue
        leaves = pair_leaves[(maj_var, xor_var)]
        leaf_set = set(leaves)
        interior = _cone_between(aig, xor_var, leaf_set)
        interior |= _cone_between(aig, maj_var, leaf_set)
        tree.adders.append(ExtractedAdder("FA", xor_var, maj_var, leaves))
        consumed |= interior
        consumed.add(xor_var)
        consumed.add(maj_var)

    # --- Half adders: XOR2 root + an AND over the same variable pair ------
    # The AND may have any fan-in polarities (complemented slice operands
    # are common at folded boundaries), but must not be one of the XOR's
    # own interior nodes, which share the same leaf pair.
    carry_pool = ha_carry_candidates(aig)
    for xor_var in sorted(detection.xor_roots):
        if xor_var in consumed:
            continue
        for leaves in _sorted_leaf_sets(detection.xor_roots[xor_var]):
            if len(leaves) != 2:
                continue
            pair = (leaves[0], leaves[1])
            leaf_set = set(leaves)
            interior = _cone_between(aig, xor_var, leaf_set)
            carry_var = next(
                (
                    c
                    for c in carry_pool.get(pair, ())
                    if c not in consumed and c not in interior
                ),
                None,
            )
            if carry_var is None:
                continue
            tree.adders.append(ExtractedAdder("HA", xor_var, carry_var, pair))
            consumed |= interior
            consumed.add(xor_var)
            consumed.add(carry_var)
            break

    return tree


def ground_truth_labels(aig: AIG, detection: XorMajDetection | None = None,
                        tree: AdderTree | None = None,
                        max_cuts: int = 10,
                        engine: str = "fast") -> dict[str, np.ndarray]:
    """Multi-task node labels over all variables (constant + PIs + ANDs).

    Returns arrays of length ``aig.num_vars``:

    * ``"root"`` — Task 1 classes (other/root/leaf/root+leaf);
    * ``"xor"`` — Task 2 binary XOR-root labels;
    * ``"maj"`` — Task 3 binary MAJ-root labels.

    ``engine`` selects the detection sweep and pairing implementation
    (``"fast"``/``"legacy"``); the labels are identical either way.
    """
    if detection is None:
        detection = detect_xor_maj(aig, max_cuts=max_cuts, engine=engine)
    if tree is None:
        tree = extract_adder_tree(aig, detection, engine=engine)

    num_vars = aig.num_vars
    xor_label = np.zeros(num_vars, dtype=np.int64)
    maj_label = np.zeros(num_vars, dtype=np.int64)
    root_label = np.zeros(num_vars, dtype=np.int64)

    for var in detection.xor_roots:
        xor_label[var] = 1
    for var in detection.maj_roots:
        maj_label[var] = 1
    for adder in tree.adders:
        if adder.kind == "HA":
            # Matched half-adder carries are MAJ3(a, b, const) — labeled MAJ
            # exactly as ABC's ground truth labels the paper's node 10.
            maj_label[adder.carry_var] = 1

    roots = tree.root_vars()
    leaves = tree.leaf_vars()
    for var in roots:
        root_label[var] = TASK1_ROOT
    for var in leaves:
        root_label[var] = TASK1_ROOT_LEAF if var in roots else TASK1_LEAF
    return {"root": root_label, "xor": xor_label, "maj": maj_label}
