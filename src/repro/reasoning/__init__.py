"""Exact symbolic reasoning: the conventional baseline Gamora learns to imitate."""

from repro.reasoning.xor_maj import XorMajDetection, detect_xor_maj, ha_carry_candidates
from repro.reasoning.matching import maximum_bipartite_matching
from repro.reasoning.structural import detect_xor_maj_structural, match_xor_operands
from repro.reasoning.fast_pairing import (
    PairingCandidates,
    batched_cones,
    fast_extract_adder_tree,
    pair_candidates,
)
from repro.reasoning.adder_tree import (
    NUM_TASK1_CLASSES,
    TASK1_LEAF,
    TASK1_OTHER,
    TASK1_ROOT,
    TASK1_ROOT_LEAF,
    AdderTree,
    AdderTreeArrays,
    ExtractedAdder,
    extract_adder_tree,
    ground_truth_labels,
)
from repro.reasoning.wordlevel import (
    WordLevelReport,
    analyze_adder_tree,
    analyze_adder_trees,
    compare_adder_trees,
    partial_product_leaves,
)

__all__ = [
    "XorMajDetection",
    "detect_xor_maj",
    "ha_carry_candidates",
    "maximum_bipartite_matching",
    "PairingCandidates",
    "batched_cones",
    "fast_extract_adder_tree",
    "pair_candidates",
    "detect_xor_maj_structural",
    "match_xor_operands",
    "NUM_TASK1_CLASSES",
    "TASK1_LEAF",
    "TASK1_OTHER",
    "TASK1_ROOT",
    "TASK1_ROOT_LEAF",
    "AdderTree",
    "AdderTreeArrays",
    "ExtractedAdder",
    "extract_adder_tree",
    "ground_truth_labels",
    "WordLevelReport",
    "analyze_adder_tree",
    "analyze_adder_trees",
    "compare_adder_trees",
    "partial_product_leaves",
]
