"""Post-processing of GNN predictions (paper Sec. III-B3 and IV-B1).

Predicted XOR/MAJ/root labels become an adder tree in three steps:

1. *verify* — each flagged node's cuts are checked against the XOR/MAJ NPN
   classes; nodes with no matching cut are mispredictions (the paper's
   Fig. 3(e) "mismatch") and are dropped;
2. *pair* — verified roots go through the same identical-input matching as
   exact reasoning;
3. *LSB repair* — nodes near the least-significant output bits have shallow
   neighborhoods and are systematically mispredicted (paper Sec. IV-B1);
   exact reasoning re-runs on that small cone and overrides the labels,
   the "easily corrected during post-processing" step.

Engines and the adapter boundary
--------------------------------
The verification stage has two implementations:

``engine="fast"`` (default)
    One vectorized whole-graph sweep (:mod:`repro.aig.fast_cuts`) computes
    every node's priority cuts, classifies them against the 256-entry
    XOR/MAJ LUTs, and keeps the result as
    :class:`~repro.reasoning.fast_pairing.PairingCandidates` arrays end to
    end: flagged candidates are verified with one sorted-membership pass,
    LSB repair restricts the same rows to the low-output cone, and the
    filtered rows feed the array pairing core directly.  **No
    ``XorMajDetection`` dict is ever materialized on this path** — the
    dict form stays available as a lazy adapter
    (``extraction.detection`` / ``tree.detection``,
    :meth:`PairingCandidates.to_detection
    <repro.reasoning.fast_pairing.PairingCandidates.to_detection>`) for
    the legacy oracle and public-API compatibility.  Verification matches
    the ground-truth semantics of
    :func:`~repro.reasoning.xor_maj.detect_xor_maj` exactly (same global
    priority cuts that generated the training labels).

``engine="legacy"``
    The original per-node path: :func:`~repro.aig.cuts.node_cuts` re-derives
    a depth-bounded local cone around each flagged node.  Kept as the
    runtime baseline (``benchmarks/bench_postprocess_fast.py``) and the
    differential-test oracle.  On depth-limit boundary cases the local cone
    can truncate cut lists differently from the global enumeration; real
    adder structures span few levels, so extractions agree in practice
    (asserted on fixtures and random circuits by ``tests/test_fast_cuts.py``).
"""

from __future__ import annotations

import numpy as np

from repro.aig.cuts import node_cuts
from repro.aig.graph import AIG, lit_var
from repro.aig.npn import is_maj_truth, is_xor_truth
from repro.reasoning.adder_tree import (
    TASK1_LEAF,
    TASK1_OTHER,
    TASK1_ROOT,
    TASK1_ROOT_LEAF,
    AdderTree,
    extract_adder_tree,
)
from repro.reasoning.fast_pairing import PairingCandidates, pair_candidates
from repro.reasoning.xor_maj import XorMajDetection
from repro.utils.arrays import in_sorted

__all__ = [
    "PredictedExtraction",
    "predictions_to_detection",
    "extract_from_predictions",
    "correct_lsb_region",
]

# (xor_sets, maj_sets): per-root matching leaf tuples, the whole graph at once.
MatchedSets = tuple[dict[int, list[tuple[int, ...]]],
                    dict[int, list[tuple[int, ...]]]]


class PredictedExtraction:
    """Adder tree recovered from predictions, with a mismatch report.

    ``detection`` is a thin adapter view: the fast engine never builds the
    dict form, so accessing it materializes the
    :class:`~repro.reasoning.xor_maj.XorMajDetection` from the tree's
    candidate arrays on first use (legacy-engine extractions attach the
    dicts they computed directly).
    """

    def __init__(self, tree: AdderTree,
                 detection: XorMajDetection | None = None,
                 rejected_xor: list[int] | None = None,
                 rejected_maj: list[int] | None = None,
                 corrected_vars: set[int] | None = None) -> None:
        self.tree = tree
        self._detection = detection
        self.rejected_xor = list(rejected_xor) if rejected_xor else []
        self.rejected_maj = list(rejected_maj) if rejected_maj else []
        self.corrected_vars = set(corrected_vars) if corrected_vars else set()

    @property
    def detection(self) -> XorMajDetection | None:
        if self._detection is None:
            self._detection = self.tree.detection
        return self._detection

    @property
    def num_mismatches(self) -> int:
        return len(self.rejected_xor) + len(self.rejected_maj)

    def __eq__(self, other) -> bool:
        """Value equality over the former dataclass fields (lazy views
        materialize on comparison — equality is not a serving-path op)."""
        if not isinstance(other, PredictedExtraction):
            return NotImplemented
        return (self.tree == other.tree
                and self.detection == other.detection
                and self.rejected_xor == other.rejected_xor
                and self.rejected_maj == other.rejected_maj
                and self.corrected_vars == other.corrected_vars)

    __hash__ = None  # mutable, like the non-frozen dataclass it replaced

    def __repr__(self) -> str:
        return (
            f"PredictedExtraction({self.tree!r}, "
            f"{self.num_mismatches} mismatches, "
            f"{len(self.corrected_vars)} corrected)"
        )


def _root_flags(labels: dict[str, np.ndarray]) -> np.ndarray:
    root = np.asarray(labels["root"])
    return (root == TASK1_ROOT) | (root == TASK1_ROOT_LEAF)


def _check_engine(engine: str, matched_sets: MatchedSets | None = None,
                  candidates: PairingCandidates | None = None) -> None:
    if engine not in ("fast", "legacy"):
        raise ValueError(f"engine must be 'fast' or 'legacy', got {engine!r}")
    if engine == "legacy" and (matched_sets is not None
                               or candidates is not None):
        # Precomputed sets come from the fast sweep; silently using them
        # would turn a requested legacy-oracle run into fast-vs-fast.
        raise ValueError(
            "matched_sets/candidates cannot be combined with engine='legacy'"
        )


def _sweep_candidates(aig: AIG, max_cuts: int,
                      restrict_to=None) -> PairingCandidates:
    """One vectorized sweep straight to candidate arrays — no dicts.

    ``restrict_to`` narrows the sweep to the given roots' fan-in cones
    (bit-identical cuts there); outside nodes simply have no rows.
    """
    from repro.aig.fast_cuts import enumerate_cuts_arrays

    return PairingCandidates.from_cut_arrays(
        enumerate_cuts_arrays(aig, k=3, max_cuts=max_cuts,
                              restrict_to=restrict_to)
    )


def _verify_candidates(
    aig: AIG,
    cands: PairingCandidates,
    labels: dict[str, np.ndarray],
    root_filter: bool,
) -> tuple[PairingCandidates, list[int], list[int]]:
    """Vectorized flagged-candidate verification against the shared sweep.

    The array twin of :func:`predictions_to_detection`: flagged roots with
    a matching cut keep their candidate rows (one sorted-membership pass
    per task), everything else lands in the rejected lists — same
    contents, same ascending order, zero dicts.
    """
    is_root = _root_flags(labels)
    xor_flags = np.asarray(labels["xor"]) == 1
    maj_flags = np.asarray(labels["maj"]) == 1
    if root_filter:
        xor_flags &= is_root
        maj_flags &= is_root
    xor_candidates = np.flatnonzero(xor_flags)
    maj_candidates = np.flatnonzero(maj_flags)

    first_and = 1 + aig.num_inputs
    xor_is_and = xor_candidates >= first_and
    xor_verified = xor_is_and & in_sorted(xor_candidates,
                                          cands.xor_root_vars())
    rejected_xor = xor_candidates[~xor_verified].tolist()

    maj_is_and = maj_candidates >= first_and
    maj_verified = maj_is_and & in_sorted(maj_candidates,
                                          cands.maj_root_vars())
    # Half-adder carries are plain ANDs: legitimately MAJ-labeled (MAJ3
    # with constant input) but with no 3-leaf MAJ cut.  They participate
    # in pairing through the carry pool, so only equal-fanin ANDs (and
    # non-AND flags) count as mispredictions — matching the legacy loop.
    fanin0, fanin1 = aig.fanin_arrays()
    same_fanin = ((fanin0[maj_candidates] >> 1)
                  == (fanin1[maj_candidates] >> 1))
    rejected_maj = maj_candidates[
        ~maj_is_and | (maj_is_and & ~maj_verified & same_fanin)
    ].tolist()

    filtered = cands.select_roots(xor_candidates[xor_verified],
                                  maj_candidates[maj_verified])
    return filtered, rejected_xor, rejected_maj


def _compute_matched_sets(aig: AIG, max_cuts: int,
                          restrict_to=None) -> MatchedSets:
    """One vectorized sweep: every node's XOR/MAJ-matching leaf sets.

    ``restrict_to`` narrows the sweep to the given roots' fan-in cones
    (bit-identical cuts there); outside nodes simply have no entries.
    """
    from repro.aig.fast_cuts import enumerate_cuts_arrays, matched_leaf_sets

    return matched_leaf_sets(
        enumerate_cuts_arrays(aig, k=3, max_cuts=max_cuts,
                              restrict_to=restrict_to)
    )


def _node_xor_sets(aig: AIG, var: int, max_cuts: int) -> list[tuple[int, ...]]:
    return [
        cut.leaves
        for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts)
        if (cut.size == 2 and is_xor_truth(cut.truth, 2))
        or (cut.size == 3 and is_xor_truth(cut.truth, 3))
    ]


def _node_maj_sets(aig: AIG, var: int, max_cuts: int) -> list[tuple[int, ...]]:
    return [
        cut.leaves
        for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts)
        if cut.size == 3 and is_maj_truth(cut.truth, 3)
    ]


def _node_xor_maj_sets(
    aig: AIG, var: int, max_cuts: int,
) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
    """Both classifications from a single cut enumeration (legacy LSB path)."""
    xor_sets: list[tuple[int, ...]] = []
    maj_sets: list[tuple[int, ...]] = []
    for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts):
        if cut.size == 2 and is_xor_truth(cut.truth, 2):
            xor_sets.append(cut.leaves)
        elif cut.size == 3:
            if is_xor_truth(cut.truth, 3):
                xor_sets.append(cut.leaves)
            elif is_maj_truth(cut.truth, 3):
                maj_sets.append(cut.leaves)
    return xor_sets, maj_sets


def predictions_to_detection(
    aig: AIG,
    labels: dict[str, np.ndarray],
    root_filter: bool = True,
    max_cuts: int = 10,
    engine: str = "fast",
    matched_sets: MatchedSets | None = None,
) -> tuple[XorMajDetection, list[int], list[int]]:
    """Turn predicted labels into a cut-verified :class:`XorMajDetection`.

    With the fast engine every flagged candidate is verified in one batch
    against a single whole-graph cut sweep (pass ``matched_sets`` to reuse
    a sweep computed by the caller); the legacy engine re-derives local
    cuts per flagged node.  Returns the detection and the lists of
    flagged-but-unverifiable nodes.
    """
    _check_engine(engine, matched_sets)
    is_root = _root_flags(labels)
    xor_flags = np.asarray(labels["xor"]) == 1
    maj_flags = np.asarray(labels["maj"]) == 1
    if root_filter:
        xor_candidates = np.flatnonzero(xor_flags & is_root)
        maj_candidates = np.flatnonzero(maj_flags & is_root)
    else:
        xor_candidates = np.flatnonzero(xor_flags)
        maj_candidates = np.flatnonzero(maj_flags)
    if matched_sets is None and engine == "fast":
        # Standalone call: sweep only the flagged candidates' fan-in cones
        # (bit-identical cuts there) — with sparse predictions this stays
        # proportional to the flagged cones, not the whole graph.  Callers
        # verifying many nodes (extract_from_predictions) pass a shared
        # whole-graph sweep instead.
        flagged = [
            int(var)
            for var in np.concatenate([xor_candidates, maj_candidates])
            if aig.is_and(int(var))
        ]
        matched_sets = _compute_matched_sets(aig, max_cuts,
                                             restrict_to=flagged)

    detection = XorMajDetection()
    rejected_xor: list[int] = []
    rejected_maj: list[int] = []
    for var in xor_candidates:
        var = int(var)
        if not aig.is_and(var):
            rejected_xor.append(var)
            continue
        if matched_sets is not None:
            leaf_sets = matched_sets[0].get(var, [])
        else:
            leaf_sets = _node_xor_sets(aig, var, max_cuts)
        if leaf_sets:
            detection.xor_roots[var] = leaf_sets
        else:
            rejected_xor.append(var)
    for var in maj_candidates:
        var = int(var)
        if not aig.is_and(var):
            rejected_maj.append(var)
            continue
        if matched_sets is not None:
            leaf_sets = matched_sets[1].get(var, [])
        else:
            leaf_sets = _node_maj_sets(aig, var, max_cuts)
        if leaf_sets:
            detection.maj_roots[var] = leaf_sets
        else:
            # Half-adder carries are plain ANDs: legitimately MAJ-labeled
            # (MAJ3 with constant input) but with no 3-leaf MAJ cut.  They
            # participate in pairing through the carry pool, not here.
            f0, f1 = (aig.fanins(var) if aig.is_and(var) else (0, 0))
            if lit_var(f0) == lit_var(f1):
                rejected_maj.append(var)
    return detection, rejected_xor, rejected_maj


def correct_lsb_region(
    aig: AIG,
    labels: dict[str, np.ndarray],
    num_outputs: int = 4,
    max_cuts: int = 10,
    engine: str = "fast",
    matched_sets: MatchedSets | None = None,
    candidates: PairingCandidates | None = None,
) -> tuple[dict[str, np.ndarray], set[int]]:
    """Overwrite labels in the low-output cone with exact reasoning.

    The cone of the ``num_outputs`` least-significant outputs is small
    (O(width) nodes in a multiplier), so exact cut matching there is cheap.
    Returns patched copies of the label arrays and the patched variables.

    The fast engine is array-native: the shared sweep's candidate rows
    (``candidates``, or a cone-restricted sweep when called standalone)
    are restricted to the cone, labels are patched with vectorized
    membership passes, and the local extraction pairs the restricted rows
    directly — no detection dicts.  ``matched_sets`` keeps the previous
    dict-based protocol working for callers that still hold one.
    """
    _check_engine(engine, matched_sets, candidates)
    roots = [lit_var(lit) for lit in aig.outputs[:num_outputs]]
    # Reverse-reach the cone as an array (already sorted); only AND
    # variables carry labels worth patching.
    cone_arr = aig.transitive_fanin_array(roots)
    cone_arr = cone_arr[cone_arr > aig.num_inputs]
    cone = set(map(int, cone_arr))
    if not cone:
        return labels, set()

    if engine == "fast" and matched_sets is None:
        if candidates is None:
            # Standalone call: sweep only the LSB cone (cuts there are
            # identical to a whole-graph sweep) — this keeps the documented
            # "small cone, cheap repair" cost instead of touching every node.
            candidates = _sweep_candidates(aig, max_cuts, restrict_to=roots)
        patched = {task: np.array(arr, copy=True)
                   for task, arr in labels.items()}
        patched["xor"][cone_arr] = in_sorted(cone_arr,
                                             candidates.xor_root_vars())
        patched["maj"][cone_arr] = in_sorted(cone_arr,
                                             candidates.maj_root_vars())

        # Re-derive boundary labels inside the cone from a local
        # extraction over the cone-restricted candidate rows.
        from repro.reasoning.adder_tree import KIND_HA

        local_tree = pair_candidates(aig, candidates.restrict_roots(cone_arr))
        core = local_tree.arrays()
        patched["maj"][core.carry_var[core.kind == KIND_HA]] = 1
        in_roots = in_sorted(cone_arr, core.root_vars())
        in_leaves = in_sorted(cone_arr, core.leaf_vars())
        # OTHER=0, ROOT=1, LEAF=2, ROOT_LEAF=3: the class code is exactly
        # root + 2*leaf.
        patched["root"][cone_arr] = (
            in_roots * TASK1_ROOT + in_leaves * TASK1_LEAF
        )
        return patched, cone

    detection = XorMajDetection()
    for var in sorted(cone):
        if matched_sets is not None:
            xor_sets = matched_sets[0].get(var, [])
            maj_sets = matched_sets[1].get(var, [])
        else:
            xor_sets, maj_sets = _node_xor_maj_sets(aig, var, max_cuts)
        if xor_sets:
            detection.xor_roots[var] = xor_sets
        if maj_sets:
            detection.maj_roots[var] = maj_sets

    patched = {task: np.array(arr, copy=True) for task, arr in labels.items()}
    for var in cone:
        patched["xor"][var] = 1 if var in detection.xor_roots else 0
        patched["maj"][var] = 1 if var in detection.maj_roots else 0

    # Re-derive boundary labels inside the cone from a local extraction.
    local_tree = extract_adder_tree(aig, detection, engine=engine)
    local_roots = local_tree.root_vars()
    local_leaves = local_tree.leaf_vars()
    for adder in local_tree.adders:
        if adder.kind == "HA":
            patched["maj"][adder.carry_var] = 1
    for var in cone:
        if var in local_roots and var in local_leaves:
            patched["root"][var] = TASK1_ROOT_LEAF
        elif var in local_roots:
            patched["root"][var] = TASK1_ROOT
        elif var in local_leaves:
            patched["root"][var] = TASK1_LEAF
        else:
            patched["root"][var] = TASK1_OTHER
    return patched, cone


def extract_from_predictions(
    aig: AIG,
    labels: dict[str, np.ndarray],
    root_filter: bool = False,
    correct_lsb: bool = True,
    lsb_outputs: int = 4,
    max_cuts: int = 10,
    engine: str = "fast",
) -> PredictedExtraction:
    """Full post-processing pipeline: repair, verify, pair.

    The fast engine runs the vectorized cut sweep *once*, keeps the result
    as candidate arrays shared between LSB repair and flagged-candidate
    verification (one sorted-membership mask pass), and feeds the filtered
    rows straight to the array pairing core of
    :mod:`repro.reasoning.fast_pairing` — end to end, no
    :class:`~repro.reasoning.xor_maj.XorMajDetection` dict is ever built
    (``extraction.detection`` adapts lazily when asked for).  The legacy
    engine keeps the per-node cut re-derivation *and* the per-root pairing
    loop, as one coherent baseline.
    """
    _check_engine(engine)
    if engine == "fast":
        cands = _sweep_candidates(aig, max_cuts)
        corrected: set[int] = set()
        if correct_lsb:
            labels, corrected = correct_lsb_region(
                aig, labels, lsb_outputs, max_cuts,
                engine=engine, candidates=cands,
            )
        filtered, rejected_xor, rejected_maj = _verify_candidates(
            aig, cands, labels, root_filter,
        )
        tree = pair_candidates(aig, filtered)
        return PredictedExtraction(
            tree=tree,
            rejected_xor=rejected_xor,
            rejected_maj=rejected_maj,
            corrected_vars=corrected,
        )
    corrected = set()
    if correct_lsb:
        labels, corrected = correct_lsb_region(
            aig, labels, lsb_outputs, max_cuts, engine=engine,
        )
    detection, rejected_xor, rejected_maj = predictions_to_detection(
        aig, labels, root_filter=root_filter, max_cuts=max_cuts,
        engine=engine,
    )
    tree = extract_adder_tree(aig, detection, engine=engine)
    return PredictedExtraction(
        tree=tree,
        detection=detection,
        rejected_xor=rejected_xor,
        rejected_maj=rejected_maj,
        corrected_vars=corrected,
    )
