"""Post-processing of GNN predictions (paper Sec. III-B3 and IV-B1).

Predicted XOR/MAJ/root labels become an adder tree in three steps:

1. *verify* — each flagged node's local cuts are recomputed and checked
   against the XOR/MAJ NPN classes; nodes with no matching cut are
   mispredictions (the paper's Fig. 3(e) "mismatch") and are dropped;
2. *pair* — verified roots go through the same identical-input matching as
   exact reasoning;
3. *LSB repair* — nodes near the least-significant output bits have shallow
   neighborhoods and are systematically mispredicted (paper Sec. IV-B1);
   exact reasoning re-runs on that small cone and overrides the labels,
   the "easily corrected during post-processing" step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aig.cuts import node_cuts
from repro.aig.graph import AIG, lit_var
from repro.aig.npn import is_maj_truth, is_xor_truth
from repro.reasoning.adder_tree import (
    TASK1_LEAF,
    TASK1_OTHER,
    TASK1_ROOT,
    TASK1_ROOT_LEAF,
    AdderTree,
    extract_adder_tree,
)
from repro.reasoning.xor_maj import XorMajDetection

__all__ = [
    "PredictedExtraction",
    "predictions_to_detection",
    "extract_from_predictions",
    "correct_lsb_region",
]


@dataclass
class PredictedExtraction:
    """Adder tree recovered from predictions, with a mismatch report."""

    tree: AdderTree
    detection: XorMajDetection
    rejected_xor: list[int] = field(default_factory=list)
    rejected_maj: list[int] = field(default_factory=list)
    corrected_vars: set[int] = field(default_factory=set)

    @property
    def num_mismatches(self) -> int:
        return len(self.rejected_xor) + len(self.rejected_maj)


def _root_flags(labels: dict[str, np.ndarray]) -> np.ndarray:
    root = np.asarray(labels["root"])
    return (root == TASK1_ROOT) | (root == TASK1_ROOT_LEAF)


def predictions_to_detection(
    aig: AIG,
    labels: dict[str, np.ndarray],
    root_filter: bool = True,
    max_cuts: int = 10,
) -> tuple[XorMajDetection, list[int], list[int]]:
    """Turn predicted labels into a cut-verified :class:`XorMajDetection`.

    Only nodes the GNN flagged are examined, so the cut computation is
    local — this is the payoff of learned reasoning: the expensive global
    enumeration is replaced by inference plus a sparse verification.
    Returns the detection and the lists of flagged-but-unverifiable nodes.
    """
    is_root = _root_flags(labels)
    xor_flags = np.asarray(labels["xor"]) == 1
    maj_flags = np.asarray(labels["maj"]) == 1
    if root_filter:
        xor_candidates = np.flatnonzero(xor_flags & is_root)
        maj_candidates = np.flatnonzero(maj_flags & is_root)
    else:
        xor_candidates = np.flatnonzero(xor_flags)
        maj_candidates = np.flatnonzero(maj_flags)

    detection = XorMajDetection()
    rejected_xor: list[int] = []
    rejected_maj: list[int] = []
    for var in xor_candidates:
        var = int(var)
        if not aig.is_and(var):
            rejected_xor.append(var)
            continue
        leaf_sets = [
            cut.leaves
            for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts)
            if (cut.size == 2 and is_xor_truth(cut.truth, 2))
            or (cut.size == 3 and is_xor_truth(cut.truth, 3))
        ]
        if leaf_sets:
            detection.xor_roots[var] = leaf_sets
        else:
            rejected_xor.append(var)
    for var in maj_candidates:
        var = int(var)
        if not aig.is_and(var):
            rejected_maj.append(var)
            continue
        leaf_sets = [
            cut.leaves
            for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts)
            if cut.size == 3 and is_maj_truth(cut.truth, 3)
        ]
        if leaf_sets:
            detection.maj_roots[var] = leaf_sets
        else:
            # Half-adder carries are plain ANDs: legitimately MAJ-labeled
            # (MAJ3 with constant input) but with no 3-leaf MAJ cut.  They
            # participate in pairing through the carry pool, not here.
            f0, f1 = (aig.fanins(var) if aig.is_and(var) else (0, 0))
            if lit_var(f0) == lit_var(f1):
                rejected_maj.append(var)
    return detection, rejected_xor, rejected_maj


def correct_lsb_region(
    aig: AIG,
    labels: dict[str, np.ndarray],
    num_outputs: int = 4,
    max_cuts: int = 10,
) -> tuple[dict[str, np.ndarray], set[int]]:
    """Overwrite labels in the low-output cone with exact reasoning.

    The cone of the ``num_outputs`` least-significant outputs is small
    (O(width) nodes in a multiplier), so exact cut matching there is cheap.
    Returns patched copies of the label arrays and the patched variables.
    """
    roots = [lit_var(lit) for lit in aig.outputs[:num_outputs]]
    cone = {var for var in aig.transitive_fanin(roots) if aig.is_and(var)}
    if not cone:
        return labels, set()

    detection = XorMajDetection()
    for var in sorted(cone):
        xor_sets = []
        maj_sets = []
        for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts):
            if cut.size == 2 and is_xor_truth(cut.truth, 2):
                xor_sets.append(cut.leaves)
            elif cut.size == 3:
                if is_xor_truth(cut.truth, 3):
                    xor_sets.append(cut.leaves)
                elif is_maj_truth(cut.truth, 3):
                    maj_sets.append(cut.leaves)
        if xor_sets:
            detection.xor_roots[var] = xor_sets
        if maj_sets:
            detection.maj_roots[var] = maj_sets

    patched = {task: np.array(arr, copy=True) for task, arr in labels.items()}
    for var in cone:
        patched["xor"][var] = 1 if var in detection.xor_roots else 0
        patched["maj"][var] = 1 if var in detection.maj_roots else 0

    # Re-derive boundary labels inside the cone from a local extraction.
    local_tree = extract_adder_tree(aig, detection)
    local_roots = local_tree.root_vars()
    local_leaves = local_tree.leaf_vars()
    for adder in local_tree.adders:
        if adder.kind == "HA":
            patched["maj"][adder.carry_var] = 1
    for var in cone:
        if var in local_roots and var in local_leaves:
            patched["root"][var] = TASK1_ROOT_LEAF
        elif var in local_roots:
            patched["root"][var] = TASK1_ROOT
        elif var in local_leaves:
            patched["root"][var] = TASK1_LEAF
        else:
            patched["root"][var] = TASK1_OTHER
    return patched, cone


def extract_from_predictions(
    aig: AIG,
    labels: dict[str, np.ndarray],
    root_filter: bool = False,
    correct_lsb: bool = True,
    lsb_outputs: int = 4,
    max_cuts: int = 10,
) -> PredictedExtraction:
    """Full post-processing pipeline: repair, verify, pair."""
    corrected: set[int] = set()
    if correct_lsb:
        labels, corrected = correct_lsb_region(aig, labels, lsb_outputs, max_cuts)
    detection, rejected_xor, rejected_maj = predictions_to_detection(
        aig, labels, root_filter=root_filter, max_cuts=max_cuts
    )
    tree = extract_adder_tree(aig, detection)
    return PredictedExtraction(
        tree=tree,
        detection=detection,
        rejected_xor=rejected_xor,
        rejected_maj=rejected_maj,
        corrected_vars=corrected,
    )
