"""Gamora public API: the paper's primary contribution as a library."""

from repro.core.api import Gamora, ReasoningOutcome
from repro.core.postprocess import (
    PredictedExtraction,
    correct_lsb_region,
    extract_from_predictions,
    predictions_to_detection,
)

__all__ = [
    "Gamora",
    "ReasoningOutcome",
    "PredictedExtraction",
    "correct_lsb_region",
    "extract_from_predictions",
    "predictions_to_detection",
]
