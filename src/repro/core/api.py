"""The Gamora end-to-end API: train once, reason about any AIG.

Typical use::

    from repro.core import Gamora
    from repro.generators import csa_multiplier

    gamora = Gamora(model="shallow")
    gamora.fit([csa_multiplier(8)])
    result = gamora.reason(csa_multiplier(64))
    print(result.tree.num_full_adders, "full adders recovered")

The class bundles the feature encoder, the multi-task GraphSAGE, training,
accuracy evaluation against exact reasoning, prediction post-processing,
and weight persistence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.aig.graph import AIG
from repro.core.postprocess import PredictedExtraction, extract_from_predictions
from repro.learn.data import GraphData, build_graph_data
from repro.learn.model import GamoraNet, ModelConfig, deep_config, shallow_config
from repro.learn.trainer import TrainConfig, evaluate_model, train_model
from repro.reasoning.wordlevel import WordLevelReport
from repro.utils.timing import Timer

__all__ = ["Gamora", "ReasoningOutcome"]


@dataclass
class ReasoningOutcome:
    """Everything :meth:`Gamora.reason` produces for one netlist.

    ``report`` is filled only by the batched serving path when asked
    (``reason_many(..., with_report=True)`` — one concatenated
    word-level pass per batch); ``shard_index`` records which
    block-diagonal shard ran this circuit's forward pass (``None`` when
    the outcome was served from the result cache or came from the
    sequential path).  ``streamed`` is True when the forward pass ran
    window-by-window under a ``max_window_bytes`` budget (labels are
    bit-identical to the full-graph pass either way).  ``degraded`` is
    True when the full-graph pass raised :class:`MemoryError` and the
    outcome was served by the streamed fallback at a halved budget —
    same answer, produced the resilient way.
    """

    extraction: PredictedExtraction
    labels: dict[str, np.ndarray]
    inference_seconds: float
    postprocess_seconds: float
    report: "WordLevelReport | None" = None
    shard_index: int | None = None
    streamed: bool = False
    degraded: bool = False

    @property
    def tree(self):
        return self.extraction.tree

    @property
    def num_mismatches(self) -> int:
        return self.extraction.num_mismatches


def _as_aig(circuit) -> AIG:
    """Accept an AIG or anything carrying one (GeneratedMultiplier)."""
    if isinstance(circuit, AIG):
        return circuit
    aig = getattr(circuit, "aig", None)
    if isinstance(aig, AIG):
        return aig
    raise TypeError(f"expected AIG or object with .aig, got {type(circuit).__name__}")


class Gamora:
    """Graph-learning symbolic reasoner for AIGs (the paper's system)."""

    def __init__(self, model: str | ModelConfig = "shallow",
                 feature_mode: str = "full", direction: str = "in",
                 single_task: bool = False, seed: int = 0,
                 train_config: TrainConfig | None = None) -> None:
        if isinstance(model, ModelConfig):
            config = model
        elif model == "shallow":
            config = shallow_config()
        elif model == "deep":
            config = deep_config()
        else:
            raise ValueError(f"model must be 'shallow', 'deep' or a ModelConfig, got {model!r}")
        config.feature_mode = feature_mode
        config.direction = direction
        config.single_task = single_task
        config.seed = seed
        self.model_config = config
        self.train_config = train_config or TrainConfig()
        self.net = GamoraNet(config)
        self.history: list[dict] = []
        self._service = None  # lazy ReasoningService for reason_many
        self._kernel = None  # lazy compiled FastInference (deployment path)

    # ------------------------------------------------------------------
    def prepare(self, circuit, with_labels: bool = True,
                labels_source: str = "functional") -> GraphData:
        """Encode a circuit as a :class:`GraphData` for this model."""
        if isinstance(circuit, GraphData):
            return circuit
        return build_graph_data(
            _as_aig(circuit),
            feature_mode=self.model_config.feature_mode,
            direction=self.model_config.direction,
            with_labels=with_labels,
            labels_source=labels_source,
        )

    def fit(self, circuits, labels_source: str = "functional",
            epochs: int | None = None) -> list[dict]:
        """Train on one or more circuits (paper: small multipliers)."""
        if not isinstance(circuits, (list, tuple)):
            circuits = [circuits]
        graphs = [self.prepare(c, labels_source=labels_source) for c in circuits]
        train_config = self.train_config
        if epochs is not None:
            train_config = TrainConfig(**{**vars(train_config), "epochs": epochs})
        self.net, self.history = train_model(
            graphs, self.model_config, train_config, model=self.net
        )
        # Weights changed: the compiled kernel and any cached reasoning
        # results are stale.
        self._service = None
        self._kernel = None
        return self.history

    def inference_kernel(self):
        """The memoized float32 deployment kernel for the current weights.

        Every serving-path prediction (:meth:`predict`, :meth:`reason`,
        :meth:`predict_many`, and the batched service) runs through this
        one snapshot, so sequential, sharded, and streamed answers are
        bit-identical to each other.  Recompiled lazily after :meth:`fit`.
        """
        from repro.learn.fast import compile_inference

        if self._kernel is None:
            self._kernel = compile_inference(self.net)
        return self._kernel

    def predict(self, circuit) -> dict[str, np.ndarray]:
        """Per-node multi-task label predictions."""
        data = self.prepare(circuit, with_labels=False)
        return self.inference_kernel().predict(data.features, data.adjacency)

    def evaluate(self, circuit, labels_source: str = "functional") -> dict[str, float]:
        """Reasoning accuracy against exact ground truth."""
        data = self.prepare(circuit, labels_source=labels_source)
        return evaluate_model(self.net, data)

    def reason(self, circuit, root_filter: bool = False, correct_lsb: bool = True,
               lsb_outputs: int = 4, engine: str = "fast") -> ReasoningOutcome:
        """Predict labels, then post-process into an adder tree.

        ``engine`` selects the post-processing implementation: ``"fast"``
        (vectorized cut sweep + array-shaped pairing) or ``"legacy"`` (the
        per-node baseline).
        """
        aig = _as_aig(circuit)
        data = self.prepare(aig, with_labels=False)
        kernel = self.inference_kernel()
        with Timer() as infer_timer:
            labels = kernel.predict(data.features, data.adjacency)
        with Timer() as post_timer:
            extraction = extract_from_predictions(
                aig, labels, root_filter=root_filter,
                correct_lsb=correct_lsb, lsb_outputs=lsb_outputs,
                engine=engine,
            )
        return ReasoningOutcome(
            extraction=extraction,
            labels=labels,
            inference_seconds=infer_timer.elapsed,
            postprocess_seconds=post_timer.elapsed,
        )

    def reason_many(self, circuits, root_filter: bool = False,
                    correct_lsb: bool = True, lsb_outputs: int = 4,
                    max_shard_bytes: int | None = None,
                    max_window_bytes: int | None = None,
                    postprocess_workers: int | None = None,
                    engine: str = "fast", with_report: bool = False):
        """Batched :meth:`reason` over many circuits via the serving layer.

        Circuits are deduplicated by structural hash, encoded through an
        LRU cache, merged into block-diagonal shards (each kept under
        ``max_shard_bytes`` of estimated inference memory when set; one
        monolithic pass otherwise; with ``max_window_bytes`` also set, a
        circuit too large for any shard streams level-window by
        level-window under that budget instead of running one unbounded
        pass — labels bit-identical either way), inferred shard by shard, and
        post-processed per circuit — in ``postprocess_workers`` worker
        processes overlapped with the next shard's inference when > 0
        (``None``, the default, auto-sizes from ``os.cpu_count()`` and the
        batch's circuit sizes; small batches stay in-process).
        Returns a :class:`repro.serve.BatchReasoningOutcome` — a sequence
        with one :class:`ReasoningOutcome` per input circuit (input order
        preserved, labels and extractions identical to sequential
        :meth:`reason`) plus per-stage timing in ``.stats``.  The lazily
        built service (and its caches) persists across calls and is
        dropped on :meth:`fit`.
        """
        from repro.serve import ReasoningService

        if self._service is None:
            self._service = ReasoningService(self)
        return self._service.reason_many(
            circuits, root_filter=root_filter,
            correct_lsb=correct_lsb, lsb_outputs=lsb_outputs,
            max_shard_bytes=max_shard_bytes,
            max_window_bytes=max_window_bytes,
            postprocess_workers=postprocess_workers,
            engine=engine, with_report=with_report,
        )

    def predict_many(self, circuits) -> list[dict[str, np.ndarray]]:
        """Batched :meth:`predict`: one forward pass over all circuits."""
        from repro.learn.data import batch_graphs, unbatch_predictions

        graphs = [self.prepare(c, with_labels=False) for c in circuits]
        if not graphs:
            return []
        merged = graphs[0] if len(graphs) == 1 else batch_graphs(graphs)
        predictions = self.inference_kernel().predict(
            merged.features, merged.adjacency
        )
        return unbatch_predictions(predictions, [g.num_nodes for g in graphs])

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist weights + configuration to an ``.npz`` archive.

        The archive is written to exactly ``path`` (no ``.npz`` suffix is
        appended), so ``Gamora.load(path)`` always finds what ``save(path)``
        wrote regardless of the extension the caller chose.
        """
        path = Path(path)
        payload = {f"param:{k}": v for k, v in self.net.state_dict().items()}
        payload["config_json"] = np.frombuffer(
            json.dumps(self.model_config.to_dict()).encode("utf-8"), dtype=np.uint8
        )
        # np.savez(<str path>) silently appends ".npz" when the suffix is
        # missing, breaking load() on the caller's path; writing through an
        # open file handle keeps the destination verbatim.
        with open(path, "wb") as stream:
            np.savez(stream, **payload)

    @classmethod
    def load(cls, path: str | Path) -> "Gamora":
        """Restore a saved model."""
        archive = np.load(Path(path), allow_pickle=False)
        config_raw = bytes(archive["config_json"].tobytes()).decode("utf-8")
        config = ModelConfig.from_dict(json.loads(config_raw))
        instance = cls(model=config)
        state = {
            key[len("param:"):]: archive[key]
            for key in archive.files
            if key.startswith("param:")
        }
        instance.net.load_state_dict(state)
        instance.net.eval()
        return instance

    def __repr__(self) -> str:
        return f"Gamora({self.net.describe()})"
