"""Gamora reproduction: graph-learning based symbolic reasoning for Boolean networks.

Top-level convenience re-exports; see subpackages for the full API:

* :mod:`repro.aig` — And-Inverter Graph substrate (I/O, simulation, cuts, NPN)
* :mod:`repro.generators` — CSA / Booth multiplier benchmark generators
* :mod:`repro.reasoning` — exact cut-based XOR/MAJ reasoning (the ABC baseline)
* :mod:`repro.techmap` — standard-cell technology mapping substrate
* :mod:`repro.nn` — NumPy autodiff + GraphSAGE
* :mod:`repro.learn` — features, labels, datasets, training
* :mod:`repro.core` — the Gamora end-to-end API
* :mod:`repro.verify` — SCA multiplier verification (downstream application)
"""

__version__ = "1.0.0"

from repro.aig import AIG
from repro.generators import booth_multiplier, csa_multiplier, make_multiplier

__all__ = ["AIG", "booth_multiplier", "csa_multiplier", "make_multiplier", "__version__"]
