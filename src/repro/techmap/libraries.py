"""Built-in technology libraries.

Two libraries mirror the paper's Sec. IV-A setup:

* :func:`mcnc_reduced` — the reduced MCNC standard-cell library from the
  SIS distribution, gate input size ≤ 3 ("simple technology mapping");
* :func:`asap7_like` — an ASAP7-flavored library: richer combinational
  cells up to 4 inputs *plus multi-output full/half-adder cells*
  (``FAx1``/``HAx1``), the ingredient that makes post-mapping netlists
  "significantly more complex and irregular" for reasoning.

Cell areas are representative ratios, not process data; what the
experiments depend on is the *coverage structure* of the cells, not their
physical numbers.  Both libraries are constructed through the genlib parser
(multi-output adders are appended programmatically since genlib cannot
express them).
"""

from __future__ import annotations

from functools import lru_cache

from repro.techmap.genlib import Cell, Library, parse_genlib

__all__ = ["mcnc_reduced", "asap7_like", "FA_CELL_NAME", "HA_CELL_NAME"]

FA_CELL_NAME = "FAx1"
HA_CELL_NAME = "HAx1"

_MCNC_REDUCED_GENLIB = """
# Reduced MCNC/SIS library: gate input size <= 3 (paper Sec. IV-A).
GATE zero    0.0  O=CONST0;
GATE one     0.0  O=CONST1;
GATE buf     1.0  O=a;                       PIN * NONINV 1 999 1.0 0.0 1.0 0.0
GATE inv1    1.0  O=!a;                      PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE nand2   2.0  O=!(a*b);                  PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE nor2    2.0  O=!(a+b);                  PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE and2    3.0  O=a*b;                     PIN * NONINV 1 999 1.0 0.0 1.0 0.0
GATE or2     3.0  O=a+b;                     PIN * NONINV 1 999 1.0 0.0 1.0 0.0
GATE nand3   3.0  O=!(a*b*c);                PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE nor3    3.0  O=!(a+b+c);                PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE and3    4.0  O=a*b*c;                   PIN * NONINV 1 999 1.0 0.0 1.0 0.0
GATE or3     4.0  O=a+b+c;                   PIN * NONINV 1 999 1.0 0.0 1.0 0.0
GATE xor2    4.0  O=a^b;                     PIN * UNKNOWN 2 999 1.0 0.0 1.0 0.0
GATE xnor2   4.0  O=!(a^b);                  PIN * UNKNOWN 2 999 1.0 0.0 1.0 0.0
GATE aoi21   3.0  O=!((a*b)+c);              PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE oai21   3.0  O=!((a+b)*c);              PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE aoi22   4.0  O=!((a*b)+(c*d));          PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE mux21   5.0  O=(s*a)+(!s*b);            PIN * UNKNOWN 2 999 1.0 0.0 1.0 0.0
"""

_ASAP7_LIKE_GENLIB = """
# ASAP7-flavored library: wider cells and complex AOI/OAI shapes.
GATE TIELOx1    0.0  O=CONST0;
GATE TIEHIx1    0.0  O=CONST1;
GATE BUFx2      1.0  O=a;
GATE INVx1      0.7  O=!a;
GATE NAND2x1    1.0  O=!(a*b);
GATE NOR2x1     1.0  O=!(a+b);
GATE AND2x2     1.3  O=a*b;
GATE OR2x2      1.3  O=a+b;
GATE NAND3x1    1.4  O=!(a*b*c);
GATE NOR3x1     1.4  O=!(a+b+c);
GATE AND3x1     1.7  O=a*b*c;
GATE OR3x1      1.7  O=a+b+c;
GATE NAND4x1    1.8  O=!(a*b*c*d);
GATE NOR4x1     1.8  O=!(a+b+c+d);
GATE AND4x1     2.1  O=a*b*c*d;
GATE OR4x1      2.1  O=a+b+c+d;
GATE XOR2x1     2.0  O=a^b;
GATE XNOR2x1    2.0  O=!(a^b);
GATE XOR3x1     3.2  O=a^b^c;
GATE XNOR3x1    3.2  O=!(a^b^c);
GATE AOI21x1    1.2  O=!((a*b)+c);
GATE OAI21x1    1.2  O=!((a+b)*c);
GATE AOI22x1    1.5  O=!((a*b)+(c*d));
GATE OAI22x1    1.5  O=!((a+b)*(c+d));
GATE AOI211x1   1.6  O=!((a*b)+c+d);
GATE OAI211x1   1.6  O=!((a+b)*c*d);
GATE AO21x1     1.4  O=(a*b)+c;
GATE OA21x1     1.4  O=(a+b)*c;
GATE AO22x1     1.7  O=(a*b)+(c*d);
GATE OA22x1     1.7  O=(a+b)*(c+d);
GATE MAJ3x1     2.6  O=(a*b)+(a*c)+(b*c);
GATE MAJI3x1    2.6  O=!((a*b)+(a*c)+(b*c));
GATE MUX2x1     2.2  O=(s*a)+(!s*b);
GATE MUXI2x1    2.2  O=!((s*a)+(!s*b));
"""


def _adder_cells() -> list[Cell]:
    """Multi-output FAx1/HAx1 cells (ASAP7 ships real multi-output adders).

    Note the carry expression uses the *OR-of-products majority form* — when
    these cells are expanded back into an AIG, the carry structure differs
    from the shared-XOR form the generators emit, which is exactly the
    structural shift that degrades reasoning after 7nm mapping (Fig. 5).
    """
    from repro.techmap.genlib import parse_expression

    fa = Cell(
        name=FA_CELL_NAME,
        area=4.3,
        pins=["a", "b", "ci"],
        outputs={
            # Sum-of-products forms, as liberty files describe cells; the
            # re-expanded AIG shape shares nothing with the shared-XOR
            # full adders the generators emit.
            "sn": parse_expression(
                "(a*!b*!ci)+(!a*b*!ci)+(!a*!b*ci)+(a*b*ci)"
            ),
            "con": parse_expression("(a*b)+(a*ci)+(b*ci)"),
        },
    )
    ha = Cell(
        name=HA_CELL_NAME,
        area=2.8,
        pins=["a", "b"],
        outputs={
            "sn": parse_expression("a^b"),
            "con": parse_expression("a*b"),
        },
    )
    return [fa, ha]


@lru_cache(maxsize=None)
def mcnc_reduced() -> Library:
    """The ≤3-input reduced MCNC library ("simple technology mapping")."""
    return parse_genlib(_MCNC_REDUCED_GENLIB, name="mcnc-reduced")


@lru_cache(maxsize=None)
def asap7_like() -> Library:
    """ASAP7-flavored library with multi-output adder cells."""
    base = parse_genlib(_ASAP7_LIKE_GENLIB, name="asap7-like")
    return Library(name="asap7-like", cells=base.cells + _adder_cells())
