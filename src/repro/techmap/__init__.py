"""Technology-mapping substrate: libraries, matching, mapping, unmapping."""

from repro.techmap.genlib import Cell, ExprNode, Library, parse_expression, parse_genlib
from repro.techmap.libraries import FA_CELL_NAME, HA_CELL_NAME, asap7_like, mcnc_reduced
from repro.techmap.matcher import CellMatch, MatchIndex
from repro.techmap.netlist import CellInstance, MappedNetlist, simulate_netlist
from repro.techmap.mapper import MappingError, map_aig
from repro.techmap.unmap import map_unmap, netlist_to_aig

__all__ = [
    "Cell",
    "ExprNode",
    "Library",
    "parse_expression",
    "parse_genlib",
    "FA_CELL_NAME",
    "HA_CELL_NAME",
    "asap7_like",
    "mcnc_reduced",
    "CellMatch",
    "MatchIndex",
    "CellInstance",
    "MappedNetlist",
    "simulate_netlist",
    "MappingError",
    "map_aig",
    "map_unmap",
]
