"""Boolean matching: cut functions against library cells, modulo NPN.

For every single-output cell the whole NPN orbit of its function is indexed
by raw truth table, so matching a cut is a dictionary lookup that also
recovers *how* to hook the cut's leaves to the cell's pins (permutation,
per-pin inversions, output inversion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.npn import all_npn_transforms
from repro.techmap.genlib import Cell, Library

__all__ = ["CellMatch", "MatchIndex"]


@dataclass(frozen=True)
class CellMatch:
    """A library match for a cut function.

    Semantics (see :func:`repro.aig.npn.apply_transform`): the cut function
    equals ``cell(y) ^ out_flip`` where cell pin ``perm[j]`` is driven by
    cut leaf ``j`` complemented by ``flips[j]``.
    """

    cell: Cell
    perm: tuple[int, ...]
    flips: tuple[int, ...]
    out_flip: int

    def pin_drivers(self, leaves: tuple[int, ...]) -> list[tuple[int, int]]:
        """Per-pin ``(leaf_var, inverted)`` in the cell's pin order."""
        drivers: list[tuple[int, int]] = [(-1, 0)] * len(leaves)
        for j, leaf in enumerate(leaves):
            drivers[self.perm[j]] = (leaf, self.flips[j])
        return drivers

    @property
    def extra_inverters(self) -> int:
        """Inverters this match forces (complemented pins + output)."""
        return sum(self.flips) + self.out_flip


class MatchIndex:
    """NPN match tables for a library, built once and reused per map call."""

    def __init__(self, library: Library, max_arity: int = 4) -> None:
        self.library = library
        self.max_arity = max_arity
        self._tables: dict[int, dict[int, CellMatch]] = {}
        for cell in library.single_output_cells():
            k = cell.num_pins
            if k < 1 or k > max_arity:
                continue
            orbit = all_npn_transforms(cell.truth(), k)
            table = self._tables.setdefault(k, {})
            for truth, (perm, flips, out_flip) in orbit.items():
                match = CellMatch(cell, perm, flips, out_flip)
                incumbent = table.get(truth)
                if incumbent is None or self._better(match, incumbent):
                    table[truth] = match

    @staticmethod
    def _better(candidate: CellMatch, incumbent: CellMatch) -> bool:
        """Prefer smaller area, then fewer forced inverters."""
        return (candidate.cell.area, candidate.extra_inverters) < (
            incumbent.cell.area,
            incumbent.extra_inverters,
        )

    def match(self, truth: int, num_leaves: int) -> CellMatch | None:
        """Best cell realizing a ``num_leaves``-input cut function, or None."""
        return self._tables.get(num_leaves, {}).get(truth)

    def coverage(self, num_leaves: int) -> int:
        """How many distinct functions of that arity the library covers."""
        return len(self._tables.get(num_leaves, {}))
