"""Expand a mapped netlist back into an AIG ("strash after mapping").

Post-mapping reasoning in the paper operates on the AIG obtained by
re-structuring the mapped netlist (ABC: ``map; strash``).  Each cell output
expression is rebuilt with AIG gate constructors, so the resulting AIG is
functionally equivalent to — but structurally different from — the original:
XOR3 cells re-decompose as balanced chains, FAx1 carries come back in the
OR-of-products majority form, and AOI/OAI cells produce shapes the
generators never emit.  That structural shift is the whole point of the
Fig. 5 experiment.
"""

from __future__ import annotations

from repro.aig.graph import AIG, CONST0, CONST1, lit_not
from repro.techmap.genlib import ExprNode
from repro.techmap.netlist import NET_CONST0, NET_CONST1, MappedNetlist

__all__ = ["netlist_to_aig", "map_unmap"]


def _build_expr(aig: AIG, expr: ExprNode, pin_lits: dict[str, int]) -> int:
    if expr.op == "var":
        return pin_lits[expr.name]
    if expr.op == "const":
        return CONST1 if expr.value else CONST0
    if expr.op == "not":
        return lit_not(_build_expr(aig, expr.children[0], pin_lits))
    lits = [_build_expr(aig, child, pin_lits) for child in expr.children]
    if expr.op == "and":
        return aig.add_and_multi(lits)
    if expr.op == "or":
        return aig.add_or_multi(lits)
    if expr.op == "xor":
        result = lits[0]
        for lit in lits[1:]:
            result = aig.add_xor(result, lit)
        return result
    raise ValueError(f"unknown expression op {expr.op!r}")


def netlist_to_aig(netlist: MappedNetlist, name: str | None = None) -> AIG:
    """Rebuild an AIG from a mapped netlist (with structural hashing)."""
    aig = AIG(name=name or f"{netlist.name}_unmapped")
    net_lit: dict[int, int] = {NET_CONST0: CONST0, NET_CONST1: CONST1}
    for i in range(netlist.num_inputs):
        input_name = (
            netlist.input_names[i] if i < len(netlist.input_names) else None
        )
        net_lit[netlist.input_net(i)] = aig.add_input(input_name)
    for inst in netlist.cells:
        pin_lits = {
            pin: net_lit[net] for pin, net in zip(inst.cell.pins, inst.input_nets)
        }
        for out_net, expr in zip(inst.output_nets, inst.cell.outputs.values()):
            net_lit[out_net] = _build_expr(aig, expr, pin_lits)
    for net, po_name in zip(netlist.po_nets, netlist.po_names):
        aig.add_output(net_lit[net], po_name)
    return aig


def map_unmap(aig: AIG, library, **map_kwargs) -> AIG:
    """Convenience: ``map`` then re-expand to an AIG in one call.

    This is the transformation applied to every benchmark of the paper's
    Fig. 5 before reasoning on "post-mapping" netlists.
    """
    from repro.techmap.mapper import map_aig

    mapped = map_aig(aig, library, **map_kwargs)
    return netlist_to_aig(mapped, name=f"{aig.name}_{library.name}")
