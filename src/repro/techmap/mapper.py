"""Cut-based standard-cell technology mapping (area- or delay-oriented).

The flow mirrors ABC's ``map`` at a reproduction-appropriate level of
detail:

1. enumerate k-feasible cuts with functions (k = library arity, ≤ 4);
2. Boolean-match every cut against the library modulo NPN;
3. dynamic programming over the DAG picks the cheapest cover per node
   (heuristic area flow, or depth-first for ``mode='delay'``);
4. an optional *multi-output pre-pass* pairs detected XOR3/MAJ3 roots into
   FAx1/HAx1 cells when the library has them — this is how real mappers
   infer adder cells, and it is the mechanism behind the paper's
   "complex 7nm mapping" difficulty;
5. cover extraction instantiates cells from the outputs down, realizing
   complemented pins and outputs with cached inverter cells.

Mapped netlists are checked functionally equivalent to their source AIG in
the test suite, both by direct cell simulation and after AIG re-expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.cuts import Cut, enumerate_cuts, node_cuts
from repro.aig.graph import AIG, lit_neg, lit_var
from repro.aig.npn import MAJ3, XOR2, XOR3, apply_transform
from repro.reasoning.adder_tree import AdderTree, extract_adder_tree
from repro.techmap.genlib import Library
from repro.techmap.libraries import FA_CELL_NAME, HA_CELL_NAME
from repro.techmap.matcher import CellMatch, MatchIndex
from repro.techmap.netlist import NET_CONST0, NET_CONST1, MappedNetlist

__all__ = ["MappingError", "map_aig"]


class MappingError(RuntimeError):
    """Raised when a node has no matching cell in the library."""


@dataclass
class _AdderPlan:
    """A planned multi-output adder cell covering two roots."""

    cell_name: str
    sum_var: int
    carry_var: int
    leaves: tuple[int, ...]
    leaf_flips: tuple[int, ...]
    sum_flip: int
    carry_flip: int


def _truth_over_leaves(aig: AIG, var: int, leaves: tuple[int, ...],
                       max_cuts: int = 12) -> int | None:
    for cut in node_cuts(aig, var, k=3, max_cuts=max_cuts):
        if cut.leaves == leaves:
            return cut.truth
    return None


def _resolve_adder(aig: AIG, kind: str, sum_var: int, carry_var: int,
                   leaves: tuple[int, ...]) -> _AdderPlan | None:
    """Find shared pin polarities for an XOR/MAJ (or XOR/AND) root pair.

    Solves for flips ``(s_a, s_b[, s_c])`` and output flips so that
    ``cell_S(x ^ flips) ^ sum_flip`` and ``cell_CO(x ^ flips) ^ carry_flip``
    equal the two root functions.  Returns None when either root's truth
    over the leaves is unavailable (pruned cuts) — the DP then maps the
    roots with single-output cells instead.
    """
    arity = len(leaves)
    sum_truth = _truth_over_leaves(aig, sum_var, leaves)
    carry_truth = _truth_over_leaves(aig, carry_var, leaves)
    if sum_truth is None or carry_truth is None:
        return None
    xor_ref = XOR3 if arity == 3 else XOR2
    carry_ref = MAJ3 if arity == 3 else 0b1000  # MAJ3 or AND2
    identity = tuple(range(arity))
    full = (1 << (1 << arity)) - 1
    for flip_bits in range(1 << arity):
        flips = tuple((flip_bits >> j) & 1 for j in range(arity))
        carry_cell = apply_transform(carry_ref, arity, identity, flips, 0)
        if carry_cell == carry_truth:
            carry_flip = 0
        elif (carry_cell ^ full) == carry_truth:
            carry_flip = 1
        else:
            continue
        xor_cell = apply_transform(xor_ref, arity, identity, flips, 0)
        if xor_cell == sum_truth:
            sum_flip = 0
        elif (xor_cell ^ full) == sum_truth:
            sum_flip = 1
        else:
            continue
        return _AdderPlan(
            cell_name=FA_CELL_NAME if arity == 3 else HA_CELL_NAME,
            sum_var=sum_var,
            carry_var=carry_var,
            leaves=leaves,
            leaf_flips=flips,
            sum_flip=sum_flip,
            carry_flip=carry_flip,
        )
    return None


def _plan_adders(aig: AIG, library: Library,
                 tree: AdderTree | None) -> tuple[list[_AdderPlan], dict[int, int]]:
    """Pair extracted adders with FAx1/HAx1 cells when available."""
    if FA_CELL_NAME not in library and HA_CELL_NAME not in library:
        return [], {}
    if tree is None:
        tree = extract_adder_tree(aig)
    plans: list[_AdderPlan] = []
    owner: dict[int, int] = {}
    for adder in tree.adders:
        wants = FA_CELL_NAME if adder.kind == "FA" else HA_CELL_NAME
        if wants not in library:
            continue
        if adder.sum_var in owner or adder.carry_var in owner:
            continue
        plan = _resolve_adder(aig, adder.kind, adder.sum_var, adder.carry_var,
                              adder.leaves)
        if plan is None:
            continue
        index = len(plans)
        plans.append(plan)
        owner[adder.sum_var] = index
        owner[adder.carry_var] = index
    return plans, owner


def map_aig(aig: AIG, library: Library, mode: str = "area",
            use_multi_output: bool = True, cut_limit: int = 8,
            adder_tree: AdderTree | None = None) -> MappedNetlist:
    """Map an AIG onto a standard-cell library.

    ``mode='area'`` minimizes heuristic area flow; ``'delay'`` minimizes
    cell depth with area as tie-break.  ``use_multi_output`` enables the
    FAx1/HAx1 pairing pre-pass (ignored when the library has no adders).
    """
    if mode not in ("area", "delay"):
        raise ValueError(f"unknown mapping mode {mode!r}")
    arity = min(4, max(2, library.max_arity))
    index = MatchIndex(library, arity)
    inverter = library.inverter()
    all_cuts = enumerate_cuts(aig, k=arity, max_cuts=cut_limit)

    plans, owner = (
        _plan_adders(aig, library, adder_tree) if use_multi_output else ([], {})
    )
    adder_cost = {
        idx: library[plan.cell_name].area / 2.0 for idx, plan in enumerate(plans)
    }

    # ------------------------------------------------------------------
    # Cost DP in topological order.
    # ------------------------------------------------------------------
    num_vars = aig.num_vars
    cost = [0.0] * num_vars
    depth = [0] * num_vars
    choice: list[object] = [None] * num_vars
    for var in aig.and_vars():
        if var in owner:
            plan_index = owner[var]
            plan = plans[plan_index]
            leaf_cost = sum(cost[leaf] for leaf in plan.leaves)
            cost[var] = adder_cost[plan_index] + leaf_cost
            depth[var] = 1 + max(depth[leaf] for leaf in plan.leaves)
            choice[var] = ("adder", plan_index)
            continue
        best_key: tuple | None = None
        best: tuple[Cut, CellMatch] | None = None
        for cut in all_cuts[var]:
            if cut.size < 2:
                continue
            match = index.match(cut.truth, cut.size)
            if match is None:
                continue
            area = (
                match.cell.area
                + match.extra_inverters * inverter.area
                + sum(cost[leaf] for leaf in cut.leaves)
            )
            level = 1 + match.out_flip + max(depth[leaf] for leaf in cut.leaves)
            key = (area, level) if mode == "area" else (level, area)
            if best_key is None or key < best_key:
                best_key = key
                best = (cut, match)
        if best is None:
            raise MappingError(
                f"no cell in {library.name} matches any cut of node {var}"
            )
        cut, match = best
        cost[var] = best_key[0] if mode == "area" else best_key[1]
        depth[var] = best_key[1] if mode == "area" else best_key[0]
        choice[var] = ("cell", cut, match)

    # ------------------------------------------------------------------
    # Cover extraction from the outputs down.
    # ------------------------------------------------------------------
    needed: set[int] = set()
    stack = [lit_var(lit) for lit in aig.outputs if aig.is_and(lit_var(lit))]
    while stack:
        var = stack.pop()
        if var in needed:
            continue
        needed.add(var)
        decision = choice[var]
        if decision[0] == "adder":
            plan = plans[decision[1]]
            leaves = plan.leaves
        else:
            leaves = decision[1].leaves
        for leaf in leaves:
            if aig.is_and(leaf) and leaf not in needed:
                stack.append(leaf)

    netlist = MappedNetlist(
        name=f"{aig.name}_{library.name}_{mode}",
        library=library,
        num_inputs=aig.num_inputs,
        input_names=aig.input_names,
    )
    pos_net: dict[int, int] = {var: netlist.input_net(i)
                               for i, var in enumerate(aig.input_vars())}
    neg_net: dict[int, int] = {}
    placed_adders: set[int] = set()

    def get_pos(var: int) -> int:
        net = pos_net.get(var)
        if net is not None:
            return net
        raw = neg_net.get(var)
        if raw is None:
            raise MappingError(f"node {var} required before being mapped")
        net = netlist.add_cell(inverter, [raw])[0]
        pos_net[var] = net
        return net

    def get_neg(var: int) -> int:
        net = neg_net.get(var)
        if net is not None:
            return net
        net = netlist.add_cell(inverter, [get_pos(var)])[0]
        neg_net[var] = net
        return net

    def publish(var: int, net: int, flipped: int) -> None:
        if flipped:
            neg_net[var] = net
        else:
            pos_net[var] = net

    for var in sorted(needed):
        decision = choice[var]
        if decision[0] == "adder":
            plan_index = decision[1]
            if plan_index in placed_adders:
                continue
            placed_adders.add(plan_index)
            plan = plans[plan_index]
            pins = [
                get_neg(leaf) if flip else get_pos(leaf)
                for leaf, flip in zip(plan.leaves, plan.leaf_flips)
            ]
            sum_net, carry_net = netlist.add_cell(library[plan.cell_name], pins)
            publish(plan.sum_var, sum_net, plan.sum_flip)
            publish(plan.carry_var, carry_net, plan.carry_flip)
        else:
            _tag, cut, match = decision
            pins = [
                get_neg(leaf) if inv else get_pos(leaf)
                for leaf, inv in match.pin_drivers(cut.leaves)
            ]
            out = netlist.add_cell(match.cell, pins)[0]
            publish(var, out, match.out_flip)

    # ------------------------------------------------------------------
    # Primary outputs.
    # ------------------------------------------------------------------
    for lit, po_name in zip(aig.outputs, aig.output_names):
        var, negated = lit_var(lit), lit_neg(lit)
        if var == 0:
            net = NET_CONST1 if negated else NET_CONST0
        elif negated:
            net = get_neg(var)
        else:
            net = get_pos(var)
        netlist.po_nets.append(net)
        netlist.po_names.append(po_name)
    return netlist
