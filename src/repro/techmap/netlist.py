"""Mapped-netlist data structure and direct cell-level simulation.

The mapper's output: a list of standard-cell instances over integer net
ids.  Net 0 is constant false, net 1 constant true, nets ``2 .. I+1`` the
primary inputs, and every cell output allocates a fresh net.  Cells appear
in topological order (inputs of a cell are produced earlier), so both
simulation and AIG expansion are single forward passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.techmap.genlib import Cell, ExprNode, Library

__all__ = ["CellInstance", "MappedNetlist", "simulate_netlist"]

NET_CONST0 = 0
NET_CONST1 = 1


@dataclass
class CellInstance:
    """One placed cell: pin order follows ``cell.pins`` / ``cell.outputs``."""

    cell: Cell
    input_nets: list[int]
    output_nets: list[int]

    def __post_init__(self) -> None:
        if len(self.input_nets) != self.cell.num_pins:
            raise ValueError(
                f"{self.cell.name}: {len(self.input_nets)} nets for "
                f"{self.cell.num_pins} pins"
            )
        if len(self.output_nets) != self.cell.num_outputs:
            raise ValueError(f"{self.cell.name}: output net count mismatch")


@dataclass
class MappedNetlist:
    """A technology-mapped combinational netlist."""

    name: str
    library: Library
    num_inputs: int
    cells: list[CellInstance] = field(default_factory=list)
    po_nets: list[int] = field(default_factory=list)
    po_names: list[str] = field(default_factory=list)
    input_names: list[str] = field(default_factory=list)
    net_count: int = 2  # const0 + const1 pre-allocated

    def __post_init__(self) -> None:
        # Reserve nets 2 .. I+1 for the primary inputs.
        self.net_count = max(self.net_count, 2 + self.num_inputs)

    def input_net(self, index: int) -> int:
        if not 0 <= index < self.num_inputs:
            raise IndexError(f"input {index} out of range")
        return 2 + index

    def new_net(self) -> int:
        net = self.net_count
        self.net_count += 1
        return net

    def add_cell(self, cell: Cell, input_nets: list[int]) -> list[int]:
        """Instantiate ``cell``; returns its freshly allocated output nets."""
        outputs = [self.new_net() for _ in range(cell.num_outputs)]
        self.cells.append(CellInstance(cell, list(input_nets), outputs))
        return outputs

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def area(self) -> float:
        return sum(inst.cell.area for inst in self.cells)

    def cell_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for inst in self.cells:
            histogram[inst.cell.name] = histogram.get(inst.cell.name, 0) + 1
        return dict(sorted(histogram.items()))

    def depth(self) -> int:
        """Longest cell path from any input to any output."""
        level = [0] * self.net_count
        for inst in self.cells:
            incoming = max((level[n] for n in inst.input_nets), default=0)
            for net in inst.output_nets:
                level[net] = incoming + 1
        return max((level[n] for n in self.po_nets), default=0)

    def stats(self) -> dict[str, float]:
        return {
            "cells": self.num_cells,
            "area": self.area,
            "depth": self.depth(),
            "nets": self.net_count,
        }

    def __repr__(self) -> str:
        return (
            f"MappedNetlist({self.name!r}, lib={self.library.name}, "
            f"cells={self.num_cells}, area={self.area:.1f})"
        )


def _evaluate_expr(expr: ExprNode, values: dict[str, np.ndarray],
                   num_words: int) -> np.ndarray:
    ones = np.full(num_words, np.uint64(0xFFFF_FFFF_FFFF_FFFF), dtype=np.uint64)
    if expr.op == "var":
        return values[expr.name]
    if expr.op == "const":
        return ones if expr.value else np.zeros(num_words, dtype=np.uint64)
    children = [_evaluate_expr(c, values, num_words) for c in expr.children]
    if expr.op == "not":
        return ~children[0]
    result = children[0].copy()
    for word in children[1:]:
        if expr.op == "and":
            result &= word
        elif expr.op == "or":
            result |= word
        else:  # xor
            result ^= word
    return result


def simulate_netlist(netlist: MappedNetlist, input_words: np.ndarray) -> np.ndarray:
    """Bit-parallel simulation of the mapped netlist (mirrors AIG simulate).

    This gives an equivalence-check path *independent of unmapping*: a
    mapped netlist is validated both directly (here, by evaluating cell
    expressions) and after expansion back to an AIG.
    """
    input_words = np.ascontiguousarray(input_words, dtype=np.uint64)
    if input_words.ndim != 2 or input_words.shape[0] != netlist.num_inputs:
        raise ValueError(
            f"expected input shape ({netlist.num_inputs}, W), got {input_words.shape}"
        )
    num_words = input_words.shape[1]
    ones = np.full(num_words, np.uint64(0xFFFF_FFFF_FFFF_FFFF), dtype=np.uint64)
    nets = np.zeros((netlist.net_count, num_words), dtype=np.uint64)
    nets[NET_CONST1] = ones
    for index in range(netlist.num_inputs):
        nets[netlist.input_net(index)] = input_words[index]
    for inst in netlist.cells:
        values = {
            pin: nets[net] for pin, net in zip(inst.cell.pins, inst.input_nets)
        }
        for out_net, (out_name, expr) in zip(
            inst.output_nets, inst.cell.outputs.items()
        ):
            nets[out_net] = _evaluate_expr(expr, values, num_words)
    return nets[np.asarray(netlist.po_nets, dtype=np.int64)]
