"""Standard-cell library model and genlib-format parser.

The paper maps with ABC's standard-cell mapper against ``mcnc.genlib`` and
ASAP7.  This module provides the library substrate: a :class:`Cell` with one
or more outputs described by Boolean expressions, a :class:`Library`
container, and a parser for the classic SIS *genlib* format::

    GATE nand2 2.0 O=!(a*b); PIN * INV 1 999 1.0 0.2 1.0 0.2

Expressions support ``!`` (NOT), ``*`` (AND), ``+`` (OR), ``^`` (XOR) and
parentheses, plus the constants ``CONST0``/``CONST1``.  Multi-output cells
(full/half adders — genlib cannot express them) are built programmatically
by :mod:`repro.techmap.libraries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.truth import truth_mask

__all__ = ["ExprNode", "parse_expression", "Cell", "Library", "parse_genlib"]


# ----------------------------------------------------------------------
# Boolean expression AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExprNode:
    """AST node: op in {'var', 'const', 'not', 'and', 'or', 'xor'}."""

    op: str
    children: tuple["ExprNode", ...] = ()
    name: str = ""
    value: int = 0

    def variables(self, ordered: list[str] | None = None) -> list[str]:
        """Variable names in first-appearance order."""
        if ordered is None:
            ordered = []
        if self.op == "var":
            if self.name not in ordered:
                ordered.append(self.name)
        for child in self.children:
            child.variables(ordered)
        return ordered

    def evaluate(self, assignment: dict[str, int]) -> int:
        if self.op == "var":
            return assignment[self.name]
        if self.op == "const":
            return self.value
        if self.op == "not":
            return 1 - self.children[0].evaluate(assignment)
        values = [child.evaluate(assignment) for child in self.children]
        if self.op == "and":
            return int(all(values))
        if self.op == "or":
            return int(any(values))
        if self.op == "xor":
            return sum(values) & 1
        raise ValueError(f"unknown op {self.op!r}")


class _ExprParser:
    """Recursive descent over: or > xor > and > unary > atom."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> ExprNode:
        node = self._or()
        self._skip_ws()
        if self.pos != len(self.text):
            raise ValueError(f"trailing input in expression: {self.text[self.pos:]!r}")
        return node

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _or(self) -> ExprNode:
        terms = [self._xor()]
        while self._peek() == "+":
            self.pos += 1
            terms.append(self._xor())
        return terms[0] if len(terms) == 1 else ExprNode("or", tuple(terms))

    def _xor(self) -> ExprNode:
        terms = [self._and()]
        while self._peek() == "^":
            self.pos += 1
            terms.append(self._and())
        return terms[0] if len(terms) == 1 else ExprNode("xor", tuple(terms))

    def _and(self) -> ExprNode:
        terms = [self._unary()]
        while True:
            nxt = self._peek()
            if nxt == "*":
                self.pos += 1
                terms.append(self._unary())
            elif nxt and (nxt.isalnum() or nxt in "!(_"):
                # genlib allows implicit AND by juxtaposition.
                terms.append(self._unary())
            else:
                break
        return terms[0] if len(terms) == 1 else ExprNode("and", tuple(terms))

    def _unary(self) -> ExprNode:
        nxt = self._peek()
        if nxt == "!":
            self.pos += 1
            node = self._unary()
            return ExprNode("not", (node,))
        node = self._atom()
        # Postfix complement: a'
        while self._peek() == "'":
            self.pos += 1
            node = ExprNode("not", (node,))
        return node

    def _atom(self) -> ExprNode:
        nxt = self._peek()
        if nxt == "(":
            self.pos += 1
            node = self._or()
            if self._peek() != ")":
                raise ValueError("unbalanced parenthesis in expression")
            self.pos += 1
            return node
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        token = self.text[start:self.pos]
        if not token:
            raise ValueError(f"expected operand at position {start} of {self.text!r}")
        if token == "CONST0":
            return ExprNode("const", value=0)
        if token == "CONST1":
            return ExprNode("const", value=1)
        return ExprNode("var", name=token)


def parse_expression(text: str) -> ExprNode:
    """Parse a genlib Boolean expression into an AST."""
    return _ExprParser(text).parse()


# ----------------------------------------------------------------------
# Cells and libraries
# ----------------------------------------------------------------------
@dataclass
class Cell:
    """A standard cell: ordered pins, one or more named outputs."""

    name: str
    area: float
    pins: list[str]
    outputs: dict[str, ExprNode]

    def __post_init__(self) -> None:
        self._truths: dict[str, int] = {}
        for out_name, expr in self.outputs.items():
            self._truths[out_name] = self._truth_of(expr)

    def _truth_of(self, expr: ExprNode) -> int:
        table = 0
        k = len(self.pins)
        for minterm in range(1 << k):
            assignment = {
                pin: (minterm >> i) & 1 for i, pin in enumerate(self.pins)
            }
            if expr.evaluate(assignment):
                table |= 1 << minterm
        return table

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def is_multi_output(self) -> bool:
        return len(self.outputs) > 1

    def truth(self, output: str | None = None) -> int:
        """Truth table of an output over the pin order."""
        if output is None:
            if self.num_outputs != 1:
                raise ValueError(f"cell {self.name} has {self.num_outputs} outputs")
            return next(iter(self._truths.values()))
        return self._truths[output]

    def __repr__(self) -> str:
        return f"Cell({self.name}, pins={self.pins}, area={self.area})"


@dataclass
class Library:
    """A named collection of cells with convenience lookups."""

    name: str
    cells: list[Cell] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {cell.name: cell for cell in self.cells}
        if len(self._by_name) != len(self.cells):
            raise ValueError("duplicate cell names in library")

    def __len__(self) -> int:
        return len(self.cells)

    def __getitem__(self, name: str) -> Cell:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def single_output_cells(self) -> list[Cell]:
        return [cell for cell in self.cells if not cell.is_multi_output]

    def multi_output_cells(self) -> list[Cell]:
        return [cell for cell in self.cells if cell.is_multi_output]

    @property
    def max_arity(self) -> int:
        return max((cell.num_pins for cell in self.cells), default=0)

    def find(self, predicate) -> Cell | None:
        return next((cell for cell in self.cells if predicate(cell)), None)

    def inverter(self) -> Cell:
        """Smallest cell computing NOT — required by the mapper."""
        best = None
        for cell in self.single_output_cells():
            if cell.num_pins == 1 and cell.truth() == 0b01:
                if best is None or cell.area < best.area:
                    best = cell
        if best is None:
            raise ValueError(f"library {self.name} has no inverter")
        return best

    def buffer(self) -> Cell | None:
        for cell in self.single_output_cells():
            if cell.num_pins == 1 and cell.truth() == 0b10:
                return cell
        return None

    def constant(self, value: int) -> Cell | None:
        target = truth_mask(0) if value else 0
        for cell in self.single_output_cells():
            if cell.num_pins == 0 and cell.truth() == target:
                return cell
        return None


def parse_genlib(text: str, name: str = "genlib") -> Library:
    """Parse genlib text into a :class:`Library`.

    PIN lines are accepted and ignored (timing data is not modeled); pin
    order is taken from first appearance in the output expression, matching
    ABC's behavior for symmetric genlib gates.
    """
    cells: list[Cell] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or line.upper().startswith("PIN"):
            continue
        if not line.upper().startswith("GATE"):
            continue
        # GATE <name> <area> <out>=<expr>; [PIN ...]
        body = line[4:].strip()
        parts = body.split(None, 2)
        if len(parts) < 3:
            raise ValueError(f"malformed GATE line: {raw_line!r}")
        gate_name, area_text, rest = parts
        expr_part = rest.split(";", 1)[0]
        if "=" not in expr_part:
            raise ValueError(f"GATE {gate_name}: missing '=' in {expr_part!r}")
        out_name, expr_text = expr_part.split("=", 1)
        expr = parse_expression(expr_text.strip())
        pins = expr.variables()
        cells.append(
            Cell(
                name=gate_name,
                area=float(area_text),
                pins=pins,
                outputs={out_name.strip(): expr},
            )
        )
    return Library(name=name, cells=cells)
