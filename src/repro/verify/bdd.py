"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

A compact BDD package sufficient for exact combinational equivalence
checking of the netlists this repo produces: hash-consed nodes, memoized
ITE, complement handling by construction (no complement edges — NOT is an
ITE), and satisfiability counting.  BDDs are the second exact engine next
to exhaustive simulation: canonical forms mean two functions are equal iff
their node references are identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BDD", "BddRef"]

BddRef = int  # index into the manager's node table


@dataclass(frozen=True)
class _Node:
    var: int  # variable level (smaller = closer to the root)
    low: BddRef
    high: BddRef


class BDD:
    """A BDD manager over a fixed variable order ``0 .. num_vars-1``."""

    FALSE: BddRef = 0
    TRUE: BddRef = 1

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("variable count must be non-negative")
        self.num_vars = num_vars
        # Terminal pseudo-nodes occupy slots 0/1 with an out-of-range level.
        self._nodes: list[_Node] = [
            _Node(num_vars, 0, 0),
            _Node(num_vars, 1, 1),
        ]
        self._unique: dict[tuple[int, BddRef, BddRef], BddRef] = {}
        self._ite_cache: dict[tuple[BddRef, BddRef, BddRef], BddRef] = {}

    # ------------------------------------------------------------------
    def var(self, index: int) -> BddRef:
        """The projection function of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self._mk(index, self.FALSE, self.TRUE)

    def _mk(self, var: int, low: BddRef, high: BddRef) -> BddRef:
        if low == high:
            return low
        key = (var, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        ref = len(self._nodes)
        self._nodes.append(_Node(var, low, high))
        self._unique[key] = ref
        return ref

    def _level(self, ref: BddRef) -> int:
        return self._nodes[ref].var

    def _cofactor(self, ref: BddRef, var: int) -> tuple[BddRef, BddRef]:
        node = self._nodes[ref]
        if node.var == var:
            return node.low, node.high
        return ref, ref

    # ------------------------------------------------------------------
    def ite(self, cond: BddRef, then_ref: BddRef, else_ref: BddRef) -> BddRef:
        """If-then-else — the universal connective."""
        if cond == self.TRUE:
            return then_ref
        if cond == self.FALSE:
            return else_ref
        if then_ref == else_ref:
            return then_ref
        if then_ref == self.TRUE and else_ref == self.FALSE:
            return cond
        key = (cond, then_ref, else_ref)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._level(cond), self._level(then_ref), self._level(else_ref))
        c0, c1 = self._cofactor(cond, top)
        t0, t1 = self._cofactor(then_ref, top)
        e0, e1 = self._cofactor(else_ref, top)
        result = self._mk(top, self.ite(c0, t0, e0), self.ite(c1, t1, e1))
        self._ite_cache[key] = result
        return result

    def apply_not(self, ref: BddRef) -> BddRef:
        return self.ite(ref, self.FALSE, self.TRUE)

    def apply_and(self, left: BddRef, right: BddRef) -> BddRef:
        return self.ite(left, right, self.FALSE)

    def apply_or(self, left: BddRef, right: BddRef) -> BddRef:
        return self.ite(left, self.TRUE, right)

    def apply_xor(self, left: BddRef, right: BddRef) -> BddRef:
        return self.ite(left, self.apply_not(right), right)

    # ------------------------------------------------------------------
    def evaluate(self, ref: BddRef, assignment: list[int] | tuple[int, ...]) -> int:
        """Evaluate under a 0/1 assignment to all variables."""
        while ref not in (self.FALSE, self.TRUE):
            node = self._nodes[ref]
            ref = node.high if assignment[node.var] else node.low
        return int(ref == self.TRUE)

    def count_sat(self, ref: BddRef) -> int:
        """Number of satisfying assignments over all ``num_vars`` inputs."""
        memo: dict[BddRef, int] = {self.FALSE: 0, self.TRUE: 1 << self.num_vars}

        def count(node_ref: BddRef) -> int:
            cached = memo.get(node_ref)
            if cached is not None:
                return cached
            node = self._nodes[node_ref]
            # Each child count is over the full space; halve per decision.
            total = (count(node.low) + count(node.high)) // 2
            memo[node_ref] = total
            return total

        return count(ref)

    def any_sat(self, ref: BddRef) -> list[int] | None:
        """One satisfying assignment (list of 0/1 per variable), or None."""
        if ref == self.FALSE:
            return None
        assignment = [0] * self.num_vars
        while ref != self.TRUE:
            node = self._nodes[ref]
            if node.high != self.FALSE:
                assignment[node.var] = 1
                ref = node.high
            else:
                assignment[node.var] = 0
                ref = node.low
        return assignment

    def support(self, ref: BddRef) -> set[int]:
        """Variables the function depends on."""
        seen: set[BddRef] = set()
        variables: set[int] = set()
        stack = [ref]
        while stack:
            current = stack.pop()
            if current in (self.FALSE, self.TRUE) or current in seen:
                continue
            seen.add(current)
            node = self._nodes[current]
            variables.add(node.var)
            stack.append(node.low)
            stack.append(node.high)
        return variables

    @property
    def num_nodes(self) -> int:
        """Total allocated (shared) nodes, including terminals."""
        return len(self._nodes)

    def size(self, ref: BddRef) -> int:
        """Nodes reachable from ``ref`` (its canonical-form size)."""
        seen: set[BddRef] = set()
        stack = [ref]
        while stack:
            current = stack.pop()
            if current in (self.FALSE, self.TRUE) or current in seen:
                continue
            seen.add(current)
            node = self._nodes[current]
            stack.append(node.low)
            stack.append(node.high)
        return len(seen) + 2
