"""Combinational equivalence checking (CEC).

Three engines, strongest applicable first:

* **BDD** — build canonical BDDs for both networks output by output;
  equivalence is reference equality.  Exact; practical to ~24 inputs on
  the netlists this repo produces (multiplier BDDs are exponential, which
  the engine reports rather than hides).
* **exhaustive simulation** — exact up to ~20 inputs.
* **random simulation** — high-confidence falsification for wide designs.

``check_equivalence`` picks an engine automatically and returns a
counterexample when it refutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aig.graph import AIG, lit_neg, lit_var
from repro.aig.simulate import simulate
from repro.utils.rng import seeded_rng
from repro.utils.timing import Timer
from repro.verify.bdd import BDD, BddRef

__all__ = ["CecResult", "build_output_bdds", "check_equivalence"]


@dataclass
class CecResult:
    """CEC verdict with provenance."""

    equivalent: bool
    engine: str  # "bdd" | "exhaustive" | "random"
    exact: bool  # True when the engine is a proof, not a sample
    seconds: float
    counterexample: list[int] | None = None
    failing_output: int | None = None

    def __repr__(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "DIFFERENT"
        kind = "proof" if self.exact else "sampled"
        return f"CecResult({verdict}, engine={self.engine}, {kind}, {self.seconds * 1e3:.1f} ms)"


def build_output_bdds(aig: AIG, manager: BDD | None = None,
                      node_limit: int = 500_000) -> tuple[BDD, list[BddRef]]:
    """BDDs for every output, sharing one manager over the PI order.

    Raises :class:`MemoryError` when the shared node table exceeds
    ``node_limit`` (multiplier outputs blow up exponentially — that is a
    property of BDDs, and callers are expected to fall back to simulation).
    """
    manager = manager or BDD(aig.num_inputs)
    refs: dict[int, BddRef] = {0: BDD.FALSE}
    for index, var in enumerate(aig.input_vars()):
        refs[var] = manager.var(index)
    for var, f0, f1 in aig.iter_ands():
        left = refs[lit_var(f0)]
        if lit_neg(f0):
            left = manager.apply_not(left)
        right = refs[lit_var(f1)]
        if lit_neg(f1):
            right = manager.apply_not(right)
        refs[var] = manager.apply_and(left, right)
        if manager.num_nodes > node_limit:
            raise MemoryError(
                f"BDD for {aig.name} exceeded {node_limit} nodes at AND {var}"
            )
    outputs = []
    for lit in aig.outputs:
        ref = refs[lit_var(lit)]
        outputs.append(manager.apply_not(ref) if lit_neg(lit) else ref)
    return manager, outputs


def _interface_matches(left: AIG, right: AIG) -> bool:
    return (
        left.num_inputs == right.num_inputs
        and left.num_outputs == right.num_outputs
    )


def _bdd_check(left: AIG, right: AIG, node_limit: int) -> tuple[bool, list[int] | None, int | None]:
    manager = BDD(left.num_inputs)
    _, left_refs = build_output_bdds(left, manager, node_limit)
    _, right_refs = build_output_bdds(right, manager, node_limit)
    for index, (l_ref, r_ref) in enumerate(zip(left_refs, right_refs)):
        if l_ref != r_ref:
            difference = manager.apply_xor(l_ref, r_ref)
            return False, manager.any_sat(difference), index
    return True, None, None


def _random_check(left: AIG, right: AIG, num_words: int,
                  seed: int | None) -> tuple[bool, list[int] | None, int | None]:
    rng = seeded_rng(seed)
    words = rng.integers(0, 1 << 64, size=(left.num_inputs, num_words),
                         dtype=np.uint64)
    l_out = simulate(left, words)
    r_out = simulate(right, words)
    diff = l_out ^ r_out
    bad = np.argwhere(diff != 0)
    if bad.size == 0:
        return True, None, None
    out_row, word_col = bad[0]
    bit = int(diff[out_row, word_col]).bit_length() - 1
    pattern = [
        (int(words[i, word_col]) >> bit) & 1 for i in range(left.num_inputs)
    ]
    return False, pattern, int(out_row)


def check_equivalence(left: AIG, right: AIG, engine: str = "auto",
                      bdd_node_limit: int = 200_000, random_words: int = 64,
                      seed: int | None = None) -> CecResult:
    """Check two combinational networks for equivalence.

    ``engine`` is ``'auto'`` (BDD, falling back to exhaustive/random as
    size dictates), or one of ``'bdd'``, ``'exhaustive'``, ``'random'``.
    """
    if not _interface_matches(left, right):
        return CecResult(False, "interface", True, 0.0)
    with Timer() as timer:
        chosen = engine
        if engine == "auto":
            if left.num_inputs <= 14:
                chosen = "exhaustive"
            else:
                chosen = "bdd"
        if chosen == "bdd":
            try:
                ok, cex, bad_out = _bdd_check(left, right, bdd_node_limit)
                return CecResult(ok, "bdd", True, timer.lap(), cex, bad_out)
            except MemoryError:
                if engine == "bdd":
                    raise
                chosen = "exhaustive" if left.num_inputs <= 20 else "random"
        if chosen == "exhaustive":
            if left.num_inputs > 20:
                raise ValueError("exhaustive CEC beyond 20 inputs is impractical")
            from repro.aig.simulate import exhaustive_simulate

            l_out = exhaustive_simulate(left)
            r_out = exhaustive_simulate(right)
            diff = l_out ^ r_out
            bad = np.argwhere(diff != 0)
            if bad.size == 0:
                return CecResult(True, "exhaustive", True, timer.lap())
            out_row, word_col = bad[0]
            bit = int(diff[out_row, word_col]).bit_length() - 1
            minterm = 64 * int(word_col) + bit
            pattern = [(minterm >> i) & 1 for i in range(left.num_inputs)]
            return CecResult(False, "exhaustive", True, timer.lap(), pattern,
                             int(out_row))
        if chosen == "random":
            ok, cex, bad_out = _random_check(left, right, random_words, seed)
            return CecResult(ok, "random", False, timer.lap(), cex, bad_out)
    raise ValueError(f"unknown CEC engine {engine!r}")
