"""SCA multiplier verification — the downstream application of adder trees."""

from repro.verify.bdd import BDD
from repro.verify.cec import CecResult, build_output_bdds, check_equivalence
from repro.verify.polynomial import Polynomial
from repro.verify.sca import (
    SCAResult,
    TermExplosion,
    signature_polynomial,
    verify_multiplier,
)

__all__ = [
    "BDD",
    "CecResult",
    "build_output_bdds",
    "check_equivalence",
    "Polynomial",
    "SCAResult",
    "TermExplosion",
    "signature_polynomial",
    "verify_multiplier",
]
