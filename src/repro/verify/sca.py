"""SCA multiplier verification by algebraic backward rewriting.

This is the downstream application that motivates Gamora (paper Sec. III-A):
symbolic computer algebra verifies an integer multiplier by rewriting the
output word's *signature polynomial* backward through the netlist until it
is expressed over primary inputs, then comparing with the specification
``(Σ 2^i a_i) · (Σ 2^j b_j)``.

Two engines:

* **naive** — every AND node is substituted by the product of its fan-in
  polynomials.  Correct but explodes on carry chains (the published
  motivation for adder-tree extraction).
* **adder-aware** — matched FA/HA slices use the linear identity
  ``sum + 2·carry = a + b + c``: substituting the sum root introduces a
  ``-2·carry`` term that *cancels* the carry already present one weight
  up, so carries vanish from the signature before their nonlinear MAJ
  polynomial is ever needed.  This reproduces the fast algebraic
  rewriting of Yu et al. (TCAD'17) on top of either exact or
  Gamora-predicted adder trees.

Relation resolution is batched by default (``engine="fast"``): one
cone-restricted cut sweep delivers every root's truth over its slice
leaves, matched against the roots' leaf rows with one fanin-array join,
and the polarity search runs as a vectorized comparison against
precomputed flip tables — replacing the per-adder ``node_cuts`` walk of
:func:`_resolve_relation`, which stays as ``engine="legacy"`` (the
differential oracle).  Both resolve identical relations on real adder
trees; an unresolvable pair (pruned cuts) falls back to plain gate-level
rewriting either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.aig.graph import AIG
from repro.aig.npn import MAJ3, XOR2, XOR3, apply_transform
from repro.reasoning.adder_tree import AdderTree, extract_adder_tree
from repro.techmap.mapper import _truth_over_leaves
from repro.utils.timing import Timer
from repro.verify.polynomial import Polynomial

__all__ = ["SCAResult", "TermExplosion", "verify_multiplier", "signature_polynomial"]


class TermExplosion(RuntimeError):
    """Raised when the signature polynomial exceeds the term budget."""


@dataclass
class SCAResult:
    """Outcome of a verification run."""

    ok: bool
    mode: str
    substitutions: int
    peak_terms: int
    seconds: float
    residue_terms: int = 0

    def __repr__(self) -> str:
        status = "VERIFIED" if self.ok else "FAILED"
        return (
            f"SCAResult({status}, mode={self.mode}, "
            f"substitutions={self.substitutions}, peak_terms={self.peak_terms}, "
            f"{self.seconds * 1e3:.1f} ms)"
        )


@dataclass
class _AdderRelation:
    """Polarity-resolved linear relation of one matched adder slice."""

    sum_var: int
    carry_var: int
    leaves: tuple[int, ...]
    leaf_flips: tuple[int, ...]
    sum_flip: int
    carry_flip: int


def _resolve_relation(aig: AIG, adder) -> _AdderRelation | None:
    """Find flips so that ``(sum ^ sf) + 2·(carry ^ cf) = Σ (leaf ^ f_i)``.

    Mirrors the mapper's polarity resolution; an unresolvable pair (pruned
    cuts) falls back to plain gate-level rewriting for those roots.
    """
    arity = len(adder.leaves)
    sum_truth = _truth_over_leaves(aig, adder.sum_var, adder.leaves)
    carry_truth = _truth_over_leaves(aig, adder.carry_var, adder.leaves)
    if sum_truth is None or carry_truth is None:
        return None
    xor_ref = XOR3 if arity == 3 else XOR2
    carry_ref = MAJ3 if arity == 3 else 0b1000
    identity = tuple(range(arity))
    full = (1 << (1 << arity)) - 1
    for flip_bits in range(1 << arity):
        flips = tuple((flip_bits >> j) & 1 for j in range(arity))
        carry_cell = apply_transform(carry_ref, arity, identity, flips, 0)
        if carry_cell == carry_truth:
            carry_flip = 0
        elif (carry_cell ^ full) == carry_truth:
            carry_flip = 1
        else:
            continue
        xor_cell = apply_transform(xor_ref, arity, identity, flips, 0)
        if xor_cell == sum_truth:
            sum_flip = 0
        elif (xor_cell ^ full) == sum_truth:
            sum_flip = 1
        else:
            continue
        return _AdderRelation(
            adder.sum_var, adder.carry_var, adder.leaves, flips, sum_flip, carry_flip
        )
    return None


@lru_cache(maxsize=None)
def _flip_tables(arity: int) -> tuple[np.ndarray, np.ndarray, int]:
    """``(xor_cells, carry_cells, full)`` for every flip combination.

    ``xor_cells[f]`` / ``carry_cells[f]`` are the reference XOR / carry
    truth tables with input ``j`` complemented when bit ``j`` of ``f`` is
    set — the constant-size tables the batched resolver compares every
    adder's truths against at once (2**arity entries, arity ≤ 3).
    """
    xor_ref = XOR3 if arity == 3 else XOR2
    carry_ref = MAJ3 if arity == 3 else 0b1000
    identity = tuple(range(arity))
    combos = [tuple((f >> j) & 1 for j in range(arity))
              for f in range(1 << arity)]
    xor_cells = np.array(
        [apply_transform(xor_ref, arity, identity, flips, 0)
         for flips in combos], dtype=np.int64)
    carry_cells = np.array(
        [apply_transform(carry_ref, arity, identity, flips, 0)
         for flips in combos], dtype=np.int64)
    return xor_cells, carry_cells, (1 << (1 << arity)) - 1


def _truths_over_rows(cuts, vars_: np.ndarray, leaves: np.ndarray,
                      arity: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Truth of each root over its leaf row, via one shared cut sweep.

    The fanin-array join of the batched resolver: for query row ``i`` the
    slots of ``vars_[i]`` are compared wholesale against the (pad-aligned)
    leaf row; the first exact match yields the truth.  Returns ``(truth,
    found)`` — a root whose leaf set survives in no enumerated cut (pruned
    lists, or a hand-built slice wider than the k=3 sweep) is simply
    unresolved, like :func:`_truth_over_leaves` returning None.
    """
    pad = cuts.num_vars
    # Rows wider than 3 leaves can never match a k<=3 cut; comparing only
    # the first 3 columns keeps the broadcast aligned while the
    # ``sizes == arity`` test below already rules those rows out.
    head = leaves[:, :3]
    target = np.where(head >= 0, head, pad)
    slot_count = cuts.truths.shape[1]
    valid = np.arange(slot_count)[None, :] < cuts.counts[vars_][:, None]
    match = (
        valid
        & (cuts.sizes[vars_] == arity[:, None])
        & np.all(cuts.leaves[vars_] == target[:, None, :], axis=2)
    )
    found = match.any(axis=1)
    slot = np.argmax(match, axis=1)
    truth = cuts.truths[vars_, slot].astype(np.int64)
    return truth, found


def _resolve_relations_fast(aig: AIG, tree: AdderTree,
                            max_cuts: int = 12) -> dict[int, "_AdderRelation"]:
    """All adders' polarity relations in one batch (``engine="fast"``).

    One cut sweep restricted to the roots' fan-in cones replaces every
    per-adder ``node_cuts`` re-derivation; the 2**arity flip search runs
    as one table comparison over all adders of each arity.  Emission
    order (and the first-relation-per-sum-root rule) matches the legacy
    loop exactly.
    """
    from repro.aig.fast_cuts import enumerate_cuts_arrays

    core = tree.arrays()
    count = len(core)
    relations: dict[int, _AdderRelation] = {}
    if count == 0:
        return relations
    sum_var = core.sum_var.astype(np.int64)
    carry_var = core.carry_var.astype(np.int64)
    roots = np.unique(np.concatenate([sum_var, carry_var]))
    cuts = enumerate_cuts_arrays(
        aig, k=3, max_cuts=max_cuts, restrict_to=roots.tolist(),
    )
    arity = core.leaf_count.astype(np.int64)
    leaves = core.leaves.astype(np.int64)
    sum_truth, sum_ok = _truths_over_rows(cuts, sum_var, leaves, arity)
    carry_truth, carry_ok = _truths_over_rows(cuts, carry_var, leaves, arity)

    flip_bits = np.full(count, -1, dtype=np.int64)
    sum_flip = np.zeros(count, dtype=np.int64)
    carry_flip = np.zeros(count, dtype=np.int64)
    for width in (2, 3):
        rows = np.flatnonzero((arity == width) & sum_ok & carry_ok)
        if not len(rows):
            continue
        xor_cells, carry_cells, full = _flip_tables(width)
        c_eq = carry_truth[rows, None] == carry_cells[None, :]
        c_neq = carry_truth[rows, None] == (carry_cells ^ full)[None, :]
        x_eq = sum_truth[rows, None] == xor_cells[None, :]
        x_neq = sum_truth[rows, None] == (xor_cells ^ full)[None, :]
        ok = (c_eq | c_neq) & (x_eq | x_neq)
        has = ok.any(axis=1)
        first = np.argmax(ok, axis=1)  # lowest matching flip combo
        hit_rows = rows[has]
        hit_first = first[has]
        flip_bits[hit_rows] = hit_first
        picked = np.arange(len(rows))[has]
        carry_flip[hit_rows] = np.where(c_eq[picked, hit_first], 0, 1)
        sum_flip[hit_rows] = np.where(x_eq[picked, hit_first], 0, 1)

    leaf_rows = core.leaves.tolist()
    arity_list = arity.tolist()
    sums = sum_var.tolist()
    carries = carry_var.tolist()
    flips_list = flip_bits.tolist()
    sflip = sum_flip.tolist()
    cflip = carry_flip.tolist()
    for index in range(count):
        bits = flips_list[index]
        if bits < 0:
            continue
        sv = sums[index]
        if sv in relations:
            continue
        width = arity_list[index]
        relations[sv] = _AdderRelation(
            sv, carries[index], tuple(leaf_rows[index][:width]),
            tuple((bits >> j) & 1 for j in range(width)),
            sflip[index], cflip[index],
        )
    return relations


def signature_polynomial(aig: AIG) -> Polynomial:
    """The output word as a polynomial: ``Σ 2^i · out_i``."""
    signature = Polynomial()
    for index, lit in enumerate(aig.outputs):
        signature = signature + Polynomial.from_literal(lit).scale(1 << index)
    return signature


def _expected_product(a_literals: list[int], b_literals: list[int]) -> Polynomial:
    word_a = Polynomial()
    for index, lit in enumerate(a_literals):
        word_a = word_a + Polynomial.from_literal(lit).scale(1 << index)
    word_b = Polynomial()
    for index, lit in enumerate(b_literals):
        word_b = word_b + Polynomial.from_literal(lit).scale(1 << index)
    return word_a * word_b


def _flip(poly: Polynomial, flip: int) -> Polynomial:
    return Polynomial.constant(1) - poly if flip else poly


def _maj_poly(x: Polynomial, y: Polynomial, z: Polynomial) -> Polynomial:
    pairwise = x * y + x * z + y * z
    return pairwise - (x * y * z).scale(2)


def verify_multiplier(circuit, mode: str = "adder", tree: AdderTree | None = None,
                      max_terms: int = 500_000,
                      engine: str = "fast") -> SCAResult:
    """Verify that a multiplier netlist computes ``a * b``.

    ``circuit`` is a :class:`~repro.generators.GeneratedMultiplier` (or any
    object with ``aig``, ``a_literals``, ``b_literals``).  ``mode`` selects
    the naive or adder-aware engine; ``tree`` optionally supplies the adder
    tree (e.g. one recovered by Gamora) instead of exact extraction.
    ``engine`` selects how slice relations are resolved: ``"fast"`` batches
    every adder through one shared cut sweep, ``"legacy"`` keeps the
    per-adder loop as the differential oracle.

    Raises :class:`TermExplosion` when the signature outgrows ``max_terms``
    — the expected behavior of the naive engine on non-trivial widths.
    """
    if mode not in ("adder", "naive"):
        raise ValueError(f"unknown SCA mode {mode!r}")
    if engine not in ("fast", "legacy"):
        raise ValueError(f"engine must be 'fast' or 'legacy', got {engine!r}")
    aig: AIG = circuit.aig
    relations: dict[int, _AdderRelation] = {}
    if mode == "adder":
        if tree is None:
            tree = extract_adder_tree(aig)
        if engine == "fast":
            relations = _resolve_relations_fast(aig, tree)
        else:
            for adder in tree.adders:
                relation = _resolve_relation(aig, adder)
                if relation is not None and relation.sum_var not in relations:
                    relations[relation.sum_var] = relation

    # Substitution order: reverse topological, but each carry root is
    # processed immediately after its sum root so the -2*carry term
    # introduced by the sum's linear form cancels first.
    order_key: dict[int, float] = {var: float(var) for var in aig.and_vars()}
    for relation in relations.values():
        order_key[relation.carry_var] = order_key[relation.sum_var] - 0.5
    carry_of = {r.carry_var: r for r in relations.values()}

    signature = signature_polynomial(aig)
    peak = signature.num_terms
    substitutions = 0
    with Timer() as timer:
        for var in sorted(aig.and_vars(), key=lambda v: order_key[v], reverse=True):
            if var not in signature.support():
                continue
            relation = relations.get(var)
            if relation is not None:
                # sum = Σ leaves' - 2*carry', fixed up for polarity.
                leaf_sum = Polynomial()
                for leaf, flip in zip(relation.leaves, relation.leaf_flips):
                    leaf_sum = leaf_sum + _flip(Polynomial.variable(leaf), flip)
                carry = _flip(Polynomial.variable(relation.carry_var),
                              relation.carry_flip)
                replacement = _flip(leaf_sum - carry.scale(2), relation.sum_flip)
            elif var in carry_of:
                relation = carry_of[var]
                operands = [
                    _flip(Polynomial.variable(leaf), flip)
                    for leaf, flip in zip(relation.leaves, relation.leaf_flips)
                ]
                if len(operands) == 2:
                    maj = operands[0] * operands[1]
                else:
                    maj = _maj_poly(*operands)
                replacement = _flip(maj, relation.carry_flip)
            else:
                f0, f1 = aig.fanins(var)
                replacement = Polynomial.from_literal(f0) * Polynomial.from_literal(f1)
            signature = signature.substitute(var, replacement)
            substitutions += 1
            peak = max(peak, signature.num_terms)
            if signature.num_terms > max_terms:
                raise TermExplosion(
                    f"signature grew to {signature.num_terms} terms "
                    f"(budget {max_terms}) after {substitutions} substitutions"
                )
    residue = signature - _expected_product(circuit.a_literals, circuit.b_literals)
    return SCAResult(
        ok=residue.is_zero(),
        mode=mode,
        substitutions=substitutions,
        peak_terms=peak,
        seconds=timer.elapsed,
        residue_terms=residue.num_terms,
    )
