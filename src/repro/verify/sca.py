"""SCA multiplier verification by algebraic backward rewriting.

This is the downstream application that motivates Gamora (paper Sec. III-A):
symbolic computer algebra verifies an integer multiplier by rewriting the
output word's *signature polynomial* backward through the netlist until it
is expressed over primary inputs, then comparing with the specification
``(Σ 2^i a_i) · (Σ 2^j b_j)``.

Two engines:

* **naive** — every AND node is substituted by the product of its fan-in
  polynomials.  Correct but explodes on carry chains (the published
  motivation for adder-tree extraction).
* **adder-aware** — matched FA/HA slices use the linear identity
  ``sum + 2·carry = a + b + c``: substituting the sum root introduces a
  ``-2·carry`` term that *cancels* the carry already present one weight
  up, so carries vanish from the signature before their nonlinear MAJ
  polynomial is ever needed.  This reproduces the fast algebraic
  rewriting of Yu et al. (TCAD'17) on top of either exact or
  Gamora-predicted adder trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import AIG, lit_neg, lit_var
from repro.aig.npn import MAJ3, XOR2, XOR3, apply_transform
from repro.reasoning.adder_tree import AdderTree, extract_adder_tree
from repro.techmap.mapper import _truth_over_leaves
from repro.utils.timing import Timer
from repro.verify.polynomial import Polynomial

__all__ = ["SCAResult", "TermExplosion", "verify_multiplier", "signature_polynomial"]


class TermExplosion(RuntimeError):
    """Raised when the signature polynomial exceeds the term budget."""


@dataclass
class SCAResult:
    """Outcome of a verification run."""

    ok: bool
    mode: str
    substitutions: int
    peak_terms: int
    seconds: float
    residue_terms: int = 0

    def __repr__(self) -> str:
        status = "VERIFIED" if self.ok else "FAILED"
        return (
            f"SCAResult({status}, mode={self.mode}, "
            f"substitutions={self.substitutions}, peak_terms={self.peak_terms}, "
            f"{self.seconds * 1e3:.1f} ms)"
        )


@dataclass
class _AdderRelation:
    """Polarity-resolved linear relation of one matched adder slice."""

    sum_var: int
    carry_var: int
    leaves: tuple[int, ...]
    leaf_flips: tuple[int, ...]
    sum_flip: int
    carry_flip: int


def _resolve_relation(aig: AIG, adder) -> _AdderRelation | None:
    """Find flips so that ``(sum ^ sf) + 2·(carry ^ cf) = Σ (leaf ^ f_i)``.

    Mirrors the mapper's polarity resolution; an unresolvable pair (pruned
    cuts) falls back to plain gate-level rewriting for those roots.
    """
    arity = len(adder.leaves)
    sum_truth = _truth_over_leaves(aig, adder.sum_var, adder.leaves)
    carry_truth = _truth_over_leaves(aig, adder.carry_var, adder.leaves)
    if sum_truth is None or carry_truth is None:
        return None
    xor_ref = XOR3 if arity == 3 else XOR2
    carry_ref = MAJ3 if arity == 3 else 0b1000
    identity = tuple(range(arity))
    full = (1 << (1 << arity)) - 1
    for flip_bits in range(1 << arity):
        flips = tuple((flip_bits >> j) & 1 for j in range(arity))
        carry_cell = apply_transform(carry_ref, arity, identity, flips, 0)
        if carry_cell == carry_truth:
            carry_flip = 0
        elif (carry_cell ^ full) == carry_truth:
            carry_flip = 1
        else:
            continue
        xor_cell = apply_transform(xor_ref, arity, identity, flips, 0)
        if xor_cell == sum_truth:
            sum_flip = 0
        elif (xor_cell ^ full) == sum_truth:
            sum_flip = 1
        else:
            continue
        return _AdderRelation(
            adder.sum_var, adder.carry_var, adder.leaves, flips, sum_flip, carry_flip
        )
    return None


def signature_polynomial(aig: AIG) -> Polynomial:
    """The output word as a polynomial: ``Σ 2^i · out_i``."""
    signature = Polynomial()
    for index, lit in enumerate(aig.outputs):
        signature = signature + Polynomial.from_literal(lit).scale(1 << index)
    return signature


def _expected_product(a_literals: list[int], b_literals: list[int]) -> Polynomial:
    word_a = Polynomial()
    for index, lit in enumerate(a_literals):
        word_a = word_a + Polynomial.from_literal(lit).scale(1 << index)
    word_b = Polynomial()
    for index, lit in enumerate(b_literals):
        word_b = word_b + Polynomial.from_literal(lit).scale(1 << index)
    return word_a * word_b


def _flip(poly: Polynomial, flip: int) -> Polynomial:
    return Polynomial.constant(1) - poly if flip else poly


def _maj_poly(x: Polynomial, y: Polynomial, z: Polynomial) -> Polynomial:
    pairwise = x * y + x * z + y * z
    return pairwise - (x * y * z).scale(2)


def verify_multiplier(circuit, mode: str = "adder", tree: AdderTree | None = None,
                      max_terms: int = 500_000) -> SCAResult:
    """Verify that a multiplier netlist computes ``a * b``.

    ``circuit`` is a :class:`~repro.generators.GeneratedMultiplier` (or any
    object with ``aig``, ``a_literals``, ``b_literals``).  ``mode`` selects
    the naive or adder-aware engine; ``tree`` optionally supplies the adder
    tree (e.g. one recovered by Gamora) instead of exact extraction.

    Raises :class:`TermExplosion` when the signature outgrows ``max_terms``
    — the expected behavior of the naive engine on non-trivial widths.
    """
    if mode not in ("adder", "naive"):
        raise ValueError(f"unknown SCA mode {mode!r}")
    aig: AIG = circuit.aig
    relations: dict[int, _AdderRelation] = {}
    if mode == "adder":
        if tree is None:
            tree = extract_adder_tree(aig)
        for adder in tree.adders:
            relation = _resolve_relation(aig, adder)
            if relation is not None and relation.sum_var not in relations:
                relations[relation.sum_var] = relation

    # Substitution order: reverse topological, but each carry root is
    # processed immediately after its sum root so the -2*carry term
    # introduced by the sum's linear form cancels first.
    order_key: dict[int, float] = {var: float(var) for var in aig.and_vars()}
    for relation in relations.values():
        order_key[relation.carry_var] = order_key[relation.sum_var] - 0.5
    carry_of = {r.carry_var: r for r in relations.values()}

    signature = signature_polynomial(aig)
    peak = signature.num_terms
    substitutions = 0
    with Timer() as timer:
        for var in sorted(aig.and_vars(), key=lambda v: order_key[v], reverse=True):
            if var not in signature.support():
                continue
            relation = relations.get(var)
            if relation is not None:
                # sum = Σ leaves' - 2*carry', fixed up for polarity.
                leaf_sum = Polynomial()
                for leaf, flip in zip(relation.leaves, relation.leaf_flips):
                    leaf_sum = leaf_sum + _flip(Polynomial.variable(leaf), flip)
                carry = _flip(Polynomial.variable(relation.carry_var),
                              relation.carry_flip)
                replacement = _flip(leaf_sum - carry.scale(2), relation.sum_flip)
            elif var in carry_of:
                relation = carry_of[var]
                operands = [
                    _flip(Polynomial.variable(leaf), flip)
                    for leaf, flip in zip(relation.leaves, relation.leaf_flips)
                ]
                if len(operands) == 2:
                    maj = operands[0] * operands[1]
                else:
                    maj = _maj_poly(*operands)
                replacement = _flip(maj, relation.carry_flip)
            else:
                f0, f1 = aig.fanins(var)
                replacement = Polynomial.from_literal(f0) * Polynomial.from_literal(f1)
            signature = signature.substitute(var, replacement)
            substitutions += 1
            peak = max(peak, signature.num_terms)
            if signature.num_terms > max_terms:
                raise TermExplosion(
                    f"signature grew to {signature.num_terms} terms "
                    f"(budget {max_terms}) after {substitutions} substitutions"
                )
    residue = signature - _expected_product(circuit.a_literals, circuit.b_literals)
    return SCAResult(
        ok=residue.is_zero(),
        mode=mode,
        substitutions=substitutions,
        peak_terms=peak,
        seconds=timer.elapsed,
        residue_terms=residue.num_terms,
    )
