"""Multilinear integer polynomials over Boolean node variables.

The algebra of symbolic computer algebra (SCA) verification: Boolean
signals become 0/1 integer variables, complement is ``1 - x``, and the
idempotence ``x² = x`` makes every polynomial multilinear — monomials are
plain variable *sets*, which the representation enforces structurally
(a monomial is a ``frozenset``).
"""

from __future__ import annotations

from repro.aig.graph import lit_neg, lit_var

__all__ = ["Polynomial"]

Monomial = frozenset


class Polynomial:
    """A multilinear polynomial: ``{frozenset(vars): int coefficient}``."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict[Monomial, int] | None = None) -> None:
        self.terms: dict[Monomial, int] = {}
        if terms:
            for monomial, coeff in terms.items():
                if coeff:
                    self.terms[monomial] = coeff

    # -- constructors ----------------------------------------------------
    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        return cls({Monomial(): value} if value else {})

    @classmethod
    def variable(cls, var: int) -> "Polynomial":
        return cls({Monomial((var,)): 1})

    @classmethod
    def from_literal(cls, lit: int) -> "Polynomial":
        """Boolean literal as a polynomial: ``x`` or ``1 - x``."""
        var = lit_var(lit)
        if var == 0:
            return cls.constant(lit_neg(lit))  # const literal 0 or 1
        if lit_neg(lit):
            return cls({Monomial(): 1, Monomial((var,)): -1})
        return cls.variable(var)

    # -- arithmetic -------------------------------------------------------
    def _add_term(self, monomial: Monomial, coeff: int) -> None:
        updated = self.terms.get(monomial, 0) + coeff
        if updated:
            self.terms[monomial] = updated
        else:
            self.terms.pop(monomial, None)

    def __add__(self, other: "Polynomial") -> "Polynomial":
        result = Polynomial(dict(self.terms))
        for monomial, coeff in other.terms.items():
            result._add_term(monomial, coeff)
        return result

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "Polynomial":
        if factor == 0:
            return Polynomial()
        return Polynomial({m: c * factor for m, c in self.terms.items()})

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        result = Polynomial()
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                # x² = x: set union implements idempotent reduction.
                result._add_term(m1 | m2, c1 * c2)
        return result

    # -- substitution -----------------------------------------------------
    def substitute(self, var: int, replacement: "Polynomial") -> "Polynomial":
        """Replace every occurrence of ``var`` with ``replacement``."""
        untouched = Polynomial()
        rewritten = Polynomial()
        for monomial, coeff in self.terms.items():
            if var in monomial:
                rest = Polynomial({monomial - {var}: coeff})
                rewritten = rewritten + rest * replacement
            else:
                untouched._add_term(monomial, coeff)
        return untouched + rewritten

    # -- inspection ---------------------------------------------------------
    @property
    def num_terms(self) -> int:
        return len(self.terms)

    def support(self) -> set[int]:
        """All variables appearing in the polynomial."""
        out: set[int] = set()
        for monomial in self.terms:
            out |= monomial
        return out

    def is_zero(self) -> bool:
        return not self.terms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(frozenset(self.terms.items()))

    def evaluate(self, assignment: dict[int, int]) -> int:
        """Evaluate with 0/1 variable values (testing hook)."""
        total = 0
        for monomial, coeff in self.terms.items():
            value = coeff
            for var in monomial:
                value *= assignment[var]
            total += value
        return total

    def __repr__(self) -> str:
        if not self.terms:
            return "Polynomial(0)"
        parts = []
        for monomial in sorted(self.terms, key=lambda m: (len(m), sorted(m))):
            coeff = self.terms[monomial]
            names = "*".join(f"v{v}" for v in sorted(monomial)) or "1"
            parts.append(f"{coeff:+d}*{names}")
        return f"Polynomial({' '.join(parts)})"
