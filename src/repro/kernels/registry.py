"""Backend registry for the array hot-path kernels.

The post-GNN path runs on four well-defined array contracts (the
ROADMAP's kernel targets): the per-level cut merge, the cone frontier
sweep, the packed-key FA join, and the Kahn longest-path wavefront.  Each
is a *registered kernel*: a name plus a pinned signature, with one
implementation per *backend*.  The pure-NumPy backend is always present
and stays the default; a Numba ``@njit(cache=True)`` backend is
import-gated (``numba`` is optional) and must be bit-identical — the
differential suite in ``tests/test_kernels.py`` pins that, which is also
what makes backend choice invisible to the result cache.

Selection is process-global, not per-call: the ``REPRO_KERNEL`` env var
(``auto`` | ``numpy`` | ``numba``) picks the default, :func:`set_backend`
overrides it (the CLI's ``--kernel`` flag lands here).  ``auto`` means
"numba when importable, else numpy"; an *explicit* ``numba`` request
without numba installed warns and falls back to numpy — never an
ImportError on a serving path.  Backends may implement any subset of the
kernels; missing ones transparently fall back to numpy, which is also how
test-only backends hook in (:func:`register` accepts arbitrary backend
names).

Every dispatch is counted per ``(kernel, backend)`` so the serving daemon
can surface what actually ran (``stats``/``stats.json``).
"""

from __future__ import annotations

import importlib.util
import os
import threading
import warnings
from typing import Callable

__all__ = [
    "BACKEND_ENV",
    "KERNEL_NAMES",
    "LEVELS_SCALAR_CUTOFF",
    "active_backend",
    "dispatch_counts",
    "get_kernel",
    "kernel_stats",
    "numba_available",
    "register",
    "requested_backend",
    "reset_dispatch_counts",
    "resolve_backend",
    "set_backend",
    "warmup",
]

BACKEND_ENV = "REPRO_KERNEL"

# The four pinned kernel contracts (see numpy_backend for the reference
# implementations and the signature documentation).
KERNEL_NAMES = ("merge_level", "cone_sweep", "fa_join", "kahn_propagate")

# Below this many AND nodes, AIG.levels() keeps its per-node Python
# recurrence: the wavefront kernel's per-round call overhead (a few µs per
# topological level, regardless of backend) only amortizes once levels are
# wide enough.  One tunable constant — `AIG._LEVELS_VECTOR_MIN` is
# initialized from it — measured by the `kahn_propagate` rows of
# `benchmarks/bench_kernels.py` (the 64-bit multiplier, ~40k ANDs, sits
# far above the cutoff; shrink it only with numbers from that benchmark).
LEVELS_SCALAR_CUTOFF = 4096

_impls: dict[tuple[str, str], Callable] = {}
_loaded_backends: set[str] = set()
_requested: str | None = None  # explicit set_backend choice (beats the env)
_active: str | None = None  # cached resolution; invalidated by set_backend
_counts: dict[tuple[str, str], int] = {}
_warmup_info: dict | None = None
_lock = threading.RLock()


def register(kernel: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator: register an implementation of ``kernel`` for ``backend``."""
    if kernel not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
        )

    def decorate(fn: Callable) -> Callable:
        with _lock:
            _impls[(kernel, backend)] = fn
        return fn

    return decorate


def numba_available() -> bool:
    """Whether ``import numba`` could succeed (spec probe, no import)."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def _load_backend(backend: str) -> bool:
    """Make ``backend``'s kernels registered; False when unavailable."""
    with _lock:
        if backend in _loaded_backends:
            return True
        if backend == "numpy":
            from repro.kernels import numpy_backend  # noqa: F401
        elif backend == "numba":
            try:
                from repro.kernels import numba_backend  # noqa: F401
            except ImportError:
                return False
        elif not any(key[1] == backend for key in _impls):
            # Custom backends (tests, experiments) register their kernels
            # up front; an unknown name has nothing to load.
            return False
        _loaded_backends.add(backend)
        return True


def requested_backend() -> str:
    """What was asked for: ``set_backend`` choice, else env, else ``auto``."""
    with _lock:
        if _requested is not None:
            return _requested
    return os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"


def resolve_backend(name: str | None = None) -> str:
    """Resolve a requested backend name to the one that will serve.

    ``auto`` prefers numba when importable; an explicit ``numba`` request
    without numba warns and degrades to numpy (a serving process must come
    up regardless); anything else must be a registered backend name.
    """
    name = (name or requested_backend()).strip().lower()
    if name == "auto":
        if numba_available() and _load_backend("numba"):
            return "numba"
        return "numpy"
    if name == "numpy":
        _load_backend("numpy")
        return "numpy"
    if name == "numba":
        if _load_backend("numba"):
            return "numba"
        warnings.warn(
            "kernel backend 'numba' requested but numba is not importable; "
            "falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "numpy"
    if _load_backend(name):
        return name
    raise ValueError(
        f"unknown kernel backend {name!r}; expected 'auto', 'numpy', "
        "'numba', or a registered custom backend"
    )


def set_backend(name: str | None) -> str:
    """Select the process-wide backend; returns the resolved name.

    ``None`` clears any explicit choice and re-reads ``REPRO_KERNEL``.
    """
    global _requested, _active
    with _lock:
        _requested = None if name is None else str(name).strip().lower()
        _active = resolve_backend()
        return _active


def active_backend() -> str:
    """The backend dispatch currently serves (resolving lazily once)."""
    global _active
    with _lock:
        if _active is None:
            _active = resolve_backend()
        return _active


def get_kernel(name: str) -> Callable:
    """The active backend's ``name`` implementation, dispatch-counted.

    Backends may implement a subset of the kernels: anything missing is
    served by the numpy reference implementation (and counted as numpy).
    """
    backend = active_backend()
    with _lock:
        impl = _impls.get((name, backend))
        if impl is None:
            _load_backend("numpy")
            impl = _impls.get((name, "numpy"))
            if impl is None:
                raise KeyError(f"unknown kernel {name!r}")
            backend = "numpy"
    key = (name, backend)

    def dispatched(*args, **kwargs):
        with _lock:
            _counts[key] = _counts.get(key, 0) + 1
        return impl(*args, **kwargs)

    return dispatched


def dispatch_counts() -> dict[str, dict[str, int]]:
    """``{kernel: {backend: invocations}}`` since the last reset."""
    out: dict[str, dict[str, int]] = {}
    with _lock:
        items = sorted(_counts.items())
    for (kernel, backend), count in items:
        out.setdefault(kernel, {})[backend] = count
    return out


def reset_dispatch_counts() -> None:
    with _lock:
        _counts.clear()


def kernel_stats() -> dict:
    """JSON-ready snapshot for the daemon's ``stats`` surface."""
    with _lock:
        warmed = dict(_warmup_info) if _warmup_info is not None else None
    return {
        "backend": active_backend(),
        "requested": requested_backend(),
        "numba_available": numba_available(),
        "warmup": warmed,
        "dispatch_counts": dispatch_counts(),
    }


def warmup(backend: str | None = None) -> dict:
    """Prime the active backend on a tiny synthetic AIG; returns a record.

    Runs the real pipeline — cut sweep, FA join, cone consumption,
    word-level ranks — over a small CSA multiplier so every registered
    kernel executes at least once (under numba that is what triggers, and
    with ``cache=True`` persists, JIT compilation).  Small graphs take the
    scalar ``levels()`` fallback, so the Kahn kernel is additionally
    driven directly on a hand-built CSR.  Dispatch counters are reset
    afterwards: serving stats start at zero, compile cost is paid before
    the first request.
    """
    global _warmup_info
    import time

    import numpy as np

    if backend is not None:
        set_backend(backend)
    resolved = active_backend()
    started = time.perf_counter()

    from repro.generators import csa_multiplier
    from repro.reasoning.fast_pairing import fast_extract_adder_tree
    from repro.reasoning.wordlevel import analyze_adder_tree

    aig = csa_multiplier(4).aig
    tree = fast_extract_adder_tree(aig)
    analyze_adder_tree(aig, tree)

    indptr = np.array([0, 1, 2, 2], dtype=np.int64)
    consumers = np.array([1, 2], dtype=np.int64)
    indegree = np.array([0, 1, 1], dtype=np.int64)
    values = np.zeros(3, dtype=np.int64)
    get_kernel("kahn_propagate")(indptr, consumers, indegree, values)
    assert values[2] == 2, "kahn warmup produced a wrong longest path"

    reset_dispatch_counts()
    record = {
        "backend": resolved,
        "seconds": time.perf_counter() - started,
    }
    with _lock:
        _warmup_info = dict(record)
    return record
