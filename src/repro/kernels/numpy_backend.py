"""Pure-NumPy reference implementations of the four hot-path kernels.

These are the always-present backend and the bit-identity oracle for any
compiled backend.  Each kernel's signature is the pinned contract both
backends implement:

``merge_level(batch, fanin0, fanin1, leaves, truths, sizes, counts, *,
k, max_cuts, include_trivial, pad, pack_limit)``
    Merge, rank and store the priority cuts of one topological level's
    AND nodes into the ``CutArrays`` columns, in place.  ``batch`` holds
    the level's variable ids; ``fanin0/fanin1`` are the whole graph's
    fanin *literal* arrays.  The NumPy implementation chunks the level to
    bound scratch memory and compacts the leaf universe when ids would
    overflow the packed int64 rank keys (``pack_limit``); a scalar
    backend may ignore both knobs — they change footprint, not output.

``cone_sweep(first_and, f0v, f1v, root_vars, root_owner, leaf_matrix)``
    Interior ``(nodes, owners)`` pairs of many cones, sorted by
    ``(owner, node)``: AND variables reachable from each owner's roots
    without crossing that owner's leaf row.  ``f0v/f1v`` are fanin
    *variable* arrays for the whole graph; owner ids index
    ``leaf_matrix`` rows (dense ``0..num_owners-1``).

``fa_join(maj_var, maj_key, xor_var, xor_key) -> (maj, xor, key)``
    Candidate FA pairs: every (MAJ row, XOR3 row) sharing a packed
    leaf-triple key, self-pairs dropped, parallel ``(maj, xor)`` edges
    collapsed to their smallest shared key, sorted by ``(maj, xor)``.
    Key packing/unpacking stays with the caller — both backends see the
    same int64 keys.

``kahn_propagate(indptr, consumers, indegree, values)``
    In-place longest-path propagation over a CSR producer→consumer
    index: nodes with ``indegree == 0`` are final; resolving one relaxes
    ``values[c] = max(values[c], values[node] + 1)`` on each consumer and
    releases it when its last incoming edge resolves.  ``indegree`` is
    consumed as scratch.  Longest-path values are unique regardless of
    processing order, which is what makes backends bit-identical here.
"""

from __future__ import annotations

import numpy as np

from repro.aig.cuts import TRIVIAL_TRUTH
from repro.kernels.registry import register
from repro.utils.arrays import in_sorted, ragged_gather, sorted_unique

__all__ = [
    "EXPAND_LUT",
    "TRIVIAL_TRUTH",
    "merge_level",
    "cone_sweep",
    "fa_join",
    "kahn_propagate",
]

# ---------------------------------------------------------------------------
# merge_level — vectorized k <= 3 priority-cut merge (moved verbatim from
# repro.aig.fast_cuts; that module now dispatches through the registry)
# ---------------------------------------------------------------------------

# Truth-domain mask by cut size: 2**(2**size) - 1, saturated past size 3
# (oversized unions are infeasible and masked out later anyway).
_WIDTH_MASK = np.array([1, 3, 15, 255, 255, 255, 255], dtype=np.uint8)

# Union-slot bit by leaf position (slots 0..2); positions 3..5 only occur
# on infeasible unions and contribute nothing.
_SLOT_BIT = np.array([1, 2, 4, 0, 0, 0], dtype=np.uint8)

# Upper bound on candidate cells materialized per vectorized chunk; keeps
# peak scratch memory level-independent on huge levels.  The merge holds a
# handful of (cells, 6) int32/int64 scratch arrays at once, so 2^18 cells
# bounds the transient footprint to a few tens of MiB — which also keeps
# forked post-processing workers (one sweep each) within the serving
# layer's memory budgeting.
_CHUNK_CELLS = 1 << 18


def _safe_pack_limit() -> int:
    """Largest leaf-universe size ``v`` with ``5 * v**3 < 2**63``.

    The rank key packs ``size * vp**3 + leaves`` into one int64 with
    ``size <= k + 1 <= 4``; any pad-inclusive universe up to this bound is
    overflow-free.  Computed exactly (integer arithmetic, no float cube
    root) so the boundary cannot be off by one.
    """
    limit = int(round((np.iinfo(np.int64).max // 5) ** (1.0 / 3.0)))
    while 5 * limit ** 3 >= np.iinfo(np.int64).max:
        limit -= 1
    while 5 * (limit + 1) ** 3 < np.iinfo(np.int64).max:
        limit += 1
    return limit


_SAFE_PACK_LIMIT = _safe_pack_limit()


def _build_expand_lut() -> np.ndarray:
    """``EXPAND_LUT[mask, t]``: re-express truth ``t`` on 3 variables.

    ``t`` is a function of ``popcount(mask)`` variables; source variable
    ``i`` becomes the ``i``-th set bit of ``mask`` in the 3-variable target
    domain.  Entry 0 is unused (every cut has at least one leaf).
    """
    lut = np.zeros((8, 256), dtype=np.uint8)
    minterms = np.arange(8, dtype=np.uint16)
    tables = np.arange(256, dtype=np.uint16)
    for mask in range(1, 8):
        positions = [p for p in range(3) if (mask >> p) & 1]
        src = np.zeros(8, dtype=np.uint16)
        for i, pos in enumerate(positions):
            src |= ((minterms >> pos) & 1) << i
        bits = (tables[:, None] >> src[None, :]) & 1  # (256 tables, 8 minterms)
        lut[mask] = (bits << minterms[None, :]).sum(axis=1).astype(np.uint8)
    return lut


EXPAND_LUT = _build_expand_lut()

_ARANGE_CACHE: dict[int, np.ndarray] = {}
_ARANGE_CACHE_MAX = 512  # cache only small sizes (cut-slot counts, narrow
# levels): bounds the module-global to <1 MiB total while covering the
# sizes that recur every level; big per-chunk aranges are cheap relative
# to the passes around them and would pin memory for the process lifetime.


def _arange(n: int) -> np.ndarray:
    if n > _ARANGE_CACHE_MAX:
        return np.arange(n)
    got = _ARANGE_CACHE.get(n)
    if got is None:
        got = _ARANGE_CACHE[n] = np.arange(n)
    return got


@register("merge_level", "numpy")
def merge_level(batch: np.ndarray, fanin0: np.ndarray, fanin1: np.ndarray,
                leaves: np.ndarray, truths: np.ndarray, sizes: np.ndarray,
                counts: np.ndarray, *, k: int, max_cuts: int,
                include_trivial: bool, pad: int, pack_limit: int) -> None:
    """One level's cut merge; chunked to bound scratch and key packing."""
    slots = leaves.shape[1]
    # Chunk size bounds two things at once: scratch memory (fixed cell
    # budget per chunk) and — on graphs big enough to need per-level leaf
    # compaction — the compacted leaf universe, which must stay under the
    # int64 packing limit (each node contributes at most 6*slots leaves).
    step = max(1, min(_CHUNK_CELLS // (slots * slots),
                      (pack_limit - 2) // (6 * slots)))
    state = (leaves, truths, sizes, counts)
    for chunk in range(0, len(batch), step):
        _merge_chunk(batch[chunk:chunk + step], fanin0, fanin1, state,
                     k=k, max_cuts=max_cuts, include_trivial=include_trivial,
                     pad=pad, pack_limit=pack_limit)


def _merge_chunk(batch: np.ndarray, fanin0: np.ndarray, fanin1: np.ndarray,
                 state, *, k: int, max_cuts: int, include_trivial: bool,
                 pad: int, pack_limit: int) -> None:
    """Merge, rank and store the cuts of one chunk's nodes, vectorized."""
    leaves, truths, sizes, counts = state
    m = len(batch)
    v0 = fanin0[batch] >> 1
    v1 = fanin1[batch] >> 1

    c0 = counts[v0]
    c1 = counts[v1]
    C0 = int(c0.max())
    C1 = int(c1.max())

    # Candidate grid: every (cut of fanin0) x (cut of fanin1) combination.
    l0 = leaves[v0, :C0]  # (m, C0, 3)
    l1 = leaves[v1, :C1]
    t0 = truths[v0, :C0]  # (m, C0)
    t1 = truths[v1, :C1]

    # Leaf ids must fit the packed int64 sort/dominance keys below; when
    # the graph is too large for that (~beyond 1.2M variables), compact
    # this level's leaf universe to dense local ids first.
    lut = None
    if pad + 1 > pack_limit:
        lut = np.unique(
            np.concatenate([l0.reshape(m, -1), l1.reshape(m, -1)], axis=1)
        )
        if lut[-1] != pad:
            lut = np.append(lut, np.int32(pad))
        l0 = np.searchsorted(lut, l0).astype(np.int32)
        l1 = np.searchsorted(lut, l1).astype(np.int32)
        pad = len(lut) - 1
        # Guaranteed by the chunk sizing (<= 6*slots leaves per node); a
        # violation would silently wrap the int64 rank keys.
        assert pad + 1 <= pack_limit, "compacted leaf universe too large"

    valid = (
        (_arange(C0)[None, :, None] < c0[:, None, None])
        & (_arange(C1)[None, None, :] < c1[:, None, None])
    )  # (m, C0, C1)

    # Leaf union via one sort over the 6 padded leaf slots.  Each leaf is
    # tagged with its provenance (bit 0: fan-in 0, bit 1: fan-in 1) in the
    # two low key bits, so sorting keeps duplicate leaves adjacent (run
    # length at most 2 — leaves are unique within one cut) and the tags
    # recover, per unique leaf, which fan-in cut(s) contributed it.
    tagged = np.concatenate(
        [
            np.broadcast_to((l0 * 4 + 1)[:, :, None, :], (m, C0, C1, 3)),
            np.broadcast_to((l1 * 4 + 2)[:, None, :, :], (m, C0, C1, 3)),
        ],
        axis=-1,
    )  # (m, C0, C1, 6)
    merged = np.sort(tagged, axis=-1)
    leaf = merged >> 2
    tag = merged & 3
    same = leaf[..., 1:] == leaf[..., :-1]
    fresh = np.empty(leaf.shape, dtype=bool)
    fresh[..., 0] = leaf[..., 0] != pad
    fresh[..., 1:] = ~same & (leaf[..., 1:] != pad)
    run_tags = tag.copy()
    run_tags[..., :-1] |= np.where(same, tag[..., 1:], 0)
    size = fresh.sum(axis=-1, dtype=np.int16)  # (m, C0, C1)
    # Oversized unions get size k+1: infeasible, and ranked past every
    # real cut by the size-major sort key below.
    size = np.where(valid & (size <= k), size, np.int16(k + 1))

    # Compact each union to its first three slots (slot 3 is a spill bin
    # for duplicate/pad/overflow entries; feasible unions never reach it).
    position = np.cumsum(fresh, axis=-1) - 1
    slot = np.where(fresh & (position < 3), position, 3)
    union = np.full((m, C0, C1, 4), pad, dtype=np.int32)
    cells = m * C0 * C1
    union.reshape(-1)[
        (_arange(cells).reshape(m, C0, C1, 1) * 4 + slot).reshape(-1)
    ] = leaf.reshape(-1)
    union = union[..., :3]

    # Where each fan-in cut's leaves sit inside the union, as a 3-bit
    # position mask — the key into EXPAND_LUT.
    bits = _SLOT_BIT[position] * fresh
    mask0 = (bits * (run_tags & 1).astype(np.uint8)).sum(
        axis=-1, dtype=np.uint8
    )
    mask1 = (bits * ((run_tags >> 1) & 1).astype(np.uint8)).sum(
        axis=-1, dtype=np.uint8
    )

    # Truth of the AND over the union leaves: expand each fan-in function,
    # complement negated edges (byte-wide flip, masked to the domain), AND.
    flip0 = ((fanin0[batch] & 1) * 0xFF).astype(np.uint8)
    flip1 = ((fanin1[batch] & 1) * 0xFF).astype(np.uint8)
    t0e = EXPAND_LUT[mask0, np.broadcast_to(t0[:, :, None], (m, C0, C1))]
    t1e = EXPAND_LUT[mask1, np.broadcast_to(t1[:, None, :], (m, C0, C1))]
    truth = ((t0e ^ flip0[:, None, None]) & (t1e ^ flip1[:, None, None])
             & _WIDTH_MASK[size])

    # Flatten the candidate grid and rank per node by (size, leaves) — the
    # legacy sort key — as a single packed int64 key per candidate.
    grid = C0 * C1
    cand_size = size.reshape(m, grid)
    vp = np.int64(pad + 1)
    u64 = union.reshape(m, grid, 3).astype(np.int64)
    packed = (u64[..., 0] * vp + u64[..., 1]) * vp + u64[..., 2]
    order = np.argsort(cand_size * (vp * vp * vp) + packed, axis=-1)

    flat = (_arange(m)[:, None] * grid + order).reshape(-1)
    packed = packed.reshape(-1)[flat].reshape(m, grid)
    cand_size = cand_size.reshape(-1)[flat].reshape(m, grid)
    cand_leaves = union.reshape(-1, 3)[flat].reshape(m, grid, 3)
    cand_ok = cand_size <= k

    # Dedup: merge paths reproducing the same leaf set produce the same
    # root function, so keeping the first occurrence matches the legacy
    # ``setdefault`` exactly.
    live = cand_ok.copy()
    if grid > 1:
        live[:, 1:] &= packed[:, 1:] != packed[:, :-1]

    # Dominance: a cut is dropped when a strictly smaller live cut is a
    # leaf-subset.  With k ≤ 3 the only dominators are singletons and
    # pairs, so subset testing is a few keyed membership checks.
    dominated = _dominated(cand_leaves, cand_size, live, vp)
    keep = live & ~dominated
    rank = np.cumsum(keep, axis=1) - 1
    final = keep & (rank < max_cuts)

    rows, cols = np.nonzero(final)
    dest = batch[rows]
    dest_slot = rank[rows, cols]
    picked = cand_leaves[rows, cols]
    if lut is not None:
        picked = lut[picked]
    leaves[dest, dest_slot] = picked
    truths[dest, dest_slot] = truth.reshape(m, grid)[rows, order[rows, cols]]
    sizes[dest, dest_slot] = cand_size[rows, cols].astype(np.int8)
    kept = final.sum(axis=1)
    if include_trivial:
        leaves[batch, kept, 0] = batch.astype(np.int32)
        truths[batch, kept] = TRIVIAL_TRUTH
        sizes[batch, kept] = 1
        counts[batch] = kept + 1
    else:
        counts[batch] = kept


def _member(values: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted 1D key array, searchsorted-style."""
    index = np.searchsorted(sorted_keys, values)
    np.minimum(index, len(sorted_keys) - 1, out=index)
    return sorted_keys[index] == values


def _dominated(cand_leaves: np.ndarray, cand_size: np.ndarray,
               live: np.ndarray, vp: np.int64) -> np.ndarray:
    """Which live candidates are dominated by a smaller live candidate.

    Exactness note: testing against *all* live smaller cuts (not just the
    ones the legacy loop had kept so far) is equivalent — dominance is
    transitive, the sort is by size, and a dominating cut always precedes
    its victim — so this reproduces the sequential filter bit for bit.
    """
    m, grid = cand_size.shape
    l64 = cand_leaves.astype(np.int64)
    node_base = (np.arange(m, dtype=np.int64) * vp)[:, None]
    dominated = np.zeros((m, grid), dtype=bool)

    single = live & (cand_size == 1)
    if single.any():
        bigger = live & (cand_size >= 2)
        if bigger.any():
            single_keys = np.sort((node_base + l64[..., 0])[single])
            hit = _member(node_base[:, :, None] + l64, single_keys)
            dominated |= bigger & hit.any(axis=-1)

    pair = live & (cand_size == 2)
    if pair.any():
        triple = live & (cand_size == 3)
        if triple.any():
            pair_base = (node_base * vp)[:, :, None]
            sub_pairs = l64[..., [0, 0, 1]] * vp + l64[..., [1, 2, 2]]
            keys = np.sort(
                (pair_base[..., 0] + l64[..., 0] * vp + l64[..., 1])[pair]
            )
            hit = _member(pair_base + sub_pairs, keys)
            dominated |= triple & hit.any(axis=-1)
    return dominated


# ---------------------------------------------------------------------------
# cone_sweep — batched cone interiors (moved from fast_pairing.batched_cones)
# ---------------------------------------------------------------------------

@register("cone_sweep", "numpy")
def cone_sweep(first_and: int, f0v: np.ndarray, f1v: np.ndarray,
               root_vars: np.ndarray, root_owner: np.ndarray,
               leaf_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Every cone advances together, one level of its own depth per round.

    The frontier holds ``(node, owner)`` pairs packed into int64 keys, a
    round expands the whole frontier with a handful of NumPy passes, and
    leaf crossings are caught by comparing each child against its owner's
    leaf row.  Real cones are so shallow that revisit bookkeeping costs
    more than the few duplicate expansions it would save, so rounds expand
    raw and one final sort dedups the result; a guard switches to exact
    per-round visited filtering as soon as the sweep runs deep or the
    frontier outgrows everything collected so far.
    """
    stride = np.int64(f0v.shape[0])
    width = leaf_matrix.shape[1]

    def crosses_leaf(nodes: np.ndarray, owners: np.ndarray) -> np.ndarray:
        hit = leaf_matrix[owners, 0] == nodes
        for column in range(1, width):
            hit |= leaf_matrix[owners, column] == nodes
        return hit

    admit = (root_vars >= first_and) & ~crosses_leaf(root_vars, root_owner)
    frontier = sorted_unique(root_owner[admit] * stride + root_vars[admit])
    collected = [frontier]
    total = len(frontier)
    seen: np.ndarray | None = None
    rounds = 0
    while len(frontier):
        nodes = frontier % stride
        owners = frontier // stride
        children = np.concatenate([f0v[nodes], f1v[nodes]])
        child_owner = np.concatenate([owners, owners])
        inside = children >= first_and
        children, child_owner = children[inside], child_owner[inside]
        keep = ~crosses_leaf(children, child_owner)
        child_keys = child_owner[keep] * stride + children[keep]
        rounds += 1
        if seen is not None or rounds >= 8 or len(child_keys) > 2 * total:
            if seen is None:
                seen = sorted_unique(np.concatenate(collected))
            child_keys = sorted_unique(child_keys)
            child_keys = child_keys[~in_sorted(child_keys, seen)]
            seen = sorted_unique(np.concatenate([seen, child_keys]))
        collected.append(child_keys)
        total += len(child_keys)
        frontier = child_keys
    pairs = sorted_unique(np.concatenate(collected))
    return pairs % stride, pairs // stride


# ---------------------------------------------------------------------------
# fa_join — packed-key MAJ x XOR3 join (moved from _full_adder_edges)
# ---------------------------------------------------------------------------

@register("fa_join", "numpy")
def fa_join(maj_var: np.ndarray, maj_key: np.ndarray, xor_var: np.ndarray,
            xor_key: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort-based grouping instead of per-root dict probing."""
    empty = np.zeros(0, dtype=np.int64)
    xorder = np.argsort(xor_key, kind="stable")
    xor_key_sorted = xor_key[xorder]
    xor_var_sorted = xor_var[xorder]
    lo = np.searchsorted(xor_key_sorted, maj_key, side="left")
    hi = np.searchsorted(xor_key_sorted, maj_key, side="right")
    flat = ragged_gather(lo, hi)
    if not len(flat):
        return empty, empty, empty
    maj_row = np.repeat(np.arange(len(maj_key)), hi - lo)
    edge_maj = maj_var[maj_row]
    edge_xor = xor_var_sorted[flat]
    edge_key = maj_key[maj_row]
    keep = edge_maj != edge_xor
    edge_maj, edge_xor, edge_key = edge_maj[keep], edge_xor[keep], edge_key[keep]

    order = np.lexsort((edge_key, edge_xor, edge_maj))
    edge_maj, edge_xor, edge_key = (
        edge_maj[order], edge_xor[order], edge_key[order]
    )
    unique_pair = np.r_[
        True,
        (edge_maj[1:] != edge_maj[:-1]) | (edge_xor[1:] != edge_xor[:-1]),
    ]
    return (edge_maj[unique_pair], edge_xor[unique_pair],
            edge_key[unique_pair])


# ---------------------------------------------------------------------------
# kahn_propagate — longest-path wavefront shared by AIG.levels_array and
# the word-level rank pass
# ---------------------------------------------------------------------------

@register("kahn_propagate", "numpy")
def kahn_propagate(indptr: np.ndarray, consumers: np.ndarray,
                   indegree: np.ndarray, values: np.ndarray) -> None:
    """Frontier-at-a-time relaxation; ``indegree`` is consumed as scratch."""
    frontier = np.flatnonzero(indegree == 0)
    while len(frontier):
        starts, ends = indptr[frontier], indptr[frontier + 1]
        flat = ragged_gather(starts, ends)
        if not len(flat):
            break
        children = consumers[flat]
        parents = np.repeat(frontier, ends - starts)
        np.maximum.at(values, children, values[parents] + 1)
        np.subtract.at(indegree, children, 1)
        unique_children = np.unique(children)
        frontier = unique_children[indegree[unique_children] == 0]
