"""Pluggable compiled-kernel backends for the array hot paths.

``repro.kernels`` dispatches the four post-GNN array kernels — the
per-level cut merge, the cone frontier sweep, the packed-key FA join and
the Kahn longest-path wavefront — to a selected backend: the pure-NumPy
reference (always present, the default) or the optional Numba
``@njit(cache=True)`` backend.  See :mod:`repro.kernels.registry` for
selection semantics (``REPRO_KERNEL``, ``set_backend``) and
:mod:`repro.kernels.numpy_backend` for the pinned kernel signatures.

This package import stays light: backend modules load lazily on first
dispatch, so importing :mod:`repro.aig.graph` (which reads the levels
threshold constant from here) costs nothing extra.
"""

from repro.kernels.registry import (
    BACKEND_ENV,
    KERNEL_NAMES,
    LEVELS_SCALAR_CUTOFF,
    active_backend,
    dispatch_counts,
    get_kernel,
    kernel_stats,
    numba_available,
    register,
    requested_backend,
    reset_dispatch_counts,
    resolve_backend,
    set_backend,
    warmup,
)

__all__ = [
    "BACKEND_ENV",
    "KERNEL_NAMES",
    "LEVELS_SCALAR_CUTOFF",
    "active_backend",
    "dispatch_counts",
    "get_kernel",
    "kernel_stats",
    "numba_available",
    "register",
    "requested_backend",
    "reset_dispatch_counts",
    "resolve_backend",
    "set_backend",
    "warmup",
]
