"""Numba ``@njit(cache=True)`` implementations of the hot-path kernels.

Import-gated: this module raises ``ImportError`` when numba is not
installed, and the registry treats that as "backend unavailable" (numpy
serves).  The compiled kernels are scalar re-derivations of the numpy
contracts, not line-by-line ports — a per-node merge loop needs neither
the chunking nor the int64 leaf compaction the vectorized merge carries —
but their outputs are bit-identical by construction and pinned by
``tests/test_kernels.py``:

* ``merge_level`` sorts candidates by the same ``(size, leaves)`` key
  (padded leaf triples compare exactly like the packed int64 rank keys,
  because the pad id exceeds every real leaf), keeps first-occurrence on
  duplicate leaf sets, and applies the same singleton/pair dominance
  filter;
* ``cone_sweep`` emits each owner's reachable set sorted ascending —
  exactly the ``(owner, node)`` order of the sorted-unique key array the
  numpy sweep returns;
* ``fa_join`` reproduces the lexsort + first-per-pair collapse (the
  output is a pure function of the input *set*, so intermediate visit
  order is free);
* ``kahn_propagate`` computes longest-path values, which are unique
  regardless of relaxation order.

Each wrapper coerces inputs to one specialization (C-contiguous int64
index arrays), so a process compiles each kernel once; ``cache=True``
persists the machine code across processes.  LUT constants are passed as
arguments rather than referenced as globals to keep the cache portable.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels import numpy_backend
from repro.kernels.registry import register

_EXPAND_LUT = np.ascontiguousarray(numpy_backend.EXPAND_LUT)
_WIDTH_MASK = np.ascontiguousarray(numpy_backend._WIDTH_MASK)
_TRIVIAL_TRUTH = np.uint8(numpy_backend.TRIVIAL_TRUTH)

_INT32_MAX = np.int32(np.iinfo(np.int32).max)


# ---------------------------------------------------------------------------
# merge_level
# ---------------------------------------------------------------------------

@njit(cache=True)
def _cand_greater(cand_size, cand_leaves, a, b):
    """Candidate ``a`` ranks after ``b`` under the (size, leaves) key."""
    if cand_size[a] != cand_size[b]:
        return cand_size[a] > cand_size[b]
    for t in range(3):
        if cand_leaves[a, t] != cand_leaves[b, t]:
            return cand_leaves[a, t] > cand_leaves[b, t]
    return False


@njit(cache=True)
def _merge_level_jit(batch, fanin0, fanin1, leaves, truths, sizes, counts,
                     k, max_cuts, include_trivial, pad, trivial_truth,
                     expand_lut, width_mask):
    slots = leaves.shape[1]
    grid = slots * slots
    cand_leaves = np.empty((grid, 3), dtype=np.int32)
    cand_truth = np.empty(grid, dtype=np.uint8)
    cand_size = np.empty(grid, dtype=np.int64)
    keep = np.empty(grid, dtype=np.bool_)
    order = np.empty(grid, dtype=np.int64)
    union = np.empty(3, dtype=np.int32)
    for b in range(batch.shape[0]):
        node = batch[b]
        lit0 = fanin0[node]
        lit1 = fanin1[node]
        v0 = lit0 >> 1
        v1 = lit1 >> 1
        flip0 = np.uint8(255) if (lit0 & 1) else np.uint8(0)
        flip1 = np.uint8(255) if (lit1 & 1) else np.uint8(0)
        c0 = counts[v0]
        c1 = counts[v1]
        n_cand = 0
        for s0 in range(c0):
            sz0 = sizes[v0, s0]
            for s1 in range(c1):
                sz1 = sizes[v1, s1]
                # Sorted-list union of the two leaf sets, tracking which
                # fan-in contributed each union position (the EXPAND_LUT
                # masks) and bailing out past k distinct leaves.
                i = 0
                j = 0
                out = 0
                mask0 = 0
                mask1 = 0
                feasible = True
                while i < sz0 or j < sz1:
                    a = leaves[v0, s0, i] if i < sz0 else _INT32_MAX
                    c = leaves[v1, s1, j] if j < sz1 else _INT32_MAX
                    if out >= k:
                        feasible = False
                        break
                    if a < c:
                        union[out] = a
                        mask0 |= 1 << out
                        i += 1
                    elif c < a:
                        union[out] = c
                        mask1 |= 1 << out
                        j += 1
                    else:
                        union[out] = a
                        mask0 |= 1 << out
                        mask1 |= 1 << out
                        i += 1
                        j += 1
                    out += 1
                if not feasible:
                    continue
                t0 = expand_lut[mask0, truths[v0, s0]] ^ flip0
                t1 = expand_lut[mask1, truths[v1, s1]] ^ flip1
                cand_truth[n_cand] = (t0 & t1) & width_mask[out]
                cand_size[n_cand] = out
                for t in range(out):
                    cand_leaves[n_cand, t] = union[t]
                for t in range(out, 3):
                    cand_leaves[n_cand, t] = pad
                n_cand += 1

        # Stable insertion sort by (size, leaves); candidate counts are
        # tiny (<= slots**2, typically ~121) so O(n^2) beats any fancier
        # scheme here.
        for x in range(n_cand):
            order[x] = x
        for x in range(1, n_cand):
            current = order[x]
            y = x - 1
            while y >= 0 and _cand_greater(cand_size, cand_leaves,
                                           order[y], current):
                order[y + 1] = order[y]
                y -= 1
            order[y + 1] = current

        # Dedup: equal leaf sets are adjacent after the sort (equal leaves
        # imply equal size); keep the first occurrence.
        for x in range(n_cand):
            ci = order[x]
            duplicate = False
            if x > 0:
                pi = order[x - 1]
                duplicate = (cand_leaves[ci, 0] == cand_leaves[pi, 0]
                             and cand_leaves[ci, 1] == cand_leaves[pi, 1]
                             and cand_leaves[ci, 2] == cand_leaves[pi, 2])
            keep[ci] = not duplicate

        # Dominance: singletons dominate any superset, pairs dominate
        # covering triples.  Clearing a victim before later candidates
        # check it is safe: dominance is transitive and singletons are
        # never dominated, so whatever killed a pair kills its triples.
        for x in range(n_cand):
            ci = order[x]
            if not keep[ci]:
                continue
            size_c = cand_size[ci]
            if size_c < 2:
                continue
            for y in range(n_cand):
                cj = order[y]
                if cand_size[cj] >= size_c:
                    break  # sorted by size: no smaller cuts remain
                if not keep[cj]:
                    continue
                if cand_size[cj] == 1:
                    leaf = cand_leaves[cj, 0]
                    if (cand_leaves[ci, 0] == leaf
                            or cand_leaves[ci, 1] == leaf
                            or cand_leaves[ci, 2] == leaf):
                        keep[ci] = False
                        break
                elif cand_size[cj] == 2 and size_c == 3:
                    a0 = cand_leaves[cj, 0]
                    a1 = cand_leaves[cj, 1]
                    has0 = (cand_leaves[ci, 0] == a0
                            or cand_leaves[ci, 1] == a0
                            or cand_leaves[ci, 2] == a0)
                    has1 = (cand_leaves[ci, 0] == a1
                            or cand_leaves[ci, 1] == a1
                            or cand_leaves[ci, 2] == a1)
                    if has0 and has1:
                        keep[ci] = False
                        break

        kept = 0
        for x in range(n_cand):
            ci = order[x]
            if not keep[ci]:
                continue
            if kept >= max_cuts:
                break
            for t in range(3):
                leaves[node, kept, t] = cand_leaves[ci, t]
            truths[node, kept] = cand_truth[ci]
            sizes[node, kept] = np.int8(cand_size[ci])
            kept += 1
        if include_trivial:
            leaves[node, kept, 0] = np.int32(node)
            truths[node, kept] = trivial_truth
            sizes[node, kept] = 1
            counts[node] = kept + 1
        else:
            counts[node] = kept


def merge_level(batch, fanin0, fanin1, leaves, truths, sizes, counts, *,
                k, max_cuts, include_trivial, pad, pack_limit):
    # pack_limit is a numpy-backend footprint knob (int64 key compaction);
    # the scalar merge compares leaf triples directly and never packs.
    del pack_limit
    _merge_level_jit(
        np.ascontiguousarray(batch, dtype=np.int64),
        np.ascontiguousarray(fanin0, dtype=np.int64),
        np.ascontiguousarray(fanin1, dtype=np.int64),
        leaves, truths, sizes, counts,
        np.int64(k), np.int64(max_cuts), bool(include_trivial),
        np.int32(pad), _TRIVIAL_TRUTH, _EXPAND_LUT, _WIDTH_MASK,
    )


register("merge_level", "numba")(merge_level)


# ---------------------------------------------------------------------------
# cone_sweep
# ---------------------------------------------------------------------------

@njit(cache=True)
def _cone_sweep_jit(first_and, f0v, f1v, root_vars, root_owner, leaf_matrix):
    num_owners = leaf_matrix.shape[0]
    width = leaf_matrix.shape[1]
    num_vars = f0v.shape[0]
    num_roots = root_vars.shape[0]

    # Counting-sort the roots into per-owner CSR slices.
    offsets = np.zeros(num_owners + 1, dtype=np.int64)
    for r in range(num_roots):
        offsets[root_owner[r] + 1] += 1
    for o in range(num_owners):
        offsets[o + 1] += offsets[o]
    cursor = offsets.copy()
    roots = np.empty(num_roots, dtype=np.int64)
    for r in range(num_roots):
        o = root_owner[r]
        roots[cursor[o]] = root_vars[r]
        cursor[o] += 1

    # One DFS per owner over a shared stamp array; owners ascend, each
    # owner's slice is sorted afterwards, so the output order equals the
    # numpy sweep's sorted-unique (owner, node) keys.
    stamp = np.full(num_vars, -1, dtype=np.int64)
    capacity = 64
    out_nodes = np.empty(capacity, dtype=np.int64)
    out_owners = np.empty(capacity, dtype=np.int64)
    total = 0
    stack_cap = 64
    stack = np.empty(stack_cap, dtype=np.int64)
    for owner in range(num_owners):
        start = total
        top = 0
        for r in range(offsets[owner], offsets[owner + 1]):
            root = roots[r]
            if root < first_and or stamp[root] == owner:
                continue
            crossing = False
            for c in range(width):
                if leaf_matrix[owner, c] == root:
                    crossing = True
                    break
            if crossing:
                continue
            stamp[root] = owner
            if top >= stack_cap:
                stack_cap *= 2
                grown = np.empty(stack_cap, dtype=np.int64)
                grown[:top] = stack[:top]
                stack = grown
            stack[top] = root
            top += 1
        while top > 0:
            top -= 1
            node = stack[top]
            if total >= capacity:
                capacity *= 2
                grown_nodes = np.empty(capacity, dtype=np.int64)
                grown_nodes[:total] = out_nodes[:total]
                out_nodes = grown_nodes
                grown_owners = np.empty(capacity, dtype=np.int64)
                grown_owners[:total] = out_owners[:total]
                out_owners = grown_owners
            out_nodes[total] = node
            out_owners[total] = owner
            total += 1
            for side in range(2):
                child = f0v[node] if side == 0 else f1v[node]
                if child < first_and or stamp[child] == owner:
                    continue
                crossing = False
                for c in range(width):
                    if leaf_matrix[owner, c] == child:
                        crossing = True
                        break
                if crossing:
                    continue
                stamp[child] = owner
                if top >= stack_cap:
                    stack_cap *= 2
                    grown = np.empty(stack_cap, dtype=np.int64)
                    grown[:top] = stack[:top]
                    stack = grown
                stack[top] = child
                top += 1
        segment = out_nodes[start:total].copy()
        segment.sort()
        out_nodes[start:total] = segment
    return out_nodes[:total].copy(), out_owners[:total].copy()


def cone_sweep(first_and, f0v, f1v, root_vars, root_owner, leaf_matrix):
    return _cone_sweep_jit(
        np.int64(first_and),
        np.ascontiguousarray(f0v, dtype=np.int64),
        np.ascontiguousarray(f1v, dtype=np.int64),
        np.ascontiguousarray(root_vars, dtype=np.int64),
        np.ascontiguousarray(root_owner, dtype=np.int64),
        np.ascontiguousarray(leaf_matrix, dtype=np.int64),
    )


register("cone_sweep", "numba")(cone_sweep)


# ---------------------------------------------------------------------------
# fa_join
# ---------------------------------------------------------------------------

@njit(cache=True)
def _fa_join_jit(maj_var, maj_key, xor_var, xor_key):
    xorder = np.argsort(xor_key, kind="mergesort")
    xkey = xor_key[xorder]
    xvar = xor_var[xorder]
    num_maj = maj_key.shape[0]
    lo = np.searchsorted(xkey, maj_key, side="left")
    hi = np.searchsorted(xkey, maj_key, side="right")
    count = 0
    for i in range(num_maj):
        for t in range(lo[i], hi[i]):
            if xvar[t] != maj_var[i]:
                count += 1
    edge_maj = np.empty(count, dtype=np.int64)
    edge_xor = np.empty(count, dtype=np.int64)
    edge_key = np.empty(count, dtype=np.int64)
    e = 0
    for i in range(num_maj):
        for t in range(lo[i], hi[i]):
            if xvar[t] != maj_var[i]:
                edge_maj[e] = maj_var[i]
                edge_xor[e] = xvar[t]
                edge_key[e] = maj_key[i]
                e += 1
    # lexsort by (maj, xor, key): LSD chain of stable sorts.
    idx = np.argsort(edge_key, kind="mergesort")
    idx = idx[np.argsort(edge_xor[idx], kind="mergesort")]
    idx = idx[np.argsort(edge_maj[idx], kind="mergesort")]
    out_maj = np.empty(count, dtype=np.int64)
    out_xor = np.empty(count, dtype=np.int64)
    out_key = np.empty(count, dtype=np.int64)
    kept = 0
    for t in range(count):
        row = idx[t]
        if (kept > 0 and out_maj[kept - 1] == edge_maj[row]
                and out_xor[kept - 1] == edge_xor[row]):
            continue  # parallel edge: first in key order already kept
        out_maj[kept] = edge_maj[row]
        out_xor[kept] = edge_xor[row]
        out_key[kept] = edge_key[row]
        kept += 1
    return out_maj[:kept].copy(), out_xor[:kept].copy(), out_key[:kept].copy()


def fa_join(maj_var, maj_key, xor_var, xor_key):
    return _fa_join_jit(
        np.ascontiguousarray(maj_var, dtype=np.int64),
        np.ascontiguousarray(maj_key, dtype=np.int64),
        np.ascontiguousarray(xor_var, dtype=np.int64),
        np.ascontiguousarray(xor_key, dtype=np.int64),
    )


register("fa_join", "numba")(fa_join)


# ---------------------------------------------------------------------------
# kahn_propagate
# ---------------------------------------------------------------------------

@njit(cache=True)
def _kahn_jit(indptr, consumers, indegree, values):
    n = values.shape[0]
    stack = np.empty(n, dtype=np.int64)
    top = 0
    for node in range(n):
        if indegree[node] == 0:
            stack[top] = node
            top += 1
    while top > 0:
        top -= 1
        node = stack[top]
        relaxed = values[node] + 1
        for e in range(indptr[node], indptr[node + 1]):
            child = consumers[e]
            if values[child] < relaxed:
                values[child] = relaxed
            indegree[child] -= 1
            if indegree[child] == 0:
                stack[top] = child
                top += 1


def kahn_propagate(indptr, consumers, indegree, values):
    _kahn_jit(
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(consumers, dtype=np.int64),
        indegree, values,
    )


register("kahn_propagate", "numba")(kahn_propagate)
