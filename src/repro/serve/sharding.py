"""Memory-bounded shard planning for block-diagonal mega-batches.

A single ``reason_many`` call may carry more circuits than one block-diagonal
forward pass can hold in memory.  :func:`plan_shards` splits the encoded
graphs into *shards* — groups that are merged and inferred together — such
that every shard's estimated peak inference memory (per
:func:`repro.learn.infer.estimate_inference_memory`, the analytic model
behind the paper's Fig. 8 curves) stays under an explicit byte budget.

The planner is a greedy first-fit-decreasing bin-pack: graphs are considered
from largest to smallest estimated footprint and placed into the first open
shard whose *combined* estimate stays within ``max_shard_bytes`` (the
estimate is monotone in nodes and edges, so re-evaluating the merged total
is exact, not an approximation).  A graph that alone exceeds the budget
becomes an *oversize singleton* shard.  Without a window budget it still
runs un-batched and unbounded (flagged so callers can log the violation);
with ``max_window_bytes`` set the singleton becomes a *streaming job* — the
planner attaches a :class:`repro.learn.data.WindowPlan` and the executor
runs the level-windowed forward pass with peak activation memory bounded by
the window budget instead of the circuit size.

Shards carry the member *indices* into the planner's input list, so a
streaming consumer can reassemble per-graph results in input order no matter
how the packer grouped them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.learn.data import GraphData, WindowPlan
from repro.learn.infer import estimate_inference_memory

__all__ = ["Shard", "ShardPlan", "plan_shards"]


@dataclass
class Shard:
    """One group of graphs inferred through a single block-diagonal pass."""

    indices: list[int] = field(default_factory=list)  # into the planner input
    num_nodes: int = 0
    num_edges: int = 0
    estimated_bytes: int = 0
    oversize: bool = False  # a lone graph that alone exceeds the budget
    window_plan: WindowPlan | None = None  # set: run the streamed pass

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def streamed(self) -> bool:
        return self.window_plan is not None


@dataclass
class ShardPlan:
    """The full packing of one batch, in streaming (execution) order."""

    shards: list[Shard] = field(default_factory=list)
    max_shard_bytes: int | None = None  # None: unbounded (single shard)
    max_window_bytes: int | None = None  # None: oversize shards run full-graph

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    @property
    def peak_shard_bytes(self) -> int:
        """Peak estimated bytes across shards, window budgets honored.

        A streaming shard's footprint is its plan's peak *window*, not the
        circuit's full-graph estimate — that is the whole point of
        streaming it.
        """
        return max(
            (
                s.window_plan.peak_window_bytes if s.window_plan is not None
                else s.estimated_bytes
                for s in self.shards
            ),
            default=0,
        )

    @property
    def num_oversize(self) -> int:
        return sum(1 for s in self.shards if s.oversize)

    @property
    def num_streamed(self) -> int:
        return sum(1 for s in self.shards if s.streamed)

    @property
    def num_windows(self) -> int:
        return sum(
            s.window_plan.num_windows for s in self.shards
            if s.window_plan is not None
        )

    def summary(self) -> str:
        budget = (
            "unbounded" if self.max_shard_bytes is None
            else f"{self.max_shard_bytes / 1024 ** 2:.1f}MiB"
        )
        text = (
            f"{len(self.shards)} shard(s), peak "
            f"{self.peak_shard_bytes / 1024 ** 2:.1f}MiB (budget {budget}, "
            f"{self.num_oversize} oversize)"
        )
        if self.num_streamed:
            text += (
                f", {self.num_streamed} streamed over "
                f"{self.num_windows} window(s)"
            )
        return text


def plan_shards(model, graphs: list[GraphData],
                max_shard_bytes: int | None = None,
                max_window_bytes: int | None = None) -> ShardPlan:
    """Pack encoded graphs into memory-bounded shards.

    ``max_shard_bytes`` of ``None`` (or a non-positive value) disables
    sharding: everything lands in one shard, which reproduces the PR 1
    monolithic-pass behavior exactly.  Otherwise a greedy
    first-fit-decreasing pack keeps each shard's
    :func:`~repro.learn.infer.estimate_inference_memory` at or under the
    budget; a graph whose standalone estimate already exceeds it becomes its
    own ``oversize`` shard.  With ``max_window_bytes`` set, each oversize
    shard additionally gets a :meth:`~repro.learn.data.GraphData.window_plan`
    so the executor can stream it level-window by level-window instead of
    running one unbounded full-graph pass.  ``model`` may be a ``GamoraNet``
    (float64 training pricing) or a compiled
    :class:`~repro.learn.fast.FastInference` (float32 serving pricing).
    Shards are returned ordered by their smallest member index, and each
    shard's ``indices`` are ascending, so execution order is deterministic
    for a given input.
    """
    if max_window_bytes is not None and max_window_bytes <= 0:
        max_window_bytes = None
    if not graphs:
        return ShardPlan([], max_shard_bytes, max_window_bytes)
    if max_shard_bytes is None or max_shard_bytes <= 0:
        shard = Shard(
            indices=list(range(len(graphs))),
            num_nodes=sum(g.num_nodes for g in graphs),
            num_edges=sum(g.num_edges for g in graphs),
        )
        shard.estimated_bytes = estimate_inference_memory(
            model, shard.num_nodes, shard.num_edges
        )
        return ShardPlan([shard], None, max_window_bytes)

    standalone = [
        estimate_inference_memory(model, g.num_nodes, g.num_edges)
        for g in graphs
    ]
    # Largest first; ties broken by input position for determinism.
    order = sorted(range(len(graphs)), key=lambda i: (-standalone[i], i))
    shards: list[Shard] = []
    for index in order:
        graph = graphs[index]
        if standalone[index] > max_shard_bytes:
            shard = Shard(
                indices=[index],
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                estimated_bytes=standalone[index],
                oversize=True,
            )
            if max_window_bytes is not None:
                shard.window_plan = graph.window_plan(max_window_bytes, model)
            shards.append(shard)
            continue
        for shard in shards:
            if shard.oversize:
                continue
            combined = estimate_inference_memory(
                model,
                shard.num_nodes + graph.num_nodes,
                shard.num_edges + graph.num_edges,
            )
            if combined <= max_shard_bytes:
                shard.indices.append(index)
                shard.num_nodes += graph.num_nodes
                shard.num_edges += graph.num_edges
                shard.estimated_bytes = combined
                break
        else:
            shards.append(Shard(
                indices=[index],
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                estimated_bytes=standalone[index],
            ))
    for shard in shards:
        shard.indices.sort()
    shards.sort(key=lambda s: s.indices[0])
    return ShardPlan(shards, max_shard_bytes, max_window_bytes)