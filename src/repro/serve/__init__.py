"""Serving layer: sharded, parallel, cached reasoning over trained Gamoras.

``ReasoningService`` merges many circuits into block-diagonal shards that
each stay under an explicit inference-memory budget (``max_shard_bytes``,
planned by :func:`repro.serve.sharding.plan_shards` from the analytic
memory model), deduplicates structurally identical requests, caches
encodings and results in structural-hash keyed LRUs, and fans per-circuit
post-processing out to worker processes (``postprocess_workers``, via
:class:`repro.serve.workers.PostprocessPool`) overlapped with the next
shard's forward pass.  See :mod:`repro.serve.service` for the pipeline and
caching semantics.
"""

from repro.serve.cache import StructuralHashCache, exact_fingerprint
from repro.serve.service import BatchReasoningOutcome, BatchStats, ReasoningService
from repro.serve.sharding import Shard, ShardPlan, plan_shards
from repro.serve.workers import PostprocessPool, fork_available, resolve_workers

__all__ = [
    "StructuralHashCache",
    "exact_fingerprint",
    "BatchReasoningOutcome",
    "BatchStats",
    "ReasoningService",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "PostprocessPool",
    "fork_available",
    "resolve_workers",
]
