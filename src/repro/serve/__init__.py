"""Serving layer: batched, cached reasoning over trained Gamora models.

``ReasoningService`` merges many circuits into one block-diagonal graph for
a single forward pass, deduplicates structurally identical requests, and
caches encodings and results in structural-hash keyed LRUs.  See
:mod:`repro.serve.service` for the pipeline and caching semantics.
"""

from repro.serve.cache import StructuralHashCache, exact_fingerprint
from repro.serve.service import BatchReasoningOutcome, BatchStats, ReasoningService

__all__ = [
    "StructuralHashCache",
    "exact_fingerprint",
    "BatchReasoningOutcome",
    "BatchStats",
    "ReasoningService",
]
