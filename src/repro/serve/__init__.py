"""Serving layer: sharded, parallel, cached reasoning over trained Gamoras.

``ReasoningService`` merges many circuits into block-diagonal shards that
each stay under an explicit inference-memory budget (``max_shard_bytes``,
planned by :func:`repro.serve.sharding.plan_shards` from the analytic
memory model), deduplicates structurally identical requests, caches
encodings and results in structural-hash keyed LRUs, and fans per-circuit
post-processing out to worker processes (``postprocess_workers``, via
:class:`repro.serve.workers.PostprocessPool`) overlapped with the next
shard's forward pass.  Circuits too large for *any* shard are admitted
anyway when ``max_window_bytes`` is set: their shards carry a
:class:`repro.learn.data.WindowPlan` and the forward pass streams level
window by level window — bit-identical labels, peak activation memory
bounded by the window budget.  See :mod:`repro.serve.service` for the
pipeline and caching semantics.

On top of the batch service sits the always-on daemon
(:mod:`repro.serve.daemon`): ``GamoraDaemon`` keeps the caches warm
across requests (and across restarts, via the persistent spill),
``MicroBatchScheduler`` (:mod:`repro.serve.scheduler`) coalesces
concurrent requests into shared ``reason_many`` micro-batches, and
``DaemonServer``/``SocketDaemonClient`` speak line-delimited JSON over a
Unix domain socket (``python -m repro serve``).

Resilience (:mod:`repro.serve.resilience`) makes the stack's failure
behavior first-class: requests carry deadlines that the scheduler honors
at dequeue, clients retry retriable errors under a jittered
``RetryPolicy``, a deterministic ``FaultPlan`` injects crashes / slow
stages / socket drops / cache corruption / OOMs at named fault points for
chaos testing, and degradation paths (streamed OOM fallback, cache
quarantine, scheduler watchdog) keep the daemon answering when parts of
it misbehave.
"""

from repro.serve.cache import StructuralHashCache, exact_fingerprint
from repro.serve.daemon import (
    DaemonClient,
    DaemonServer,
    GamoraDaemon,
    SocketDaemonClient,
)
from repro.serve.resilience import (
    DeadlineExceededError,
    FaultPlan,
    InjectedFaultError,
    RetryPolicy,
    SchedulerWedgedError,
    Watchdog,
)
from repro.serve.scheduler import (
    MicroBatchScheduler,
    QueueFullError,
    RequestStats,
    RequestTicket,
    SchedulerClosedError,
)
from repro.serve.service import BatchReasoningOutcome, BatchStats, ReasoningService
from repro.serve.sharding import Shard, ShardPlan, plan_shards
from repro.serve.workers import PostprocessPool, fork_available, resolve_workers

__all__ = [
    "StructuralHashCache",
    "exact_fingerprint",
    "BatchReasoningOutcome",
    "BatchStats",
    "ReasoningService",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "PostprocessPool",
    "fork_available",
    "resolve_workers",
    "MicroBatchScheduler",
    "QueueFullError",
    "RequestStats",
    "RequestTicket",
    "SchedulerClosedError",
    "GamoraDaemon",
    "DaemonClient",
    "DaemonServer",
    "SocketDaemonClient",
    "DeadlineExceededError",
    "FaultPlan",
    "InjectedFaultError",
    "RetryPolicy",
    "SchedulerWedgedError",
    "Watchdog",
]
