"""Always-on serving daemon: warm caches + micro-batched reasoning.

:class:`GamoraDaemon` wraps one trained Gamora in a long-lived serving
process: a :class:`~repro.serve.service.ReasoningService` whose
structural-hash LRUs stay warm across requests, fed by a
:class:`~repro.serve.scheduler.MicroBatchScheduler` that coalesces
concurrent arrivals into single ``reason_many`` calls.  On :meth:`start`
the daemon preloads both persistent caches from ``cache_dir`` (results at
the root, encoded graphs under ``graphs/`` — the ``batch-reason`` CLI
layout, so the two flows share spill directories); on :meth:`close` it
drains the queue and spills both caches back, so a restarted daemon picks
up every result the previous life computed.

Three client surfaces, strictest parity between them:

* :class:`DaemonClient` — in-process, for tests/examples/embedding.  It
  speaks the *same* message dicts as the wire protocol (circuits travel
  as AIGER text through :func:`~repro.aig.aiger.dumps_aag` /
  :func:`~repro.aig.aiger.loads_aag`), so anything it observes holds for
  socket clients too.
* :class:`DaemonServer` — a Unix-domain-socket front end speaking
  line-delimited JSON: one request object per line in, one response
  object per line out.  Connections are handled on their own threads, so
  concurrent clients coalesce into shared micro-batches.
* :class:`SocketDaemonClient` — the matching Python client.

Wire protocol (one JSON object per ``\\n``-terminated line)::

    {"op": "reason", "id": "req-1", "netlist": "<AIGER ascii>",
     "deadline_ms": 5000,
     "options": {"root_filter": false, "correct_lsb": true,
                 "lsb_outputs": 4, "engine": "fast"}}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error":
{"type": ..., "retriable": ..., "message": ...}}``; a full queue maps to
``type="queue_full", retriable=true`` so clients can back off and retry.
``deadline_ms`` (optional, or the daemon's ``--default-deadline-ms``) is
the caller's total patience: a request still queued past it is dropped at
dequeue — its forward pass never runs — and answered with the retriable
``deadline_exceeded`` error.  :class:`SocketDaemonClient` ships with a
:class:`~repro.serve.resilience.RetryPolicy` that transparently retries
retriable errors and broken sockets (reconnecting first), so transient
backpressure and daemon restarts look like latency, not failures.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import warnings
from pathlib import Path

from repro import kernels
from repro.aig.aiger import dumps_aag, loads_aag
from repro.core.api import Gamora, ReasoningOutcome, _as_aig
from repro.serve import resilience
from repro.serve.resilience import (
    DeadlineExceededError,
    FaultPlan,
    RetryPolicy,
    Watchdog,
)
from repro.serve.scheduler import (
    MicroBatchScheduler,
    QueueFullError,
    RequestStats,
    RequestTicket,
    SchedulerClosedError,
)
from repro.serve.service import ReasoningService

__all__ = ["DaemonClient", "DaemonServer", "GamoraDaemon",
           "SocketDaemonClient"]

# The subdirectory of cache_dir holding the encoded-graph spill — the same
# layout ``batch-reason --cache-dir`` uses, so a daemon and the one-shot
# CLI can share a cache directory.
GRAPHS_SUBDIR = "graphs"


class GamoraDaemon:
    """One trained Gamora behind a micro-batching scheduler, serving forever.

    ``engine`` is the default post-processing engine for requests that do
    not pick one themselves.  ``with_report=True`` (default) attaches the
    word-level report to every outcome — computed once per micro-batch by
    the concatenated ``analyze_adder_trees`` pass and stored in the result
    cache, so repeat structures get theirs for free.  Use as a context
    manager, or pair :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(self, gamora: Gamora, *, batch_window_ms: float = 5.0,
                 max_batch: int = 32, max_queue_depth: int = 128,
                 cache_dir: str | Path | None = None,
                 run_dir: str | Path | None = None,
                 graph_cache_size: int = 256, result_cache_size: int = 512,
                 max_shard_bytes: int | None = None,
                 max_window_bytes: int | None = None,
                 postprocess_workers: int | None = None,
                 engine: str = "fast", with_report: bool = True,
                 default_deadline_ms: float | None = None,
                 watchdog_timeout_seconds: float | None = 300.0,
                 fault_plan: FaultPlan | None = None) -> None:
        self.service = ReasoningService(
            gamora, graph_cache_size=graph_cache_size,
            result_cache_size=result_cache_size,
            max_shard_bytes=max_shard_bytes,
            max_window_bytes=max_window_bytes,
            postprocess_workers=postprocess_workers,
        )
        self.scheduler = MicroBatchScheduler(
            self.service, batch_window_ms=batch_window_ms,
            max_batch=max_batch, max_queue_depth=max_queue_depth,
            run_dir=run_dir, with_report=with_report,
        )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.default_engine = engine
        self.default_deadline_ms = (float(default_deadline_ms)
                                    if default_deadline_ms is not None
                                    else None)
        self.fault_plan = fault_plan
        self.watchdog: Watchdog | None = (
            Watchdog(self.scheduler, watchdog_timeout_seconds)
            if watchdog_timeout_seconds else None
        )
        self.loaded_results = 0
        self.loaded_graphs = 0
        self.saved_results = 0
        self.saved_graphs = 0
        self.spill_error: str | None = None
        self.quarantined: list[str] = []  # cache dirs renamed aside on start
        self.dropped_responses = 0  # computed answers the client never read
        self.kernel_warmup: dict | None = None
        self._started_at: float | None = None
        self._closed = False
        self._drop_lock = threading.Lock()

    def note_dropped_response(self) -> None:
        """Count a computed response the client never read (server-side)."""
        with self._drop_lock:
            self.dropped_responses += 1

    # ------------------------------------------------------------------
    def start(self) -> "GamoraDaemon":
        """Warm the kernel backend and the caches, then start scheduling.

        The kernel warmup runs the selected backend over a tiny synthetic
        AIG *before* the scheduler spins up (and hence before any socket
        accepts): under numba that is where JIT compilation happens, so the
        first real request never pays it.

        A cache directory that turns out corrupt or unreadable is
        *quarantined* — renamed aside, recorded in ``quarantined``, a
        warning emitted — and the daemon serves cold from a fresh
        directory.  Losing warmth is a degradation; refusing to boot (or
        crashing on the close-time spill into a poisoned directory) would
        be an outage.
        """
        if self.fault_plan is not None:
            resilience.install_plan(self.fault_plan)
        self.kernel_warmup = kernels.warmup()
        if self.cache_dir is not None:
            self.loaded_results = self._load_or_quarantine(
                self.cache_dir, self.service.validate_cache_dir,
                self.service.load_result_cache, "result-cache",
                self.service._MODEL_MARKER,
            )
            self.loaded_graphs = self._load_or_quarantine(
                self.cache_dir / GRAPHS_SUBDIR,
                self.service.validate_graph_cache_dir,
                self.service.load_graph_cache, "graph-cache",
                self.service._GRAPH_MARKER,
            )
        self.scheduler.start()
        if self.watchdog is not None:
            self.watchdog.start()
        self._started_at = time.monotonic()
        return self

    def _load_or_quarantine(self, directory: Path, validate, load,
                            what: str, marker_name: str) -> int:
        """Preload one cache dir, renaming it aside if it can't be trusted.

        Quarantined means: our marker file is present but fails validation
        (a corrupted or mismatched stamp — the directory *was* ours), or
        loading raises.  The rename keeps the bytes for post-mortem while
        freeing the path, so the close-time spill recreates a healthy
        directory in its place.  A directory with foreign payloads and
        *no* marker of ours is someone else's data: it is never touched —
        we warn, serve cold, and let the close-time spill record the
        refusal in ``spill_error``.
        """
        if not directory.exists():
            return 0
        try:
            resilience.fire("cache.load")  # chaos: unreadable cache dir
            error = validate(directory)
            if error is None:
                return load(directory)
            if not (directory / marker_name).is_file():
                warnings.warn(
                    f"not loading foreign {what} dir {directory} ({error}); "
                    "serving cold",
                    RuntimeWarning, stacklevel=2,
                )
                return 0
        except Exception as exc:  # noqa: BLE001 - any load failure degrades
            error = f"{type(exc).__name__}: {exc}"
        quarantine = directory.with_name(
            f"{directory.name}.quarantined.{int(time.time())}"
        )
        suffix = 0
        while quarantine.exists():
            suffix += 1
            quarantine = directory.with_name(f"{quarantine.name}.{suffix}")
        try:
            directory.rename(quarantine)
        except OSError as rename_error:
            # Can't even rename it: serve cold and leave it untouched —
            # the spill on close will fail too, recorded in spill_error.
            warnings.warn(
                f"corrupt {what} dir {directory} could not be quarantined "
                f"({rename_error}); serving cold without persistence: "
                f"{error}",
                RuntimeWarning, stacklevel=2,
            )
            self.quarantined.append(str(directory))
            return 0
        warnings.warn(
            f"quarantined corrupt {what} dir: {directory} -> {quarantine} "
            f"({error}); serving cold",
            RuntimeWarning, stacklevel=2,
        )
        self.quarantined.append(str(quarantine))
        return 0

    def close(self) -> None:
        """Drain the queue, stop scheduling, spill the caches. Idempotent.

        A failing spill (disk full, permissions) is recorded in
        ``spill_error`` rather than raised: the drained results were
        already delivered, and shutdown must complete regardless.
        """
        if self._closed:
            return
        self._closed = True
        if self.watchdog is not None:
            self.watchdog.stop()
        self.scheduler.stop(drain=True)
        if self.cache_dir is not None:
            try:
                self.saved_results = self.service.save_result_cache(
                    self.cache_dir
                )
                self.saved_graphs = self.service.save_graph_cache(
                    self.cache_dir / GRAPHS_SUBDIR
                )
                if resilience.fire("cache.spill") == "corrupt":
                    # Chaos: garbage the ownership stamp so the *next*
                    # boot faces a corrupt directory (and must quarantine).
                    marker = self.cache_dir / self.service._MODEL_MARKER
                    marker.write_text("corrupted-by-fault-injection\n")
            except OSError as error:
                self.spill_error = str(error)

    def __enter__(self) -> "GamoraDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit_async(self, circuit, request_id: str | None = None,
                     **options) -> RequestTicket:
        """Enqueue one circuit (see :meth:`MicroBatchScheduler.submit_async`)."""
        options.setdefault("engine", self.default_engine)
        return self.scheduler.submit_async(circuit, request_id, **options)

    def submit(self, circuit, request_id: str | None = None,
               timeout: float | None = None,
               **options) -> tuple[ReasoningOutcome, RequestStats]:
        """Blocking submit: returns ``(outcome, request_stats)``."""
        ticket = self.submit_async(circuit, request_id, **options)
        return ticket.result(timeout), ticket.stats(0)

    def stats(self) -> dict:
        """Daemon-wide counter snapshot (JSON-ready)."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "uptime_seconds": uptime,
            "scheduler": self.scheduler.stats(),
            "caches": self.service.cache_stats(),
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "loaded_results": self.loaded_results,
            "loaded_graphs": self.loaded_graphs,
            "saved_results": self.saved_results,
            "saved_graphs": self.saved_graphs,
            "spill_error": self.spill_error,
            "quarantined": list(self.quarantined),
            "dropped_responses": self.dropped_responses,
            "default_deadline_ms": self.default_deadline_ms,
            "watchdog": (self.watchdog.stats()
                         if self.watchdog is not None else None),
            "faults": resilience.fault_stats(),
            "kernels": kernels.kernel_stats(),
        }

    # ------------------------------------------------------------------
    # Protocol dispatch — shared verbatim by DaemonClient and DaemonServer
    # so the in-process surface can never drift from the wire.
    def handle(self, message: dict) -> dict:
        """Dispatch one protocol message dict to one response dict."""
        if not isinstance(message, dict):
            return _error_response(None, "bad_request",
                                   "message must be a JSON object")
        request_id = message.get("id")
        op = message.get("op", "reason")
        if op == "ping":
            return {"ok": True, "id": request_id, "pong": True,
                    "kernel_backend": kernels.active_backend()}
        if op == "stats":
            return {"ok": True, "id": request_id, "stats": self.stats()}
        if op == "shutdown":
            return {"ok": True, "id": request_id, "stats": self.stats()}
        if op == "reason":
            return self._handle_reason(message, request_id)
        return _error_response(request_id, "bad_request",
                               f"unknown op {op!r}")

    def _handle_reason(self, message: dict, request_id) -> dict:
        netlist = message.get("netlist")
        if not isinstance(netlist, str) or not netlist:
            return _error_response(request_id, "bad_request",
                                   "missing 'netlist' (AIGER ascii text)")
        try:
            aig = loads_aag(netlist, name=str(request_id or "request"))
        except Exception as error:
            # The netlist is client-supplied bytes: *whatever* the parser
            # raised on it — ValueError from the validators, IndexError or
            # anything else from a path the fuzzer found first — is the
            # client's malformed input, never our internal failure.
            return _error_response(request_id, "bad_request",
                                   f"unparsable netlist: {error}")
        options = message.get("options") or {}
        if not isinstance(options, dict):
            return _error_response(request_id, "bad_request",
                                   "'options' must be an object")
        unknown = set(options) - {"root_filter", "correct_lsb",
                                  "lsb_outputs", "engine"}
        if unknown:
            return _error_response(
                request_id, "bad_request",
                f"unknown options: {sorted(unknown)}",
            )
        deadline_ms = message.get("deadline_ms", self.default_deadline_ms)
        if deadline_ms is not None:
            if (isinstance(deadline_ms, bool)
                    or not isinstance(deadline_ms, (int, float))
                    or deadline_ms <= 0):
                return _error_response(
                    request_id, "bad_request",
                    f"'deadline_ms' must be a positive number, "
                    f"got {deadline_ms!r}",
                )
            deadline_ms = float(deadline_ms)
        try:
            outcome, stats = self.submit(
                aig, str(request_id) if request_id is not None else None,
                deadline_ms=deadline_ms, **options,
            )
        except QueueFullError as error:
            return _error_response(request_id, "queue_full", str(error),
                                   retriable=True)
        except DeadlineExceededError as error:
            return _error_response(request_id, "deadline_exceeded",
                                   str(error), retriable=True)
        except SchedulerClosedError as error:
            return _error_response(request_id, "shutting_down", str(error))
        except Exception as error:
            # Typed errors may self-declare retriability (e.g. the
            # watchdog's SchedulerWedgedError); everything else is
            # terminal for this payload.
            return _error_response(
                request_id, "internal",
                f"{type(error).__name__}: {error}",
                retriable=bool(getattr(error, "retriable", False)),
            )
        return {
            "ok": True,
            "id": stats.request_id,
            "result": _outcome_payload(outcome),
            "stats": stats.to_dict(),
        }


def _error_response(request_id, kind: str, message: str,
                    retriable: bool = False) -> dict:
    return {
        "ok": False,
        "id": request_id,
        "error": {"type": kind, "retriable": retriable, "message": message},
    }


def _outcome_payload(outcome: ReasoningOutcome) -> dict:
    """The JSON-safe result body for one resolved request."""
    tree = outcome.tree
    payload = {
        "num_full_adders": int(tree.num_full_adders),
        "num_half_adders": int(tree.num_half_adders),
        "num_mismatches": int(outcome.num_mismatches),
        "report": None,
    }
    report = outcome.report
    if report is not None:
        payload["report"] = {
            "num_full_adders": int(report.num_full_adders),
            "num_half_adders": int(report.num_half_adders),
            "num_links": int(report.num_links),
            "depth": len(report.ranks),
            "pp_leaves": len(report.pp_leaves),
            "pi_leaves": len(report.pi_leaves),
            "output_roots": len(report.output_roots),
            "summary": report.summary(),
        }
    return payload


def _reason_message(circuit, request_id, deadline_ms, options) -> dict:
    """The wire ``reason`` message both clients build identically."""
    netlist = circuit if isinstance(circuit, str) else dumps_aag(
        _as_aig(circuit)
    )
    message = {"op": "reason", "netlist": netlist}
    if request_id is not None:
        message["id"] = request_id
    if deadline_ms is not None:
        message["deadline_ms"] = deadline_ms
    if options:
        message["options"] = options
    return message


def _response_retriable(response) -> bool:
    """Whether an ``{"ok": false}`` envelope invites another attempt."""
    if not isinstance(response, dict) or response.get("ok", False):
        return False
    error = response.get("error")
    return isinstance(error, dict) and bool(error.get("retriable"))


class DaemonClient:
    """In-process protocol client: same messages, no socket.

    Circuits are serialized to AIGER text and parsed back on the daemon
    side, exactly like wire traffic — tests exercising this client cover
    the full protocol path minus the file descriptors.

    ``retry=RetryPolicy(...)`` makes :meth:`reason` re-attempt retriable
    error envelopes (``queue_full``, ``deadline_exceeded``) with
    backoff; the default (``None``) surfaces them to the caller
    unchanged, preserving the raw protocol view.
    """

    def __init__(self, daemon: GamoraDaemon,
                 retry: RetryPolicy | None = None) -> None:
        self.daemon = daemon
        self.retry = retry

    def reason(self, circuit, request_id: str | None = None,
               deadline_ms: float | None = None, **options) -> dict:
        message = _reason_message(circuit, request_id, deadline_ms, options)
        if self.retry is None:
            return self.daemon.handle(message)
        budget = deadline_ms / 1000.0 if deadline_ms is not None else None
        return self.retry.call(
            lambda: self.daemon.handle(message),
            retriable_fn=_response_retriable, budget_seconds=budget,
        )

    def stats(self) -> dict:
        return self.daemon.handle({"op": "stats"})

    def ping(self) -> dict:
        return self.daemon.handle({"op": "ping"})


class DaemonServer:
    """Line-delimited JSON over a Unix domain socket.

    One accept thread plus one thread per connection; requests on a
    single connection are answered in order, while separate connections
    proceed concurrently (and therefore coalesce in the scheduler).  A
    ``shutdown`` op answers, then releases :meth:`serve_forever`; closing
    the server does *not* close the daemon — the caller owns that, so it
    can spill caches exactly once.
    """

    def __init__(self, daemon: GamoraDaemon,
                 socket_path: str | Path) -> None:
        if not hasattr(socket, "AF_UNIX"):
            raise RuntimeError("Unix domain sockets unavailable on this "
                               "platform")
        self.daemon = daemon
        self.socket_path = Path(socket_path)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._shutdown = threading.Event()
        self._closing = False

    def start(self) -> "DaemonServer":
        """Bind, listen, and start accepting in the background."""
        if self._listener is not None:
            return self
        # A previous daemon's stale socket file would make bind() fail;
        # only a socket is ever removed, never a regular file.
        if self.socket_path.exists() and self.socket_path.is_socket():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gamora-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self, timeout: float | None = None) -> None:
        """Block until a ``shutdown`` op arrives (or ``timeout`` elapses)."""
        self.start()
        self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting and remove the socket file. Idempotent."""
        self._closing = True
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        try:
            if self.socket_path.is_socket():
                self.socket_path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "DaemonServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closing:
            try:
                connection, _ = listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection, args=(connection,),
                name="gamora-conn", daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            reader = connection.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                message = None
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as error:
                    response = _error_response(None, "bad_request",
                                               f"invalid JSON: {error}")
                else:
                    response = self.daemon.handle(message)
                try:
                    # Chaos: a "drop" rule models the connection dying
                    # between computation and delivery — close without
                    # sending, exactly what a mid-response reset looks
                    # like from the daemon's side.
                    if resilience.fire("server.send") == "drop":
                        raise OSError("injected mid-response socket drop")
                    connection.sendall(
                        (json.dumps(response) + "\n").encode("utf-8")
                    )
                except OSError:
                    # The client went away after we did the work.  The
                    # result is already in the warm cache, so a retry is
                    # nearly free — count it, don't raise into the
                    # connection thread.
                    self.daemon.note_dropped_response()
                    return
                if isinstance(message, dict) and message.get("op") == "shutdown":
                    self._shutdown.set()
                    return


class SocketDaemonClient:
    """Blocking client for :class:`DaemonServer`'s wire protocol.

    Resilient by default: every request runs under ``retry`` (a default
    :class:`~repro.serve.resilience.RetryPolicy` unless overridden), so
    retriable error envelopes (``queue_full``, ``deadline_exceeded``) and
    broken/reset/closed sockets are retried with exponential backoff and
    full jitter — reconnecting first when the transport failed.  A
    request carrying ``deadline_ms`` also uses it as the retry budget: no
    backoff sleep is taken that could not finish inside the deadline.
    Pass ``retry=None`` explicitly for the raw single-attempt protocol
    view (``retriable_errors`` counts what the policy absorbed either
    way).
    """

    _NO_RETRY = object()  # sentinel: None is a meaningful "no retries"

    def __init__(self, socket_path: str | Path,
                 timeout: float | None = 60.0,
                 retry: RetryPolicy | None = _NO_RETRY) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.retry = (RetryPolicy() if retry is SocketDaemonClient._NO_RETRY
                      else retry)
        self.retriable_errors = 0  # transport failures + retriable envelopes
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8")

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request_once(self, message: dict) -> dict:
        if self._sock is None:
            self._connect()
            self.reconnects += 1
        try:
            self._sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
            line = self._reader.readline()
        except OSError:
            # Broken transport: drop the socket so the next attempt (ours
            # or the caller's) starts from a clean reconnect.
            self._disconnect()
            raise
        if not line:
            self._disconnect()
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def request(self, message: dict) -> dict:
        """Send one message dict, block for its one-line response.

        With a retry policy armed, transport failures (``OSError``,
        reset/closed connections — but not timeouts, which may mean the
        work is still running) and retriable error envelopes are retried;
        the message's ``deadline_ms``, if any, caps the total backoff.
        """
        if self.retry is None:
            return self._request_once(message)
        deadline_ms = message.get("deadline_ms")
        budget = (deadline_ms / 1000.0
                  if isinstance(deadline_ms, (int, float)) else None)

        def retriable(outcome) -> bool:
            if isinstance(outcome, BaseException):
                # A timed-out socket is ambiguous (the daemon may still be
                # computing); resending would double the work.  Everything
                # else transport-shaped gets a reconnect + retry.
                verdict = (isinstance(outcome, OSError)
                           and not isinstance(outcome, TimeoutError))
            else:
                verdict = _response_retriable(outcome)
            self.retriable_errors += verdict
            return verdict

        return self.retry.call(self._request_once_for(message),
                               retriable_fn=retriable,
                               budget_seconds=budget)

    def _request_once_for(self, message: dict):
        return lambda: self._request_once(message)

    def reason(self, circuit, request_id: str | None = None,
               deadline_ms: float | None = None, **options) -> dict:
        return self.request(
            _reason_message(circuit, request_id, deadline_ms, options)
        )

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "SocketDaemonClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
