"""Always-on serving daemon: warm caches + micro-batched reasoning.

:class:`GamoraDaemon` wraps one trained Gamora in a long-lived serving
process: a :class:`~repro.serve.service.ReasoningService` whose
structural-hash LRUs stay warm across requests, fed by a
:class:`~repro.serve.scheduler.MicroBatchScheduler` that coalesces
concurrent arrivals into single ``reason_many`` calls.  On :meth:`start`
the daemon preloads both persistent caches from ``cache_dir`` (results at
the root, encoded graphs under ``graphs/`` — the ``batch-reason`` CLI
layout, so the two flows share spill directories); on :meth:`close` it
drains the queue and spills both caches back, so a restarted daemon picks
up every result the previous life computed.

Three client surfaces, strictest parity between them:

* :class:`DaemonClient` — in-process, for tests/examples/embedding.  It
  speaks the *same* message dicts as the wire protocol (circuits travel
  as AIGER text through :func:`~repro.aig.aiger.dumps_aag` /
  :func:`~repro.aig.aiger.loads_aag`), so anything it observes holds for
  socket clients too.
* :class:`DaemonServer` — a Unix-domain-socket front end speaking
  line-delimited JSON: one request object per line in, one response
  object per line out.  Connections are handled on their own threads, so
  concurrent clients coalesce into shared micro-batches.
* :class:`SocketDaemonClient` — the matching Python client.

Wire protocol (one JSON object per ``\\n``-terminated line)::

    {"op": "reason", "id": "req-1", "netlist": "<AIGER ascii>",
     "options": {"root_filter": false, "correct_lsb": true,
                 "lsb_outputs": 4, "engine": "fast"}}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error":
{"type": ..., "retriable": ..., "message": ...}}``; a full queue maps to
``type="queue_full", retriable=true`` so clients can back off and retry.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

from repro import kernels
from repro.aig.aiger import dumps_aag, loads_aag
from repro.core.api import Gamora, ReasoningOutcome, _as_aig
from repro.serve.scheduler import (
    MicroBatchScheduler,
    QueueFullError,
    RequestStats,
    RequestTicket,
    SchedulerClosedError,
)
from repro.serve.service import ReasoningService

__all__ = ["DaemonClient", "DaemonServer", "GamoraDaemon",
           "SocketDaemonClient"]

# The subdirectory of cache_dir holding the encoded-graph spill — the same
# layout ``batch-reason --cache-dir`` uses, so a daemon and the one-shot
# CLI can share a cache directory.
GRAPHS_SUBDIR = "graphs"


class GamoraDaemon:
    """One trained Gamora behind a micro-batching scheduler, serving forever.

    ``engine`` is the default post-processing engine for requests that do
    not pick one themselves.  ``with_report=True`` (default) attaches the
    word-level report to every outcome — computed once per micro-batch by
    the concatenated ``analyze_adder_trees`` pass and stored in the result
    cache, so repeat structures get theirs for free.  Use as a context
    manager, or pair :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(self, gamora: Gamora, *, batch_window_ms: float = 5.0,
                 max_batch: int = 32, max_queue_depth: int = 128,
                 cache_dir: str | Path | None = None,
                 run_dir: str | Path | None = None,
                 graph_cache_size: int = 256, result_cache_size: int = 512,
                 max_shard_bytes: int | None = None,
                 max_window_bytes: int | None = None,
                 postprocess_workers: int | None = None,
                 engine: str = "fast", with_report: bool = True) -> None:
        self.service = ReasoningService(
            gamora, graph_cache_size=graph_cache_size,
            result_cache_size=result_cache_size,
            max_shard_bytes=max_shard_bytes,
            max_window_bytes=max_window_bytes,
            postprocess_workers=postprocess_workers,
        )
        self.scheduler = MicroBatchScheduler(
            self.service, batch_window_ms=batch_window_ms,
            max_batch=max_batch, max_queue_depth=max_queue_depth,
            run_dir=run_dir, with_report=with_report,
        )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.default_engine = engine
        self.loaded_results = 0
        self.loaded_graphs = 0
        self.saved_results = 0
        self.saved_graphs = 0
        self.spill_error: str | None = None
        self.kernel_warmup: dict | None = None
        self._started_at: float | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> "GamoraDaemon":
        """Warm the kernel backend and the caches, then start scheduling.

        The kernel warmup runs the selected backend over a tiny synthetic
        AIG *before* the scheduler spins up (and hence before any socket
        accepts): under numba that is where JIT compilation happens, so the
        first real request never pays it.
        """
        self.kernel_warmup = kernels.warmup()
        if self.cache_dir is not None:
            self.loaded_results = self.service.load_result_cache(
                self.cache_dir
            )
            self.loaded_graphs = self.service.load_graph_cache(
                self.cache_dir / GRAPHS_SUBDIR
            )
        self.scheduler.start()
        self._started_at = time.monotonic()
        return self

    def close(self) -> None:
        """Drain the queue, stop scheduling, spill the caches. Idempotent.

        A failing spill (disk full, permissions) is recorded in
        ``spill_error`` rather than raised: the drained results were
        already delivered, and shutdown must complete regardless.
        """
        if self._closed:
            return
        self._closed = True
        self.scheduler.stop(drain=True)
        if self.cache_dir is not None:
            try:
                self.saved_results = self.service.save_result_cache(
                    self.cache_dir
                )
                self.saved_graphs = self.service.save_graph_cache(
                    self.cache_dir / GRAPHS_SUBDIR
                )
            except OSError as error:
                self.spill_error = str(error)

    def __enter__(self) -> "GamoraDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit_async(self, circuit, request_id: str | None = None,
                     **options) -> RequestTicket:
        """Enqueue one circuit (see :meth:`MicroBatchScheduler.submit_async`)."""
        options.setdefault("engine", self.default_engine)
        return self.scheduler.submit_async(circuit, request_id, **options)

    def submit(self, circuit, request_id: str | None = None,
               timeout: float | None = None,
               **options) -> tuple[ReasoningOutcome, RequestStats]:
        """Blocking submit: returns ``(outcome, request_stats)``."""
        ticket = self.submit_async(circuit, request_id, **options)
        return ticket.result(timeout), ticket.stats(0)

    def stats(self) -> dict:
        """Daemon-wide counter snapshot (JSON-ready)."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "uptime_seconds": uptime,
            "scheduler": self.scheduler.stats(),
            "caches": self.service.cache_stats(),
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "loaded_results": self.loaded_results,
            "loaded_graphs": self.loaded_graphs,
            "saved_results": self.saved_results,
            "saved_graphs": self.saved_graphs,
            "spill_error": self.spill_error,
            "kernels": kernels.kernel_stats(),
        }

    # ------------------------------------------------------------------
    # Protocol dispatch — shared verbatim by DaemonClient and DaemonServer
    # so the in-process surface can never drift from the wire.
    def handle(self, message: dict) -> dict:
        """Dispatch one protocol message dict to one response dict."""
        if not isinstance(message, dict):
            return _error_response(None, "bad_request",
                                   "message must be a JSON object")
        request_id = message.get("id")
        op = message.get("op", "reason")
        if op == "ping":
            return {"ok": True, "id": request_id, "pong": True,
                    "kernel_backend": kernels.active_backend()}
        if op == "stats":
            return {"ok": True, "id": request_id, "stats": self.stats()}
        if op == "shutdown":
            return {"ok": True, "id": request_id, "stats": self.stats()}
        if op == "reason":
            return self._handle_reason(message, request_id)
        return _error_response(request_id, "bad_request",
                               f"unknown op {op!r}")

    def _handle_reason(self, message: dict, request_id) -> dict:
        netlist = message.get("netlist")
        if not isinstance(netlist, str) or not netlist:
            return _error_response(request_id, "bad_request",
                                   "missing 'netlist' (AIGER ascii text)")
        try:
            aig = loads_aag(netlist, name=str(request_id or "request"))
        except (ValueError, IndexError) as error:
            return _error_response(request_id, "bad_request",
                                   f"unparsable netlist: {error}")
        options = message.get("options") or {}
        if not isinstance(options, dict):
            return _error_response(request_id, "bad_request",
                                   "'options' must be an object")
        unknown = set(options) - {"root_filter", "correct_lsb",
                                  "lsb_outputs", "engine"}
        if unknown:
            return _error_response(
                request_id, "bad_request",
                f"unknown options: {sorted(unknown)}",
            )
        try:
            outcome, stats = self.submit(
                aig, str(request_id) if request_id is not None else None,
                **options,
            )
        except QueueFullError as error:
            return _error_response(request_id, "queue_full", str(error),
                                   retriable=True)
        except SchedulerClosedError as error:
            return _error_response(request_id, "shutting_down", str(error))
        except Exception as error:
            return _error_response(request_id, "internal",
                                   f"{type(error).__name__}: {error}")
        return {
            "ok": True,
            "id": stats.request_id,
            "result": _outcome_payload(outcome),
            "stats": stats.to_dict(),
        }


def _error_response(request_id, kind: str, message: str,
                    retriable: bool = False) -> dict:
    return {
        "ok": False,
        "id": request_id,
        "error": {"type": kind, "retriable": retriable, "message": message},
    }


def _outcome_payload(outcome: ReasoningOutcome) -> dict:
    """The JSON-safe result body for one resolved request."""
    tree = outcome.tree
    payload = {
        "num_full_adders": int(tree.num_full_adders),
        "num_half_adders": int(tree.num_half_adders),
        "num_mismatches": int(outcome.num_mismatches),
        "report": None,
    }
    report = outcome.report
    if report is not None:
        payload["report"] = {
            "num_full_adders": int(report.num_full_adders),
            "num_half_adders": int(report.num_half_adders),
            "num_links": int(report.num_links),
            "depth": len(report.ranks),
            "pp_leaves": len(report.pp_leaves),
            "pi_leaves": len(report.pi_leaves),
            "output_roots": len(report.output_roots),
            "summary": report.summary(),
        }
    return payload


class DaemonClient:
    """In-process protocol client: same messages, no socket.

    Circuits are serialized to AIGER text and parsed back on the daemon
    side, exactly like wire traffic — tests exercising this client cover
    the full protocol path minus the file descriptors.
    """

    def __init__(self, daemon: GamoraDaemon) -> None:
        self.daemon = daemon

    def reason(self, circuit, request_id: str | None = None,
               **options) -> dict:
        netlist = circuit if isinstance(circuit, str) else dumps_aag(
            _as_aig(circuit)
        )
        message = {"op": "reason", "netlist": netlist}
        if request_id is not None:
            message["id"] = request_id
        if options:
            message["options"] = options
        return self.daemon.handle(message)

    def stats(self) -> dict:
        return self.daemon.handle({"op": "stats"})

    def ping(self) -> dict:
        return self.daemon.handle({"op": "ping"})


class DaemonServer:
    """Line-delimited JSON over a Unix domain socket.

    One accept thread plus one thread per connection; requests on a
    single connection are answered in order, while separate connections
    proceed concurrently (and therefore coalesce in the scheduler).  A
    ``shutdown`` op answers, then releases :meth:`serve_forever`; closing
    the server does *not* close the daemon — the caller owns that, so it
    can spill caches exactly once.
    """

    def __init__(self, daemon: GamoraDaemon,
                 socket_path: str | Path) -> None:
        if not hasattr(socket, "AF_UNIX"):
            raise RuntimeError("Unix domain sockets unavailable on this "
                               "platform")
        self.daemon = daemon
        self.socket_path = Path(socket_path)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._shutdown = threading.Event()
        self._closing = False

    def start(self) -> "DaemonServer":
        """Bind, listen, and start accepting in the background."""
        if self._listener is not None:
            return self
        # A previous daemon's stale socket file would make bind() fail;
        # only a socket is ever removed, never a regular file.
        if self.socket_path.exists() and self.socket_path.is_socket():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gamora-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self, timeout: float | None = None) -> None:
        """Block until a ``shutdown`` op arrives (or ``timeout`` elapses)."""
        self.start()
        self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting and remove the socket file. Idempotent."""
        self._closing = True
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        try:
            if self.socket_path.is_socket():
                self.socket_path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "DaemonServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closing:
            try:
                connection, _ = listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection, args=(connection,),
                name="gamora-conn", daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            reader = connection.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                message = None
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as error:
                    response = _error_response(None, "bad_request",
                                               f"invalid JSON: {error}")
                else:
                    response = self.daemon.handle(message)
                try:
                    connection.sendall(
                        (json.dumps(response) + "\n").encode("utf-8")
                    )
                except OSError:
                    return  # client went away mid-response
                if isinstance(message, dict) and message.get("op") == "shutdown":
                    self._shutdown.set()
                    return


class SocketDaemonClient:
    """Blocking client for :class:`DaemonServer`'s wire protocol."""

    def __init__(self, socket_path: str | Path,
                 timeout: float | None = 60.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(str(socket_path))
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def request(self, message: dict) -> dict:
        """Send one message dict, block for its one-line response."""
        self._sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def reason(self, circuit, request_id: str | None = None,
               **options) -> dict:
        netlist = circuit if isinstance(circuit, str) else dumps_aag(
            _as_aig(circuit)
        )
        message = {"op": "reason", "netlist": netlist}
        if request_id is not None:
            message["id"] = request_id
        if options:
            message["options"] = options
        return self.request(message)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketDaemonClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
