"""Multiprocess post-processing pool for the reasoning service.

Post-processing (cut verification + adder-tree extraction) dominates the
CPU cost of serving — roughly 30:1 over inference on the reproduction's
workloads — and is embarrassingly parallel across circuits.
:class:`PostprocessPool` fans :func:`~repro.core.postprocess.extract_from_predictions`
calls out to ``fork``-ed worker processes so one shard's extraction can run
while the next shard's forward pass executes in the parent.

Design constraints, in order:

* **Correctness over speed** — a worker failure (exception, broken pool,
  unpicklable payload) never loses a result: the parent re-runs that
  circuit in-process and counts it in ``fallbacks``.
* **Graceful degradation** — ``workers=0``, platforms without the ``fork``
  start method (the payloads are cheap to fork, expensive to re-import
  under ``spawn``), or a pool that fails to start all collapse to
  synchronous in-process execution with identical results.
* **Adaptive sizing** — ``workers=None`` asks :func:`resolve_workers` to
  pick a worker count from ``os.cpu_count()`` and the workload hints the
  caller provides (payload count, total AND nodes).  Tiny workloads stay
  in-process: forking costs more than extracting a few thousand nodes.
* **Ordered reassembly** — :meth:`submit` returns a handle per circuit;
  callers collect handles in whatever order they need, so results always
  land back in input order regardless of worker scheduling.

The pool is intentionally per-call scoped (a context manager): the service
creates one around a ``reason_many`` pipeline and tears it down afterwards,
so no worker processes outlive a request.

Worker results are :class:`~repro.core.postprocess.PredictedExtraction`
objects carrying the array-core
:class:`~repro.reasoning.adder_tree.AdderTree` (int32 columns, lazy
detection/adders/consumed views): what crosses the process boundary is a
handful of NumPy arrays, not per-adder objects or leaf-set dicts, so the
pickle cost of reassembly stays proportional to the slice count.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.postprocess import PredictedExtraction, extract_from_predictions
from repro.serve import resilience
from repro.utils.timing import Timer

__all__ = ["PostprocessPool", "fork_available", "resolve_workers",
           "AUTO_MIN_TOTAL_ANDS", "MAX_EXECUTOR_RESTARTS"]

# Below this many total AND nodes across the batch's unique circuits,
# auto-sizing stays in-process: the vectorized extractor clears such
# workloads in well under the cost of forking and pickling results back.
AUTO_MIN_TOTAL_ANDS = 20_000

# How many times a pool may replace an executor whose workers hard-crashed
# (OOM-kill, segfault) before giving up on parallel mode for good.  One
# poisoned payload must not permanently disable parallel post-processing in
# a long-lived daemon, but a systematically crashing environment (e.g. a
# cgroup OOM-killing every fork) must not restart forever either.
MAX_EXECUTOR_RESTARTS = 3

# Legacy test hook, kept as a shim over the general fault framework: when
# this environment variable is set (and no ``REPRO_FAULT_PLAN`` is), the
# *worker-side* task fails before extracting — dying outright (``os._exit``)
# for the value "exit", raising for any other value — exercising the
# parent's in-process fallback for both soft and hard worker failures.
# New code should arm a :class:`~repro.serve.resilience.FaultPlan` with a
# ``postprocess.worker`` rule instead; only the worker hits the point, so
# the fallback path (which calls extract_from_predictions directly) is
# unaffected either way.
FAULT_ENV = "REPRO_SERVE_POSTPROCESS_FAULT"


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None, num_payloads: int | None = None,
                    total_ands: int | None = None) -> int:
    """Effective worker count for a batch.

    An explicit ``workers`` wins unchanged (clamped at 0).  ``None`` means
    auto: 0 when fork is unavailable, the machine has a single core, the
    batch has at most one unique circuit, or the workload is tiny
    (``total_ands < AUTO_MIN_TOTAL_ANDS``); otherwise one worker per
    circuit, capped at ``cpu_count() - 1`` so the parent keeps a core for
    the overlapped forward passes.
    """
    if workers is not None:
        return max(0, int(workers))
    if not fork_available():
        return 0
    cpus = os.cpu_count() or 1
    if cpus < 2:
        return 0
    if num_payloads is not None and num_payloads <= 1:
        return 0
    if total_ands is not None and total_ands < AUTO_MIN_TOTAL_ANDS:
        return 0
    limit = cpus - 1
    if num_payloads is not None:
        limit = min(limit, num_payloads)
    return max(0, limit)


def _run_extraction(payload) -> tuple[PredictedExtraction, float]:
    aig, labels, root_filter, correct_lsb, lsb_outputs, engine = payload
    with Timer() as timer:
        extraction = extract_from_predictions(
            aig, labels, root_filter=root_filter,
            correct_lsb=correct_lsb, lsb_outputs=lsb_outputs,
            engine=engine,
        )
    return extraction, timer.elapsed


def _worker_task(payload) -> tuple[PredictedExtraction, float]:
    resilience.fire("postprocess.worker")  # exit kind: OOM-kill / segfault
    if resilience.active_plan() is None:
        # Legacy FAULT_ENV shim: honored only when no plan is armed.
        fault = os.environ.get(FAULT_ENV)
        if fault == "exit":
            os._exit(1)  # simulate an OOM-kill / segfault (test hook)
        if fault:
            raise RuntimeError("injected post-processing fault (test hook)")
    return _run_extraction(payload)


class PostprocessHandle:
    """Deferred result of one submitted extraction.

    Wraps either a live future (parallel mode) or an already-computed
    value (synchronous mode).  :meth:`get` retries the work in the parent
    process if the worker failed, so it always returns.
    """

    def __init__(self, pool: "PostprocessPool", payload,
                 future=None, value=None) -> None:
        self._pool = pool
        self._payload = payload
        self._future = future
        self._value = value

    def get(self) -> tuple[PredictedExtraction, float]:
        if self._value is None:
            try:
                # A worker that raises propagates its exception here; a
                # worker that dies outright (OOM-kill, segfault) surfaces
                # as BrokenProcessPool — the executor, unlike
                # multiprocessing.Pool, never leaves a lost task pending
                # forever.  Both routes land in the fallback below.
                self._value = self._future.result()
            except Exception as error:
                if isinstance(error, BrokenProcessPool):
                    # The whole executor died, not just this task: flag it
                    # so the next submit replaces it (bounded) instead of
                    # falling back in-process forever.
                    self._pool._note_broken()
                self._pool.fallbacks += 1
                self._value = _run_extraction(self._payload)
            self._payload = None  # allow the arrays to be collected
        return self._value


class PostprocessPool:
    """A bounded pool of post-processing workers with in-process fallback.

    ``workers=0`` (or an unavailable ``fork``) makes :meth:`submit` run the
    extraction synchronously — same results, no processes.  ``workers=None``
    auto-sizes through :func:`resolve_workers` using the optional
    ``num_payloads`` / ``total_ands`` workload hints.  ``parallel`` reports
    which mode is active; ``fallbacks`` counts worker failures that were
    recovered in-process.

    A hard worker crash (OOM-kill, segfault) breaks the whole
    ``ProcessPoolExecutor``, not just the lost task.  The pool *replaces*
    a broken executor on the next :meth:`submit` — up to
    :data:`MAX_EXECUTOR_RESTARTS` times, counted in ``restarts`` — so one
    poisoned payload costs one fallback, not parallel mode for the rest of
    the pool's life.  Restarts exhausted (or failing) collapse to
    in-process permanently, preserving the old behavior as the floor.
    """

    def __init__(self, workers: int | None = 0,
                 num_payloads: int | None = None,
                 total_ands: int | None = None) -> None:
        self.requested_workers = resolve_workers(workers, num_payloads,
                                                 total_ands)
        self.fallbacks = 0
        self.restarts = 0
        self._broken = False
        self._closed = False
        # submit() and handle.get() normally run on one thread, but the
        # daemon's drain path may collect handles while a scheduler thread
        # still submits; the executor swap must not race.
        self._restart_lock = threading.Lock()
        self._executor = self._make_executor() if self.requested_workers else None
        self.workers = self.requested_workers if self._executor is not None else 0

    def _make_executor(self) -> ProcessPoolExecutor | None:
        if self.requested_workers <= 0 or not fork_available():
            return None
        try:
            return ProcessPoolExecutor(
                max_workers=self.requested_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        except OSError:
            return None

    def _note_broken(self) -> None:
        """Mark the current executor as dead (called from handle fallback)."""
        self._broken = True

    def _healthy_executor(self) -> ProcessPoolExecutor | None:
        """The live executor, replacing a broken one within the retry budget."""
        with self._restart_lock:
            if not self._broken or self._closed:
                return self._executor
            # Replace the broken executor (its pending futures already
            # resolved as BrokenProcessPool; shutdown just reaps it).
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            if self.restarts >= MAX_EXECUTOR_RESTARTS:
                self.workers = 0  # give up on parallel mode for good
                return None
            self.restarts += 1
            self._executor = self._make_executor()
            self._broken = False
            if self._executor is None:
                self.workers = 0
            return self._executor

    @property
    def parallel(self) -> bool:
        return self._executor is not None and not self._broken

    def submit(self, aig, labels, root_filter: bool, correct_lsb: bool,
               lsb_outputs: int, engine: str = "fast") -> PostprocessHandle:
        """Queue one extraction; returns a handle to collect it from."""
        payload = (aig, labels, root_filter, correct_lsb, lsb_outputs, engine)
        executor = self._healthy_executor()
        if executor is None:
            return PostprocessHandle(self, None, value=_run_extraction(payload))
        try:
            future = executor.submit(_worker_task, payload)
        except Exception:
            # The executor broke since the health check (a crash can land
            # at any time).  Flag it for the next submit's restart and
            # serve this payload in-process.
            self._note_broken()
            self.fallbacks += 1
            return PostprocessHandle(self, None, value=_run_extraction(payload))
        return PostprocessHandle(self, payload, future=future)

    def close(self) -> None:
        with self._restart_lock:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None

    def __enter__(self) -> "PostprocessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = f"workers={self.workers}" if self.parallel else "in-process"
        return (f"PostprocessPool({mode}, fallbacks={self.fallbacks}, "
                f"restarts={self.restarts})")
