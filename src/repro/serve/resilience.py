"""Resilience primitives for the serving stack: faults, deadlines, retries.

The serving layers (scheduler → daemon → transport → clients) promise
graceful behavior under load and failure — retriable ``queue_full``
backpressure, drained shutdowns, worker-crash recovery.  This module
provides the machinery that makes those promises *testable* and extends
them end to end:

* :class:`FaultPlan` / :func:`fire` — a general deterministic
  fault-injection framework.  Production code calls ``faults.fire(point)``
  at named fault points (``"infer.forward"``, ``"postprocess.worker"``,
  ``"server.send"``, ...); with no plan armed that is a dict lookup and a
  ``None`` check, nothing more.  A plan — installed programmatically, via
  the ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a path to
  a JSON file), or through ``serve --fault-plan`` — arms rules that
  trigger deterministically by per-point hit counts (explicit ``at``
  indices, ``every`` N-th, or a seeded Bernoulli ``rate``) and act by
  raising, sleeping, hard-exiting, or signaling the call site
  (``drop``/``corrupt``, whose effect only the call site can apply).
* :class:`RetryPolicy` — exponential backoff with full jitter and a
  deadline-aware budget, built into both daemon clients so retriable
  errors (``queue_full``, ``deadline_exceeded``) and broken sockets are
  survived transparently.
* :class:`DeadlineExceededError` / :class:`SchedulerWedgedError` — the
  typed failures deadline propagation and the scheduler watchdog resolve
  tickets with.
* :class:`Watchdog` — a heartbeat monitor that fails queued tickets when
  the scheduler loop wedges, instead of letting clients hang forever.

Determinism: every trigger decision is a pure function of the plan (its
seed) and the per-point hit counter, so a chaos run replays exactly.
Worker processes fork with the parent's installed plan but count their
own hits — ``at``/``every`` triggers are per-process, which is what a
"crash the Nth extraction in this worker" test wants.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import zlib

__all__ = [
    "DeadlineExceededError",
    "FaultPlan",
    "FaultRule",
    "InjectedFaultError",
    "RetryPolicy",
    "SchedulerWedgedError",
    "Watchdog",
    "fire",
    "install_plan",
    "plan_from_env",
    "fault_stats",
]

# Inline JSON (starts with "{") or a path to a JSON file.
PLAN_ENV = "REPRO_FAULT_PLAN"

# The named fault points production code consults.  Not enforced at
# check time (a plan may name new points a branch adds), but rules whose
# point matches nothing would silently never fire, so FaultPlan warns on
# unknown names at parse time via `known=`.
KNOWN_POINTS = (
    "postprocess.worker",  # worker-side extraction task (raise / exit)
    "infer.forward",       # forward pass inside reason_many (memory)
    "scheduler.execute",   # micro-batch execution (sleep: slow stage)
    "server.send",         # response write on the socket server (drop)
    "cache.spill",         # daemon cache spill on close (corrupt)
    "cache.load",          # daemon cache preload on start (raise)
)

_KINDS = ("raise", "memory", "exit", "sleep", "drop", "corrupt")


class InjectedFaultError(RuntimeError):
    """An armed ``raise``-kind fault fired at a named point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class DeadlineExceededError(RuntimeError):
    """The request's deadline expired before its forward pass ran.

    Retriable: a fresh attempt with a fresh deadline may well make it
    through the queue — expiry says the *queue wait* exceeded the
    caller's budget, not that the circuit is unservable.
    """

    retriable = True

    def __init__(self, request_id: str, waited_seconds: float,
                 deadline_ms: float) -> None:
        super().__init__(
            f"request {request_id} exceeded its {deadline_ms:.0f}ms deadline "
            f"after {waited_seconds * 1e3:.0f}ms in queue; retry with a "
            "fresh deadline"
        )
        self.request_id = request_id
        self.waited_seconds = waited_seconds
        self.deadline_ms = deadline_ms


class SchedulerWedgedError(RuntimeError):
    """The watchdog declared the scheduler loop wedged and failed the queue.

    Retriable: the wedge may be one poisoned batch; a retry lands in the
    queue behind a (possibly recovered) loop, and admission control still
    applies.
    """

    retriable = True

    def __init__(self, heartbeat_age: float, timeout: float) -> None:
        super().__init__(
            f"scheduler heartbeat stale for {heartbeat_age:.1f}s "
            f"(watchdog timeout {timeout:.1f}s); queued requests failed "
            "instead of hanging"
        )
        self.heartbeat_age = heartbeat_age
        self.timeout = timeout


class FaultRule:
    """One armed fault: a point, a kind, and a deterministic trigger.

    Trigger forms (exactly one):

    * ``at`` — explicit 1-based hit indices (``[3]``: only the 3rd hit);
    * ``every`` — every N-th hit (``1``: every hit);
    * ``rate`` — per-hit Bernoulli draw from a :class:`random.Random`
      seeded by the plan seed and the point name, so a given (seed,
      point, hit-count) always decides the same way.  In a forked
      worker the child's pid is mixed into the seed once, because every
      sibling inherits the same RNG state and short-lived pools would
      otherwise all replay one identical prefix.

    ``limit`` optionally caps total fires; ``seconds`` parameterizes
    ``sleep``-kind rules.
    """

    def __init__(self, point: str, kind: str, *, at=None, every=None,
                 rate=None, seconds: float = 0.05, limit=None,
                 seed: int = 0) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (one of {_KINDS})")
        chosen = sum(x is not None for x in (at, every, rate))
        if chosen > 1:
            raise ValueError(
                f"fault at {point!r}: give at most one of at/every/rate"
            )
        if chosen == 0:
            every = 1  # default: every hit
        self.point = point
        self.kind = kind
        self.at = frozenset(int(i) for i in at) if at is not None else None
        self.every = int(every) if every is not None else None
        self.rate = float(rate) if rate is not None else None
        self.seconds = float(seconds)
        self.limit = int(limit) if limit is not None else None
        self.hits = 0
        self.fires = 0
        self._seed = int(seed)
        self._pid = os.getpid()
        # Seeded per-rule stream: deterministic for a (seed, point) pair
        # regardless of what other points do in between.
        self._rng = random.Random(seed ^ zlib.crc32(point.encode("utf-8")))

    def should_fire(self) -> bool:
        """Count one hit and decide (deterministically) whether to fire."""
        self.hits += 1
        if self.limit is not None and self.fires >= self.limit:
            return False
        if self.at is not None:
            fire_now = self.hits in self.at
        elif self.rate is not None:
            if os.getpid() != self._pid:
                # A forked worker inherited the parent's RNG state — as
                # did every sibling, so short-lived pools would all
                # replay the same (possibly never-firing) prefix.  Mix
                # the child pid in once so each worker draws its own
                # Bernoulli stream; the parent's stream stays exactly
                # replayable.
                self._pid = os.getpid()
                self._rng = random.Random(
                    self._seed
                    ^ zlib.crc32(self.point.encode("utf-8"))
                    ^ os.getpid()
                )
            fire_now = self._rng.random() < self.rate
        else:
            fire_now = self.hits % self.every == 0
        if fire_now:
            self.fires += 1
        return fire_now

    def to_dict(self) -> dict:
        return {
            "point": self.point, "kind": self.kind,
            "hits": self.hits, "fires": self.fires,
        }


class FaultPlan:
    """A set of :class:`FaultRule`\\ s, parseable from JSON.

    JSON shape (``seed`` is optional, rules list required)::

        {"seed": 7, "faults": [
            {"point": "postprocess.worker", "kind": "exit", "at": [2]},
            {"point": "scheduler.execute", "kind": "sleep",
             "seconds": 0.2, "every": 3},
            {"point": "server.send", "kind": "drop", "rate": 0.1}
        ]}

    Thread-safe: hit counting is lock-guarded, so concurrent connection
    threads hitting one point still count (and fire) deterministically
    in arrival order.
    """

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._by_point: dict[str, list[FaultRule]] = {}
        for rule in self.rules:
            self._by_point.setdefault(rule.point, []).append(rule)

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultPlan":
        if not isinstance(spec, dict) or not isinstance(
                spec.get("faults"), list):
            raise ValueError(
                "fault plan must be an object with a 'faults' list"
            )
        seed = int(spec.get("seed", 0))
        rules = []
        for entry in spec["faults"]:
            if not isinstance(entry, dict) or "point" not in entry \
                    or "kind" not in entry:
                raise ValueError(
                    f"fault rule needs 'point' and 'kind': {entry!r}"
                )
            unknown = set(entry) - {"point", "kind", "at", "every", "rate",
                                    "seconds", "limit"}
            if unknown:
                raise ValueError(
                    f"unknown fault rule keys: {sorted(unknown)}"
                )
            rules.append(FaultRule(
                str(entry["point"]), str(entry["kind"]),
                at=entry.get("at"), every=entry.get("every"),
                rate=entry.get("rate"),
                seconds=float(entry.get("seconds", 0.05)),
                limit=entry.get("limit"), seed=seed,
            ))
        return cls(rules, seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse inline JSON, or read the file at ``text`` if it's a path."""
        text = text.strip()
        if not text.startswith("{"):
            text = open(text, "r", encoding="utf-8").read()
        return cls.from_dict(json.loads(text))

    def fire(self, point: str) -> str | None:
        """Count a hit at ``point`` and act on the first rule that fires.

        ``raise``/``memory`` raise, ``exit`` kills the process (worker
        crash), ``sleep`` blocks for the rule's ``seconds``; ``drop`` and
        ``corrupt`` only *signal* — the kind is returned for the call
        site to apply (close the socket, mangle the file).  Returns the
        fired kind, or ``None`` when nothing fired.
        """
        rules = self._by_point.get(point)
        if not rules:
            return None
        fired = None
        with self._lock:
            for rule in rules:
                if rule.should_fire():
                    fired = rule
                    break
        if fired is None:
            return None
        if fired.kind == "raise":
            raise InjectedFaultError(point)
        if fired.kind == "memory":
            raise MemoryError(f"injected MemoryError at {point!r}")
        if fired.kind == "exit":
            os._exit(1)
        if fired.kind == "sleep":
            time.sleep(fired.seconds)
        return fired.kind

    def stats(self) -> list[dict]:
        with self._lock:
            return [rule.to_dict() for rule in self.rules]

    def __repr__(self) -> str:
        points = sorted({rule.point for rule in self.rules})
        return f"FaultPlan(seed={self.seed}, points={points})"


# ----------------------------------------------------------------------
# Process-global plan registry.  `fire(point)` is what production code
# calls; with nothing armed it costs one attribute read and a None check
# (plus, when no plan was ever installed, one os.environ lookup whose
# parse result is cached on the raw string).
_installed: FaultPlan | None = None
_env_cache: tuple[str | None, FaultPlan | None] = (None, None)


def install_plan(plan: FaultPlan | None) -> None:
    """Arm ``plan`` process-wide (``None`` disarms and re-enables env)."""
    global _installed, _env_cache
    _installed = plan
    _env_cache = (None, None)  # forget any parsed env plan


def plan_from_env() -> FaultPlan | None:
    """The env-configured plan, parsed once per distinct env value."""
    global _env_cache
    raw = os.environ.get(PLAN_ENV) or None
    if raw != _env_cache[0]:
        _env_cache = (raw, FaultPlan.from_json(raw) if raw else None)
    return _env_cache[1]


def active_plan() -> FaultPlan | None:
    """The armed plan: explicitly installed, else from the environment."""
    if _installed is not None:
        return _installed
    return plan_from_env()


def fire(point: str) -> str | None:
    """Hit the named fault point (no-op unless a plan is armed)."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(point)


def fault_stats() -> list[dict]:
    """Per-rule hit/fire counters of the armed plan ([] when unarmed)."""
    plan = active_plan()
    return plan.stats() if plan is not None else []


# ----------------------------------------------------------------------
class RetryPolicy:
    """Exponential backoff with full jitter and a deadline-aware budget.

    ``delay(attempt)`` for attempt k (0-based count of *failures so far*)
    draws uniformly from ``[0, min(max_delay, base * multiplier**k)]`` —
    AWS-style full jitter, which decorrelates clients hammering one
    recovering daemon far better than synchronized exponential steps.
    ``seed`` pins the jitter stream for reproducible tests; by default
    each policy instance jitters independently.

    ``max_attempts`` counts total tries (first call included), so
    ``max_attempts=1`` disables retrying.  A ``budget_seconds`` (usually
    the request's remaining deadline) caps the *sum* of sleeps: a retry
    that cannot finish inside the budget is not attempted — the caller
    gets the last error instead of a guaranteed-late success.
    """

    def __init__(self, max_attempts: int = 5, base_delay: float = 0.01,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 seed: int | None = None) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0:
            raise ValueError("delays must be >= 0 and multiplier >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self._rng = random.Random(seed)

    def delay(self, failures: int) -> float:
        """Jittered sleep before the next try after ``failures`` failures."""
        ceiling = min(self.max_delay,
                      self.base_delay * self.multiplier ** max(failures - 1, 0))
        return self._rng.uniform(0.0, ceiling)

    def call(self, attempt_fn, *, retriable_fn, budget_seconds: float | None = None,
             on_retry=None):
        """Run ``attempt_fn()`` under this policy.

        ``attempt_fn`` either returns a result or raises.
        ``retriable_fn(error_or_result) -> bool`` decides whether the
        raised exception *or returned value* warrants another try (a
        returned value judged retriable is retried too — daemon clients
        use this for ``{"ok": false, "retriable": true}`` envelopes).
        ``on_retry(failures, delay, why)`` observes each backoff.
        The final failure re-raises (or returns) whatever the last
        attempt produced.
        """
        started = time.monotonic()
        failures = 0
        while True:
            try:
                result = attempt_fn()
            except Exception as error:
                if not retriable_fn(error):
                    raise
                failures += 1
                if failures >= self.max_attempts:
                    raise
                why: object = error
            else:
                if not retriable_fn(result):
                    return result
                failures += 1
                if failures >= self.max_attempts:
                    return result
                why = result
            pause = self.delay(failures)
            if budget_seconds is not None:
                remaining = budget_seconds - (time.monotonic() - started)
                if remaining <= pause:
                    # Out of budget: surface the last outcome rather than
                    # sleeping into a deadline we already know we'd miss.
                    if isinstance(why, BaseException):
                        raise why
                    return why
            if on_retry is not None:
                on_retry(failures, pause, why)
            if pause > 0:
                time.sleep(pause)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base={self.base_delay * 1e3:.0f}ms, x{self.multiplier:g}, "
            f"cap={self.max_delay:g}s)"
        )


# ----------------------------------------------------------------------
class Watchdog:
    """Heartbeat monitor that fails queued tickets when the loop wedges.

    The scheduler stamps a heartbeat at every loop iteration; a batch
    stuck inside a forward pass (or a dead loop thread) stops stamping.
    When requests are *waiting* and the heartbeat is older than
    ``timeout_seconds``, the watchdog fails everything queued with a
    retriable :class:`SchedulerWedgedError` — clients get a typed error
    and their retry policy, not an unbounded hang.  The in-flight batch
    itself is not (cannot be) interrupted; if it eventually completes,
    its own tickets resolve normally.

    The default timeout is deliberately generous: a legitimate giant
    forward pass must never be declared a wedge.  Tests shrink it.
    """

    def __init__(self, scheduler, timeout_seconds: float = 300.0,
                 poll_seconds: float | None = None) -> None:
        self.scheduler = scheduler
        self.timeout_seconds = timeout_seconds
        self.poll_seconds = (poll_seconds if poll_seconds is not None
                             else max(timeout_seconds / 10.0, 0.05))
        self.trips = 0
        self.failed_tickets = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "Watchdog":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="gamora-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            age = self.scheduler.heartbeat_age()
            if age <= self.timeout_seconds:
                continue
            if self.scheduler.queue_depth == 0:
                continue  # idle loops don't stamp; nothing is waiting
            failed = self.scheduler.fail_pending(
                SchedulerWedgedError(age, self.timeout_seconds)
            )
            if failed:
                self.trips += 1
                self.failed_tickets += failed

    def stats(self) -> dict:
        return {
            "timeout_seconds": self.timeout_seconds,
            "trips": self.trips,
            "failed_tickets": self.failed_tickets,
        }

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
