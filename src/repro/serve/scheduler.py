"""Cross-request micro-batching for the serving daemon.

:class:`MicroBatchScheduler` sits between concurrent request producers
(socket connections, in-process clients, test threads) and one
:class:`~repro.serve.service.ReasoningService`.  Producers enqueue single
circuits; a dedicated scheduler thread coalesces everything that arrived
within a small window (measured from the *first* waiting request, so an
idle daemon answers a lone request after at most one window) into one
``reason_many`` call.  That is where the batching machinery pays off
across users: structurally identical circuits from different clients
dedup to one forward pass, the shard planner packs the distinct ones
block-diagonally, and the warm result LRU serves repeats outright.

Admission control is depth-based and fail-fast: once ``max_queue_depth``
requests are waiting, :meth:`~MicroBatchScheduler.submit` raises
:class:`QueueFullError` (``retriable=True``) immediately instead of
blocking the producer — the daemon's socket layer turns that into a
retriable error response, so backpressure reaches clients as a signal,
not as latency.

Every request gets a :class:`RequestStats` record — queue wait, the
micro-batch it rode in, its shard assignment, whether it was a cache
hit, and the batch's full per-stage :class:`~repro.serve.service.BatchStats`
— resolved through its :class:`RequestTicket` and, when ``run_dir`` is
set, written to ``<run_dir>/<request_id>/stats.json``.

Requests with different post-processing options cannot share a
``reason_many`` call (options apply batch-wide), so a popped micro-batch
is grouped by normalized options and runs one service call per group;
under homogeneous traffic — the common case — that is exactly one call.

The scheduler is one-shot: :meth:`start` it, :meth:`stop` it (draining
the queue by default), then build a new one.  All mutable state is
guarded by a single condition variable; the scheduler thread is the only
consumer, so requests resolve in arrival order within a batch.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.core.api import ReasoningOutcome, _as_aig
from repro.kernels.registry import active_backend
from repro.serve import resilience
from repro.serve.resilience import DeadlineExceededError
from repro.serve.service import ReasoningService
from repro.utils.timing import Timer

__all__ = [
    "MicroBatchScheduler",
    "QueueFullError",
    "RequestStats",
    "RequestTicket",
    "SchedulerClosedError",
]


class QueueFullError(RuntimeError):
    """Admission control rejected a request: the queue is at capacity.

    Always ``retriable`` — the queue drains at batch cadence, so the same
    request a moment later may well be admitted.  Raised from ``submit``
    before the request is enqueued; nothing is left behind to clean up.
    """

    retriable = True

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"request queue full ({depth}/{limit} waiting); retry later"
        )
        self.depth = depth
        self.limit = limit


class SchedulerClosedError(RuntimeError):
    """The scheduler has been stopped and accepts no new requests."""


@dataclass
class RequestStats:
    """Per-request accounting, JSON-ready via :meth:`to_dict`.

    ``batch_size`` counts every request coalesced into the micro-batch;
    ``group_size`` the subset sharing this request's post-processing
    options (one ``reason_many`` call per group).  ``shard_index`` is the
    block-diagonal shard that ran this circuit's forward pass, ``None``
    when the outcome came straight from the warm result cache
    (``result_hit``).  ``batch_stats`` embeds the group's full
    :class:`~repro.serve.service.BatchStats` — per-stage timings included
    — so one stats file tells the whole story of the batch it rode in.
    """

    request_id: str
    batch_id: int
    batch_size: int
    group_size: int
    batch_unique: int  # distinct structures the group actually computed
    num_shards: int
    shard_index: int | None
    result_hit: bool
    streamed: bool  # forward pass ran level-windowed under a window budget
    degraded: bool  # full pass OOMed; served by the streamed fallback
    kernel_backend: str  # hot-path kernel backend that served the batch
    queue_wait_seconds: float
    deadline_ms: float | None  # the caller's deadline, if it set one
    service_seconds: float  # the group's reason_many wall clock
    total_seconds: float  # submit -> resolved
    batch_stats: dict

    def to_dict(self) -> dict:
        return dict(vars(self))


class RequestTicket:
    """A caller's handle on one in-flight request.

    ``submit_async`` returns immediately with a ticket; :meth:`result`
    blocks until the scheduler resolves it (re-raising the failure if the
    batch errored).  Thread-safe: any thread may wait on any ticket.
    """

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self._done = threading.Event()
        self._outcome: ReasoningOutcome | None = None
        self._stats: RequestStats | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def _wait(self, timeout: float | None) -> None:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not resolved within {timeout}s"
            )
        if self._error is not None:
            raise self._error

    def result(self, timeout: float | None = None) -> ReasoningOutcome:
        """The request's :class:`ReasoningOutcome` (blocks until resolved)."""
        self._wait(timeout)
        return self._outcome

    def stats(self, timeout: float | None = None) -> RequestStats:
        """The request's :class:`RequestStats` (blocks until resolved)."""
        self._wait(timeout)
        return self._stats

    def _resolve(self, outcome: ReasoningOutcome, stats: RequestStats) -> None:
        self._outcome = outcome
        self._stats = stats
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


class _Request:
    __slots__ = ("request_id", "aig", "options", "enqueued", "ticket",
                 "deadline", "deadline_ms")

    def __init__(self, request_id, aig, options, enqueued, ticket,
                 deadline=None, deadline_ms=None) -> None:
        self.request_id = request_id
        self.aig = aig
        self.options = options
        self.enqueued = enqueued
        self.ticket = ticket
        self.deadline = deadline  # absolute monotonic, None = no deadline
        self.deadline_ms = deadline_ms  # the caller's original budget


def _safe_component(request_id: str) -> str:
    """A request id reduced to a safe single path component."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", request_id).strip(".")
    return cleaned or "request"


class MicroBatchScheduler:
    """Coalesce concurrent requests into ``reason_many`` micro-batches.

    ``batch_window_ms`` is how long the scheduler waits after the first
    queued request for company before dispatching (0 dispatches whatever
    is queued immediately); ``max_batch`` caps a micro-batch's size and
    dispatches early when reached; ``max_queue_depth`` is the admission
    limit beyond which ``submit`` fast-fails with :class:`QueueFullError`.
    ``with_report=True`` asks the service for word-level reports (one
    concatenated pass per batch).  ``run_dir`` enables per-request
    ``stats.json`` files.
    """

    def __init__(self, service: ReasoningService, *,
                 batch_window_ms: float = 5.0, max_batch: int = 32,
                 max_queue_depth: int = 128,
                 run_dir: str | Path | None = None,
                 with_report: bool = False) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        self.service = service
        self.batch_window_seconds = batch_window_ms / 1000.0
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.with_report = with_report

        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._counter = 0
        # Stamped by the loop thread each iteration and after each batch;
        # the Watchdog reads it through heartbeat_age().
        self._heartbeat = time.monotonic()

        # Counters (mutated under _cond, snapshot by stats()).
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.expired = 0  # deadlines that lapsed before dispatch
        self.batches = 0
        self.coalesced_batches = 0  # micro-batches with > 1 request
        self.max_coalesced = 0  # largest micro-batch dispatched
        self.result_hits = 0  # requests served from the warm result LRU
        self.num_shards = 0  # forward passes across all batches
        self.streamed_requests = 0  # requests run via the windowed pass
        self.degraded_requests = 0  # served by the OOM streamed fallback
        self.stats_write_errors = 0  # run-dir stats.json writes that failed

    # ------------------------------------------------------------------
    def start(self) -> "MicroBatchScheduler":
        """Spawn the scheduler thread (idempotent while running)."""
        with self._cond:
            if self._stopping:
                raise SchedulerClosedError("scheduler already stopped")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="gamora-scheduler", daemon=True
                )
                self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests and shut the scheduler thread down.

        ``drain=True`` (default) lets the thread execute everything still
        queued — without further window waits — before exiting, so a
        graceful shutdown never drops accepted work.  ``drain=False``
        fails queued requests with :class:`SchedulerClosedError` instead.
        Idempotent.
        """
        with self._cond:
            self._stopping = True
            dropped = [] if drain else list(self._queue)
            if not drain:
                self._queue.clear()
            self.failed += len(dropped)
            self._cond.notify_all()
            thread = self._thread
        for request in dropped:
            request.ticket._fail(
                SchedulerClosedError("scheduler stopped before execution")
            )
        if thread is not None:
            thread.join(timeout)
        # A scheduler stopped before ever starting still owes its queued
        # tickets an answer — nothing will ever execute them.
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
            self.failed += len(leftovers)
        for request in leftovers:
            request.ticket._fail(
                SchedulerClosedError("scheduler stopped before execution")
            )

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def submit_async(self, circuit, request_id: str | None = None, *,
                     root_filter: bool = False, correct_lsb: bool = True,
                     lsb_outputs: int = 4, engine: str = "fast",
                     deadline_ms: float | None = None) -> RequestTicket:
        """Enqueue one circuit; returns a :class:`RequestTicket` at once.

        ``deadline_ms`` is the caller's total patience, counted from now:
        if the request is still queued when the scheduler pops it past
        that point, it fails with a retriable
        :class:`~repro.serve.resilience.DeadlineExceededError` *without*
        dispatching a forward pass — a caller that gave up never burns
        compute.  Raises :class:`QueueFullError` (retriable) when the
        queue is at ``max_queue_depth`` and :class:`SchedulerClosedError`
        after :meth:`stop`.
        """
        aig = _as_aig(circuit)
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if deadline_ms <= 0:
                raise ValueError(
                    f"deadline_ms must be > 0, got {deadline_ms}"
                )
        options = (bool(root_filter), bool(correct_lsb), int(lsb_outputs),
                   str(engine))
        with self._cond:
            if self._stopping:
                raise SchedulerClosedError("scheduler is stopped")
            if len(self._queue) >= self.max_queue_depth:
                self.rejected += 1
                raise QueueFullError(len(self._queue), self.max_queue_depth)
            self._counter += 1
            rid = request_id if request_id else f"r{self._counter:06d}"
            ticket = RequestTicket(rid)
            now = time.monotonic()
            deadline = (now + deadline_ms / 1000.0
                        if deadline_ms is not None else None)
            self._queue.append(
                _Request(rid, aig, options, now, ticket, deadline,
                         deadline_ms)
            )
            self.accepted += 1
            self._cond.notify_all()
        return ticket

    def submit(self, circuit, request_id: str | None = None,
               timeout: float | None = None,
               **options) -> tuple[ReasoningOutcome, RequestStats]:
        """Blocking :meth:`submit_async`: enqueue, wait, return the pair."""
        ticket = self.submit_async(circuit, request_id, **options)
        return ticket.result(timeout), ticket.stats(0)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                self._heartbeat = time.monotonic()
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return  # stopping with an empty queue: drained
                if not self._stopping:
                    # The window opens when the first request arrived, not
                    # when we noticed it: a request never waits more than
                    # one window for company.
                    deadline = (self._queue[0].enqueued
                                + self.batch_window_seconds)
                    while (len(self._queue) < self.max_batch
                           and not self._stopping):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                take = min(len(self._queue), self.max_batch)
                batch = [self._queue.popleft() for _ in range(take)]
            self._execute(batch)
            with self._cond:
                self._heartbeat = time.monotonic()

    def heartbeat_age(self) -> float:
        """Seconds since the scheduler loop last proved itself alive."""
        with self._cond:
            return time.monotonic() - self._heartbeat

    def fail_pending(self, error: BaseException) -> int:
        """Fail every *queued* (not yet dispatched) request with ``error``.

        The watchdog's lever: an in-flight batch cannot be interrupted,
        but everything still waiting behind it gets a typed answer now
        instead of an unbounded hang.  Returns how many tickets failed.
        The scheduler keeps accepting and executing afterwards.
        """
        with self._cond:
            drained = list(self._queue)
            self._queue.clear()
            self.failed += len(drained)
        for request in drained:
            request.ticket._fail(error)
        return len(drained)

    def _execute(self, batch: list[_Request]) -> None:
        popped_at = time.monotonic()
        with self._cond:
            self.batches += 1
            batch_id = self.batches
            if len(batch) > 1:
                self.coalesced_batches += 1
            self.max_coalesced = max(self.max_coalesced, len(batch))
        # Deadline check happens here, at dequeue: an expired request is
        # failed before its group forms, so it never contributes to a
        # reason_many call — the forward-pass counter provably does not
        # move for callers that already gave up.
        live: list[_Request] = []
        expired: list[_Request] = []
        for request in batch:
            if request.deadline is not None and popped_at > request.deadline:
                expired.append(request)
            else:
                live.append(request)
        if expired:
            with self._cond:
                self.expired += len(expired)
                self.failed += len(expired)
            for request in expired:
                request.ticket._fail(DeadlineExceededError(
                    request.request_id, popped_at - request.enqueued,
                    request.deadline_ms,
                ))
        if not live:
            return
        batch = live
        groups: dict[tuple, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.options, []).append(request)
        for options, group in groups.items():
            root_filter, correct_lsb, lsb_outputs, engine = options
            try:
                # Chaos hook: a sleep-kind rule here models a slow batch
                # stage; a raise-kind one fails the group, not the loop.
                resilience.fire("scheduler.execute")
                with Timer() as timer:
                    result = self.service.reason_many(
                        [request.aig for request in group],
                        root_filter=root_filter, correct_lsb=correct_lsb,
                        lsb_outputs=lsb_outputs, engine=engine,
                        with_report=self.with_report,
                    )
            except Exception as error:  # keep the daemon alive
                with self._cond:
                    self.failed += len(group)
                for request in group:
                    request.ticket._fail(error)
                continue
            batch_stats = dict(vars(result.stats))
            hits = 0
            streamed = 0
            degraded = 0
            for request, outcome in zip(group, result):
                hit = outcome.shard_index is None
                hits += hit
                streamed += outcome.streamed
                degraded += outcome.degraded
                stats = RequestStats(
                    request_id=request.request_id,
                    batch_id=batch_id,
                    batch_size=len(batch),
                    group_size=len(group),
                    batch_unique=result.stats.unique_circuits,
                    num_shards=result.stats.num_shards,
                    shard_index=outcome.shard_index,
                    result_hit=hit,
                    streamed=outcome.streamed,
                    degraded=outcome.degraded,
                    kernel_backend=active_backend(),
                    queue_wait_seconds=popped_at - request.enqueued,
                    deadline_ms=request.deadline_ms,
                    service_seconds=timer.elapsed,
                    total_seconds=time.monotonic() - request.enqueued,
                    batch_stats=batch_stats,
                )
                self._write_stats(stats)
                request.ticket._resolve(outcome, stats)
            with self._cond:
                self.completed += len(group)
                self.result_hits += hits
                self.num_shards += result.stats.num_shards
                self.streamed_requests += streamed
                self.degraded_requests += degraded

    def _write_stats(self, stats: RequestStats) -> None:
        """Spill one request's stats.json; never fails the request."""
        if self.run_dir is None:
            return
        try:
            target = self.run_dir / _safe_component(stats.request_id)
            target.mkdir(parents=True, exist_ok=True)
            with open(target / "stats.json", "w", encoding="utf-8") as stream:
                json.dump(stats.to_dict(), stream, indent=2, sort_keys=True)
                stream.write("\n")
        except OSError:
            with self._cond:
                self.stats_write_errors += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot (JSON-ready)."""
        with self._cond:
            return {
                "queue_depth": len(self._queue),
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "expired": self.expired,
                "batches": self.batches,
                "coalesced_batches": self.coalesced_batches,
                "max_coalesced": self.max_coalesced,
                "result_hits": self.result_hits,
                "num_shards": self.num_shards,
                "streamed_requests": self.streamed_requests,
                "degraded_requests": self.degraded_requests,
                "stats_write_errors": self.stats_write_errors,
                "heartbeat_age_seconds": time.monotonic() - self._heartbeat,
                "batch_window_ms": self.batch_window_seconds * 1000.0,
                "max_batch": self.max_batch,
                "max_queue_depth": self.max_queue_depth,
            }

    def __repr__(self) -> str:
        snapshot = self.stats()
        return (
            f"MicroBatchScheduler(window={snapshot['batch_window_ms']:.1f}ms, "
            f"max_batch={self.max_batch}, depth={snapshot['queue_depth']}/"
            f"{self.max_queue_depth}, accepted={snapshot['accepted']}, "
            f"batches={snapshot['batches']})"
        )
