"""Batched reasoning service: sharded forward passes, parallel extraction.

:class:`ReasoningService` is the serving layer over a trained
:class:`~repro.core.api.Gamora`.  A call to :meth:`reason_many` takes N
independent circuits and

1. **deduplicates** them by :meth:`AIG.structural_hash()
   <repro.aig.graph.AIG.structural_hash>` — repeated designs (the common
   case under real traffic) are reasoned once per batch and served from the
   result LRU on later batches;
2. **encodes** the unique circuits to :class:`~repro.learn.data.GraphData`
   through a structural-hash LRU, so re-submitted structures skip feature
   and adjacency construction entirely;
3. **plans shards** — when ``max_shard_bytes`` is set, the encoded graphs
   are greedily bin-packed (:func:`repro.serve.sharding.plan_shards`) so
   every block-diagonal merge stays under the analytic
   :func:`~repro.learn.infer.estimate_inference_memory` budget; unbounded
   batches run as one monolithic shard.  With ``max_window_bytes`` also
   set, a circuit too large for *any* shard is admitted anyway: its
   oversize shard carries a :class:`~repro.learn.data.WindowPlan` and runs
   the level-windowed streamed forward pass with peak activation memory
   bounded by the window budget — labels bit-identical to the full-graph
   pass;
4. **streams** each shard through assemble → infer (full-graph or
   window-by-window), then hands the shard's per-circuit predictions to
   the post-processing stage;
5. **post-processes in parallel** — with ``postprocess_workers > 0`` the
   per-circuit :func:`~repro.core.postprocess.extract_from_predictions`
   calls run in a fork-based :class:`~repro.serve.workers.PostprocessPool`
   *while the next shard's forward pass executes* (pipeline overlap);
   results are reassembled in input order, and any worker failure falls
   back to an in-process retry (counted in ``BatchStats.postprocess_fallbacks``).

Scaling knobs
-------------
``max_shard_bytes``
    Peak estimated bytes one shard's inference may use.  ``None``
    (default) disables sharding.  Circuits whose standalone estimate
    exceeds the budget still run, each as its own oversize shard.
``max_window_bytes``
    Peak estimated bytes one *streaming window* may use.  ``None``
    (default) keeps oversize shards on the unbounded full-graph pass;
    set, every oversize shard streams level-window by level-window under
    this budget (``BatchStats.streamed_graphs`` / ``num_windows`` /
    ``peak_window_bytes`` report what actually ran).
``postprocess_workers``
    Worker processes for extraction.  ``None`` (default) auto-sizes per
    batch via :func:`repro.serve.workers.resolve_workers` — one worker per
    unique circuit capped at ``cpu_count() - 1``, collapsing to in-process
    for single-circuit or tiny batches where fork overhead would dominate;
    ``0`` forces in-process; platforms without ``fork`` degrade to
    in-process automatically.

Both can be set on the constructor (service-wide default) and overridden
per :meth:`reason_many` call.

Caching semantics
-----------------
Both caches are keyed by the permutation-invariant structural hash and
guarded by an exact node-numbering fingerprint (see
:mod:`repro.serve.cache`), so a cache can never hand back artifacts indexed
under a different variable numbering.  Result-cache entries additionally
key on the *normalized* post-processing options (``lsb_outputs`` is
ignored when ``correct_lsb`` is off, because it has no effect then).
When the result cache is enabled, cache hits share label arrays and
extraction objects between outcomes and the label arrays are frozen
(mutation raises instead of silently poisoning later hits); with
``result_cache_size=0`` nothing is stored and the labels stay writable,
matching sequential :meth:`Gamora.reason`.

The service snapshots nothing: it reads the bound Gamora's network at call
time.  If you *retrain* the Gamora, cached encodings stay valid (features
do not depend on weights) but cached results become stale — call
:meth:`clear_result_cache` (``Gamora.fit`` drops its lazily built service
automatically).

Both caches persist to disk: :meth:`save_result_cache` /
:meth:`load_result_cache` spill reasoning outcomes stamped with the model
fingerprint, and :meth:`save_graph_cache` / :meth:`load_graph_cache` spill
the encoded graphs stamped with the *encoding* fingerprint only — so a
retrained model reloads its encodings while a different feature mode or
direction invalidates them.  ``batch-reason --cache-dir`` wires both up
(results at the directory root, graphs under ``graphs/``).

The invariant that makes all of this safe — sharded/parallel/batched
predictions are identical to sequential ones — is enforced by
``tests/test_serve_batching.py`` and ``tests/test_serve_sharding.py``.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.aig.graph import AIG
from repro.core.api import Gamora, ReasoningOutcome, _as_aig
from repro.learn.data import GraphData, batch_graphs, build_graph_data, unbatch_predictions
from repro.reasoning.wordlevel import analyze_adder_trees
from repro.serve import resilience
from repro.serve.cache import StructuralHashCache, exact_fingerprint
from repro.serve.sharding import ShardPlan, plan_shards
from repro.serve.workers import PostprocessPool
from repro.utils.timing import Timer

__all__ = ["BatchStats", "BatchReasoningOutcome", "ReasoningService"]

_UNSET = object()  # per-call override sentinel (None is a meaningful value)


@dataclass
class BatchStats:
    """Per-stage accounting for one :meth:`ReasoningService.reason_many`.

    Stage timings accumulate across shards: ``inference_seconds`` is the
    sum of every shard's forward pass and ``postprocess_seconds`` the sum
    of per-circuit extraction times (worker-side wall clock in parallel
    mode, so it can exceed the batch's total wall time — it is a CPU-time
    sum, not a span).
    """

    batch_size: int = 0
    unique_circuits: int = 0  # distinct structures actually computed
    result_hits: int = 0  # circuits served from the result LRU
    graph_hits: int = 0  # encodings served from the graph LRU
    graph_misses: int = 0  # encodings built this call
    encode_seconds: float = 0.0
    assemble_seconds: float = 0.0  # block-diagonal merges, summed over shards
    inference_seconds: float = 0.0  # forward passes, summed over shards
    postprocess_seconds: float = 0.0  # summed over unique circuits
    report_seconds: float = 0.0  # batched word-level analysis (with_report)
    total_seconds: float = 0.0
    num_nodes: int = 0  # total nodes inferred, summed over shards
    num_edges: int = 0
    num_shards: int = 0  # forward passes this call (0 if fully cached)
    peak_shard_bytes: int = 0  # largest estimated shard footprint
    oversize_shards: int = 0  # lone circuits that exceeded the budget
    streamed_graphs: int = 0  # oversize circuits run window-by-window
    num_windows: int = 0  # streaming windows executed, summed over shards
    peak_window_bytes: int = 0  # largest estimated window footprint
    degraded_shards: int = 0  # full-graph passes that OOMed and re-ran windowed
    postprocess_workers: int = 0  # effective worker processes (0: in-process)
    postprocess_fallbacks: int = 0  # worker failures recovered in-process
    postprocess_restarts: int = 0  # broken executors replaced mid-batch
    reports_built: int = 0  # word-level reports computed this call

    def summary(self) -> str:
        extra = ""
        if self.num_shards > 1 or self.peak_shard_bytes:
            extra = (
                f" | shards={self.num_shards} "
                f"peak={self.peak_shard_bytes / 1024 ** 2:.1f}MiB"
            )
        if self.streamed_graphs:
            extra += (
                f" streamed={self.streamed_graphs} "
                f"windows={self.num_windows} "
                f"peak_window={self.peak_window_bytes / 1024 ** 2:.1f}MiB"
            )
        if self.postprocess_workers:
            extra += (
                f" workers={self.postprocess_workers}"
                f" fallbacks={self.postprocess_fallbacks}"
            )
        return (
            f"batch={self.batch_size} unique={self.unique_circuits} "
            f"result_hits={self.result_hits} graph_hits={self.graph_hits} | "
            f"encode {self.encode_seconds * 1e3:.1f}ms, "
            f"assemble {self.assemble_seconds * 1e3:.1f}ms, "
            f"infer {self.inference_seconds * 1e3:.1f}ms, "
            f"post {self.postprocess_seconds * 1e3:.1f}ms, "
            f"total {self.total_seconds * 1e3:.1f}ms" + extra
        )


@dataclass
class BatchReasoningOutcome:
    """Sequence of per-circuit outcomes plus batch-level stats."""

    outcomes: list[ReasoningOutcome] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ReasoningOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]


def _circuit_key(aig: AIG) -> tuple[str, str]:
    """The dedup identity of one circuit: structural hash + exact numbering.

    Single source of truth for every cache/dedup key the service builds
    (``reason_many``, ``predict_many``, ``plan``) — change it here and all
    paths stay in sync.
    """
    return (aig.structural_hash(), exact_fingerprint(aig))


def _normalize_options(root_filter: bool, correct_lsb: bool,
                       lsb_outputs: int,
                       engine: str = "fast") -> tuple[bool, bool, int, str]:
    """Canonical result-cache options key.

    ``lsb_outputs`` only matters when LSB correction is on; collapsing it
    to 0 otherwise lets semantically identical calls share a cache entry.
    ``engine`` is part of the key: fast and legacy extractions are
    bit-identical on the pairing stage, but legacy cut *verification*
    re-derives depth-bounded local cones that can diverge from the global
    sweep on boundary cases, so the two must not share entries.

    The kernel *backend* (:mod:`repro.kernels` — numpy vs numba) must
    NEVER enter this key: backends are differentially tested bit-identical,
    so a result computed under one backend is the result under any other,
    and runs under different backends share cache entries
    (``tests/test_kernels.py`` pins this).
    """
    correct_lsb = bool(correct_lsb)
    return (bool(root_filter), correct_lsb,
            int(lsb_outputs) if correct_lsb else 0, str(engine))


def _freeze_arrays(value) -> None:
    """Mark every ndarray reachable through the cached payload read-only.

    Cache hits share arrays (in memory and reloaded from disk, where
    pickling drops the WRITEABLE flag), so accidental mutation must raise.
    Besides dicts/tuples/lists, the walk descends the v3 extraction object
    graph — ``PredictedExtraction`` → ``AdderTree`` → ``AdderTreeArrays`` /
    ``PairingCandidates`` — whose struct-of-arrays columns would otherwise
    stay silently writable while the labels froze.
    """
    from repro.core.postprocess import PredictedExtraction
    from repro.reasoning.adder_tree import AdderTree, AdderTreeArrays
    from repro.reasoning.fast_pairing import PairingCandidates

    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, dict):
        for item in value.values():
            _freeze_arrays(item)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze_arrays(item)
    elif isinstance(value, (PredictedExtraction, AdderTree,
                            PairingCandidates)):
        _freeze_arrays(vars(value))
    elif isinstance(value, AdderTreeArrays):
        for slot in AdderTreeArrays.__slots__:
            _freeze_arrays(getattr(value, slot, None))


class ReasoningService:
    """Sharded, parallel, block-diagonal batched reasoning over a Gamora.

    ``graph_cache_size`` bounds the encoded-:class:`GraphData` LRU and
    ``result_cache_size`` the full-outcome LRU; either can be 0 to disable
    that cache.  ``max_shard_bytes`` and ``postprocess_workers`` are the
    scaling knobs described in the module docstring; sharding defaults to
    the PR 1 behavior (one monolithic pass) and workers default to
    per-batch auto-sizing (in-process whenever the batch is small).
    Everything upstream of :meth:`reason_many` only ever sees circuit
    objects, and everything downstream only sees per-circuit outcomes.
    """

    def __init__(self, gamora: Gamora, graph_cache_size: int = 128,
                 result_cache_size: int = 256,
                 max_shard_bytes: int | None = None,
                 max_window_bytes: int | None = None,
                 postprocess_workers: int | None = None) -> None:
        self.gamora = gamora
        self.graph_cache = StructuralHashCache(graph_cache_size)
        self.result_cache = StructuralHashCache(result_cache_size)
        self.max_shard_bytes = max_shard_bytes
        self.max_window_bytes = max_window_bytes
        self.postprocess_workers = postprocess_workers
        self._model_fp: str | None = None  # lazy model fingerprint
        # Guards the lazy fingerprint init: two daemon threads racing the
        # first save/load would otherwise both digest the full weight
        # state (harmless but wasteful) or interleave with clear_caches()
        # resetting it mid-compute.
        self._model_fp_lock = threading.Lock()

    # ------------------------------------------------------------------
    def encode(self, circuit) -> GraphData:
        """Encode one circuit, served from the structural-hash LRU."""
        aig = _as_aig(circuit)
        return self._encode(aig, *_circuit_key(aig))

    def _encode(self, aig: AIG, shash: str, fingerprint: str) -> GraphData:
        config = self.gamora.model_config

        def build() -> GraphData:
            return build_graph_data(
                aig,
                feature_mode=config.feature_mode,
                direction=config.direction,
                with_labels=False,
            )

        return self.graph_cache.get_or_build(shash, fingerprint, build)

    # ------------------------------------------------------------------
    def predict_many(self, circuits) -> list[dict[str, np.ndarray]]:
        """Per-node label predictions for each circuit, one forward pass.

        Structurally identical circuits are encoded and inferred once; the
        returned list still has one entry per input, in input order.
        """
        aigs = [_as_aig(c) for c in circuits]
        if not aigs:
            return []
        unique: dict[tuple[str, str], int] = {}
        slots: list[int] = []
        datas: list[GraphData] = []
        for aig in aigs:
            key = _circuit_key(aig)
            if key not in unique:
                unique[key] = len(datas)
                datas.append(self._encode(aig, *key))
            slots.append(unique[key])
        merged = datas[0] if len(datas) == 1 else batch_graphs(datas)
        predictions = self.gamora.inference_kernel().predict(
            merged.features, merged.adjacency
        )
        per_graph = unbatch_predictions(predictions, [d.num_nodes for d in datas])
        return [per_graph[slot] for slot in slots]

    # ------------------------------------------------------------------
    def plan(self, circuits, max_shard_bytes=_UNSET,
             max_window_bytes=_UNSET) -> ShardPlan:
        """Shard plan for ``circuits`` without running inference.

        Encodes through the graph LRU (so planning a batch warms the same
        cache serving it would) and packs the unique structures against the
        byte budgets — the service-wide ``max_shard_bytes`` /
        ``max_window_bytes`` unless overridden here, so the plan matches
        what :meth:`reason_many` would execute.  Priced against the
        deployment kernel (:meth:`Gamora.inference_kernel`), the path that
        actually runs.  Useful for capacity checks and benchmark reporting.
        """
        if max_shard_bytes is _UNSET:
            max_shard_bytes = self.max_shard_bytes
        if max_window_bytes is _UNSET:
            max_window_bytes = self.max_window_bytes
        aigs = [_as_aig(c) for c in circuits]
        seen: set[tuple[str, str]] = set()
        datas: list[GraphData] = []
        for aig in aigs:
            key = _circuit_key(aig)
            if key not in seen:
                seen.add(key)
                datas.append(self._encode(aig, *key))
        return plan_shards(self.gamora.inference_kernel(), datas,
                           max_shard_bytes, max_window_bytes)

    # ------------------------------------------------------------------
    def reason_many(self, circuits, root_filter: bool = False,
                    correct_lsb: bool = True, lsb_outputs: int = 4,
                    max_shard_bytes=_UNSET,
                    max_window_bytes=_UNSET,
                    postprocess_workers=_UNSET,
                    engine: str = "fast",
                    with_report: bool = False) -> BatchReasoningOutcome:
        """Batched equivalent of calling :meth:`Gamora.reason` per circuit.

        Returns one outcome per input circuit (input order preserved) with
        labels and extractions identical to the sequential path; see the
        module docstring for the pipeline, the scaling knobs, and the
        caching semantics.  ``max_shard_bytes`` and ``postprocess_workers``
        override the service-wide settings for this call only; ``engine``
        selects the post-processing implementation (``"fast"`` — the
        vectorized cut sweep + array-shaped pairing — or ``"legacy"``, the
        per-node baseline; results are cached per engine).

        ``with_report=True`` additionally fills each outcome's
        ``.report`` with its :class:`~repro.reasoning.wordlevel.WordLevelReport`
        — computed for the *whole batch* in one concatenated
        :func:`~repro.reasoning.wordlevel.analyze_adder_trees` pass, not
        one ``analyze_adder_tree`` call per outcome — and stores it in the
        cached payload, so later hits carry their report for free.  The
        report is a pure function of the extraction, so it shares the
        cache entry rather than splitting the options key; an entry cached
        without a report is upgraded in place on the first reporting hit.
        """
        if max_shard_bytes is _UNSET:
            max_shard_bytes = self.max_shard_bytes
        if max_window_bytes is _UNSET:
            max_window_bytes = self.max_window_bytes
        if postprocess_workers is _UNSET:
            postprocess_workers = self.postprocess_workers

        stats = BatchStats()
        with Timer() as total_timer:
            aigs = [_as_aig(c) for c in circuits]
            stats.batch_size = len(aigs)
            options = _normalize_options(root_filter, correct_lsb,
                                         lsb_outputs, engine)
            outcomes: list[ReasoningOutcome | None] = [None] * len(aigs)
            # First occurrence index of each still-uncached structure.
            pending: dict[tuple[str, str], list[int]] = {}
            # Cache hits whose stored payload predates with_report.
            stale_hits: dict[tuple[str, str], list[int]] = {}
            for index, aig in enumerate(aigs):
                key = _circuit_key(aig)
                cached = self.result_cache.get((key[0], options), key[1])
                if cached is not None:
                    labels, extraction, report = cached
                    outcomes[index] = ReasoningOutcome(
                        extraction=extraction, labels=labels,
                        inference_seconds=0.0, postprocess_seconds=0.0,
                        report=report,
                    )
                    stats.result_hits += 1
                    if with_report and report is None:
                        stale_hits.setdefault(key, []).append(index)
                else:
                    pending.setdefault(key, []).append(index)

            if pending:
                self._reason_pending(
                    aigs, pending, outcomes, options, stats,
                    root_filter=root_filter, correct_lsb=correct_lsb,
                    lsb_outputs=lsb_outputs, max_shard_bytes=max_shard_bytes,
                    max_window_bytes=max_window_bytes,
                    postprocess_workers=postprocess_workers, engine=engine,
                    with_report=with_report,
                )

            if stale_hits:
                self._backfill_reports(aigs, stale_hits, outcomes, options,
                                       stats)

            stats.unique_circuits = len(pending)
        stats.total_seconds = total_timer.elapsed
        return BatchReasoningOutcome(outcomes, stats)

    def _backfill_reports(self, aigs, stale_hits, outcomes, options,
                          stats) -> None:
        """Upgrade report-less cache hits in one batched word-level pass.

        Entries cached by a ``with_report=False`` call carry ``None``; the
        first reporting call analyzes all of them together and re-puts the
        payload, so every later hit is served with its report attached.
        """
        groups = list(stale_hits.items())
        with Timer() as report_timer:
            reports = analyze_adder_trees(
                (aigs[positions[0]], outcomes[positions[0]].tree)
                for _, positions in groups
            )
        stats.report_seconds += report_timer.elapsed
        stats.reports_built += len(groups)
        for (key, positions), report in zip(groups, reports):
            for position in positions:
                outcomes[position].report = report
            first = outcomes[positions[0]]
            self.result_cache.put(
                (key[0], options), key[1],
                (first.labels, first.extraction, report),
            )

    def _reason_pending(self, aigs, pending, outcomes, options, stats, *,
                        root_filter: bool, correct_lsb: bool, lsb_outputs: int,
                        max_shard_bytes: int | None,
                        max_window_bytes: int | None = None,
                        postprocess_workers: int | None,
                        engine: str = "fast",
                        with_report: bool = False) -> None:
        """Encode → plan → stream shards → parallel-extract → reassemble."""
        graph_hits_before = self.graph_cache.hits
        with Timer() as encode_timer:
            datas = [
                self._encode(aigs[positions[0]], *key)
                for key, positions in pending.items()
            ]
        stats.encode_seconds += encode_timer.elapsed
        stats.graph_hits += self.graph_cache.hits - graph_hits_before
        stats.graph_misses += len(datas) - stats.graph_hits

        kernel = self.gamora.inference_kernel()
        plan = plan_shards(kernel, datas, max_shard_bytes, max_window_bytes)
        stats.num_shards = len(plan)
        stats.peak_shard_bytes = plan.peak_shard_bytes
        stats.oversize_shards = plan.num_oversize

        # Alignment: pending's insertion order == datas' order; handles,
        # labels, and inference shares are indexed the same way so results
        # reassemble in input order no matter how the packer grouped them.
        keys = list(pending)
        handles: list = [None] * len(datas)
        per_labels: list = [None] * len(datas)
        infer_shares: list[float] = [0.0] * len(datas)
        shard_of: list[int] = [0] * len(datas)  # shard ordinal per circuit
        streamed_of: list[bool] = [False] * len(datas)  # ran windowed?
        degraded_of: list[bool] = [False] * len(datas)  # OOM fallback?

        # Workload hints for auto-sizing (postprocess_workers=None): one
        # worker per unique circuit, in-process when the batch is tiny.
        total_ands = sum(
            aigs[positions[0]].num_ands for positions in pending.values()
        )
        with PostprocessPool(postprocess_workers, num_payloads=len(pending),
                             total_ands=total_ands) as pool:
            stats.postprocess_workers = pool.workers
            for shard_index, shard in enumerate(plan):
                shard_datas = [datas[i] for i in shard.indices]
                with Timer() as assemble_timer:
                    merged = (
                        shard_datas[0] if len(shard_datas) == 1
                        else batch_graphs(shard_datas)
                    )
                stats.assemble_seconds += assemble_timer.elapsed
                stats.num_nodes += merged.num_nodes
                stats.num_edges += merged.num_edges

                shard_degraded = False
                window_plan = shard.window_plan
                with Timer() as infer_timer:
                    try:
                        resilience.fire("infer.forward")  # chaos: OOM here
                        if window_plan is not None:
                            # Oversize circuit admitted as a streaming job:
                            # window-by-window pass, bit-identical labels,
                            # peak activation memory bounded by the plan.
                            merged_labels = kernel.predict_streamed(
                                merged.features, merged.adjacency,
                                window_plan,
                            )
                        else:
                            merged_labels = kernel.predict(
                                merged.features, merged.adjacency
                            )
                    except MemoryError:
                        if window_plan is not None:
                            # Already at the bottom of the degradation
                            # ladder (full -> streamed -> error): the
                            # windowed pass itself could not fit.
                            raise
                        # Degrade, don't die: re-run the same shard
                        # level-windowed at half its estimated footprint.
                        # Labels are bit-identical to the full pass.
                        window_plan = merged.window_plan(
                            max(shard.estimated_bytes // 2, 1), kernel
                        )
                        merged_labels = kernel.predict_streamed(
                            merged.features, merged.adjacency, window_plan
                        )
                        shard_degraded = True
                        stats.degraded_shards += 1
                stats.inference_seconds += infer_timer.elapsed
                if window_plan is not None:
                    stats.streamed_graphs += len(shard.indices)
                    stats.num_windows += window_plan.num_windows
                    stats.peak_window_bytes = max(
                        stats.peak_window_bytes,
                        window_plan.peak_window_bytes,
                    )
                shard_labels = unbatch_predictions(
                    merged_labels, [d.num_nodes for d in shard_datas]
                )
                share = infer_timer.elapsed / len(shard.indices)
                # Queue this shard's extractions; with workers they run
                # while the next shard's forward pass executes above.
                for data_index, labels in zip(shard.indices, shard_labels):
                    per_labels[data_index] = labels
                    infer_shares[data_index] = share
                    shard_of[data_index] = shard_index
                    streamed_of[data_index] = window_plan is not None
                    degraded_of[data_index] = shard_degraded
                    handles[data_index] = pool.submit(
                        aigs[pending[keys[data_index]][0]], labels,
                        root_filter, correct_lsb, lsb_outputs, engine,
                    )

            # Drain every handle first: the batched word-level pass below
            # needs all extractions, and collection order matches input
            # order either way.
            results = [handle.get() for handle in handles]
            reports: list = [None] * len(keys)
            if with_report:
                with Timer() as report_timer:
                    reports = analyze_adder_trees(
                        (aigs[pending[key][0]], results[data_index][0].tree)
                        for data_index, key in enumerate(keys)
                    )
                stats.report_seconds += report_timer.elapsed
                stats.reports_built += len(keys)

            store_results = self.result_cache.capacity > 0
            for data_index, key in enumerate(keys):
                extraction, post_seconds = results[data_index]
                report = reports[data_index]
                stats.postprocess_seconds += post_seconds
                labels = per_labels[data_index]
                if store_results:
                    # The cached labels — and the extraction's array-core
                    # tree — alias the arrays handed to callers; freeze
                    # them so accidental mutation raises instead of
                    # silently poisoning later cache hits.  With the cache
                    # disabled nothing is stored, so the arrays stay
                    # writable like sequential reason()'s.
                    for array in labels.values():
                        array.setflags(write=False)
                    _freeze_arrays(extraction)
                    self.result_cache.put(
                        (key[0], options), key[1], (labels, extraction, report)
                    )
                for slot, position in enumerate(pending[key]):
                    if store_results or slot == 0:
                        outcome_labels = labels
                        outcome_extraction = extraction
                        outcome_report = report
                    else:
                        # Unfrozen results must not alias between duplicate
                        # outcomes: sequential reason() gives every call its
                        # own writable labels and extraction, so mutating
                        # one twin must not touch the other.
                        outcome_labels = {
                            task: array.copy() for task, array in labels.items()
                        }
                        outcome_extraction = copy.deepcopy(extraction)
                        outcome_report = copy.deepcopy(report)
                    outcomes[position] = ReasoningOutcome(
                        extraction=outcome_extraction, labels=outcome_labels,
                        inference_seconds=infer_shares[data_index],
                        postprocess_seconds=post_seconds,
                        report=outcome_report,
                        shard_index=shard_of[data_index],
                        streamed=streamed_of[data_index],
                        degraded=degraded_of[data_index],
                    )
            stats.postprocess_fallbacks = pool.fallbacks
            stats.postprocess_restarts = pool.restarts

    # ------------------------------------------------------------------
    _MODEL_MARKER = "MODEL.tag"
    # Stamped alongside the model fingerprint.  Bump the version whenever
    # the *meaning* of cached results changes — post-processing semantics,
    # the options key, the outcome payload — so entries computed by older
    # code are invalidated even though the model weights are unchanged
    # (``to_dir`` skips existing files by name, so stale entries would
    # otherwise never be refreshed).  Any marker starting with the family
    # prefix identifies a directory this service family owns; everything
    # else is foreign data and is never touched.
    _CACHE_FORMAT_FAMILY = "gamora-result-cache-"
    # v2: the options key gained the post-processing engine field.
    # v3: the extraction payload carries the array-core AdderTree
    #     (struct-of-arrays slices + candidate rows, lazy detection).
    # v4: the payload is a (labels, extraction, report) triple — the
    #     word-level report computed by the batched with_report path (None
    #     when the entry was cached by a non-reporting call).
    # v5: labels come from the shared float32 deployment kernel (padded
    #     row-stable GEMMs) instead of the float64 training-path forward —
    #     label bits can differ from v4 entries on argmax-tie nodes.
    _CACHE_FORMAT = _CACHE_FORMAT_FAMILY + "v5"

    # The encoded-graph cache persists separately: encodings depend only on
    # the encoding configuration (feature mode / direction), not on the
    # model weights, so the stamp carries an encoding fingerprint and a
    # retrained model keeps its graph spill valid.
    _GRAPH_MARKER = "GRAPH.tag"
    _GRAPH_FORMAT_FAMILY = "gamora-graph-cache-"
    # v2: GraphData gained the cached topological-levels array that window
    #     planning consumes (v1 pickles would deserialize without it).
    _GRAPH_FORMAT = _GRAPH_FORMAT_FAMILY + "v2"

    @classmethod
    def _validate_owned_dir(cls, directory, marker_name: str,
                            family: str, what: str) -> str | None:
        """Shared ownership rule for every stamped cache directory.

        A directory is usable when it is fresh (no ``.npz`` payload) or
        carries a marker this service family wrote; a foreign marker or
        unstamped ``.npz`` files make it untouchable.
        """
        from pathlib import Path

        directory = Path(directory)
        marker = directory / marker_name
        if marker.is_file():
            try:
                owned = marker.read_text().startswith(family)
            except OSError:
                owned = False
            if owned:
                return None
            return (f"{marker} exists but was not written by a reasoning "
                    "service")
        if any(directory.glob("*.npz")):
            return (f"{directory} contains .npz files but no {what} stamp")
        return None

    @classmethod
    def validate_cache_dir(cls, directory) -> str | None:
        """Why ``directory`` cannot be used as a result-cache dir, or None.

        Single source of truth for cache-directory ownership — used by
        :meth:`save_result_cache` before writing anything and by the CLI's
        fail-fast precheck, so the two can never diverge.
        """
        return cls._validate_owned_dir(directory, cls._MODEL_MARKER,
                                       cls._CACHE_FORMAT_FAMILY,
                                       "result-cache")

    @classmethod
    def validate_graph_cache_dir(cls, directory) -> str | None:
        """Why ``directory`` cannot hold the encoded-graph cache, or None."""
        return cls._validate_owned_dir(directory, cls._GRAPH_MARKER,
                                       cls._GRAPH_FORMAT_FAMILY,
                                       "graph-cache")

    def _model_fingerprint(self) -> str:
        """Digest of the bound Gamora's configuration and weights.

        Cached results depend on the exact model that produced them, so
        the on-disk cache is stamped with this fingerprint — a directory
        written under a different (or retrained) model must never be
        served as hits.  Memoized: a service instance's model is fixed
        (``Gamora.fit`` drops its lazily built service on retrain).
        """
        with self._model_fp_lock:
            if self._model_fp is not None:
                return self._model_fp
            import hashlib
            import json

            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                json.dumps(self.gamora.model_config.to_dict(),
                           sort_keys=True).encode("utf-8")
            )
            state = self.gamora.net.state_dict()
            for name in sorted(state):
                array = np.ascontiguousarray(state[name])
                digest.update(name.encode("utf-8"))
                digest.update(repr((array.shape, array.dtype.str)).encode("ascii"))
                digest.update(array.tobytes())
            self._model_fp = digest.hexdigest()
            return self._model_fp

    def _encoding_fingerprint(self) -> str:
        """Digest of everything a :class:`GraphData` encoding depends on.

        Deliberately *not* the model fingerprint: features and adjacency
        are weight-independent, so a retrained model reloads its encoded
        graphs while a different ``feature_mode``/``direction`` (which
        changes every feature row) invalidates them.
        """
        import hashlib
        import json

        config = self.gamora.model_config
        digest = hashlib.blake2b(digest_size=16)
        digest.update(
            json.dumps({"feature_mode": config.feature_mode,
                        "direction": config.direction},
                       sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()

    def _spill_cache(self, cache: StructuralHashCache, directory,
                     marker_name: str, stamp: str, error: str | None,
                     what: str) -> int:
        """Stamp-guarded spill shared by the result and graph caches.

        The directory is stamped; one this service family stamped under a
        *different* fingerprint (or format version) is purged first —
        those entries could never be valid again, and ``to_dir`` skips by
        file name, so stale files would otherwise shadow recomputed
        entries forever.  A directory holding foreign data (``.npz``
        files without our stamp, or someone else's marker) is refused
        (``OSError``) rather than cleaned out.  Returns the number of
        entries written; already-present entries are skipped, so repeated
        saves are cheap and incremental.
        """
        from pathlib import Path

        directory = Path(directory)
        if error is not None:
            raise OSError(
                f"{error}; refusing to use it as a {what} directory"
            )
        marker = directory / marker_name
        stamped = marker.is_file() and marker.read_text().strip() == stamp
        if not stamped:
            # Validation above proved the directory is ours or fresh, so
            # any .npz entries here are a stale model's/format's: purge
            # and restamp *before* spilling, so a crash mid-spill can
            # only leave valid entries behind.
            for stale in directory.glob("*.npz"):
                stale.unlink()
            directory.mkdir(parents=True, exist_ok=True)
            # Atomic stamp (tmp + rename, like the npz entries): a crash
            # mid-write must not leave a truncated marker that would make
            # the directory read as foreign — and unusable — forever.
            import os

            marker_tmp = marker.with_name(f"{marker.name}.{os.getpid()}.tmp")
            marker_tmp.write_text(stamp + "\n")
            marker_tmp.replace(marker)
        # The stamp doubles as the entry namespace: entries written by a
        # concurrent service under a different model get different file
        # names and are ignored on load, so a racing save can never
        # poison this cache with another configuration's artifacts.
        return cache.to_dir(directory, namespace=stamp)

    @staticmethod
    def _reload_cache(cache: StructuralHashCache, directory,
                      marker_name: str, stamp: str) -> int:
        """Stamp-checked reload shared by the result and graph caches."""
        from pathlib import Path

        marker = Path(directory) / marker_name
        if not marker.is_file():
            return 0
        if marker.read_text().strip() != stamp:
            return 0
        loaded = cache.from_dir(directory, namespace=stamp)
        # Report what actually survived insertion: the LRU bound (or a
        # disabled cache) can retain fewer entries than the dir held.
        return min(loaded, len(cache))

    def save_result_cache(self, directory) -> int:
        """Spill the result cache to ``directory`` (fingerprint-named npz).

        Stamped with the bound model's weight fingerprint — see
        :meth:`_spill_cache` for the ownership/purge rules.
        """
        return self._spill_cache(
            self.result_cache, directory, self._MODEL_MARKER,
            f"{self._CACHE_FORMAT}:{self._model_fingerprint()}",
            self.validate_cache_dir(directory), "result-cache",
        )

    def load_result_cache(self, directory) -> int:
        """Reload a previously saved result cache from ``directory``.

        Loads nothing (returns 0) unless the directory's model stamp
        matches the bound Gamora — results computed by another model must
        not be served as hits.  Re-applies the frozen-labels invariant
        (pickling drops the read-only flag): cached label arrays are
        shared between hits, so they must reject accidental mutation.
        Returns the number of entries loaded.
        """
        stamp = f"{self._CACHE_FORMAT}:{self._model_fingerprint()}"
        loaded = self._reload_cache(self.result_cache, directory,
                                    self._MODEL_MARKER, stamp)
        if loaded:
            for _, _, value in self.result_cache.items():
                _freeze_arrays(value)
        return loaded

    def save_graph_cache(self, directory) -> int:
        """Spill the encoded-graph cache (mirrors :meth:`save_result_cache`).

        Entries are :class:`GraphData` encodings keyed by structural hash;
        the stamp carries the encoding fingerprint, so a service with a
        different ``feature_mode``/``direction`` purges them while a
        merely retrained model keeps them.
        """
        return self._spill_cache(
            self.graph_cache, directory, self._GRAPH_MARKER,
            f"{self._GRAPH_FORMAT}:{self._encoding_fingerprint()}",
            self.validate_graph_cache_dir(directory), "graph-cache",
        )

    def load_graph_cache(self, directory) -> int:
        """Reload a spilled encoded-graph cache (0 on a stamp mismatch)."""
        stamp = f"{self._GRAPH_FORMAT}:{self._encoding_fingerprint()}"
        return self._reload_cache(self.graph_cache, directory,
                                  self._GRAPH_MARKER, stamp)

    # ------------------------------------------------------------------
    def clear_result_cache(self) -> None:
        """Drop cached outcomes (required after retraining the Gamora).

        Also forgets the memoized model fingerprint: after an in-place
        retrain the next persistent-cache save/load must restamp with the
        *new* weights, never the pre-retrain digest.
        """
        self.result_cache.clear()
        with self._model_fp_lock:
            self._model_fp = None

    def clear_caches(self) -> None:
        """Drop both caches (encodings and results)."""
        self.graph_cache.clear()
        self.result_cache.clear()
        with self._model_fp_lock:
            self._model_fp = None

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Counter snapshots of both LRUs."""
        return {
            "graph": self.graph_cache.stats(),
            "result": self.result_cache.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ReasoningService({self.gamora!r}, graph_cache="
            f"{self.graph_cache!r}, result_cache={self.result_cache!r}, "
            f"max_shard_bytes={self.max_shard_bytes}, "
            f"max_window_bytes={self.max_window_bytes}, "
            f"postprocess_workers={self.postprocess_workers})"
        )
