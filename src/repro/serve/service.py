"""Batched reasoning service: one forward pass for many circuits.

:class:`ReasoningService` is the serving layer over a trained
:class:`~repro.core.api.Gamora`.  A call to :meth:`reason_many` takes N
independent circuits and

1. **deduplicates** them by :meth:`AIG.structural_hash()
   <repro.aig.graph.AIG.structural_hash>` — repeated designs (the common
   case under real traffic) are reasoned once per batch and served from the
   result LRU on later batches;
2. **encodes** the unique circuits to :class:`~repro.learn.data.GraphData`
   through a structural-hash LRU, so re-submitted structures skip feature
   and adjacency construction entirely;
3. **merges** the encoded graphs into one block-diagonal mega-graph
   (offset node ids, stacked features, CSR block-diagonal adjacency) and
   runs a *single* vectorized forward pass instead of N;
4. **fans out** the node predictions per circuit and post-processes each
   into an adder tree, returning one
   :class:`~repro.core.api.ReasoningOutcome` per input circuit, plus
   per-stage timings in :class:`BatchStats`.

Caching semantics
-----------------
Both caches are keyed by the permutation-invariant structural hash and
guarded by an exact node-numbering fingerprint (see
:mod:`repro.serve.cache`), so a cache can never hand back artifacts indexed
under a different variable numbering.  Result-cache entries additionally
key on the post-processing options, because the extraction depends on them.
Cache hits share label arrays and extraction objects between outcomes —
treat returned outcomes as read-only.

The service snapshots nothing: it reads the bound Gamora's network at call
time.  If you *retrain* the Gamora, cached encodings stay valid (features
do not depend on weights) but cached results become stale — call
:meth:`clear_result_cache` (``Gamora.fit`` drops its lazily built service
automatically).

The invariant that makes all of this safe — batched predictions are
identical to sequential ones — is enforced by ``tests/test_serve_batching.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.aig.graph import AIG
from repro.core.api import Gamora, ReasoningOutcome, _as_aig
from repro.core.postprocess import extract_from_predictions
from repro.learn.data import GraphData, batch_graphs, build_graph_data, unbatch_predictions
from repro.learn.trainer import predict_labels, predict_labels_many
from repro.serve.cache import StructuralHashCache, exact_fingerprint
from repro.utils.timing import Timer

__all__ = ["BatchStats", "BatchReasoningOutcome", "ReasoningService"]


@dataclass
class BatchStats:
    """Per-stage accounting for one :meth:`ReasoningService.reason_many`."""

    batch_size: int = 0
    unique_circuits: int = 0  # distinct structures actually computed
    result_hits: int = 0  # circuits served from the result LRU
    graph_hits: int = 0  # encodings served from the graph LRU
    graph_misses: int = 0  # encodings built this call
    encode_seconds: float = 0.0
    assemble_seconds: float = 0.0  # block-diagonal merge
    inference_seconds: float = 0.0  # the single batched forward pass
    postprocess_seconds: float = 0.0  # summed over unique circuits
    total_seconds: float = 0.0
    num_nodes: int = 0  # merged mega-graph size
    num_edges: int = 0

    def summary(self) -> str:
        return (
            f"batch={self.batch_size} unique={self.unique_circuits} "
            f"result_hits={self.result_hits} graph_hits={self.graph_hits} | "
            f"encode {self.encode_seconds * 1e3:.1f}ms, "
            f"assemble {self.assemble_seconds * 1e3:.1f}ms, "
            f"infer {self.inference_seconds * 1e3:.1f}ms, "
            f"post {self.postprocess_seconds * 1e3:.1f}ms, "
            f"total {self.total_seconds * 1e3:.1f}ms"
        )


@dataclass
class BatchReasoningOutcome:
    """Sequence of per-circuit outcomes plus batch-level stats."""

    outcomes: list[ReasoningOutcome] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ReasoningOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]


class ReasoningService:
    """Block-diagonal batched reasoning over a trained Gamora.

    ``graph_cache_size`` bounds the encoded-:class:`GraphData` LRU and
    ``result_cache_size`` the full-outcome LRU; either can be 0 to disable
    that cache.  The service is the architectural seam for future scaling
    work (sharded mega-batches, async post-processing workers): everything
    upstream of :meth:`reason_many` only ever sees circuit objects, and
    everything downstream only sees per-circuit outcomes.
    """

    def __init__(self, gamora: Gamora, graph_cache_size: int = 128,
                 result_cache_size: int = 256) -> None:
        self.gamora = gamora
        self.graph_cache = StructuralHashCache(graph_cache_size)
        self.result_cache = StructuralHashCache(result_cache_size)

    # ------------------------------------------------------------------
    def encode(self, circuit) -> GraphData:
        """Encode one circuit, served from the structural-hash LRU."""
        aig = _as_aig(circuit)
        return self._encode(aig, aig.structural_hash(), exact_fingerprint(aig))

    def _encode(self, aig: AIG, shash: str, fingerprint: str) -> GraphData:
        config = self.gamora.model_config

        def build() -> GraphData:
            return build_graph_data(
                aig,
                feature_mode=config.feature_mode,
                direction=config.direction,
                with_labels=False,
            )

        return self.graph_cache.get_or_build(shash, fingerprint, build)

    # ------------------------------------------------------------------
    def predict_many(self, circuits) -> list[dict[str, np.ndarray]]:
        """Per-node label predictions for each circuit, one forward pass.

        Structurally identical circuits are encoded and inferred once; the
        returned list still has one entry per input, in input order.
        """
        aigs = [_as_aig(c) for c in circuits]
        if not aigs:
            return []
        unique: dict[tuple[str, str], int] = {}
        slots: list[int] = []
        datas: list[GraphData] = []
        for aig in aigs:
            key = (aig.structural_hash(), exact_fingerprint(aig))
            if key not in unique:
                unique[key] = len(datas)
                datas.append(self._encode(aig, *key))
            slots.append(unique[key])
        per_graph = predict_labels_many(self.gamora.net, datas)
        return [per_graph[slot] for slot in slots]

    # ------------------------------------------------------------------
    def reason_many(self, circuits, root_filter: bool = False,
                    correct_lsb: bool = True,
                    lsb_outputs: int = 4) -> BatchReasoningOutcome:
        """Batched equivalent of calling :meth:`Gamora.reason` per circuit.

        Returns one outcome per input circuit (input order preserved) with
        labels and extractions identical to the sequential path; see the
        module docstring for the pipeline and caching semantics.
        """
        stats = BatchStats()
        with Timer() as total_timer:
            aigs = [_as_aig(c) for c in circuits]
            stats.batch_size = len(aigs)
            options = (root_filter, correct_lsb, lsb_outputs)
            outcomes: list[ReasoningOutcome | None] = [None] * len(aigs)
            # First occurrence index of each still-uncached structure.
            pending: dict[tuple[str, str], list[int]] = {}
            for index, aig in enumerate(aigs):
                key = (aig.structural_hash(), exact_fingerprint(aig))
                cached = self.result_cache.get((key[0], options), key[1])
                if cached is not None:
                    labels, extraction = cached
                    outcomes[index] = ReasoningOutcome(
                        extraction=extraction, labels=labels,
                        inference_seconds=0.0, postprocess_seconds=0.0,
                    )
                    stats.result_hits += 1
                else:
                    pending.setdefault(key, []).append(index)

            if pending:
                graph_hits_before = self.graph_cache.hits
                with Timer() as encode_timer:
                    datas = [
                        self._encode(aigs[positions[0]], *key)
                        for key, positions in pending.items()
                    ]
                stats.encode_seconds = encode_timer.elapsed
                stats.graph_hits = self.graph_cache.hits - graph_hits_before
                stats.graph_misses = len(datas) - stats.graph_hits

                with Timer() as assemble_timer:
                    merged = datas[0] if len(datas) == 1 else batch_graphs(datas)
                stats.assemble_seconds = assemble_timer.elapsed
                stats.num_nodes = merged.num_nodes
                stats.num_edges = merged.num_edges

                with Timer() as infer_timer:
                    merged_labels = predict_labels(self.gamora.net, merged)
                stats.inference_seconds = infer_timer.elapsed
                per_graph = unbatch_predictions(
                    merged_labels, [d.num_nodes for d in datas]
                )

                infer_share = stats.inference_seconds / len(datas)
                for (key, positions), labels in zip(pending.items(), per_graph):
                    aig = aigs[positions[0]]
                    with Timer() as post_timer:
                        extraction = extract_from_predictions(
                            aig, labels, root_filter=root_filter,
                            correct_lsb=correct_lsb, lsb_outputs=lsb_outputs,
                        )
                    stats.postprocess_seconds += post_timer.elapsed
                    # The cached labels alias the arrays handed to callers;
                    # freeze them so accidental mutation raises instead of
                    # silently poisoning later cache hits.
                    for array in labels.values():
                        array.setflags(write=False)
                    self.result_cache.put(
                        (key[0], options), key[1], (labels, extraction)
                    )
                    for position in positions:
                        outcomes[position] = ReasoningOutcome(
                            extraction=extraction, labels=labels,
                            inference_seconds=infer_share,
                            postprocess_seconds=post_timer.elapsed,
                        )

            stats.unique_circuits = len(pending)
        stats.total_seconds = total_timer.elapsed
        return BatchReasoningOutcome(outcomes, stats)

    # ------------------------------------------------------------------
    def clear_result_cache(self) -> None:
        """Drop cached outcomes (required after retraining the Gamora)."""
        self.result_cache.clear()

    def clear_caches(self) -> None:
        """Drop both caches (encodings and results)."""
        self.graph_cache.clear()
        self.result_cache.clear()

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Counter snapshots of both LRUs."""
        return {
            "graph": self.graph_cache.stats(),
            "result": self.result_cache.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ReasoningService({self.gamora!r}, graph_cache="
            f"{self.graph_cache!r}, result_cache={self.result_cache!r})"
        )
