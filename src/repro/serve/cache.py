"""Structural-hash keyed LRU caching for the reasoning service.

The service caches two kinds of derived artifacts per circuit — the encoded
:class:`~repro.learn.data.GraphData` and full reasoning results — keyed by
:meth:`AIG.structural_hash() <repro.aig.graph.AIG.structural_hash>`.  That
hash is *node-id permutation invariant*: two AIGs built from equivalent
construction orders hash identically even though their variable numbering
differs.  Cached artifacts, however, are indexed by variable id (feature
rows, label arrays, extracted adder variables), so serving a permutation
twin the other twin's encoding would silently misattribute every node.

:class:`StructuralHashCache` therefore stores an *exact fingerprint* (a
digest over the raw fan-in/output arrays, i.e. the concrete numbering) next
to each entry and treats a fingerprint mismatch as a miss, recomputing and
replacing the entry.  Lookups for a structure that was cached under a
different node numbering are counted in ``fingerprint_conflicts``.

Persistence: :meth:`StructuralHashCache.to_dir` /
:meth:`StructuralHashCache.from_dir` spill and reload entries as
fingerprint-named ``.npz`` files (one per entry, pickled payload wrapped in
uint8 arrays), so a service restart keeps its steady-state hit rate.  The
directory is trusted input — loading unpickles it; point it only at
directories this service wrote.

Thread safety: every path that touches the ``OrderedDict`` or the counters
holds an internal :class:`threading.RLock` — ``move_to_end``/``popitem``
racing from two daemon threads would otherwise corrupt the LRU order, and
``get_or_build`` holds the lock across the builder so a key is never built
twice concurrently (the second thread blocks and then hits).  The lock is
reentrant so a builder that consults the same cache cannot deadlock.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from pathlib import Path
from typing import Any

import numpy as np

from repro.aig.graph import AIG

__all__ = ["StructuralHashCache", "exact_fingerprint"]

# Orphaned spill temp files older than this are garbage from a crashed
# writer and get swept by the next save.
_TMP_MAX_AGE_SECONDS = 10 * 60


def exact_fingerprint(aig: AIG) -> str:
    """Digest of the concrete node numbering (fan-ins + outputs, verbatim).

    Unlike :meth:`AIG.structural_hash` this is *not* permutation invariant:
    it distinguishes two equivalent AIGs whose AND nodes were created in a
    different order.  The cache uses it to guard hash-keyed entries whose
    payloads are indexed by variable id.
    """
    fanin0, fanin1 = aig.fanin_arrays()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"fp:%d:%d:" % (aig.num_inputs, aig.num_outputs))
    digest.update(fanin0.tobytes())
    digest.update(fanin1.tobytes())
    digest.update(",".join(str(lit) for lit in aig.outputs).encode("ascii"))
    return digest.hexdigest()


class StructuralHashCache:
    """A fingerprint-guarded LRU mapping hash keys to computed artifacts.

    ``capacity <= 0`` disables the cache entirely (every lookup misses and
    nothing is stored), which keeps call sites branch-free.  Counters:

    * ``hits`` / ``misses`` — lookup outcomes (a fingerprint conflict counts
      as a miss);
    * ``evictions`` — entries dropped because the cache was full;
    * ``fingerprint_conflicts`` — misses caused specifically by a key match
      with a different concrete node numbering.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[Any, tuple[str, Any]] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fingerprint_conflicts = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, key: Any, fingerprint: str) -> bool:
        """Whether :meth:`get` would hit, without touching counters or LRU order.

        Fingerprint-aware on purpose: a permutation twin stored under the
        same structural hash but a different node numbering is *not*
        contained — reporting it present while ``get()`` rejects it was
        exactly the membership/lookup divergence this replaces (the old
        ``in`` operator checked the key alone).
        """
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry[0] == fingerprint

    def get(self, key: Any, fingerprint: str) -> Any | None:
        """Return the cached value, or None on a miss (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_fingerprint, value = entry
            if stored_fingerprint != fingerprint:
                self.misses += 1
                self.fingerprint_conflicts += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Any, fingerprint: str, value: Any) -> None:
        """Insert/replace an entry, evicting the least recently used."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (fingerprint, value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_build(self, key: Any, fingerprint: str,
                     builder: Callable[[], Any]) -> Any:
        """Cached value if present, else ``builder()`` (stored afterwards).

        The whole lookup-build-store sequence runs under the cache lock:
        two threads racing the same key serialize, and the loser is served
        the winner's entry instead of building a duplicate.  Builders for
        *different* keys also serialize — acceptable because the daemon's
        scheduler funnels builds through one thread, and correctness
        (exactly-once builds) is what concurrent callers need here.
        """
        with self._lock:
            value = self.get(key, fingerprint)
            if value is None:
                value = builder()
                self.put(key, fingerprint, value)
            return value

    def items(self) -> Iterator[tuple[Any, str, Any]]:
        """Iterate ``(key, fingerprint, value)`` without touching counters.

        Snapshots the entries under the lock first, so iteration is safe
        against concurrent mutation (the snapshot is what gets iterated).
        """
        with self._lock:
            snapshot = [
                (key, fingerprint, value)
                for key, (fingerprint, value) in self._entries.items()
            ]
        yield from snapshot

    # ------------------------------------------------------------------
    # On-disk persistence
    # ------------------------------------------------------------------
    @staticmethod
    def _entry_name(key: Any, fingerprint: str, namespace: str = "") -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(namespace.encode("utf-8"))
        digest.update(b"|")
        digest.update(repr(key).encode("utf-8"))
        digest.update(b"|")
        digest.update(fingerprint.encode("utf-8"))
        return digest.hexdigest() + ".npz"

    def to_dir(self, directory: str | Path, namespace: str = "") -> int:
        """Spill every entry to ``directory`` (created if missing).

        Each entry becomes one fingerprint-named ``.npz`` file; files whose
        name already exists are skipped (same name means same namespace,
        key and fingerprint, hence the same computed payload).  Entries
        whose value cannot be pickled are skipped silently.  ``namespace``
        is folded into every file name: writers with different namespaces
        (e.g. different model stamps) can never collide on — or poison —
        each other's entries, even racing over one directory.  Returns the
        number of files written.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Sweep temp files orphaned by crashed spills.  Only clearly stale
        # ones: a fresh .tmp may be another process's in-flight write.
        import time

        for orphan in directory.glob("*.tmp"):
            try:
                if time.time() - orphan.stat().st_mtime > _TMP_MAX_AGE_SECONDS:
                    orphan.unlink()
            except OSError:
                pass
        written = 0
        for key, fingerprint, value in self.items():
            path = directory / self._entry_name(key, fingerprint, namespace)
            if path.exists():
                continue
            try:
                payload = {
                    "key": np.frombuffer(pickle.dumps(key), dtype=np.uint8),
                    "fingerprint": np.frombuffer(
                        fingerprint.encode("utf-8"), dtype=np.uint8
                    ),
                    "namespace": np.frombuffer(
                        namespace.encode("utf-8"), dtype=np.uint8
                    ),
                    "value": np.frombuffer(pickle.dumps(value), dtype=np.uint8),
                }
            except Exception:
                continue
            # Write via a per-process temp name, then rename: a crash
            # mid-write never leaves a truncated entry, and two processes
            # spilling the same entry concurrently cannot interleave
            # writes (last rename wins with identical content).
            tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
            with open(tmp, "wb") as stream:
                np.savez(stream, **payload)
            tmp.replace(path)
            written += 1
        return written

    def from_dir(self, directory: str | Path, namespace: str = "") -> int:
        """Load previously spilled entries from ``directory``.

        Only entries written under the same ``namespace`` are accepted
        (each file records the namespace it was saved with — a leftover
        entry from another writer, e.g. a different model, is skipped even
        though it sits in the same directory).  Unreadable or corrupt
        files are skipped; insertion respects the capacity (the LRU evicts
        as usual).  Returns the number of entries loaded.  A missing
        directory loads nothing.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return 0
        loaded = 0
        for path in sorted(directory.glob("*.npz")):
            try:
                with np.load(path, allow_pickle=False) as archive:
                    stored = archive["namespace"].tobytes().decode("utf-8")
                    if stored != namespace:
                        continue
                    key = pickle.loads(archive["key"].tobytes())
                    fingerprint = archive["fingerprint"].tobytes().decode("utf-8")
                    value = pickle.loads(archive["value"].tobytes())
            except Exception:
                continue
            self.put(key, fingerprint, value)
            loaded += 1
        return loaded

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot for logging and assertions."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "fingerprint_conflicts": self.fingerprint_conflicts,
            }

    def __repr__(self) -> str:
        return (
            f"StructuralHashCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
