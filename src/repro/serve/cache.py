"""Structural-hash keyed LRU caching for the reasoning service.

The service caches two kinds of derived artifacts per circuit — the encoded
:class:`~repro.learn.data.GraphData` and full reasoning results — keyed by
:meth:`AIG.structural_hash() <repro.aig.graph.AIG.structural_hash>`.  That
hash is *node-id permutation invariant*: two AIGs built from equivalent
construction orders hash identically even though their variable numbering
differs.  Cached artifacts, however, are indexed by variable id (feature
rows, label arrays, extracted adder variables), so serving a permutation
twin the other twin's encoding would silently misattribute every node.

:class:`StructuralHashCache` therefore stores an *exact fingerprint* (a
digest over the raw fan-in/output arrays, i.e. the concrete numbering) next
to each entry and treats a fingerprint mismatch as a miss, recomputing and
replacing the entry.  Lookups for a structure that was cached under a
different node numbering are counted in ``fingerprint_conflicts``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

from repro.aig.graph import AIG

__all__ = ["StructuralHashCache", "exact_fingerprint"]


def exact_fingerprint(aig: AIG) -> str:
    """Digest of the concrete node numbering (fan-ins + outputs, verbatim).

    Unlike :meth:`AIG.structural_hash` this is *not* permutation invariant:
    it distinguishes two equivalent AIGs whose AND nodes were created in a
    different order.  The cache uses it to guard hash-keyed entries whose
    payloads are indexed by variable id.
    """
    fanin0, fanin1 = aig.fanin_arrays()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"fp:%d:%d:" % (aig.num_inputs, aig.num_outputs))
    digest.update(fanin0.tobytes())
    digest.update(fanin1.tobytes())
    digest.update(",".join(str(lit) for lit in aig.outputs).encode("ascii"))
    return digest.hexdigest()


class StructuralHashCache:
    """A fingerprint-guarded LRU mapping hash keys to computed artifacts.

    ``capacity <= 0`` disables the cache entirely (every lookup misses and
    nothing is stored), which keeps call sites branch-free.  Counters:

    * ``hits`` / ``misses`` — lookup outcomes (a fingerprint conflict counts
      as a miss);
    * ``evictions`` — entries dropped because the cache was full;
    * ``fingerprint_conflicts`` — misses caused specifically by a key match
      with a different concrete node numbering.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[Any, tuple[str, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fingerprint_conflicts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: Any, fingerprint: str) -> bool:
        """Whether :meth:`get` would hit, without touching counters or LRU order.

        Fingerprint-aware on purpose: a permutation twin stored under the
        same structural hash but a different node numbering is *not*
        contained — reporting it present while ``get()`` rejects it was
        exactly the membership/lookup divergence this replaces (the old
        ``in`` operator checked the key alone).
        """
        entry = self._entries.get(key)
        return entry is not None and entry[0] == fingerprint

    def get(self, key: Any, fingerprint: str) -> Any | None:
        """Return the cached value, or None on a miss (counted)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stored_fingerprint, value = entry
        if stored_fingerprint != fingerprint:
            self.misses += 1
            self.fingerprint_conflicts += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: Any, fingerprint: str, value: Any) -> None:
        """Insert/replace an entry, evicting the least recently used."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (fingerprint, value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_build(self, key: Any, fingerprint: str,
                     builder: Callable[[], Any]) -> Any:
        """Cached value if present, else ``builder()`` (stored afterwards)."""
        value = self.get(key, fingerprint)
        if value is None:
            value = builder()
            self.put(key, fingerprint, value)
        return value

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot for logging and assertions."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "fingerprint_conflicts": self.fingerprint_conflicts,
        }

    def __repr__(self) -> str:
        return (
            f"StructuralHashCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
