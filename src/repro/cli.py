"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the release's day-to-day flows:

* ``gen``     — generate a multiplier and write it as AIGER;
* ``stats``   — print AIG statistics for a netlist file;
* ``extract`` — exact adder-tree extraction on a netlist;
* ``train``   — train a Gamora model and save the weights;
* ``reason``  — run a trained model over a netlist and report the tree;
* ``batch-reason`` — reason over many netlists in one batched forward pass
  (block-diagonal merge + structural-hash caching) with per-stage timing;
* ``serve``   — always-on daemon over a Unix socket: concurrent requests
  coalesce into micro-batches, caches stay warm across requests and
  (via ``--cache-dir``) across restarts;
* ``map``     — technology-map a netlist and report cell statistics;
* ``cec``     — equivalence-check two netlists;
* ``verify``  — SCA-verify a generated multiplier.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.aig import read_aiger, write_aag, write_aig
from repro.generators import make_multiplier

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gamora reproduction: graph-learning symbolic reasoning for AIGs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a multiplier netlist")
    gen.add_argument("output", help="output path (.aag or .aig)")
    gen.add_argument("--width", type=int, default=8)
    gen.add_argument("--kind", choices=["csa", "booth"], default="csa")
    gen.add_argument("--style", default=None,
                     help="reduction style (array/wallace/dadda)")

    stats = sub.add_parser("stats", help="print netlist statistics")
    stats.add_argument("netlist")

    extract = sub.add_parser("extract", help="exact adder-tree extraction")
    extract.add_argument("netlist")
    extract.add_argument("--max-cuts", type=int, default=10)
    extract.add_argument("--engine", choices=["fast", "legacy"],
                         default="fast",
                         help="vectorized sweep + array pairing (fast) or "
                              "the per-node baseline (legacy)")
    extract.add_argument("--kernel", choices=["auto", "numpy", "numba"],
                         default=None,
                         help="hot-path kernel backend (default: REPRO_KERNEL "
                              "env var, else auto = numba when installed)")

    train = sub.add_parser("train", help="train a Gamora model")
    train.add_argument("model_out", help="output .npz path")
    train.add_argument("--width", type=int, default=8)
    train.add_argument("--kind", choices=["csa", "booth"], default="csa")
    train.add_argument("--model", choices=["shallow", "deep"], default="shallow")
    train.add_argument("--epochs", type=int, default=250)
    train.add_argument("--max-window-bytes", type=int, default=None,
                       help="memory budget per training window: epochs run "
                            "level-windowed with gradient accumulation under "
                            "this budget (default: one full-batch window)")
    train.add_argument("--seed", type=int, default=None,
                       help="window-order shuffle seed (default: the repo-wide "
                            "deterministic seed)")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       help="save a resumable checkpoint (weights + Adam "
                            "moments + shuffle RNG) every N epochs; an "
                            "existing checkpoint resumes the run "
                            "bit-identically (0 disables)")
    train.add_argument("--checkpoint", default=None,
                       help="checkpoint path (default: <model_out>.ckpt when "
                            "--checkpoint-every is set)")

    reason = sub.add_parser("reason", help="reason over a netlist with a model")
    reason.add_argument("model")
    reason.add_argument("netlist")

    batch = sub.add_parser(
        "batch-reason",
        help="reason over many netlists in one batched inference pass",
    )
    batch.add_argument("model")
    # nargs="*" so an empty list reaches the handler's validation (a clean
    # one-line error + exit 2) instead of an argparse usage dump.
    batch.add_argument("netlists", nargs="*")
    batch.add_argument("--graph-cache", type=int, default=128,
                       help="encoded-graph LRU capacity (0 disables)")
    batch.add_argument("--result-cache", type=int, default=256,
                       help="reasoning-result LRU capacity (0 disables)")
    batch.add_argument("--max-shard-bytes", type=int, default=None,
                       help="memory budget per block-diagonal shard "
                            "(default: no sharding, one monolithic pass)")
    batch.add_argument("--max-window-bytes", type=int, default=None,
                       help="memory budget per streaming window: netlists "
                            "too large for any shard run level-windowed "
                            "under this budget (default: full-graph pass)")
    batch.add_argument("--postprocess-workers", type=int, default=None,
                       help="worker processes for per-netlist post-processing "
                            "(default: auto-size from cpu count and batch "
                            "size; 0 forces in-process)")
    batch.add_argument("--cache-dir", default=None,
                       help="persistent cache directory: reasoning results "
                            "(and encoded graphs, under graphs/) are "
                            "preloaded before the batch and spilled back "
                            "after, so restarts keep their hit rate")
    batch.add_argument("--compare-sequential", action="store_true",
                       help="also run per-netlist reason() and report speedup")
    batch.add_argument("--engine", choices=["fast", "legacy"], default="fast",
                       help="post-processing engine (results cached per "
                            "engine)")
    batch.add_argument("--kernel", choices=["auto", "numpy", "numba"],
                       default=None,
                       help="hot-path kernel backend (default: REPRO_KERNEL "
                            "env var, else auto = numba when installed); "
                            "backends are bit-identical, so results are "
                            "cached regardless of the choice")

    serve = sub.add_parser(
        "serve",
        help="always-on reasoning daemon over a Unix socket",
    )
    serve.add_argument("model")
    serve.add_argument("--socket", default="gamora.sock",
                       help="Unix domain socket path to listen on")
    serve.add_argument("--batch-window-ms", type=float, default=5.0,
                       help="how long the scheduler waits after the first "
                            "queued request to coalesce concurrent arrivals "
                            "into one micro-batch")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="largest micro-batch (dispatches early when hit)")
    serve.add_argument("--max-queue-depth", type=int, default=128,
                       help="admission limit; beyond it requests fast-fail "
                            "with a retriable queue_full error")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent cache directory: warm results and "
                            "encoded graphs (under graphs/) are preloaded "
                            "on startup and spilled on shutdown")
    serve.add_argument("--run-dir", default=None,
                       help="write per-request stats to "
                            "<run-dir>/<request-id>/stats.json")
    serve.add_argument("--graph-cache", type=int, default=256,
                       help="encoded-graph LRU capacity (0 disables)")
    serve.add_argument("--result-cache", type=int, default=512,
                       help="reasoning-result LRU capacity (0 disables)")
    serve.add_argument("--max-shard-bytes", type=int, default=None,
                       help="memory budget per block-diagonal shard "
                            "(default: one monolithic pass per micro-batch)")
    serve.add_argument("--max-window-bytes", type=int, default=None,
                       help="memory budget per streaming window: circuits "
                            "too large for any shard are still admitted and "
                            "run level-windowed under this budget (default: "
                            "full-graph pass)")
    serve.add_argument("--postprocess-workers", type=int, default=None,
                       help="worker processes for post-processing (default: "
                            "auto-size per batch; 0 forces in-process)")
    serve.add_argument("--engine", choices=["fast", "legacy"], default="fast",
                       help="default post-processing engine for requests "
                            "that do not choose one")
    serve.add_argument("--no-report", action="store_true",
                       help="skip the batched word-level report (responses "
                            "carry report: null)")
    serve.add_argument("--kernel", choices=["auto", "numpy", "numba"],
                       default=None,
                       help="hot-path kernel backend (default: REPRO_KERNEL "
                            "env var, else auto = numba when installed); the "
                            "daemon JIT-warms the backend before the socket "
                            "accepts")
    serve.add_argument("--default-deadline-ms", type=float, default=None,
                       help="deadline applied to requests that do not carry "
                            "their own deadline_ms: a request still queued "
                            "past it is dropped at dequeue (no forward pass) "
                            "and answered with a retriable deadline_exceeded "
                            "error (default: no deadline)")
    serve.add_argument("--fault-plan", default=None,
                       help="fault-injection plan for chaos testing: inline "
                            "JSON or a path to a JSON file (see "
                            "repro.serve.resilience.FaultPlan); also "
                            "settable via REPRO_FAULT_PLAN")
    serve.add_argument("--watchdog-timeout-s", type=float, default=300.0,
                       help="fail queued requests (retriable) when the "
                            "scheduler loop's heartbeat is older than this "
                            "while work is waiting; 0 disables the watchdog")

    tmap = sub.add_parser("map", help="technology-map a netlist")
    tmap.add_argument("netlist")
    tmap.add_argument("--library", choices=["mcnc", "asap7"], default="mcnc")
    tmap.add_argument("--mode", choices=["area", "delay"], default="area")
    tmap.add_argument("--out", help="write the re-expanded AIG here", default=None)

    cec = sub.add_parser("cec", help="equivalence-check two netlists")
    cec.add_argument("left")
    cec.add_argument("right")
    cec.add_argument("--engine", choices=["auto", "bdd", "exhaustive", "random"],
                     default="auto")

    verify = sub.add_parser("verify", help="SCA-verify a generated multiplier")
    verify.add_argument("--width", type=int, default=8)
    verify.add_argument("--kind", choices=["csa", "booth"], default="csa")
    verify.add_argument("--mode", choices=["adder", "naive"], default="adder")
    return parser


def _write_netlist(aig, path: str) -> None:
    if path.endswith(".aag"):
        write_aag(aig, path)
    else:
        write_aig(aig, path)


def _cmd_gen(args) -> int:
    kwargs = {"style": args.style} if args.style else {}
    gen = make_multiplier(args.width, args.kind, **kwargs)
    _write_netlist(gen.aig, args.output)
    print(f"wrote {gen.aig} to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    aig = read_aiger(args.netlist)
    for key, value in aig.stats().items():
        print(f"{key:>8}: {value}")
    return 0


def _select_kernel(args) -> None:
    """Apply a ``--kernel`` choice (no flag given: env/auto stays in force)."""
    if getattr(args, "kernel", None) is not None:
        from repro.kernels import set_backend

        set_backend(args.kernel)


def _cmd_extract(args) -> int:
    from repro.reasoning import analyze_adder_tree, detect_xor_maj, extract_adder_tree
    from repro.utils.timing import Timer, format_seconds

    _select_kernel(args)
    aig = read_aiger(args.netlist)
    with Timer() as timer:
        if args.engine == "fast":
            # Dict-free path: one shared sweep feeds the array pairing and
            # the word-level report directly.
            tree = extract_adder_tree(aig, max_cuts=args.max_cuts,
                                      engine="fast")
        else:
            detection = detect_xor_maj(aig, max_cuts=args.max_cuts,
                                       engine=args.engine)
            tree = extract_adder_tree(aig, detection, engine=args.engine)
    report = analyze_adder_tree(aig, tree, engine=args.engine)
    print(report.summary())
    print(f"extraction took {format_seconds(timer.elapsed)}")
    return 0


def _cmd_train(args) -> int:
    from repro.core import Gamora
    from repro.learn import TrainConfig, plan_training_windows

    checkpoint = args.checkpoint
    if checkpoint is None and args.checkpoint_every:
        checkpoint = f"{args.model_out}.ckpt"
    gamora = Gamora(model=args.model,
                    train_config=TrainConfig(
                        epochs=args.epochs,
                        max_window_bytes=args.max_window_bytes,
                        seed=args.seed,
                        checkpoint_every=args.checkpoint_every,
                        checkpoint_path=checkpoint,
                    ))
    data = gamora.prepare(make_multiplier(args.width, args.kind))
    plan = plan_training_windows(data, gamora.net, args.max_window_bytes)
    if args.max_window_bytes is not None:
        print(f"window plan: {plan.summary()}"
              + ("" if plan.within_budget else " — OVER BUDGET"))
    else:
        print(f"window plan: full batch, 1 window, "
              f"{plan.peak_window_bytes / 1024 ** 2:.1f}MiB estimated peak")
    gamora.fit([data])
    gamora.save(args.model_out)
    final = gamora.history[-1]
    print(f"trained {gamora.net.describe()}")
    print(f"final loss {final['loss']:.4f}, train accuracy {final['mean']:.4f} "
          f"({final['num_windows']} window(s), peak "
          f"{final['peak_window_bytes'] / 1024 ** 2:.1f}MiB)")
    print(f"saved to {args.model_out}")
    return 0


def _cmd_reason(args) -> int:
    from repro.core import Gamora
    from repro.reasoning import analyze_adder_tree
    from repro.utils.timing import format_seconds

    gamora = Gamora.load(args.model)
    aig = read_aiger(args.netlist)
    outcome = gamora.reason(aig)
    report = analyze_adder_tree(aig, outcome.tree)
    print(report.summary())
    print(f"inference {format_seconds(outcome.inference_seconds)}, "
          f"post-processing {format_seconds(outcome.postprocess_seconds)}, "
          f"{outcome.num_mismatches} mismatches")
    return 0


def _check_cache_dir(cache_dir: str, command: str,
                     daemon_quarantines: bool = False) -> str | None:
    """Fail-fast precheck for a persistent cache directory.

    Ownership first (the same rule ``save_result_cache`` enforces — a
    directory the service would refuse must not even be touched by the
    writability probe), then an actual write probe, because
    ``mkdir(exist_ok=True)`` succeeds on an existing read-only dir and
    the failure must surface before any work runs, not after.  Returns
    the one-line error already printed to stderr, or ``None`` when the
    directory is usable.  Shared by ``batch-reason`` and ``serve`` so
    the two flows can never drift.

    ``daemon_quarantines=True`` (the serve path) lets a directory whose
    *own marker* is corrupt pass the precheck: ``GamoraDaemon.start``
    quarantines it — renamed aside, served cold — because a long-running
    service must degrade on a damaged cache, not refuse to boot.
    Directories holding foreign, unmarked payloads still fail fast
    either way; they are never touched.
    """
    from repro.serve import ReasoningService

    cache_path = Path(cache_dir)

    def _validate(validator, directory, marker_name) -> str | None:
        try:
            problem = validator(directory)
        except Exception as exc:  # unreadable dir: validation itself died
            problem = f"{type(exc).__name__}: {exc}"
        if (problem is not None and daemon_quarantines
                and (Path(directory) / marker_name).is_file()):
            return None  # our own (corrupt) stamp: the daemon quarantines
        return problem

    error = _validate(ReasoningService.validate_cache_dir, cache_dir,
                      ReasoningService._MODEL_MARKER)
    if error is None:
        error = _validate(ReasoningService.validate_graph_cache_dir,
                          cache_path / "graphs",
                          ReasoningService._GRAPH_MARKER)
    if error is None:
        try:
            cache_path = Path(cache_dir)
            cache_path.mkdir(parents=True, exist_ok=True)
            probe = cache_path / f".probe.{os.getpid()}"
            probe.touch()
            probe.unlink()
        except OSError as os_error:
            error = str(os_error)
    if error is not None:
        print(f"{command}: cannot use cache dir {cache_dir}: {error}",
              file=sys.stderr)
    return error


def _cmd_batch_reason(args) -> int:
    from repro.core import Gamora
    from repro.serve import ReasoningService
    from repro.utils.timing import Timer, format_seconds

    if not args.netlists:
        print("batch-reason: no netlists given", file=sys.stderr)
        return 2
    if args.cache_dir and _check_cache_dir(args.cache_dir,
                                           "batch-reason") is not None:
        return 2
    _select_kernel(args)
    gamora = Gamora.load(args.model)
    aigs = []
    for path in args.netlists:
        try:
            aigs.append(read_aiger(path))
        except (OSError, ValueError) as error:
            print(f"batch-reason: cannot read {path}: {error}", file=sys.stderr)
            return 2
    service = ReasoningService(
        gamora, graph_cache_size=args.graph_cache,
        result_cache_size=args.result_cache,
        max_shard_bytes=args.max_shard_bytes,
        max_window_bytes=args.max_window_bytes,
        postprocess_workers=args.postprocess_workers,
    )
    if args.cache_dir:
        loaded = service.load_result_cache(args.cache_dir)
        print(f"result cache: loaded {loaded} entries from {args.cache_dir}")
        graphs_loaded = service.load_graph_cache(Path(args.cache_dir) / "graphs")
        print(f"graph cache: loaded {graphs_loaded} entries")
    batch = service.reason_many(aigs, engine=args.engine)
    for aig, outcome in zip(aigs, batch):
        tree = outcome.tree
        print(
            f"{aig.name}: {tree.num_full_adders} FA, "
            f"{tree.num_half_adders} HA, {outcome.num_mismatches} mismatches"
        )
    print(batch.stats.summary())
    for name, counters in service.cache_stats().items():
        print(f"{name} cache: {counters['hits']} hits, "
              f"{counters['misses']} misses, {counters['evictions']} evictions")
    if args.cache_dir:
        try:
            saved = service.save_result_cache(args.cache_dir)
            graphs_saved = service.save_graph_cache(
                Path(args.cache_dir) / "graphs"
            )
        except OSError as error:
            # The batch itself succeeded and was reported above; only the
            # persistence step failed (disk full, permissions changed, ...).
            print(f"batch-reason: cannot save cache dir {args.cache_dir}: "
                  f"{error}", file=sys.stderr)
            return 2
        print(f"result cache: saved {saved} new entries to {args.cache_dir}")
        print(f"graph cache: saved {graphs_saved} new entries")
    if args.compare_sequential:
        with Timer() as sequential_timer:
            for aig in aigs:
                gamora.reason(aig)
        batched = batch.stats.total_seconds
        print(
            f"sequential {format_seconds(sequential_timer.elapsed)} vs "
            f"batched {format_seconds(batched)} "
            f"({sequential_timer.elapsed / max(batched, 1e-12):.2f}x speedup)"
        )
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.core import Gamora
    from repro.serve import DaemonServer, FaultPlan, GamoraDaemon

    if args.cache_dir and _check_cache_dir(args.cache_dir, "serve",
                                           daemon_quarantines=True) is not None:
        return 2
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.from_json(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"serve: invalid --fault-plan: {error}", file=sys.stderr)
            return 2
    _select_kernel(args)
    gamora = Gamora.load(args.model)
    daemon = GamoraDaemon(
        gamora,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        max_queue_depth=args.max_queue_depth,
        cache_dir=args.cache_dir,
        run_dir=args.run_dir,
        graph_cache_size=args.graph_cache,
        result_cache_size=args.result_cache,
        max_shard_bytes=args.max_shard_bytes,
        max_window_bytes=args.max_window_bytes,
        postprocess_workers=args.postprocess_workers,
        engine=args.engine,
        with_report=not args.no_report,
        default_deadline_ms=args.default_deadline_ms,
        watchdog_timeout_seconds=args.watchdog_timeout_s or None,
        fault_plan=fault_plan,
    )
    daemon.start()
    warm = daemon.kernel_warmup
    print(f"kernel backend: {warm['backend']} "
          f"(warmed up in {warm['seconds'] * 1e3:.0f}ms)")
    if args.cache_dir:
        print(f"warm caches: {daemon.loaded_results} results, "
              f"{daemon.loaded_graphs} graphs from {args.cache_dir}")
        for moved in daemon.quarantined:
            print(f"serve: quarantined corrupt cache dir: {moved}",
                  file=sys.stderr)
    if fault_plan is not None:
        print(f"fault injection armed: {fault_plan!r}", file=sys.stderr)
    server = DaemonServer(daemon, args.socket)
    server.start()

    # SIGTERM (systemd stop, docker stop, kill) must be as graceful as a
    # client-requested shutdown: release serve_forever so the finally
    # block drains the queue and spills the caches.  SIGINT in a terminal
    # arrives as KeyboardInterrupt and is handled below; under a signal
    # handler (non-main-thread embedding never installs one) both behave
    # identically.
    def _graceful_shutdown(signum, frame) -> None:
        print(f"received signal {signum}; draining and shutting down",
              file=sys.stderr, flush=True)
        server._shutdown.set()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _graceful_shutdown)
        signal.signal(signal.SIGINT, _graceful_shutdown)

    print(f"serving on {args.socket} "
          f"(window {args.batch_window_ms:.1f}ms, max batch "
          f"{args.max_batch}, queue depth {args.max_queue_depth})",
          flush=True)
    try:
        # Returns when a client sends {"op": "shutdown"}, a SIGTERM/SIGINT
        # lands, or (without the handlers installed) Ctrl-C raises.
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        server.close()
        daemon.close()
    snapshot = daemon.stats()["scheduler"]
    print(f"served {snapshot['completed']} requests in "
          f"{snapshot['batches']} micro-batches "
          f"({snapshot['result_hits']} cache hits, "
          f"{snapshot['rejected']} rejected, "
          f"{snapshot['expired']} expired, "
          f"{snapshot['num_shards']} forward passes, "
          f"{daemon.dropped_responses} dropped responses)")
    if args.cache_dir:
        if daemon.spill_error is not None:
            print(f"serve: cache spill failed: {daemon.spill_error}",
                  file=sys.stderr)
            return 2
        print(f"spilled {daemon.saved_results} new results, "
              f"{daemon.saved_graphs} new graphs to {args.cache_dir}")
    return 0


def _cmd_map(args) -> int:
    from repro.techmap import asap7_like, map_aig, mcnc_reduced, netlist_to_aig

    aig = read_aiger(args.netlist)
    library = mcnc_reduced() if args.library == "mcnc" else asap7_like()
    netlist = map_aig(aig, library, mode=args.mode)
    print(netlist)
    for cell, count in netlist.cell_histogram().items():
        print(f"  {cell:>12}: {count}")
    if args.out:
        _write_netlist(netlist_to_aig(netlist), args.out)
        print(f"re-expanded AIG written to {args.out}")
    return 0


def _cmd_cec(args) -> int:
    from repro.verify import check_equivalence

    left = read_aiger(args.left)
    right = read_aiger(args.right)
    result = check_equivalence(left, right, engine=args.engine)
    print(result)
    if not result.equivalent and result.counterexample is not None:
        print(f"counterexample (inputs LSB-first): {result.counterexample}")
        print(f"first failing output index: {result.failing_output}")
    return 0 if result.equivalent else 2


def _cmd_verify(args) -> int:
    from repro.verify import verify_multiplier

    gen = make_multiplier(args.width, args.kind)
    result = verify_multiplier(gen, mode=args.mode)
    print(result)
    return 0 if result.ok else 2


_HANDLERS = {
    "gen": _cmd_gen,
    "stats": _cmd_stats,
    "extract": _cmd_extract,
    "train": _cmd_train,
    "reason": _cmd_reason,
    "batch-reason": _cmd_batch_reason,
    "serve": _cmd_serve,
    "map": _cmd_map,
    "cec": _cmd_cec,
    "verify": _cmd_verify,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
