"""Tests for exact functional XOR/MAJ root detection."""

from repro.aig import AIG, lit_not, lit_var
from repro.generators.components import full_adder, half_adder
from repro.reasoning import detect_xor_maj, ha_carry_candidates


class TestDetection:
    def test_xor2_detected(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_xor(a, b)
        det = detect_xor_maj(aig)
        assert det.is_xor(lit_var(y))
        leaves = det.xor_roots[lit_var(y)]
        assert (lit_var(a), lit_var(b)) in leaves

    def test_xnor_detected_as_npn_equivalent(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_xnor(a, b)
        det = detect_xor_maj(aig)
        assert det.is_xor(lit_var(y))

    def test_xor3_detected(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        y = aig.add_xor(aig.add_xor(a, b), c)
        det = detect_xor_maj(aig)
        target = tuple(sorted(lit_var(x) for x in (a, b, c)))
        assert target in det.xor_roots[lit_var(y)]

    def test_maj3_detected_in_or_form(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        y = aig.add_maj3(a, b, c)
        det = detect_xor_maj(aig)
        target = tuple(sorted(lit_var(x) for x in (a, b, c)))
        assert det.is_maj(lit_var(y))
        assert target in det.maj_roots[lit_var(y)]

    def test_maj_with_negated_input_detected(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        y = aig.add_maj3(lit_not(a), b, c)
        det = detect_xor_maj(aig)
        assert det.is_maj(lit_var(y))

    def test_plain_and_not_flagged(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        y = aig.add_and(aig.add_and(a, b), c)
        det = detect_xor_maj(aig)
        assert not det.is_xor(lit_var(y))
        assert not det.is_maj(lit_var(y))

    def test_full_adder_roots(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        s, co = full_adder(aig, a, b, c)
        det = detect_xor_maj(aig)
        assert det.is_xor(lit_var(s))
        assert det.is_maj(lit_var(co))
        # The internal propagate XOR is a root too (paper Fig. 3c node 17).
        assert det.num_xor == 2

    def test_counts_on_multiplier(self, csa4):
        det = detect_xor_maj(csa4.aig)
        # Every traced sum is an XOR root; every traced FA carry a MAJ root.
        for adder in csa4.trace.adders:
            assert det.is_xor(adder.sum_var)
            if adder.kind == "FA":
                assert det.is_maj(adder.carry_var)


class TestHaCarryCandidates:
    def test_plain_carry_found(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        s, c = half_adder(aig, a, b)
        pool = ha_carry_candidates(aig)
        pair = tuple(sorted((lit_var(a), lit_var(b))))
        assert lit_var(c) in pool[pair]

    def test_or_carry_found(self):
        """¬a·¬b (the OR carry of an a+b+1 slice) is a candidate."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        n = aig.add_and(lit_not(a), lit_not(b))
        pool = ha_carry_candidates(aig)
        pair = tuple(sorted((lit_var(a), lit_var(b))))
        assert lit_var(n) in pool[pair]

    def test_mixed_polarity_carry_found(self):
        """Slices with a complemented operand produce mixed-polarity
        carries (``¬a·b``); they must stay in the pool."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        n = aig.add_and(lit_not(a), b)
        pool = ha_carry_candidates(aig)
        pair = tuple(sorted((lit_var(a), lit_var(b))))
        assert lit_var(n) in pool[pair]

    def test_all_pool_keys_are_distinct_pairs(self, csa4):
        pool = ha_carry_candidates(csa4.aig)
        assert all(len(set(key)) == 2 for key in pool)
