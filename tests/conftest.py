"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aig.simulate import simulate
from repro.generators import GeneratedMultiplier, booth_multiplier, csa_multiplier


def pack_operand_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack per-pattern integer operands into simulation word rows.

    ``values`` has one integer per pattern (length must be a multiple of
    64); returns a ``(width, num_words)`` uint64 array where row ``i`` holds
    bit ``i`` of every pattern.
    """
    num_patterns = len(values)
    assert num_patterns % 64 == 0
    num_words = num_patterns // 64
    rows = np.zeros((width, num_words), dtype=np.uint64)
    for i in range(width):
        bits = ((values >> i) & 1).astype(np.uint8).reshape(num_words, 64)
        rows[i] = np.packbits(bits, axis=1, bitorder="little").view(np.uint64).ravel()
    return rows


def unpack_output_words(words: np.ndarray, num_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_operand_bits` for one output row group.

    ``words`` is the ``(num_outputs, num_words)`` simulator result; returns
    integer values per pattern assembled from the output bits (LSB first).
    """
    num_outputs = words.shape[0]
    values = np.zeros(num_patterns, dtype=object)
    for k in range(num_outputs):
        bits = np.unpackbits(words[k].view(np.uint8), bitorder="little")[:num_patterns]
        values += bits.astype(object) << k
    return values


def assert_multiplier_correct(gen: GeneratedMultiplier, num_patterns: int = 128,
                              seed: int = 7) -> None:
    """Check a generated multiplier against integer multiplication."""
    width = gen.width
    rng = np.random.default_rng(seed)
    a_vals = rng.integers(0, 1 << width, size=num_patterns, dtype=np.uint64)
    b_vals = rng.integers(0, 1 << width, size=num_patterns, dtype=np.uint64)
    inputs = np.vstack([
        pack_operand_bits(a_vals, width),
        pack_operand_bits(b_vals, width),
    ])
    outputs = simulate(gen.aig, inputs)
    products = unpack_output_words(outputs, num_patterns)
    expected = a_vals.astype(object) * b_vals.astype(object)
    assert np.array_equal(products, expected), f"{gen.name}: product mismatch"


@pytest.fixture(scope="session")
def csa8() -> GeneratedMultiplier:
    return csa_multiplier(8)


@pytest.fixture(scope="session")
def csa4() -> GeneratedMultiplier:
    return csa_multiplier(4)


@pytest.fixture(scope="session")
def booth8() -> GeneratedMultiplier:
    return booth_multiplier(8)


@pytest.fixture(scope="session")
def booth4() -> GeneratedMultiplier:
    return booth_multiplier(4)
