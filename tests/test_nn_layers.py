"""Tests for Module/Linear/SAGEConv and optimizers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn.layers import Linear, Module, SAGEConv
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import seeded_rng


class TestModule:
    def test_parameter_collection(self):
        rng = seeded_rng(0)
        outer = Module()
        outer.register_module("a", Linear(3, 4, rng))
        outer.register_module("b", Linear(4, 2, rng, bias=False))
        assert len(outer.parameters()) == 3  # W+b, W
        names = [name for name, _ in outer.named_parameters()]
        assert "a.weight" in names and "a.bias" in names and "b.weight" in names

    def test_state_dict_roundtrip(self):
        rng = seeded_rng(1)
        first = Linear(3, 4, rng)
        second = Linear(3, 4, seeded_rng(2))
        assert not np.allclose(first.weight.data, second.weight.data)
        second.load_state_dict(first.state_dict())
        np.testing.assert_array_equal(first.weight.data, second.weight.data)

    def test_state_dict_mismatch_rejected(self):
        rng = seeded_rng(1)
        layer = Linear(3, 4, rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})
        bad = layer.state_dict()
        bad["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_train_eval_propagates(self):
        rng = seeded_rng(0)
        outer = Module()
        inner = outer.register_module("inner", Linear(2, 2, rng))
        outer.eval()
        assert not inner.training
        outer.train()
        assert inner.training


class TestLinear:
    def test_forward_shape_and_value(self):
        rng = seeded_rng(0)
        layer = Linear(3, 2, rng)
        x = np.ones((4, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, seeded_rng(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestSAGEConv:
    def test_mean_aggregation(self):
        """Node 2 aggregates nodes 0 and 1; its update must use their mean."""
        rng = seeded_rng(0)
        conv = SAGEConv(2, 3, rng)
        adj = sp.csr_matrix(
            np.array([[0, 0, 0], [0, 0, 0], [0.5, 0.5, 0]])
        )
        x = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        out = conv(Tensor(x), adj)
        neighborhood = adj @ x
        expected = np.concatenate([x, neighborhood], axis=1) @ conv.weight.data
        expected += conv.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_isolated_node_aggregates_zero(self):
        rng = seeded_rng(0)
        conv = SAGEConv(2, 2, rng)
        adj = sp.csr_matrix((2, 2))
        x = np.ones((2, 2))
        out = conv(Tensor(x), adj)
        expected = np.concatenate([x, np.zeros((2, 2))], axis=1) @ conv.weight.data
        expected += conv.bias.data
        np.testing.assert_allclose(out.data, expected)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = Tensor(np.zeros(2), requires_grad=True)
        return param, target

    def test_sgd_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            diff = param - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            diff = param - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            diff = param - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        param = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            (param * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert abs(float(param.data[0])) < 1.0

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)

    def test_step_skips_gradless_params(self):
        param = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([param], lr=0.1)
        opt.step()  # no backward happened; must not crash
        np.testing.assert_array_equal(param.data, np.ones(2))
