"""Properties of ``AIG.structural_hash`` and the structural-hash LRU.

The hash keys the serving caches, so these tests pin down exactly what it
must and must not distinguish: stable across runs and processes, invariant
under AND-node id permutation of equivalent construction orders, blind to
names, and collision-free across the whole generator zoo.
"""

import pytest

from repro.aig import AIG
from repro.aig.graph import lit_not
from repro.generators import (
    booth_multiplier,
    csa_multiplier,
    dot_product,
    multi_operand_adder,
    multiply_accumulate,
    squarer,
)
from repro.serve import StructuralHashCache, exact_fingerprint
from repro.utils.random_circuits import random_aig


def toy_aig(name: str = "toy") -> AIG:
    aig = AIG(name=name)
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    aig.add_output(aig.add_xor(aig.add_and(a, b), c), "y")
    return aig


def or_of_two_ands(first_then_second: bool) -> AIG:
    """``(a·b) + (c·d)`` with the two AND nodes created in either order.

    The two variants compute the same structure but number the AND
    variables differently — the permutation-twin case the hash must not
    distinguish (and the exact fingerprint must).
    """
    aig = AIG(name="twin")
    a, b, c, d = aig.add_inputs(4)
    if first_then_second:
        left = aig.add_and(a, b)
        right = aig.add_and(c, d)
    else:
        right = aig.add_and(c, d)
        left = aig.add_and(a, b)
    aig.add_output(aig.add_or(left, right), "y")
    return aig


class TestStability:
    def test_deterministic_across_calls_and_instances(self):
        assert toy_aig().structural_hash() == toy_aig().structural_hash()
        aig = toy_aig()
        assert aig.structural_hash() == aig.structural_hash()  # memoized path

    def test_pinned_golden_value(self):
        """Cross-run/cross-process stability, pinned to a golden digest.

        If this changes, every persistent cache keyed by the hash silently
        invalidates — bump deliberately, never accidentally.  Bumped once
        with the version-tagged ``aig-shash-v2`` scheme (level-batched
        uint64 mixing replacing the per-node blake2b loop).
        """
        assert toy_aig().structural_hash() == (
            "7290c043a17747e54b8e994d2615578e"
        )

    def test_name_independent(self):
        assert toy_aig("x").structural_hash() == toy_aig("y").structural_hash()

    def test_memo_invalidated_by_mutation(self):
        aig = toy_aig()
        before = aig.structural_hash()
        aig.add_output(aig.outputs[0], "y2")
        assert aig.structural_hash() != before


class TestPermutationInvariance:
    def test_equivalent_construction_orders_hash_equal(self):
        twin_a = or_of_two_ands(True)
        twin_b = or_of_two_ands(False)
        # The twins genuinely number their AND nodes differently...
        assert twin_a.fanins(5) != twin_b.fanins(5)
        # ...yet hash identically, while the exact fingerprint differs.
        assert twin_a.structural_hash() == twin_b.structural_hash()
        assert exact_fingerprint(twin_a) != exact_fingerprint(twin_b)

    def test_commutative_fanin_polarity(self):
        """XOR built as (a, b) and (b, a) collapses to the same structure."""
        one = AIG()
        a, b = one.add_inputs(2)
        one.add_output(one.add_xor(a, b))
        other = AIG()
        a, b = other.add_inputs(2)
        other.add_output(other.add_xor(b, a))
        assert one.structural_hash() == other.structural_hash()


class TestSensitivity:
    def test_output_polarity_changes_hash(self):
        def xor_out(invert):
            aig = AIG()
            a, b = aig.add_inputs(2)
            lit = aig.add_xor(a, b)
            aig.add_output(lit_not(lit) if invert else lit)
            return aig

        assert xor_out(False).structural_hash() != xor_out(True).structural_hash()

    def test_output_order_changes_hash(self):
        def two_outputs(swapped):
            aig = AIG()
            a, b, c = aig.add_inputs(3)
            x, y = aig.add_and(a, b), aig.add_or(b, c)
            for lit in ((y, x) if swapped else (x, y)):
                aig.add_output(lit)
            return aig

        assert two_outputs(False).structural_hash() != \
            two_outputs(True).structural_hash()

    def test_input_position_changes_hash(self):
        def and_of(which):
            aig = AIG()
            lits = aig.add_inputs(3)
            aig.add_output(aig.add_and(lits[0], lits[which]))
            return aig

        assert and_of(1).structural_hash() != and_of(2).structural_hash()

    def test_collision_free_across_generator_zoo(self):
        """Every distinct design in the zoo gets a distinct digest."""
        zoo = {
            f"csa{w}": csa_multiplier(w).aig for w in range(2, 9)
        }
        zoo.update({f"booth{w}": booth_multiplier(w).aig for w in range(2, 6)})
        zoo.update({f"square{w}": squarer(w).aig for w in (3, 4, 5)})
        zoo.update({
            "dot2x3": dot_product(3, 2).aig,
            "dot3x3": dot_product(3, 3).aig,
            "mac3": multiply_accumulate(3).aig,
            "mac4": multiply_accumulate(4).aig,
            "moa3x4": multi_operand_adder(4, 3).aig,
            "moa4x4": multi_operand_adder(4, 4).aig,
        })
        zoo.update({
            f"rand{seed}": random_aig(num_inputs=5, num_ands=25,
                                      num_outputs=3, seed=seed)
            for seed in range(12)
        })
        hashes = {name: aig.structural_hash() for name, aig in zoo.items()}
        assert len(set(hashes.values())) == len(zoo), (
            "structural hash collision among: "
            + ", ".join(sorted(hashes))
        )


class TestLruCache:
    def test_hit_miss_counters(self):
        cache = StructuralHashCache(capacity=4)
        assert cache.get("k", "fp") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("k", "fp", "value")
        assert cache.get("k", "fp") == "value"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.stats()["size"] == 1

    def test_fingerprint_conflict_counts_as_miss(self):
        cache = StructuralHashCache(capacity=4)
        twin_a, twin_b = or_of_two_ands(True), or_of_two_ands(False)
        key = twin_a.structural_hash()
        cache.put(key, exact_fingerprint(twin_a), "a-encoding")
        # Same structural hash, different node numbering: must NOT be served.
        assert cache.get(key, exact_fingerprint(twin_b)) is None
        assert cache.fingerprint_conflicts == 1
        assert cache.get(key, exact_fingerprint(twin_a)) == "a-encoding"

    def test_lru_eviction(self):
        cache = StructuralHashCache(capacity=2)
        cache.put("a", "fp", 1)
        cache.put("b", "fp", 2)
        assert cache.get("a", "fp") == 1  # refresh "a"
        cache.put("c", "fp", 3)  # evicts "b" (least recently used)
        assert cache.evictions == 1
        assert not cache.contains("b", "fp")
        assert cache.get("a", "fp") == 1
        assert cache.get("c", "fp") == 3

    def test_contains_is_fingerprint_aware(self):
        """Membership must agree with ``get()`` on permutation twins.

        The old ``in`` operator checked the hash key alone, reporting a hit
        for a twin cached under a different node numbering that ``get()``
        would (correctly) reject — regression for that divergence.
        """
        cache = StructuralHashCache(capacity=4)
        twin_a, twin_b = or_of_two_ands(True), or_of_two_ands(False)
        key = twin_a.structural_hash()
        cache.put(key, exact_fingerprint(twin_a), "a-encoding")
        assert cache.contains(key, exact_fingerprint(twin_a))
        assert not cache.contains(key, exact_fingerprint(twin_b))
        # Peeking is pure: no counter or LRU-order side effects.
        assert (cache.hits, cache.misses, cache.fingerprint_conflicts) == (0, 0, 0)
        assert not cache.contains("absent", exact_fingerprint(twin_a))

    def test_zero_capacity_disables(self):
        cache = StructuralHashCache(capacity=0)
        cache.put("k", "fp", "value")
        assert len(cache) == 0
        assert cache.get("k", "fp") is None

    def test_get_or_build(self):
        cache = StructuralHashCache(capacity=2)
        calls = []
        build = lambda: calls.append(1) or "built"  # noqa: E731
        assert cache.get_or_build("k", "fp", build) == "built"
        assert cache.get_or_build("k", "fp", build) == "built"
        assert len(calls) == 1
        assert (cache.hits, cache.misses) == (1, 1)


class TestPersistence:
    def test_round_trip_preserves_entries(self, tmp_path):
        import numpy as np

        cache = StructuralHashCache(capacity=8)
        twin = or_of_two_ands(True)
        key = (twin.structural_hash(), ("opts", True, 4))
        value = {"labels": np.arange(5), "note": "payload"}
        cache.put(key, exact_fingerprint(twin), value)
        cache.put("plain-key", "fp2", [1, 2, 3])
        assert cache.to_dir(tmp_path / "spill") == 2

        restored = StructuralHashCache(capacity=8)
        assert restored.from_dir(tmp_path / "spill") == 2
        got = restored.get(key, exact_fingerprint(twin))
        assert got is not None and got["note"] == "payload"
        assert np.array_equal(got["labels"], value["labels"])
        assert restored.get("plain-key", "fp2") == [1, 2, 3]
        # Fingerprint guard survives the disk round trip.
        other = or_of_two_ands(False)
        assert restored.get(key, exact_fingerprint(other)) is None

    def test_save_is_incremental(self, tmp_path):
        cache = StructuralHashCache(capacity=4)
        cache.put("k1", "fp", 1)
        spill = tmp_path / "spill"
        assert cache.to_dir(spill) == 1
        assert cache.to_dir(spill) == 0  # same entry: skipped by name
        cache.put("k2", "fp", 2)
        assert cache.to_dir(spill) == 1  # only the new entry is written

    def test_corrupt_and_missing_entries_are_skipped(self, tmp_path):
        spill = tmp_path / "spill"
        cache = StructuralHashCache(capacity=4)
        cache.put("good", "fp", "value")
        assert cache.to_dir(spill) == 1
        (spill / "garbage.npz").write_bytes(b"not an npz archive")
        restored = StructuralHashCache(capacity=4)
        assert restored.from_dir(spill) == 1
        assert restored.get("good", "fp") == "value"
        assert StructuralHashCache(4).from_dir(tmp_path / "absent") == 0

    def test_load_respects_capacity(self, tmp_path):
        cache = StructuralHashCache(capacity=8)
        for index in range(6):
            cache.put(f"k{index}", "fp", index)
        spill = tmp_path / "spill"
        assert cache.to_dir(spill) == 6
        tiny = StructuralHashCache(capacity=2)
        assert tiny.from_dir(spill) == 6  # all readable...
        assert len(tiny) == 2  # ...but the LRU bound still holds


class TestServiceCacheCounters:
    @pytest.mark.slow
    def test_encode_counters_exposed(self):
        from repro.core import Gamora
        from repro.learn import TrainConfig
        from repro.serve import ReasoningService

        gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=5))
        gamora.fit([csa_multiplier(4)])
        service = ReasoningService(gamora)
        service.encode(csa_multiplier(5))
        service.encode(csa_multiplier(5))
        stats = service.cache_stats()["graph"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        service.clear_caches()
        assert service.cache_stats()["graph"]["size"] == 0
