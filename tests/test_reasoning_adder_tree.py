"""Tests for adder-tree extraction and ground-truth labeling."""

import numpy as np
import pytest

from repro.aig import AIG, lit_var
from repro.generators import csa_multiplier
from repro.generators.adders import ripple_carry_adder
from repro.generators.components import full_adder, half_adder
from repro.reasoning import (
    TASK1_LEAF,
    TASK1_OTHER,
    TASK1_ROOT,
    TASK1_ROOT_LEAF,
    extract_adder_tree,
    ground_truth_labels,
)


class TestSingleSlices:
    def test_lone_full_adder_extracted(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        s, co = full_adder(aig, a, b, c)
        aig.add_output(s)
        aig.add_output(co)
        tree = extract_adder_tree(aig)
        assert tree.num_full_adders == 1
        adder = tree.adders[0]
        assert adder.sum_var == lit_var(s)
        assert adder.carry_var == lit_var(co)
        assert adder.leaves == tuple(sorted(lit_var(x) for x in (a, b, c)))

    def test_fa_interior_not_reextracted_as_ha(self):
        """The shared propagate XOR and generate AND inside a matched FA
        must not surface as a spurious half adder."""
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        full_adder(aig, a, b, c)
        tree = extract_adder_tree(aig)
        assert tree.num_full_adders == 1
        assert tree.num_half_adders == 0

    def test_lone_half_adder_extracted(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        s, c = half_adder(aig, a, b)
        tree = extract_adder_tree(aig)
        assert tree.num_half_adders == 1
        assert tree.adders[0].kind == "HA"
        assert tree.adders[0].carry_var == lit_var(c)

    def test_xor_without_carry_not_an_adder(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        aig.add_xor(a, b)
        tree = extract_adder_tree(aig)
        assert not tree.adders


class TestRippleAdder:
    def test_all_slices_recovered(self):
        width = 8
        aig = AIG()
        a_bits = aig.add_inputs(width, "a")
        b_bits = aig.add_inputs(width, "b")
        sums, cout = ripple_carry_adder(aig, a_bits, b_bits)
        for s in sums:
            aig.add_output(s)
        aig.add_output(cout)
        tree = extract_adder_tree(aig)
        assert tree.num_full_adders == width - 1
        assert tree.num_half_adders == 1  # LSB slice

    def test_chained_adders_linked(self):
        aig = AIG()
        a_bits = aig.add_inputs(4, "a")
        b_bits = aig.add_inputs(4, "b")
        sums, cout = ripple_carry_adder(aig, a_bits, b_bits)
        for s in sums:
            aig.add_output(s)
        tree = extract_adder_tree(aig)
        # Carry chain: each adder's carry feeds the next slice.
        assert len(tree.links()) == len(tree.adders) - 1


class TestMultiplierExtraction:
    @pytest.mark.parametrize("width", [3, 4, 8])
    def test_csa_extraction_matches_trace(self, width):
        gen = csa_multiplier(width)
        tree = extract_adder_tree(gen.aig)
        traced = {(a.sum_var, a.carry_var) for a in gen.trace.adders}
        extracted = {(a.sum_var, a.carry_var) for a in tree.adders}
        assert traced <= extracted
        assert tree.num_full_adders == gen.trace.num_full_adders
        assert tree.num_half_adders == gen.trace.num_half_adders

    def test_booth_extraction_covers_trace(self, booth8):
        """Every traced slice is either extracted as-is or subsumed.

        On Booth netlists the functional reasoner may legitimately pair a
        chained-XOR sum with a coincidental NPN-MAJ node, forming a wider
        full adder that swallows two traced half adders; the traced roots
        then land in the consumed interior of that FA.  Both outcomes keep
        the algebraic adder-tree cover exact.
        """
        tree = extract_adder_tree(booth8.aig)
        extracted = {(a.sum_var, a.carry_var) for a in tree.adders}
        covered = tree.root_vars() | tree.consumed
        for adder in booth8.trace.adders:
            pair = (adder.sum_var, adder.carry_var)
            assert pair in extracted or (
                adder.sum_var in covered and adder.carry_var in covered
            ), f"traced {adder} neither extracted nor subsumed"


class TestLabels:
    def test_label_shapes(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        for key in ("root", "xor", "maj"):
            assert labels[key].shape == (csa4.aig.num_vars,)

    def test_xor_labels_cover_sums(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        for adder in csa4.trace.adders:
            assert labels["xor"][adder.sum_var] == 1

    def test_maj_labels_cover_carries(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        for adder in csa4.trace.adders:
            assert labels["maj"][adder.carry_var] == 1, adder

    def test_root_labels(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        tree = extract_adder_tree(csa4.aig)
        roots = tree.root_vars()
        leaves = tree.leaf_vars()
        for var in range(csa4.aig.num_vars):
            expected = TASK1_OTHER
            if var in roots and var in leaves:
                expected = TASK1_ROOT_LEAF
            elif var in roots:
                expected = TASK1_ROOT
            elif var in leaves:
                expected = TASK1_LEAF
            assert labels["root"][var] == expected

    def test_pis_are_never_xor_or_maj(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        for var in csa4.aig.input_vars():
            assert labels["xor"][var] == 0
            assert labels["maj"][var] == 0

    def test_some_nodes_are_plain(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        assert int(np.sum(labels["root"] == TASK1_OTHER)) > 0
