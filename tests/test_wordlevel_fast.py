"""Differential tests for the array-native detection→word-level pipeline.

The serving path must be array-shaped end to end — candidate arrays from
the shared cut sweep through pairing, word-level analysis, and SCA
relation resolution — while staying *bit-identical* to the legacy
dict/per-adder path it replaced.  These suites pin both properties:

* the fast pipeline builds **zero** ``XorMajDetection`` dicts (counting
  adapter) yet still serves the dict view lazily when asked;
* trees, word-level reports, comparison metrics, and SCA relations are
  identical between engines over ripple/CSA/Booth/compressor netlists and
  the AIGER fixtures;
* report construction is deterministic: sorted collections, stable under
  shuffled detections and repeated runs.
"""

import random
from pathlib import Path

import numpy as np
import pytest

from repro.aig import AIG, read_aiger
from repro.core.postprocess import extract_from_predictions
from repro.generators import booth_multiplier, csa_multiplier
from repro.generators.adders import ripple_carry_adder
from repro.generators.components import full_adder
from repro.reasoning import (
    AdderTree,
    AdderTreeArrays,
    ExtractedAdder,
    XorMajDetection,
    analyze_adder_tree,
    analyze_adder_trees,
    compare_adder_trees,
    detect_xor_maj,
    extract_adder_tree,
    ground_truth_labels,
)
from repro.utils.random_circuits import random_aig
from repro.verify.sca import _resolve_relation, _resolve_relations_fast

FIXTURES = sorted((Path(__file__).parent / "fixtures").glob("*.aag"))


def ripple(width: int) -> AIG:
    aig = AIG()
    a_bits = aig.add_inputs(width, "a")
    b_bits = aig.add_inputs(width, "b")
    sums, cout = ripple_carry_adder(aig, a_bits, b_bits)
    for s in sums:
        aig.add_output(s)
    aig.add_output(cout)
    return aig


def compressor_column() -> AIG:
    """A 4:2 compressor column: one FA reads both outputs of another."""
    aig = AIG()
    a, b, c, d = aig.add_inputs(4)
    s1, c1 = full_adder(aig, a, b, c)
    s2, c2 = full_adder(aig, s1, c1, d)
    aig.add_output(s2)
    aig.add_output(c2)
    return aig


def family_aigs() -> list:
    return [ripple(6), csa_multiplier(4).aig, booth_multiplier(4).aig,
            compressor_column()]


class TestDictFreeServingPath:
    """Acceptance criterion: engine='fast' builds zero XorMajDetection
    dicts on the extract_from_predictions path (counting adapter)."""

    def test_fast_extraction_builds_no_detection(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        before = XorMajDetection.constructions
        extraction = extract_from_predictions(csa4.aig, labels, engine="fast")
        assert XorMajDetection.constructions == before
        # ... and the word-level report doesn't need the dicts either.
        analyze_adder_tree(csa4.aig, extraction.tree)
        assert XorMajDetection.constructions == before

    def test_legacy_engine_still_builds_detections(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        before = XorMajDetection.constructions
        extract_from_predictions(csa4.aig, labels, engine="legacy")
        assert XorMajDetection.constructions > before

    def test_detection_adapter_matches_legacy(self, booth4):
        """The lazy dict view must be *content-identical* to what the
        legacy engine computes — including per-var leaf-list order."""
        labels = ground_truth_labels(booth4.aig)
        fast = extract_from_predictions(booth4.aig, labels, engine="fast")
        legacy = extract_from_predictions(booth4.aig, labels, engine="legacy")
        assert fast.detection.xor_roots == legacy.detection.xor_roots
        assert fast.detection.maj_roots == legacy.detection.maj_roots
        # Accessing the adapter twice returns the same materialized object.
        assert fast.detection is fast.detection


class TestPipelineDifferential:
    """Array-native path vs legacy dict path: bit-identical AdderTree and
    WordLevelReport over every netlist family."""

    @staticmethod
    def assert_pipeline_identical(aig: AIG) -> None:
        labels = ground_truth_labels(aig)
        fast = extract_from_predictions(aig, labels, engine="fast")
        legacy = extract_from_predictions(aig, labels, engine="legacy")
        assert fast.tree.adders == legacy.tree.adders
        assert fast.tree.consumed == legacy.tree.consumed
        assert fast.rejected_xor == legacy.rejected_xor
        assert fast.rejected_maj == legacy.rejected_maj
        assert fast.corrected_vars == legacy.corrected_vars
        fast_report = analyze_adder_tree(aig, fast.tree, engine="fast")
        legacy_report = analyze_adder_tree(aig, legacy.tree, engine="legacy")
        assert fast_report == legacy_report
        assert fast_report.summary() == legacy_report.summary()

    @pytest.mark.parametrize("make", [
        lambda: ripple(6),
        lambda: csa_multiplier(4).aig,
        lambda: booth_multiplier(4).aig,
        compressor_column,
    ], ids=["ripple6", "csa4", "booth4", "compressor"])
    def test_families(self, make):
        self.assert_pipeline_identical(make())

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_aiger_fixtures(self, path):
        self.assert_pipeline_identical(read_aiger(path))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits(self, seed):
        aig = random_aig(num_inputs=5, num_ands=60, num_outputs=4,
                         seed=7100 + seed)
        self.assert_pipeline_identical(aig)

    def test_engine_validation(self, csa4):
        tree = extract_adder_tree(csa4.aig)
        with pytest.raises(ValueError, match="engine"):
            analyze_adder_tree(csa4.aig, tree, engine="warp")


class TestBatchedAnalysis:
    """One concatenated analyze_adder_trees pass == per-tree analysis.

    The serving daemon computes every micro-batch's word-level reports
    through the merged block-diagonal core; the reports must be exactly
    the ones per-circuit ``analyze_adder_tree`` would produce.
    """

    def test_mixed_batch_matches_per_tree(self):
        items = [(aig, extract_adder_tree(aig)) for aig in family_aigs()]
        # An adder-free circuit (empty tree) and a duplicate ride along:
        # both are shapes the daemon's batches routinely contain.
        plain = AIG()
        a, b = plain.add_inputs(2)
        plain.add_output(plain.add_and(a, b))
        items.append((plain, extract_adder_tree(plain)))
        items.append(items[1])
        batched = analyze_adder_trees(items)
        expected = [analyze_adder_tree(aig, tree) for aig, tree in items]
        assert batched == expected

    def test_single_item_and_empty_batch(self):
        aig = csa_multiplier(4).aig
        tree = extract_adder_tree(aig)
        assert analyze_adder_trees([(aig, tree)]) == [
            analyze_adder_tree(aig, tree)
        ]
        assert analyze_adder_trees([]) == []

    def test_accepts_generator_input(self):
        items = [(aig, extract_adder_tree(aig)) for aig in family_aigs()[:2]]
        assert analyze_adder_trees(iter(items)) == [
            analyze_adder_tree(aig, tree) for aig, tree in items
        ]

    def test_legacy_engine_falls_back_per_tree(self):
        items = [(aig, extract_adder_tree(aig, engine="legacy"))
                 for aig in family_aigs()[:2]]
        assert analyze_adder_trees(items, engine="legacy") == [
            analyze_adder_tree(aig, tree, engine="legacy")
            for aig, tree in items
        ]


class TestReportDeterminism:
    """Satellite bugfix: report collections are sorted on construction, so
    summary() and equality are stable across runs and input orders."""

    def test_fields_are_sorted_lists(self, csa4):
        report = analyze_adder_tree(csa4.aig, extract_adder_tree(csa4.aig))
        for field in (report.pp_leaves, report.pi_leaves,
                      report.output_roots):
            assert isinstance(field, list)
            assert field == sorted(field)
            assert len(field) == len(set(field))
        for level in report.ranks:
            assert level == sorted(level)

    def test_construction_normalizes_unordered_input(self):
        left = __import__("repro.reasoning.wordlevel", fromlist=["WordLevelReport"])
        report_a = left.WordLevelReport(
            num_full_adders=1, num_half_adders=1, num_links=1,
            ranks=[[2, 0, 1]], pp_leaves={9, 3, 5}, pi_leaves=[4, 2, 4],
            output_roots={8, 1},
        )
        report_b = left.WordLevelReport(
            num_full_adders=1, num_half_adders=1, num_links=1,
            ranks=[[0, 1, 2]], pp_leaves=[5, 9, 3], pi_leaves={2, 4},
            output_roots=[1, 8, 8],
        )
        assert report_a == report_b
        assert report_a.pp_leaves == [3, 5, 9]
        assert report_a.pi_leaves == [2, 4]
        assert report_a.output_roots == [1, 8]

    @pytest.mark.parametrize("seed", range(4))
    def test_shuffled_predictions_same_report(self, booth4, seed):
        """Shuffled-prediction determinism: a detection presented in
        adversarial dict/list order yields the identical report."""
        aig = booth4.aig
        detection = detect_xor_maj(aig)
        rng = random.Random(seed)

        def scramble(mapping):
            keys = list(mapping)
            rng.shuffle(keys)
            out = {}
            for key in keys:
                sets = list(mapping[key])
                rng.shuffle(sets)
                out[key] = sets
            return out

        shuffled = XorMajDetection(xor_roots=scramble(detection.xor_roots),
                                   maj_roots=scramble(detection.maj_roots))
        reference = analyze_adder_tree(
            aig, extract_adder_tree(aig, detection))
        report = analyze_adder_tree(
            aig, extract_adder_tree(aig, shuffled))
        assert report == reference

    def test_repeated_runs_identical(self, csa4):
        first = analyze_adder_tree(csa4.aig, extract_adder_tree(csa4.aig))
        second = analyze_adder_tree(csa4.aig, extract_adder_tree(csa4.aig))
        assert first == second
        assert first.summary() == second.summary()


def _reference_compare(reference: AdderTree, candidate: AdderTree) -> dict:
    """The pre-refactor dict implementation, kept as the regression oracle."""
    ref_pairs = {(a.sum_var, a.carry_var) for a in reference.adders}
    cand_pairs = {(a.sum_var, a.carry_var) for a in candidate.adders}
    if not ref_pairs and not cand_pairs:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    hits = len(ref_pairs & cand_pairs)
    precision = hits / len(cand_pairs) if cand_pairs else 0.0
    recall = hits / len(ref_pairs) if ref_pairs else 0.0
    f1 = (2.0 * precision * recall / (precision + recall)
          if precision + recall > 0 else 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


class TestCompareAdderTrees:
    """Satellite: compare via the cached packed-key index, same metrics."""

    def test_matches_reference_on_families(self):
        for aig in family_aigs():
            exact = extract_adder_tree(aig)
            labels = ground_truth_labels(aig)
            predicted = extract_from_predictions(aig, labels).tree
            got = compare_adder_trees(exact, predicted)
            assert got == _reference_compare(exact, predicted)

    def test_partial_overlap(self):
        exact = AdderTree(adders=[
            ExtractedAdder("FA", 10, 11, (1, 2, 3)),
            ExtractedAdder("HA", 12, 13, (4, 5)),
        ])
        candidate = AdderTree(adders=[
            ExtractedAdder("FA", 10, 11, (1, 2, 3)),
            ExtractedAdder("HA", 14, 15, (6, 7)),
        ])
        got = compare_adder_trees(exact, candidate)
        assert got == _reference_compare(exact, candidate)
        assert got["precision"] == got["recall"] == 0.5

    def test_empty_trees(self):
        empty = AdderTree()
        assert compare_adder_trees(empty, empty)["f1"] == 1.0

    def test_key_index_is_cached(self, csa4):
        tree = extract_adder_tree(csa4.aig)
        core = tree.arrays()
        assert core.root_pair_keys() is core.root_pair_keys()
        first = compare_adder_trees(tree, tree)
        assert compare_adder_trees(tree, tree) == first


class TestAdderTreeCore:
    """The struct-of-arrays core round-trips through the object views."""

    def test_adders_round_trip(self, csa4):
        tree = extract_adder_tree(csa4.aig)  # core-authoritative (fast)
        rebuilt = AdderTreeArrays.from_adders(tree.adders)
        core = tree.arrays()
        assert np.array_equal(rebuilt.kind, core.kind)
        assert np.array_equal(rebuilt.sum_var, core.sum_var)
        assert np.array_equal(rebuilt.carry_var, core.carry_var)
        assert np.array_equal(rebuilt.leaves, core.leaves)
        assert np.array_equal(rebuilt.leaf_count, core.leaf_count)

    def test_core_rebuilt_after_append(self):
        tree = AdderTree(adders=[ExtractedAdder("HA", 4, 5, (1, 2))])
        assert len(tree.arrays()) == 1
        tree.adders.append(ExtractedAdder("FA", 8, 9, (4, 5, 3)))
        assert len(tree.arrays()) == 2
        assert tree.links() == [(0, 1)]

    def test_mutated_view_of_engine_tree_is_seen(self, csa4):
        """Handing out the mutable adders view forfeits the cached core:
        in-place replacement on an engine-built tree must reach the array
        consumers too."""
        tree = extract_adder_tree(csa4.aig, engine="fast")
        view = tree.adders
        view[0] = ExtractedAdder("HA", 999, 998, (1, 2))
        assert int(tree.arrays().sum_var[0]) == 999
        assert 999 in tree.root_vars()
        fast = analyze_adder_tree(csa4.aig, tree, engine="fast")
        legacy = analyze_adder_tree(csa4.aig, tree, engine="legacy")
        assert fast == legacy

    def test_same_length_mutation_is_seen(self):
        """A list-built tree re-derives its core: in-place replacement
        (not just growth) must reach every array consumer."""
        tree = AdderTree(adders=[ExtractedAdder("HA", 5, 6, (2, 3)),
                                 ExtractedAdder("HA", 8, 9, (5, 7))])
        assert tree.links() == [(0, 1)]
        tree.adders[0] = ExtractedAdder("HA", 50, 60, (20, 30))
        assert tree.arrays().sum_var.tolist() == [50, 8]
        assert tree.links() == []
        assert 50 in tree.root_vars()

    def test_value_equality_preserved(self, csa4):
        """The dataclass-era semantics: equal content compares equal,
        core-built vs list-built included; instances stay unhashable."""
        left = AdderTree(adders=[ExtractedAdder("HA", 5, 6, (2, 3))])
        right = AdderTree(adders=[ExtractedAdder("HA", 5, 6, (2, 3))])
        assert left == right
        assert left != AdderTree(adders=[ExtractedAdder("HA", 5, 7, (2, 3))])
        with pytest.raises(TypeError):
            hash(left)
        fast = extract_adder_tree(csa4.aig, engine="fast")  # core-built
        legacy = extract_adder_tree(
            csa4.aig, detect_xor_maj(csa4.aig), engine="legacy")
        assert fast == legacy
        labels = ground_truth_labels(csa4.aig)
        assert (extract_from_predictions(csa4.aig, labels, engine="fast")
                == extract_from_predictions(csa4.aig, labels,
                                            engine="legacy"))

    def test_consumed_view_matches_mask(self, csa4):
        fast = extract_adder_tree(csa4.aig, engine="fast")
        legacy = extract_adder_tree(
            csa4.aig, detect_xor_maj(csa4.aig), engine="legacy")
        assert fast.consumed == legacy.consumed

    def test_pickle_round_trip(self, csa4):
        """Result-cache payloads carry the array tree across processes."""
        import pickle

        labels = ground_truth_labels(csa4.aig)
        extraction = extract_from_predictions(csa4.aig, labels, engine="fast")
        clone = pickle.loads(pickle.dumps(extraction))
        assert clone.tree.adders == extraction.tree.adders
        assert clone.tree.consumed == extraction.tree.consumed
        assert clone.num_mismatches == extraction.num_mismatches
        assert (analyze_adder_tree(csa4.aig, clone.tree)
                == analyze_adder_tree(csa4.aig, extraction.tree))


class TestScaRelationEngines:
    """Batched relation resolution vs the per-adder oracle."""

    @pytest.mark.parametrize("make", [
        lambda: ripple(5),
        lambda: csa_multiplier(4).aig,
        lambda: booth_multiplier(3).aig,
        compressor_column,
    ], ids=["ripple5", "csa4", "booth3", "compressor"])
    def test_relations_identical(self, make):
        aig = make()
        tree = extract_adder_tree(aig)
        legacy = {}
        for adder in tree.adders:
            relation = _resolve_relation(aig, adder)
            if relation is not None and relation.sum_var not in legacy:
                legacy[relation.sum_var] = relation
        assert _resolve_relations_fast(aig, tree) == legacy

    def test_verify_results_identical(self):
        from repro.verify import verify_multiplier

        gen = csa_multiplier(4)
        fast = verify_multiplier(gen, engine="fast")
        legacy = verify_multiplier(gen, engine="legacy")
        assert fast.ok and legacy.ok
        assert fast.substitutions == legacy.substitutions
        assert fast.peak_terms == legacy.peak_terms
        assert fast.residue_terms == legacy.residue_terms

    def test_engine_validation(self):
        from repro.verify import verify_multiplier

        with pytest.raises(ValueError, match="engine"):
            verify_multiplier(csa_multiplier(2), engine="warp")

    def test_empty_tree(self):
        aig = ripple(2)
        assert _resolve_relations_fast(aig, AdderTree()) == {}

    def test_wide_slice_is_unresolved_not_a_crash(self):
        """A hand-built tree with a >3-leaf slice must degrade exactly
        like the legacy engine: unresolved (gate-level fallback), not a
        broadcast error."""
        from repro.verify import verify_multiplier

        gen = csa_multiplier(3)
        tree = extract_adder_tree(gen.aig)
        wide = AdderTree(adders=tree.adders + [
            ExtractedAdder("FA", tree.adders[0].sum_var + 0, 1, (1, 2, 3, 4)),
        ])
        fast = _resolve_relations_fast(gen.aig, wide)
        legacy = {}
        for adder in wide.adders:
            relation = _resolve_relation(gen.aig, adder)
            if relation is not None and relation.sum_var not in legacy:
                legacy[relation.sum_var] = relation
        assert fast == legacy
        result = verify_multiplier(gen, tree=wide, engine="fast")
        assert result.ok == verify_multiplier(gen, tree=wide,
                                              engine="legacy").ok
