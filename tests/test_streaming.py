"""Streaming level-windowed inference: bit-identity and memory bounds.

The streamed pass must be *bit-identical* to the full-graph pass — same
logits, same labels — at every window budget, on every circuit family.
These tests pin that invariant over the generator fixtures, random AIGs,
degenerate graphs, and the serving integration, plus the analytic window
cost model and the array-native transitive-fanin satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aig.graph import AIG
from repro.generators import (
    booth_multiplier,
    csa_multiplier,
    multi_operand_adder,
    ripple_carry_adder,
)
from repro.learn import (
    TrainConfig,
    build_graph_data,
    compile_inference,
    estimate_inference_memory,
    estimate_window_memory,
    halo_blocks,
    shallow_config,
    sub_adjacency,
    train_model,
)
from repro.learn.model import GamoraNet, ModelConfig
from repro.utils.random_circuits import random_aig


def ripple_adder_aig(width: int) -> AIG:
    aig = AIG(name=f"ripple{width}")
    a_bits = aig.add_inputs(width, prefix="a")
    b_bits = aig.add_inputs(width, prefix="b")
    sum_bits, carry = ripple_carry_adder(aig, a_bits, b_bits)
    for index, bit in enumerate(sum_bits):
        aig.add_output(bit, f"s{index}")
    aig.add_output(carry, "cout")
    return aig


@pytest.fixture(scope="module")
def trained():
    """A small trained model shared by every bit-identity test."""
    data = build_graph_data(csa_multiplier(5).aig)
    model, _history = train_model(data, shallow_config(), TrainConfig(epochs=20))
    return model


@pytest.fixture(scope="module")
def kernel(trained):
    return compile_inference(trained)


def full_budget(kernel, data) -> int:
    return estimate_inference_memory(kernel, data.num_nodes, data.num_edges)


def assert_bit_identical(kernel, data, plan) -> None:
    full_logits = kernel.logits(data.features, data.adjacency)
    streamed_logits = kernel.logits_streamed(data.features, data.adjacency, plan)
    for task in full_logits:
        np.testing.assert_array_equal(
            full_logits[task], streamed_logits[task],
            err_msg=f"logits diverged for task {task!r}",
        )
    full_labels = kernel.predict(data.features, data.adjacency)
    streamed_labels = kernel.predict_streamed(data.features, data.adjacency, plan)
    for task in full_labels:
        np.testing.assert_array_equal(
            full_labels[task], streamed_labels[task],
            err_msg=f"labels diverged for task {task!r}",
        )


def assert_plan_covers(plan, num_nodes: int) -> None:
    covered = np.sort(np.concatenate([w.targets for w in plan.windows]))
    np.testing.assert_array_equal(covered, np.arange(num_nodes))


class TestBitIdentity:
    """Streamed == full, to the bit, across circuit families and budgets."""

    @pytest.mark.parametrize("circuit", [
        pytest.param(lambda: ripple_adder_aig(10), id="ripple10"),
        pytest.param(lambda: csa_multiplier(7).aig, id="csa7"),
        pytest.param(lambda: booth_multiplier(6).aig, id="booth6"),
        pytest.param(lambda: multi_operand_adder(4, 5).aig, id="compressor4x5"),
    ])
    @pytest.mark.parametrize("fraction", [0.05, 0.3])
    def test_generator_fixtures(self, kernel, circuit, fraction):
        data = build_graph_data(circuit(), with_labels=False)
        budget = max(1, int(full_budget(kernel, data) * fraction))
        plan = data.window_plan(budget, kernel)
        assert plan.num_windows > 1, "budget did not force multiple windows"
        assert_plan_covers(plan, data.num_nodes)
        assert_bit_identical(kernel, data, plan)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_aigs(self, kernel, seed):
        aig = random_aig(num_inputs=6, num_ands=60, num_outputs=4, seed=seed)
        data = build_graph_data(aig, with_labels=False)
        budget = max(1, full_budget(kernel, data) // 8)
        plan = data.window_plan(budget, kernel)
        assert_plan_covers(plan, data.num_nodes)
        assert_bit_identical(kernel, data, plan)

    def test_mid_level_window_boundaries(self, kernel):
        """A tiny budget forces boundaries inside topological levels."""
        data = build_graph_data(csa_multiplier(6).aig, with_labels=False)
        plan = data.window_plan(max(1, full_budget(kernel, data) // 64), kernel)
        levels = data.node_levels()
        boundary_levels = [int(levels[w.targets[-1]]) for w in plan.windows[:-1]]
        next_levels = [int(levels[w.targets[0]]) for w in plan.windows[1:]]
        assert any(b == n for b, n in zip(boundary_levels, next_levels)), \
            "no window boundary landed mid-level; tighten the budget"
        assert_bit_identical(kernel, data, plan)

    def test_single_window_plan_is_the_full_pass(self, kernel):
        data = build_graph_data(csa_multiplier(5).aig, with_labels=False)
        plan = data.window_plan(full_budget(kernel, data) * 16, kernel)
        assert plan.num_windows == 1
        assert_bit_identical(kernel, data, plan)

    def test_degenerate_one_level_graph(self, kernel):
        """All-PI circuit: every node is level 0 and there are no edges."""
        aig = AIG(name="wires")
        bits = aig.add_inputs(8)
        for bit in bits:
            aig.add_output(bit)
        data = build_graph_data(aig, with_labels=False)
        assert data.num_edges == 0
        plan = data.window_plan(max(1, full_budget(kernel, data) // 4), kernel)
        assert_plan_covers(plan, data.num_nodes)
        assert_bit_identical(kernel, data, plan)

    def test_deeper_model_halo(self):
        """Halo depth follows the conv stack (2+ layers beyond shallow)."""
        config = ModelConfig(num_layers=6, hidden=16)
        model = GamoraNet(config)
        kernel = compile_inference(model)
        data = build_graph_data(csa_multiplier(6).aig, with_labels=False)
        plan = data.window_plan(max(1, full_budget(kernel, data) // 8), kernel)
        assert plan.num_hops == 6
        assert_bit_identical(kernel, data, plan)

    def test_single_task_streamed(self):
        config = ModelConfig(num_layers=3, hidden=12, single_task=True)
        kernel = compile_inference(GamoraNet(config))
        data = build_graph_data(csa_multiplier(5).aig, with_labels=False)
        plan = data.window_plan(max(1, full_budget(kernel, data) // 8), kernel)
        assert_bit_identical(kernel, data, plan)


class TestWindowPlan:
    def test_no_single_target_window(self, kernel):
        """Single-row windows would hit the unstable GEMV path."""
        for width in (5, 6, 7):
            data = build_graph_data(csa_multiplier(width).aig, with_labels=False)
            for divisor in (4, 16, 64):
                plan = data.window_plan(
                    max(1, full_budget(kernel, data) // divisor), kernel
                )
                assert min(w.num_targets for w in plan.windows) >= 2
                assert_plan_covers(plan, data.num_nodes)

    def test_budget_respected_or_flagged(self, kernel):
        data = build_graph_data(csa_multiplier(10).aig, with_labels=False)
        budget = full_budget(kernel, data) // 8
        plan = data.window_plan(budget, kernel)
        assert plan.within_budget
        assert plan.peak_window_bytes <= budget
        # An absurdly small budget cannot be honored: the plan degrades to
        # minimum windows and says so instead of refusing the circuit.
        tiny = data.window_plan(1, kernel)
        assert not tiny.within_budget
        assert_plan_covers(tiny, data.num_nodes)

    def test_levels_cached_on_graph_data(self):
        gen = csa_multiplier(5)
        data = build_graph_data(gen.aig, with_labels=False)
        np.testing.assert_array_equal(data.levels, gen.aig.levels_array())

    def test_plan_rejects_bad_budget(self, kernel):
        data = build_graph_data(csa_multiplier(4).aig, with_labels=False)
        with pytest.raises(ValueError, match="positive"):
            data.window_plan(0, kernel)

    def test_kernel_rejects_mismatched_plan(self, kernel):
        data = build_graph_data(csa_multiplier(5).aig, with_labels=False)
        other = build_graph_data(csa_multiplier(6).aig, with_labels=False)
        plan = data.window_plan(full_budget(kernel, data), kernel)
        with pytest.raises(ValueError, match="nodes"):
            kernel.logits_streamed(other.features, other.adjacency, plan)
        deep = compile_inference(GamoraNet(ModelConfig(num_layers=2, hidden=8)))
        with pytest.raises(ValueError, match="conv layers"):
            deep.logits_streamed(data.features, data.adjacency, plan)

    def test_summary_mentions_budget(self, kernel):
        data = build_graph_data(csa_multiplier(5).aig, with_labels=False)
        plan = data.window_plan(full_budget(kernel, data) // 4, kernel)
        text = plan.summary()
        assert "window" in text and "MiB" in text


class TestHaloBlocks:
    def test_blocks_are_nested_and_sorted(self, kernel):
        data = build_graph_data(csa_multiplier(6).aig, with_labels=False)
        targets = np.arange(40, 60, dtype=np.int64)
        blocks = halo_blocks(data.adjacency, targets, 3)
        assert len(blocks) == 4
        np.testing.assert_array_equal(blocks[-1], targets)
        for outer, inner in zip(blocks, blocks[1:]):
            assert np.all(np.diff(outer) > 0)
            # inner ⊆ outer: every row a layer writes is readable below.
            assert np.all(np.isin(inner, outer))

    def test_halo_contains_receptive_field(self):
        """B_0 must hold the full K-hop fan-in cone of the targets."""
        data = build_graph_data(booth_multiplier(5).aig, with_labels=False)
        targets = np.array([data.num_nodes - 2, data.num_nodes - 1])
        hops = 2
        blocks = halo_blocks(data.adjacency, targets, hops)
        reach = set(targets.tolist())
        for _ in range(hops):
            grown = set(reach)
            for node in reach:
                row = data.adjacency.indices[
                    data.adjacency.indptr[node]:data.adjacency.indptr[node + 1]
                ]
                grown.update(int(c) for c in row)
            reach = grown
        assert reach <= set(blocks[0].tolist())

    def test_sub_adjacency_matches_scipy_slice(self):
        data = build_graph_data(csa_multiplier(5).aig, with_labels=False)
        targets = np.arange(10, 20, dtype=np.int64)
        blocks = halo_blocks(data.adjacency, targets, 1)
        rows, cols = blocks[1], blocks[0]
        sub = sub_adjacency(data.adjacency, rows, cols)
        dense = data.adjacency[rows][:, cols].toarray()
        np.testing.assert_array_equal(sub.toarray(), dense)


class TestWindowCostModel:
    def test_monotone_in_window_size(self, kernel):
        hops = kernel.num_layers
        costs = [
            estimate_window_memory(
                kernel,
                [scale * (hops + 1 - j) for j in range(hops + 1)],
                [scale * 2 * (hops - j) for j in range(hops)],
            )
            for scale in (4, 8, 32, 128)
        ]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_small_window_well_under_full_graph(self, kernel):
        data = build_graph_data(csa_multiplier(8).aig, with_labels=False)
        budget = full_budget(kernel, data) // 8
        plan = data.window_plan(budget, kernel)
        assert plan.peak_window_bytes < full_budget(kernel, data) // 4

    def test_validates_block_shapes(self, kernel):
        with pytest.raises(ValueError):
            estimate_window_memory(kernel, [10, 10], [5, 5, 5])

    def test_float32_kernel_priced_below_float64_net(self, trained, kernel):
        """The fast path must not be priced at training (float64) rates —
        that over-provisioned shards by ~2x."""
        nodes, edges = 10_000, 20_000
        fast = estimate_inference_memory(kernel, nodes, edges)
        slow = estimate_inference_memory(trained, nodes, edges)
        assert fast < slow
        assert fast < 0.66 * slow


class TestTransitiveFaninArray:
    """Satellite: the CSR reverse-reach sweep vs the Python-set walk."""

    @pytest.mark.parametrize("circuit", [
        pytest.param(lambda: csa_multiplier(8).aig, id="csa8"),
        pytest.param(lambda: booth_multiplier(6).aig, id="booth6"),
        pytest.param(lambda: ripple_adder_aig(12), id="ripple12"),
    ])
    def test_matches_set_walk(self, circuit):
        aig = circuit()
        cases = [
            [],
            [0],
            [aig.num_vars - 1],
            [lit >> 1 for lit in aig.outputs[:4]],
            [lit >> 1 for lit in aig.outputs],
        ]
        for roots in cases:
            expected = np.array(sorted(aig.transitive_fanin(roots)),
                                dtype=np.int64)
            got = aig.transitive_fanin_array(roots)
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_on_random_aigs(self, seed):
        aig = random_aig(num_inputs=5, num_ands=40, num_outputs=3, seed=seed)
        roots = [lit >> 1 for lit in aig.outputs]
        expected = np.array(sorted(aig.transitive_fanin(roots)), dtype=np.int64)
        np.testing.assert_array_equal(
            aig.transitive_fanin_array(roots), expected
        )

    def test_duplicate_and_pi_roots(self):
        aig = csa_multiplier(4).aig
        roots = [1, 1, 2, aig.num_vars - 1, aig.num_vars - 1]
        expected = np.array(sorted(aig.transitive_fanin(roots)), dtype=np.int64)
        np.testing.assert_array_equal(
            aig.transitive_fanin_array(roots), expected
        )


class TestServingIntegration:
    def test_oversize_circuit_streams_and_matches(self, trained):
        from repro.core.api import Gamora

        gamora = Gamora(model="shallow")
        gamora.net = trained
        gamora._service = None
        gamora._kernel = None
        big = csa_multiplier(9)
        sequential = gamora.reason(big)
        data = gamora.prepare(big, with_labels=False)
        full = full_budget(gamora.inference_kernel(), data)
        result = gamora.reason_many(
            [big], max_shard_bytes=full // 2, max_window_bytes=full // 8
        )
        assert result.stats.streamed_graphs == 1
        assert result.stats.num_windows > 1
        assert 0 < result.stats.peak_window_bytes <= full // 8
        assert result[0].streamed
        for task in sequential.labels:
            np.testing.assert_array_equal(
                result[0].labels[task], sequential.labels[task]
            )
        assert "streamed=1" in result.stats.summary()

    def test_window_budget_only_affects_oversize(self, trained):
        from repro.core.api import Gamora

        gamora = Gamora(model="shallow")
        gamora.net = trained
        gamora._service = None
        gamora._kernel = None
        small = csa_multiplier(4)
        result = gamora.reason_many([small], max_window_bytes=1)
        assert result.stats.streamed_graphs == 0
        assert not result[0].streamed
