"""Differential tests: array-shaped pairing vs the legacy per-root loop.

``extract_adder_tree(engine="fast")`` replaced the per-root Python pairing
behind label generation and prediction post-processing, so it must agree
with ``engine="legacy"`` *exactly* — same adders in the same order, same
``consumed`` set — on every netlist family.  The legacy loop stays in the
tree precisely to serve as the oracle here (mirroring
``tests/test_fast_cuts.py`` for the cut sweep).  Both engines must also be
deterministic functions of the detection *content*: shuffling dict
insertion order or leaf-set list order must not change the tree.
"""

import random
from pathlib import Path

import numpy as np
import pytest

from repro.aig import AIG, lit_var, read_aiger
from repro.generators import booth_multiplier, csa_multiplier
from repro.generators.adders import reduce_columns, ripple_carry_adder
from repro.generators.components import full_adder, half_adder
from repro.reasoning import (
    XorMajDetection,
    detect_xor_maj,
    extract_adder_tree,
    ground_truth_labels,
    ha_carry_candidates,
    maximum_bipartite_matching,
)
from repro.reasoning.adder_tree import AdderTree, ExtractedAdder, _cone_between
from repro.reasoning.fast_pairing import PairingCandidates
from repro.utils.random_circuits import random_aig

FIXTURES = sorted((Path(__file__).parent / "fixtures").glob("*.aag"))


def assert_trees_equal(want: AdderTree, got: AdderTree, tag: str = "") -> None:
    assert got.adders == want.adders, tag
    assert got.consumed == want.consumed, tag
    assert got.links() == want.links(), tag


def assert_engines_agree(aig: AIG, max_cuts: int = 10) -> AdderTree:
    detection = detect_xor_maj(aig, max_cuts=max_cuts)
    legacy = extract_adder_tree(aig, detection, engine="legacy")
    fast = extract_adder_tree(aig, detection, engine="fast")
    assert_trees_equal(legacy, fast, "explicit detection")
    # detection=None: the fast engine consumes the CutArrays sweep directly.
    fast_sweep = extract_adder_tree(aig, max_cuts=max_cuts, engine="fast")
    assert_trees_equal(legacy, fast_sweep, "shared-sweep path")
    return legacy


def ripple(width: int) -> AIG:
    aig = AIG()
    a_bits = aig.add_inputs(width, "a")
    b_bits = aig.add_inputs(width, "b")
    sums, cout = ripple_carry_adder(aig, a_bits, b_bits)
    for s in sums:
        aig.add_output(s)
    aig.add_output(cout)
    return aig


class TestExtractionEquivalence:
    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_ripple_carry(self, width):
        tree = assert_engines_agree(ripple(width))
        assert tree.num_full_adders == width - 1
        assert tree.num_half_adders == 1

    @pytest.mark.parametrize("width", [3, 4, 8])
    def test_csa_multipliers(self, width):
        gen = csa_multiplier(width)
        tree = assert_engines_agree(gen.aig)
        assert tree.num_full_adders == gen.trace.num_full_adders
        assert tree.num_half_adders == gen.trace.num_half_adders

    @pytest.mark.parametrize("width", [4, 6, 8])
    def test_booth_multipliers(self, width):
        """Booth netlists have coincident leaf sets: the matching is
        genuinely ambiguous, so this exercises the Kuhn remainder path."""
        assert_engines_agree(booth_multiplier(width).aig)

    def test_csa_reduction_block(self):
        aig = AIG()
        rows = [
            {position: [lit] for position, lit in
             enumerate(aig.add_inputs(6, f"r{k}"))}
            for k in range(4)
        ]
        columns = reduce_columns(aig, rows, style="wallace")
        for bits in columns.values():
            for lit in bits:
                aig.add_output(lit)
        assert_engines_agree(aig)

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_aiger_fixtures(self, path):
        assert_engines_agree(read_aiger(path))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_circuits(self, seed):
        aig = random_aig(num_inputs=5, num_ands=40, num_outputs=3, seed=seed)
        assert_engines_agree(aig)

    @pytest.mark.parametrize("seed", range(8))
    def test_dense_reconvergent(self, seed):
        aig = random_aig(num_inputs=3, num_ands=60, num_outputs=2,
                         seed=4000 + seed)
        assert_engines_agree(aig, max_cuts=4)

    def test_degenerate_graphs(self):
        assert_engines_agree(AIG())  # empty
        pis_only = AIG()
        pis_only.add_inputs(4)
        assert_engines_agree(pis_only)
        xor_only = AIG()
        a, b = xor_only.add_inputs(2)
        xor_only.add_output(xor_only.add_xor(a, b))
        tree = assert_engines_agree(xor_only)
        assert not tree.adders  # XOR without a carry AND is not an adder

    def test_single_slices(self):
        fa = AIG()
        a, b, c = fa.add_inputs(3)
        full_adder(fa, a, b, c)
        tree = assert_engines_agree(fa)
        assert (tree.num_full_adders, tree.num_half_adders) == (1, 0)
        ha = AIG()
        a, b = ha.add_inputs(2)
        half_adder(ha, a, b)
        tree = assert_engines_agree(ha)
        assert (tree.num_full_adders, tree.num_half_adders) == (0, 1)

    def test_ground_truth_labels_engine_equivalence(self, csa4):
        fast = ground_truth_labels(csa4.aig, engine="fast")
        legacy = ground_truth_labels(csa4.aig, engine="legacy")
        for task in ("root", "xor", "maj"):
            np.testing.assert_array_equal(fast[task], legacy[task])

    def test_unknown_engine_rejected(self, csa4):
        with pytest.raises(ValueError, match="engine"):
            extract_adder_tree(csa4.aig, engine="warp")


def _shuffled_detection(detection: XorMajDetection,
                        seed: int) -> XorMajDetection:
    """Same content, adversarial insertion and list order."""
    rng = random.Random(seed)

    def scramble(mapping):
        keys = list(mapping)
        rng.shuffle(keys)
        out = {}
        for key in keys:
            sets = list(mapping[key])
            rng.shuffle(sets)
            out[key] = sets
        return out

    return XorMajDetection(xor_roots=scramble(detection.xor_roots),
                           maj_roots=scramble(detection.maj_roots))


class TestDeterminism:
    """The satellite bugfix: pairing must not depend on dict order."""

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    @pytest.mark.parametrize("seed", range(5))
    def test_shuffled_detection_is_irrelevant(self, booth4, engine, seed):
        aig = booth4.aig
        detection = detect_xor_maj(aig)
        reference = extract_adder_tree(aig, detection, engine=engine)
        shuffled = _shuffled_detection(detection, seed)
        assert_trees_equal(
            reference, extract_adder_tree(aig, shuffled, engine=engine)
        )

    def test_engines_agree_on_shuffled_detection(self, booth4):
        aig = booth4.aig
        shuffled = _shuffled_detection(detect_xor_maj(aig), 99)
        assert_trees_equal(
            extract_adder_tree(aig, shuffled, engine="legacy"),
            extract_adder_tree(aig, shuffled, engine="fast"),
        )

    def test_repeated_runs_identical(self, csa4):
        first = extract_adder_tree(csa4.aig, engine="fast")
        second = extract_adder_tree(csa4.aig, engine="fast")
        assert_trees_equal(first, second)


class TestConsumedInvariant:
    """``consumed`` never overlaps a later match: replaying the emission
    order, every adder's roots must still be free when it is emitted."""

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    @pytest.mark.parametrize("make", [
        lambda: csa_multiplier(8).aig,
        lambda: booth_multiplier(8).aig,
        lambda: ripple(8),
    ], ids=["csa8", "booth8", "ripple8"])
    def test_no_overlap_with_later_match(self, engine, make):
        aig = make()
        tree = extract_adder_tree(aig, engine=engine)
        consumed_so_far: set[int] = set()
        for adder in tree.adders:
            assert adder.sum_var not in consumed_so_far, adder
            assert adder.carry_var not in consumed_so_far, adder
            leaf_set = set(adder.leaves)
            interior = _cone_between(aig, adder.sum_var, leaf_set)
            interior |= _cone_between(aig, adder.carry_var, leaf_set)
            consumed_so_far |= interior
            consumed_so_far.add(adder.sum_var)
            consumed_so_far.add(adder.carry_var)
        assert consumed_so_far == tree.consumed

    @pytest.mark.parametrize("seed", range(10))
    def test_no_overlap_random(self, seed):
        aig = random_aig(num_inputs=4, num_ands=50, num_outputs=3,
                         seed=5000 + seed)
        tree = extract_adder_tree(aig, engine="fast")
        consumed_so_far: set[int] = set()
        for adder in tree.adders:
            assert adder.sum_var not in consumed_so_far
            assert adder.carry_var not in consumed_so_far
            leaf_set = set(adder.leaves)
            consumed_so_far |= _cone_between(aig, adder.sum_var, leaf_set)
            consumed_so_far |= _cone_between(aig, adder.carry_var, leaf_set)
            consumed_so_far |= {adder.sum_var, adder.carry_var}


class TestLinksDedup:
    """The satellite bugfix: one edge per (producer, consumer) pair."""

    def test_sum_and_carry_into_one_consumer(self):
        tree = AdderTree(adders=[
            ExtractedAdder("HA", 4, 5, (1, 2)),
            ExtractedAdder("FA", 8, 9, (4, 5, 3)),  # reads sum AND carry
        ])
        assert tree.links() == [(0, 1)]

    def test_distinct_consumers_keep_their_edges(self):
        tree = AdderTree(adders=[
            ExtractedAdder("HA", 4, 5, (1, 2)),
            ExtractedAdder("FA", 8, 9, (4, 3, 6)),
            ExtractedAdder("FA", 11, 12, (5, 7, 10)),
        ])
        assert tree.links() == [(0, 1), (0, 2)]

    def test_self_edges_still_excluded(self):
        tree = AdderTree(adders=[ExtractedAdder("HA", 4, 5, (4, 5))])
        assert tree.links() == []

    def test_compressor_chain_extraction(self):
        """End to end: a 4:2 compressor column where one FA reads both
        outputs of the previous stage must produce deduped links."""
        aig = AIG()
        a, b, c, d = aig.add_inputs(4)
        s1, c1 = full_adder(aig, a, b, c)
        s2, c2 = full_adder(aig, s1, c1, d)
        aig.add_output(s2)
        aig.add_output(c2)
        tree = assert_engines_agree(aig)
        links = tree.links()
        assert len(links) == len(set(links))


class TestCarryPoolCache:
    """The satellite bugfix: the HA carry pool is built once per graph."""

    def test_cached_between_calls(self, csa4):
        first = ha_carry_candidates(csa4.aig)
        assert ha_carry_candidates(csa4.aig) is first

    def test_invalidated_on_mutation(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_and(a, b)
        before = ha_carry_candidates(aig)
        assert (lit_var(a), lit_var(b)) in before
        aig.add_and(a, c)
        after = ha_carry_candidates(aig)
        assert after is not before
        assert (lit_var(a), lit_var(c)) in after
        # Stale mapping must not have been mutated in place either.
        assert (lit_var(a), lit_var(c)) not in before

    def test_matches_unchached_reference(self, csa4):
        reference: dict[tuple[int, int], list[int]] = {}
        for var, f0, f1 in csa4.aig.iter_ands():
            v0, v1 = f0 >> 1, f1 >> 1
            if v0 == v1:
                continue
            key = (v0, v1) if v0 < v1 else (v1, v0)
            reference.setdefault(key, []).append(var)
        assert ha_carry_candidates(csa4.aig) == reference


class TestMatching:
    def test_maximum_on_crown(self):
        # 2-maj / 2-xor crown: greedy left-to-right would starve one side.
        adjacency = {0: [10], 1: [10, 11]}
        matching = maximum_bipartite_matching(adjacency)
        assert matching == {0: 10, 1: 11}

    def test_augmenting_chain(self):
        adjacency = {0: [10, 11], 1: [10], 2: [11]}
        matching = maximum_bipartite_matching(adjacency)
        assert len(matching) == 2  # maximum: one of {0,1,2} stays unmatched

    @pytest.mark.parametrize("seed", range(10))
    def test_cardinality_matches_networkx(self, seed):
        nx = pytest.importorskip("networkx")

        rng = random.Random(seed)
        adjacency = {
            left: sorted(rng.sample(range(100, 115), rng.randint(1, 4)))
            for left in range(12)
        }
        matching = maximum_bipartite_matching(adjacency)
        graph = nx.Graph()
        for left, partners in adjacency.items():
            for right in partners:
                graph.add_edge(("l", left), ("r", right))
        reference = nx.bipartite.hopcroft_karp_matching(
            graph, top_nodes=[("l", left) for left in adjacency]
        )
        assert len(matching) == len(reference) // 2
        # Sanity: it is a matching over real edges.
        assert len(set(matching.values())) == len(matching)
        for left, right in matching.items():
            assert right in adjacency[left]

    def test_deterministic_under_dict_order(self):
        adjacency = {2: [11, 10], 0: [10], 1: [11, 10]}
        reordered = {0: [10], 1: [10, 11], 2: [10, 11]}
        assert (maximum_bipartite_matching(adjacency)
                == maximum_bipartite_matching(reordered))


class TestPairingCandidates:
    def test_from_cut_arrays_matches_from_detection(self, csa4):
        from repro.aig.fast_cuts import enumerate_cuts_arrays, matched_leaf_sets

        arrays = enumerate_cuts_arrays(csa4.aig, k=3, max_cuts=10)
        xor_sets, maj_sets = matched_leaf_sets(arrays)
        detection = XorMajDetection(xor_roots=xor_sets, maj_roots=maj_sets)
        direct = PairingCandidates.from_cut_arrays(arrays)
        via_dicts = PairingCandidates.from_detection(detection,
                                                     csa4.aig.num_vars)
        for field in ("xor2_var", "xor2_leaves", "xor3_var", "xor3_leaves",
                      "maj_var", "maj_leaves"):
            np.testing.assert_array_equal(getattr(direct, field),
                                          getattr(via_dicts, field), field)

    def test_empty_detection(self):
        cands = PairingCandidates.from_detection(XorMajDetection(), 10)
        assert len(cands.xor2_var) == 0
        assert len(cands.maj_var) == 0

    def test_edge_join_overflow_compaction(self, csa4):
        """A leaf universe too large for a raw num_vars**3 pack must take
        the compaction branch and produce the same edges."""
        from repro.reasoning.fast_pairing import _full_adder_edges

        detection = detect_xor_maj(csa4.aig)
        normal = PairingCandidates.from_detection(detection,
                                                  csa4.aig.num_vars)
        inflated = PairingCandidates.from_detection(detection, 3_000_000)
        assert 3_000_000 ** 3 >= np.iinfo(np.int64).max  # branch really taken
        for got, want in zip(_full_adder_edges(inflated),
                             _full_adder_edges(normal)):
            np.testing.assert_array_equal(got, want)
