"""Mapper correctness: equivalence, adder inference, cover quality."""

import numpy as np
import pytest

from repro.aig import AIG, lit_not, simulate, simulation_equivalent
from repro.generators import booth_multiplier, csa_multiplier
from repro.techmap import (
    FA_CELL_NAME,
    HA_CELL_NAME,
    MappingError,
    asap7_like,
    map_aig,
    map_unmap,
    mcnc_reduced,
    netlist_to_aig,
    simulate_netlist,
)
from repro.techmap.genlib import Library, parse_genlib
from repro.techmap.matcher import MatchIndex
from repro.utils.rng import seeded_rng


def assert_mapping_equivalent(aig, library, **kwargs):
    """Check source AIG == mapped netlist == re-expanded AIG."""
    netlist = map_aig(aig, library, **kwargs)
    rng = seeded_rng(5)
    words = rng.integers(0, 1 << 64, size=(aig.num_inputs, 4), dtype=np.uint64)
    aig_out = simulate(aig, words)
    net_out = simulate_netlist(netlist, words)
    assert np.array_equal(aig_out, net_out), "direct netlist simulation differs"
    back = netlist_to_aig(netlist)
    assert simulation_equivalent(aig, back), "unmapped AIG differs"
    return netlist


class TestSmallGates:
    @pytest.mark.parametrize("library", [mcnc_reduced(), asap7_like()],
                             ids=["mcnc", "asap7"])
    def test_every_two_input_function(self, library):
        """Map each of the 10 nontrivial 2-input functions."""
        builders = [
            lambda g, a, b: g.add_and(a, b),
            lambda g, a, b: g.add_or(a, b),
            lambda g, a, b: g.add_nand(a, b),
            lambda g, a, b: g.add_nor(a, b),
            lambda g, a, b: g.add_xor(a, b),
            lambda g, a, b: g.add_xnor(a, b),
            lambda g, a, b: g.add_and(lit_not(a), b),
            lambda g, a, b: g.add_and(a, lit_not(b)),
            lambda g, a, b: g.add_or(lit_not(a), b),
            lambda g, a, b: g.add_or(a, lit_not(b)),
        ]
        for build in builders:
            aig = AIG()
            a, b = aig.add_inputs(2)
            aig.add_output(build(aig, a, b))
            assert_mapping_equivalent(aig, library)

    @pytest.mark.parametrize("library", [mcnc_reduced(), asap7_like()],
                             ids=["mcnc", "asap7"])
    def test_three_input_gates(self, library):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_output(aig.add_maj3(a, b, c))
        aig.add_output(aig.add_mux(a, b, c))
        aig.add_output(aig.add_xor(aig.add_xor(a, b), c))
        assert_mapping_equivalent(aig, library)

    def test_constant_and_inverted_outputs(self):
        aig = AIG()
        a = aig.add_input()
        aig.add_output(0)          # const0
        aig.add_output(1)          # const1
        aig.add_output(lit_not(a))  # inverted PI
        netlist = assert_mapping_equivalent(aig, mcnc_reduced())
        assert netlist.po_nets[0] == 0
        assert netlist.po_nets[1] == 1


class TestMultipliers:
    @pytest.mark.parametrize("library", [mcnc_reduced(), asap7_like()],
                             ids=["mcnc", "asap7"])
    @pytest.mark.parametrize("kind", ["csa", "booth"])
    def test_multiplier_equivalence(self, library, kind):
        from repro.generators import make_multiplier

        gen = make_multiplier(6, kind)
        assert_mapping_equivalent(gen.aig, library)

    def test_delay_mode_equivalent_and_shallower(self, csa8):
        area_net = map_aig(csa8.aig, mcnc_reduced(), mode="area")
        delay_net = assert_mapping_equivalent(csa8.aig, mcnc_reduced(), mode="delay")
        assert delay_net.depth() <= area_net.depth()

    def test_invalid_mode(self, csa4):
        with pytest.raises(ValueError):
            map_aig(csa4.aig, mcnc_reduced(), mode="power")


class TestAdderCells:
    def test_fa_cells_inferred_for_csa(self, csa8):
        netlist = assert_mapping_equivalent(csa8.aig, asap7_like())
        histogram = netlist.cell_histogram()
        # The CSA array has 48 FAs and 8 HAs; all should map to adder cells.
        assert histogram[FA_CELL_NAME] == 48
        assert histogram[HA_CELL_NAME] == 8

    def test_multi_output_disabled(self, csa4):
        netlist = map_aig(csa4.aig, asap7_like(), use_multi_output=False)
        assert FA_CELL_NAME not in netlist.cell_histogram()
        assert simulation_equivalent(csa4.aig, netlist_to_aig(netlist))

    def test_adder_cells_reduce_area(self, csa8):
        with_adders = map_aig(csa8.aig, asap7_like(), use_multi_output=True)
        without = map_aig(csa8.aig, asap7_like(), use_multi_output=False)
        assert with_adders.area < without.area

    def test_booth_gets_adder_cells(self, booth8):
        netlist = assert_mapping_equivalent(booth8.aig, asap7_like())
        assert netlist.cell_histogram().get(FA_CELL_NAME, 0) > 20


class TestMapUnmapStructure:
    def test_unmap_changes_structure_for_asap7(self, csa8):
        """The SOP adder-cell templates must re-decompose the netlist."""
        back = map_unmap(csa8.aig, asap7_like())
        assert simulation_equivalent(csa8.aig, back)
        assert back.num_ands != csa8.aig.num_ands

    def test_ground_truth_survives_mapping(self, csa8):
        """Exact reasoning on the re-expanded AIG still finds the adder
        tree (functional detection is representation-independent)."""
        from repro.reasoning import extract_adder_tree

        back = map_unmap(csa8.aig, asap7_like())
        tree = extract_adder_tree(back)
        original = extract_adder_tree(csa8.aig)
        assert tree.num_full_adders >= original.num_full_adders * 0.9


class TestMatcherAndErrors:
    def test_match_index_coverage(self):
        index = MatchIndex(mcnc_reduced(), 2)
        # Ten nontrivial 2-input functions exist; an and/or/xor-complete
        # library covers all of them.
        assert index.coverage(2) == 10

    def test_match_recovers_connection(self):
        from repro.aig.npn import apply_transform

        index = MatchIndex(asap7_like(), 3)
        truth = 0b00010111  # minority (¬MAJ) — covered by MAJI3x1
        match = index.match(truth, 3)
        assert match is not None
        rebuilt = apply_transform(
            match.cell.truth(), 3, match.perm, match.flips, match.out_flip
        )
        assert rebuilt == truth

    def test_unmappable_library_raises(self, csa4):
        # An inverter-and-buffer-only library cannot map AND nodes.
        tiny = parse_genlib("GATE inv 1.0 O=!a;\nGATE buf 1.0 O=a;\n", name="tiny")
        with pytest.raises(MappingError):
            map_aig(csa4.aig, tiny)

    def test_library_without_inverter_raises(self, csa4):
        no_inv = parse_genlib("GATE and2 1.0 O=a*b;\n", name="noinv")
        with pytest.raises(ValueError):
            map_aig(csa4.aig, no_inv)


class TestNetlistStructure:
    def test_stats_and_histogram(self, csa4):
        netlist = map_aig(csa4.aig, mcnc_reduced())
        stats = netlist.stats()
        assert stats["cells"] == netlist.num_cells
        assert stats["area"] == pytest.approx(netlist.area)
        assert stats["depth"] > 0
        assert sum(netlist.cell_histogram().values()) == netlist.num_cells

    def test_cells_topologically_ordered(self, csa4):
        netlist = map_aig(csa4.aig, mcnc_reduced())
        produced = set(range(2 + netlist.num_inputs))
        for inst in netlist.cells:
            assert all(net in produced for net in inst.input_nets)
            produced.update(inst.output_nets)

    def test_simulation_shape_validation(self, csa4):
        netlist = map_aig(csa4.aig, mcnc_reduced())
        with pytest.raises(ValueError):
            simulate_netlist(netlist, np.zeros((3, 1), dtype=np.uint64))
