"""End-to-end tests of the Gamora API and prediction post-processing."""

import numpy as np
import pytest

from repro.core import Gamora, correct_lsb_region, extract_from_predictions
from repro.generators import csa_multiplier
from repro.learn import TrainConfig
from repro.reasoning import (
    compare_adder_trees,
    extract_adder_tree,
    ground_truth_labels,
)


@pytest.fixture(scope="module")
def trained_gamora():
    gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=200))
    gamora.fit([csa_multiplier(8)])
    return gamora


class TestConstruction:
    def test_model_selection(self):
        assert Gamora(model="shallow").model_config.num_layers == 4
        assert Gamora(model="deep").model_config.num_layers == 8
        with pytest.raises(ValueError):
            Gamora(model="resnet")

    def test_accepts_generated_multiplier_or_aig(self, trained_gamora, csa4):
        by_wrapper = trained_gamora.predict(csa4)
        by_aig = trained_gamora.predict(csa4.aig)
        np.testing.assert_array_equal(by_wrapper["xor"], by_aig["xor"])

    def test_rejects_unknown_circuit_type(self, trained_gamora):
        with pytest.raises(TypeError):
            trained_gamora.predict("not a circuit")


class TestAccuracy:
    def test_generalization_accuracy(self, trained_gamora):
        metrics = trained_gamora.evaluate(csa_multiplier(16), labels_source="structural")
        # Paper: near-100% on CSA multipliers when trained on mult8.
        assert metrics["xor"] > 0.99
        assert metrics["maj"] > 0.98
        assert metrics["mean"] > 0.96

    def test_history_recorded(self, trained_gamora):
        assert trained_gamora.history
        assert "loss" in trained_gamora.history[-1]


class TestReason:
    def test_extraction_matches_exact(self, trained_gamora):
        target = csa_multiplier(16)
        outcome = trained_gamora.reason(target)
        exact = extract_adder_tree(target.aig)
        scores = compare_adder_trees(exact, outcome.tree)
        assert scores["recall"] > 0.95
        assert scores["precision"] > 0.95

    def test_outcome_bookkeeping(self, trained_gamora, csa4):
        outcome = trained_gamora.reason(csa4)
        assert outcome.inference_seconds > 0
        assert outcome.postprocess_seconds > 0
        assert outcome.num_mismatches >= 0
        assert set(outcome.labels) == {"root", "xor", "maj"}

    def test_lsb_correction_patches_low_cone(self, trained_gamora, csa4):
        outcome = trained_gamora.reason(csa4, correct_lsb=True)
        assert outcome.extraction.corrected_vars  # some low-bit nodes patched

    def test_root_filter_variant_runs(self, trained_gamora, csa4):
        outcome = trained_gamora.reason(csa4, root_filter=True)
        assert outcome.tree.num_full_adders >= 0


class TestPostprocess:
    def test_exact_labels_reproduce_exact_tree(self, csa8):
        """Feeding ground-truth labels through the prediction pipeline must
        recover the exact adder tree (perfect-prediction invariant)."""
        labels = ground_truth_labels(csa8.aig)
        extraction = extract_from_predictions(csa8.aig, labels, correct_lsb=False)
        exact = extract_adder_tree(csa8.aig)
        scores = compare_adder_trees(exact, extraction.tree)
        assert scores["f1"] == 1.0
        assert extraction.num_mismatches == 0

    def test_spurious_flags_are_rejected(self, csa4):
        """Nodes falsely flagged XOR/MAJ must be caught by verification."""
        labels = ground_truth_labels(csa4.aig)
        corrupted = {k: v.copy() for k, v in labels.items()}
        # Flag partial-product ANDs (never XOR) as XOR.
        pp_vars = [
            var for var in csa4.aig.and_vars()
            if csa4.aig.is_input(csa4.aig.fanin0(var) >> 1)
            and csa4.aig.is_input(csa4.aig.fanin1(var) >> 1)
        ][:5]
        for var in pp_vars:
            corrupted["xor"][var] = 1
        extraction = extract_from_predictions(csa4.aig, corrupted, correct_lsb=False)
        assert set(pp_vars) <= set(extraction.rejected_xor)

    def test_lsb_correction_restores_erased_labels(self, csa4):
        """Erase all labels in the LSB cone; correction must restore them."""
        labels = ground_truth_labels(csa4.aig)
        erased = {k: v.copy() for k, v in labels.items()}
        patched_ref, cone = correct_lsb_region(csa4.aig, labels)
        for var in cone:
            erased["xor"][var] = 0
            erased["maj"][var] = 0
            erased["root"][var] = 0
        patched, cone2 = correct_lsb_region(csa4.aig, erased)
        assert cone == cone2
        for task in ("xor", "maj"):
            np.testing.assert_array_equal(
                patched[task][sorted(cone)], patched_ref[task][sorted(cone)]
            )

    def test_compare_adder_trees_empty(self):
        from repro.reasoning import AdderTree

        scores = compare_adder_trees(AdderTree(), AdderTree())
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}


class TestPersistence:
    def test_save_load_roundtrip(self, trained_gamora, tmp_path, csa4):
        path = tmp_path / "model.npz"
        trained_gamora.save(path)
        restored = Gamora.load(path)
        original = trained_gamora.predict(csa4)
        loaded = restored.predict(csa4)
        for task in original:
            np.testing.assert_array_equal(original[task], loaded[task])

    def test_loaded_config_matches(self, trained_gamora, tmp_path):
        path = tmp_path / "model.npz"
        trained_gamora.save(path)
        restored = Gamora.load(path)
        assert restored.model_config.to_dict() == trained_gamora.model_config.to_dict()

    def test_save_load_roundtrip_without_suffix(self, trained_gamora, tmp_path, csa4):
        """save(path) must write exactly `path` even without an .npz suffix.

        np.savez on a bare string path silently appends ".npz", which made
        Gamora.load(path) on the very path the caller passed raise
        FileNotFoundError."""
        path = tmp_path / "model"  # deliberately no suffix
        trained_gamora.save(path)
        assert path.exists()
        assert not (tmp_path / "model.npz").exists()
        restored = Gamora.load(path)
        original = trained_gamora.predict(csa4)
        loaded = restored.predict(csa4)
        for task in original:
            np.testing.assert_array_equal(original[task], loaded[task])

    def test_save_load_with_unusual_suffix(self, trained_gamora, tmp_path):
        path = tmp_path / "model.weights"
        trained_gamora.save(path)
        assert path.exists()
        assert Gamora.load(path).model_config.to_dict() == \
            trained_gamora.model_config.to_dict()
