"""Tests for word-level abstraction reports."""

from repro.aig import AIG
from repro.generators.adders import ripple_carry_adder
from repro.reasoning import (
    analyze_adder_tree,
    extract_adder_tree,
    partial_product_leaves,
)


class TestMultiplierReport:
    def test_leaves_are_pps_or_pis(self, csa4):
        tree = extract_adder_tree(csa4.aig)
        pp_leaves, pi_leaves = partial_product_leaves(csa4.aig, tree)
        # In a CSA multiplier every external adder input is a partial
        # product (an AND of two PIs).
        assert pp_leaves
        for var in pp_leaves:
            f0, f1 = csa4.aig.fanins(var)
            assert csa4.aig.is_input(f0 >> 1)
            assert csa4.aig.is_input(f1 >> 1)

    def test_report_counts(self, csa4):
        tree = extract_adder_tree(csa4.aig)
        report = analyze_adder_tree(csa4.aig, tree)
        assert report.num_adders == len(tree.adders)
        assert report.num_full_adders == tree.num_full_adders
        assert report.num_half_adders == tree.num_half_adders
        assert sum(len(rank) for rank in report.ranks) == report.num_adders

    def test_outputs_driven_by_roots(self, csa4):
        tree = extract_adder_tree(csa4.aig)
        report = analyze_adder_tree(csa4.aig, tree)
        # The upper product bits of a multiplier come from final adders.
        assert report.output_roots

    def test_depth_grows_with_width(self):
        from repro.generators import csa_multiplier

        small = csa_multiplier(4)
        large = csa_multiplier(8)
        small_report = analyze_adder_tree(small.aig, extract_adder_tree(small.aig))
        large_report = analyze_adder_tree(large.aig, extract_adder_tree(large.aig))
        assert large_report.depth > small_report.depth

    def test_summary_is_readable(self, csa4):
        tree = extract_adder_tree(csa4.aig)
        report = analyze_adder_tree(csa4.aig, tree)
        text = report.summary()
        assert "FA" in text and "HA" in text and "depth" in text


class TestRippleReport:
    def test_carry_chain_is_a_path(self):
        aig = AIG()
        a_bits = aig.add_inputs(6, "a")
        b_bits = aig.add_inputs(6, "b")
        sums, cout = ripple_carry_adder(aig, a_bits, b_bits)
        for s in sums:
            aig.add_output(s)
        aig.add_output(cout)
        tree = extract_adder_tree(aig)
        report = analyze_adder_tree(aig, tree)
        # A ripple chain has exactly one adder per rank.
        assert all(len(rank) == 1 for rank in report.ranks)
        assert report.depth == len(tree.adders)
        # Ripple adder inputs are PIs, not partial products.
        assert not report.pp_leaves
        assert report.pi_leaves
