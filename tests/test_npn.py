"""Unit and property tests for NPN canonicalization and class predicates."""

from hypothesis import given
from hypothesis import strategies as st

from repro.aig.npn import (
    AND2,
    MAJ3,
    MAJ3_TRUTHS,
    XOR2,
    XOR2_TRUTHS,
    XOR3,
    XOR3_TRUTHS,
    all_npn_transforms,
    apply_transform,
    is_maj_truth,
    is_xor_truth,
    npn_canon,
    npn_class,
)


class TestApplyTransform:
    def test_identity_transform(self):
        assert apply_transform(0x96, 3, (0, 1, 2), (0, 0, 0), 0) == 0x96

    def test_output_negation(self):
        assert apply_transform(0x96, 3, (0, 1, 2), (0, 0, 0), 1) == 0x69

    def test_input_negation_on_xor_flips_output(self):
        # XOR with one complemented input is XNOR.
        assert apply_transform(0x96, 3, (0, 1, 2), (1, 0, 0), 0) == 0x69

    def test_maj_self_dual(self):
        # Complementing all inputs and the output leaves MAJ unchanged.
        assert apply_transform(0xE8, 3, (0, 1, 2), (1, 1, 1), 1) == 0xE8


class TestCanon:
    @given(
        table=st.sampled_from([XOR3, MAJ3, 0x80, 0xCA, 0x1B]),
        perm=st.permutations([0, 1, 2]),
        flips=st.tuples(*[st.integers(0, 1)] * 3),
        out=st.integers(0, 1),
    )
    def test_canon_invariant_under_transform(self, table, perm, flips, out):
        transformed = apply_transform(table, 3, tuple(perm), flips, out)
        assert npn_canon(transformed, 3) == npn_canon(table, 3)

    def test_distinct_classes_have_distinct_canons(self):
        assert npn_canon(XOR3, 3) != npn_canon(MAJ3, 3)
        assert npn_canon(AND2, 2) != npn_canon(XOR2, 2)

    def test_class_contains_table(self):
        assert XOR3 in npn_class(XOR3, 3)
        assert 0x69 in npn_class(XOR3, 3)


class TestClassSets:
    def test_xor2_class(self):
        assert XOR2_TRUTHS == frozenset({0b0110, 0b1001})

    def test_xor3_class(self):
        assert XOR3_TRUTHS == frozenset({0x96, 0x69})

    def test_maj3_class_size(self):
        # MAJ has 8 input-negation variants; output negation pairs them up
        # (self-duality), and permutations add nothing (symmetric function).
        assert len(MAJ3_TRUTHS) == 8
        assert 0xE8 in MAJ3_TRUTHS

    def test_and_is_not_xor_or_maj(self):
        assert not is_xor_truth(AND2, 2)
        assert not is_maj_truth(0x80, 3)  # AND3

    def test_predicates(self):
        assert is_xor_truth(0b1001, 2)  # XNOR2
        assert is_xor_truth(0x69, 3)  # XNOR3
        assert is_maj_truth(0x17, 3)  # minority = ¬MAJ
        assert not is_xor_truth(0x96, 4)  # wrong arity never matches


class TestTransformIndex:
    def test_all_transforms_reconstruct(self):
        orbit = all_npn_transforms(MAJ3, 3)
        for truth, (perm, flips, out) in orbit.items():
            assert apply_transform(MAJ3, 3, perm, flips, out) == truth

    def test_orbit_matches_class(self):
        assert set(all_npn_transforms(XOR3, 3)) == set(npn_class(XOR3, 3))
