"""Tests for word-level adders and carry-save reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, CONST0, CONST1
from repro.aig.simulate import evaluate_bits
from repro.generators.adders import (
    reduce_columns,
    ripple_carry_adder,
    ripple_merge_columns,
)
from repro.generators.components import AdderTrace, full_adder, half_adder


class TestComponents:
    @pytest.mark.parametrize(
        "bits", [(x, y) for x in (0, 1) for y in (0, 1)]
    )
    def test_half_adder_function(self, bits):
        aig = AIG()
        a, b = aig.add_inputs(2)
        s, c = half_adder(aig, a, b)
        aig.add_output(s)
        aig.add_output(c)
        x, y = bits
        assert evaluate_bits(aig, [x, y]) == [(x + y) & 1, (x + y) >> 1]

    @pytest.mark.parametrize(
        "bits", [(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)]
    )
    def test_full_adder_function(self, bits):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        s, co = full_adder(aig, a, b, c)
        aig.add_output(s)
        aig.add_output(co)
        x, y, z = bits
        total = x + y + z
        assert evaluate_bits(aig, [x, y, z]) == [total & 1, total >> 1]

    def test_full_adder_with_const0_degrades_to_half_adder(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        trace = AdderTrace()
        s, co = full_adder(aig, a, b, CONST0, trace)
        assert trace.num_half_adders == 1
        assert trace.num_full_adders == 0
        aig.add_output(s)
        aig.add_output(co)
        assert evaluate_bits(aig, [1, 1]) == [0, 1]

    def test_full_adder_with_const1(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        s, co = full_adder(aig, a, b, CONST1)
        aig.add_output(s)
        aig.add_output(co)
        for x in (0, 1):
            for y in (0, 1):
                total = x + y + 1
                assert evaluate_bits(aig, [x, y]) == [total & 1, total >> 1]

    def test_trace_skips_folded_adders(self):
        aig = AIG()
        a = aig.add_input()
        trace = AdderTrace()
        # a + a = 2a: sum folds to 0, carry to a — nothing to record.
        full_adder(aig, a, a, CONST0, trace)
        assert not trace.adders


class TestRippleCarry:
    @settings(max_examples=30)
    @given(
        a=st.integers(0, 255),
        b=st.integers(0, 255),
        cin=st.integers(0, 1),
    )
    def test_addition(self, a, b, cin):
        width = 8
        aig = AIG()
        a_bits = aig.add_inputs(width, "a")
        b_bits = aig.add_inputs(width, "b")
        sums, cout = ripple_carry_adder(
            aig, a_bits, b_bits, CONST1 if cin else CONST0
        )
        for s in sums:
            aig.add_output(s)
        aig.add_output(cout)
        bits = [(a >> i) & 1 for i in range(width)] + [
            (b >> i) & 1 for i in range(width)
        ]
        out = evaluate_bits(aig, bits)
        total = a + b + cin
        expected = [(total >> i) & 1 for i in range(width + 1)]
        assert out == expected

    def test_width_mismatch_rejected(self):
        aig = AIG()
        a_bits = aig.add_inputs(4, "a")
        b_bits = aig.add_inputs(3, "b")
        with pytest.raises(ValueError):
            ripple_carry_adder(aig, a_bits, b_bits[:3])

    def test_trace_counts_full_adders(self):
        aig = AIG()
        a_bits = aig.add_inputs(6, "a")
        b_bits = aig.add_inputs(6, "b")
        trace = AdderTrace()
        ripple_carry_adder(aig, a_bits, b_bits, trace=trace)
        # LSB slice has constant carry-in and folds to an HA.
        assert trace.num_half_adders == 1
        assert trace.num_full_adders == 5


def _sum_of_columns(aig: AIG, columns, input_bits):
    """Evaluate the integer value represented by reduced columns."""
    lits = []
    weights = []
    for position, bits in columns.items():
        for lit in bits:
            lits.append(lit)
            weights.append(position)
    for lit in lits:
        aig.add_output(lit)
    out = evaluate_bits(aig, input_bits)
    return sum(bit << w for bit, w in zip(out, weights))


@pytest.mark.parametrize("style", ["wallace", "dadda", "array"])
class TestReduction:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_reduction_preserves_sum(self, style, data):
        """Any reduction style must preserve the weighted sum of bits."""
        num_inputs = data.draw(st.integers(3, 8))
        positions = data.draw(
            st.lists(st.integers(0, 3), min_size=num_inputs, max_size=num_inputs)
        )
        values = data.draw(
            st.lists(st.integers(0, 1), min_size=num_inputs, max_size=num_inputs)
        )
        aig = AIG()
        lits = aig.add_inputs(num_inputs)
        if style == "array":
            payload = [{p: [lit]} for p, lit in zip(positions, lits)]
        else:
            payload = {}
            for p, lit in zip(positions, lits):
                payload.setdefault(p, []).append(lit)
        reduced = reduce_columns(aig, payload, style=style)
        assert all(len(bits) <= 2 for bits in reduced.values())
        got = _sum_of_columns(aig, reduced, values)
        expected = sum(v << p for v, p in zip(values, positions))
        assert got == expected

    def test_merge_produces_single_word(self, style):
        aig = AIG()
        lits = aig.add_inputs(6)
        payload = {0: lits[:3], 1: lits[3:5], 2: lits[5:]}
        if style == "array":
            payload = [{p: list(bits)} for p, bits in payload.items()]
        reduced = reduce_columns(aig, payload, style=style)
        word = ripple_merge_columns(aig, reduced)
        for lit in word:
            aig.add_output(lit)
        out = evaluate_bits(aig, [1] * 6)
        got = sum(bit << i for i, bit in enumerate(out))
        assert got == 3 * 1 + 2 * 2 + 1 * 4


class TestReductionErrors:
    def test_unknown_style(self):
        with pytest.raises(ValueError):
            reduce_columns(AIG(), {}, style="magic")

    def test_array_requires_rows(self):
        with pytest.raises(TypeError):
            reduce_columns(AIG(), {}, style="array")
