"""Differential tests: vectorized cut engine vs the legacy Cut-object path.

The fast engine (``repro.aig.fast_cuts``) must agree with the legacy
enumerator *exactly* — same cuts, same truths, same slot order, including
dedup/dominance/truncation edge cases — because it replaced the legacy
path behind label generation, exact detection, and prediction
post-processing.  The legacy implementation stays in the tree precisely to
serve as the oracle here.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.aig import AIG, lit_not, read_aiger
from repro.aig.cuts import Cut, enumerate_cuts
from repro.aig.fast_cuts import (
    CutArrays,
    classify_cut_arrays,
    enumerate_cuts_arrays,
    matched_leaf_sets,
)
from repro.aig.npn import (
    IS_MAJ3_LUT,
    IS_XOR2_LUT,
    IS_XOR3_LUT,
    is_maj_truth,
    is_xor_truth,
)
from repro.core.postprocess import extract_from_predictions
from repro.generators import booth_multiplier, csa_multiplier
from repro.reasoning import detect_xor_maj
from repro.reasoning.adder_tree import ground_truth_labels
from repro.utils.random_circuits import random_aig

FIXTURES = sorted((Path(__file__).parent / "fixtures").glob("*.aag"))


def assert_cutsets_equal(aig: AIG, k: int = 3, max_cuts: int = 8) -> None:
    legacy = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    fast = enumerate_cuts_arrays(aig, k=k, max_cuts=max_cuts).to_cutsets()
    assert len(legacy) == len(fast)
    for var, (want, got) in enumerate(zip(legacy, fast)):
        assert want == got, f"var {var}: legacy={want} fast={got}"


def assert_detections_equal(aig: AIG, max_cuts: int = 10) -> None:
    fast = detect_xor_maj(aig, max_cuts=max_cuts, engine="fast")
    legacy = detect_xor_maj(aig, max_cuts=max_cuts, engine="legacy")
    assert fast.xor_roots == legacy.xor_roots
    assert fast.maj_roots == legacy.maj_roots


class TestCutSetEquivalence:
    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_aiger_fixtures(self, path):
        assert_cutsets_equal(read_aiger(path))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_circuits(self, seed):
        aig = random_aig(num_inputs=5, num_ands=40, num_outputs=3, seed=seed)
        assert_cutsets_equal(aig)

    @pytest.mark.parametrize("seed", range(8))
    def test_dense_reconvergent_low_budget(self, seed):
        """Few inputs + many ANDs: dedup, dominance and truncation all bite."""
        aig = random_aig(num_inputs=3, num_ands=60, num_outputs=2,
                         seed=1000 + seed)
        assert_cutsets_equal(aig, max_cuts=4)
        assert_cutsets_equal(aig, k=2, max_cuts=6)

    @pytest.mark.parametrize("seed", range(8))
    def test_degenerate_outputs_and_constants(self, seed):
        """Constant/PI outputs and fold-created constants stress boundaries."""
        aig = random_aig(num_inputs=4, num_ands=30, num_outputs=5,
                         seed=2000 + seed, allow_constants=True)
        assert_cutsets_equal(aig)

    def test_multipliers(self, csa4, booth4):
        assert_cutsets_equal(csa4.aig, max_cuts=10)
        assert_cutsets_equal(booth4.aig, max_cuts=10)

    def test_empty_and_gateless_graphs(self):
        empty = AIG()
        assert enumerate_cuts_arrays(empty).to_cutsets() == enumerate_cuts(empty)
        pis_only = AIG()
        a, b = pis_only.add_inputs(2)
        pis_only.add_output(a)
        pis_only.add_output(lit_not(b))
        assert_cutsets_equal(pis_only)

    def test_duplicate_fanin_collapse(self):
        """x·x and x·¬x fold at construction; survivors must still agree."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        same = aig.add_and(a, a)  # folds to a
        contradiction = aig.add_and(a, lit_not(a))  # folds to const0
        aig.add_output(aig.add_and(aig.add_or(same, b), aig.add_xor(a, b)))
        aig.add_output(contradiction)
        assert_cutsets_equal(aig)

    def test_deep_chain_past_depth_limit(self):
        """A chain deeper than node_cuts' depth bound (legacy local cones
        truncate there; the global enumerations must still agree)."""
        aig = AIG()
        lits = aig.add_inputs(3)
        acc = lits[0]
        for i in range(12):
            acc = aig.add_xor(acc, lits[(i % 2) + 1])
        aig.add_output(acc)
        assert_cutsets_equal(aig)
        assert_detections_equal(aig)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            enumerate_cuts_arrays(AIG(), k=1)
        with pytest.raises(ValueError):
            enumerate_cuts_arrays(AIG(), k=4)

    def test_max_cuts_validation_matches_legacy(self):
        """Both engines reject max_cuts<1 (the legacy loop's off-by-one at
        0 — append-then-break kept one cut — is now an explicit error)."""
        with pytest.raises(ValueError):
            enumerate_cuts_arrays(AIG(), max_cuts=0)
        with pytest.raises(ValueError):
            enumerate_cuts(AIG(), max_cuts=0)


class TestArrayFormat:
    def test_struct_of_arrays_shapes_and_padding(self, csa4):
        arrays = enumerate_cuts_arrays(csa4.aig, max_cuts=6)
        n = csa4.aig.num_vars
        assert arrays.leaves.shape == (n, 7, 3)
        assert arrays.leaves.dtype == np.int32
        assert arrays.truths.shape == (n, 7)
        assert arrays.truths.dtype == np.uint8
        assert (arrays.counts >= 1).all()  # every node has its trivial cut
        # Unused leaf slots hold the pad id; used ones are ascending.
        for var in range(n):
            for slot in range(int(arrays.counts[var])):
                size = int(arrays.sizes[var, slot])
                row = arrays.leaves[var, slot]
                assert (row[size:] == n).all()
                assert (np.diff(row[:size]) > 0).all()

    def test_trivial_cut_is_last_slot(self, csa4):
        arrays = enumerate_cuts_arrays(csa4.aig)
        for var in csa4.aig.and_vars():
            last = int(arrays.counts[var]) - 1
            assert arrays.sizes[var, last] == 1
            assert arrays.leaves[var, last, 0] == var
            assert arrays.truths[var, last] == 0b10

    def test_cuts_of_adapter(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_and(a, b)
        arrays = enumerate_cuts_arrays(aig)
        cuts = arrays.cuts_of(y >> 1)
        assert Cut((a >> 1, b >> 1), 0b1000) in cuts
        assert Cut((y >> 1,), 0b10) in cuts


class TestClassificationLuts:
    def test_luts_match_predicates(self):
        for table in range(256):
            assert IS_XOR3_LUT[table] == is_xor_truth(table, 3)
            assert IS_MAJ3_LUT[table] == is_maj_truth(table, 3)
        for table in range(16):
            assert IS_XOR2_LUT[table] == is_xor_truth(table, 2)

    def test_orbits_are_disjoint(self):
        assert not (IS_XOR3_LUT & IS_MAJ3_LUT).any()

    def test_classify_full_adder(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        from repro.generators.components import full_adder

        s, co = full_adder(aig, a, b, c)
        aig.add_output(s)
        aig.add_output(co)
        arrays = enumerate_cuts_arrays(aig)
        is_xor, is_maj = classify_cut_arrays(arrays)
        assert is_xor[s >> 1].any()
        assert is_maj[co >> 1].any()
        xor_sets, maj_sets = matched_leaf_sets(arrays)
        target = tuple(sorted(x >> 1 for x in (a, b, c)))
        assert target in xor_sets[s >> 1]
        assert target in maj_sets[co >> 1]


class TestDetectionEquivalence:
    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_aiger_fixtures(self, path):
        assert_detections_equal(read_aiger(path))

    @pytest.mark.parametrize("seed", range(12))
    def test_random_circuits(self, seed):
        aig = random_aig(num_inputs=5, num_ands=50, num_outputs=3,
                         seed=3000 + seed)
        assert_detections_equal(aig)

    def test_multipliers(self, csa4, csa8, booth4):
        assert_detections_equal(csa4.aig)
        assert_detections_equal(csa8.aig)
        assert_detections_equal(booth4.aig)

    def test_engine_validation(self, csa4):
        with pytest.raises(ValueError):
            detect_xor_maj(csa4.aig, engine="nope")


class TestExtractionEquivalence:
    """Fast and legacy post-processing recover identical adder trees."""

    @staticmethod
    def assert_extractions_equal(aig: AIG) -> None:
        labels = ground_truth_labels(aig)
        fast = extract_from_predictions(aig, labels, engine="fast")
        legacy = extract_from_predictions(aig, labels, engine="legacy")
        assert fast.tree.adders == legacy.tree.adders
        assert fast.rejected_xor == legacy.rejected_xor
        assert fast.rejected_maj == legacy.rejected_maj
        assert fast.corrected_vars == legacy.corrected_vars
        assert fast.detection.xor_roots == legacy.detection.xor_roots
        assert fast.detection.maj_roots == legacy.detection.maj_roots

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_aiger_fixtures(self, path):
        self.assert_extractions_equal(read_aiger(path))

    def test_multipliers(self, csa4, booth4):
        self.assert_extractions_equal(csa4.aig)
        self.assert_extractions_equal(booth4.aig)

    @pytest.mark.slow
    def test_csa8(self, csa8):
        self.assert_extractions_equal(csa8.aig)

    def test_engine_validation(self, csa4):
        labels = ground_truth_labels(csa4.aig)
        with pytest.raises(ValueError):
            extract_from_predictions(csa4.aig, labels, engine="nope")

    def test_legacy_engine_rejects_precomputed_sets(self, csa4):
        """matched_sets come from the fast sweep; accepting them under
        engine='legacy' would silently make the oracle compare fast-vs-fast."""
        from repro.aig.fast_cuts import enumerate_cuts_arrays, matched_leaf_sets
        from repro.core.postprocess import correct_lsb_region, predictions_to_detection

        labels = ground_truth_labels(csa4.aig)
        matched = matched_leaf_sets(enumerate_cuts_arrays(csa4.aig, max_cuts=10))
        with pytest.raises(ValueError, match="legacy"):
            predictions_to_detection(csa4.aig, labels, engine="legacy",
                                     matched_sets=matched)
        with pytest.raises(ValueError, match="legacy"):
            correct_lsb_region(csa4.aig, labels, engine="legacy",
                               matched_sets=matched)


class TestLabelGenerationStability:
    """Ground-truth labels (training data) are engine-independent."""

    def test_labels_identical(self, csa4):
        fast = ground_truth_labels(
            csa4.aig, detect_xor_maj(csa4.aig, engine="fast")
        )
        legacy = ground_truth_labels(
            csa4.aig, detect_xor_maj(csa4.aig, engine="legacy")
        )
        for task in ("root", "xor", "maj"):
            assert np.array_equal(fast[task], legacy[task])


class TestConeRestrictedSweep:
    """restrict_to: cone nodes get full-sweep cuts, the rest stay empty."""

    def test_restricted_equals_full_on_cone(self, csa4):
        from repro.aig.graph import lit_var

        aig = csa4.aig
        roots = [lit_var(lit) for lit in aig.outputs[:2]]
        full = enumerate_cuts_arrays(aig, max_cuts=10)
        cone_only = enumerate_cuts_arrays(aig, max_cuts=10, restrict_to=roots)
        cone = aig.transitive_fanin(roots)
        for var in aig.and_vars():
            if var in cone:
                assert cone_only.cuts_of(var) == full.cuts_of(var)
            else:
                assert cone_only.counts[var] == 0

    def test_standalone_lsb_repair_engines_agree(self, csa4):
        from repro.core.postprocess import correct_lsb_region

        labels = ground_truth_labels(csa4.aig)
        fast_patched, fast_cone = correct_lsb_region(csa4.aig, labels,
                                                     engine="fast")
        legacy_patched, legacy_cone = correct_lsb_region(csa4.aig, labels,
                                                         engine="legacy")
        assert fast_cone == legacy_cone
        for task in ("root", "xor", "maj"):
            assert np.array_equal(fast_patched[task], legacy_patched[task])


class TestLeafCompactionPath:
    """The big-graph leaf-remapping branch produces identical cuts."""

    def test_forced_compaction_matches(self):
        # pack_limit below num_vars forces per-level leaf compaction (the
        # >1.2M-variable path) on a small graph; the chunk sizing derived
        # from the same limit must keep every compacted universe legal.
        aig = random_aig(num_inputs=30, num_ands=300, num_outputs=3, seed=7)
        assert aig.num_vars + 1 > 130
        want = enumerate_cuts_arrays(aig, max_cuts=6).to_cutsets()
        got = enumerate_cuts_arrays(aig, max_cuts=6,
                                    pack_limit=130).to_cutsets()
        assert want == got

    def test_safe_pack_limit_is_exact(self):
        from repro.aig.fast_cuts import _SAFE_PACK_LIMIT

        top = np.iinfo(np.int64).max
        assert 5 * _SAFE_PACK_LIMIT ** 3 < top
        assert 5 * (_SAFE_PACK_LIMIT + 1) ** 3 >= top

    def test_infeasible_pack_limit_is_rejected(self, csa4):
        # Below 6*slots+2 even a single-node chunk would overflow the
        # compacted universe; must refuse up front, not corrupt mid-sweep.
        with pytest.raises(ValueError, match="pack_limit"):
            enumerate_cuts_arrays(csa4.aig, pack_limit=8)
