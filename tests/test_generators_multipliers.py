"""Bit-exactness and structure tests for the multiplier generators."""

import pytest

from tests.conftest import assert_multiplier_correct
from repro.generators import booth_multiplier, csa_multiplier, make_multiplier


class TestCsaCorrectness:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 7, 8, 12, 16])
    def test_products_match_python(self, width):
        assert_multiplier_correct(csa_multiplier(width))

    @pytest.mark.parametrize("style", ["array", "wallace", "dadda"])
    def test_reduction_styles(self, style):
        assert_multiplier_correct(csa_multiplier(6, style=style))

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            csa_multiplier(0)


class TestBoothCorrectness:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 7, 8, 12, 16])
    def test_products_match_python(self, width):
        assert_multiplier_correct(booth_multiplier(width))

    def test_width_one_rejected(self):
        with pytest.raises(ValueError):
            booth_multiplier(1)

    @pytest.mark.parametrize("style", ["wallace", "dadda"])
    def test_reduction_styles(self, style):
        assert_multiplier_correct(booth_multiplier(6, style=style))


class TestStructure:
    @pytest.mark.parametrize("width", [3, 4, 8, 16])
    def test_csa_array_adder_counts(self, width):
        """The textbook carry-save array uses n(n-2) FAs and n HAs."""
        gen = csa_multiplier(width)
        assert gen.trace.num_full_adders == width * (width - 2)
        assert gen.trace.num_half_adders == width

    def test_interface(self):
        gen = csa_multiplier(5)
        assert gen.aig.num_inputs == 10
        assert gen.aig.num_outputs == 10
        assert len(gen.a_literals) == 5
        assert len(gen.b_literals) == 5
        assert gen.kind == "csa"
        assert gen.width == 5

    def test_booth_smaller_pp_rows_than_csa_for_large_width(self):
        """Radix-4 halves the number of partial-product rows; for wide
        operands the Booth netlist should not be dramatically larger."""
        csa = csa_multiplier(16, style="wallace")
        booth = booth_multiplier(16, style="wallace")
        assert booth.trace.num_full_adders < csa.trace.num_full_adders

    def test_names_are_stable(self):
        assert csa_multiplier(4).name == "mult4_csa_array"
        assert booth_multiplier(4).name == "mult4_booth_wallace"
        assert csa_multiplier(4, name="custom").name == "custom"

    def test_growth_is_quadratic(self):
        small = csa_multiplier(8).aig.num_ands
        large = csa_multiplier(16).aig.num_ands
        assert 3.0 < large / small < 5.0  # ~4x for doubled width


class TestFactory:
    def test_factory_dispatch(self):
        assert make_multiplier(4, "csa").kind == "csa"
        assert make_multiplier(4, "booth").kind == "booth"

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_multiplier(4, "karatsuba")
