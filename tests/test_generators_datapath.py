"""Bit-exactness and reasoning tests for datapath generators."""

import numpy as np
import pytest

from repro.aig.simulate import simulate
from repro.generators.datapath import (
    dot_product,
    multi_operand_adder,
    multiply_accumulate,
    squarer,
)
from repro.reasoning import extract_adder_tree
from tests.conftest import pack_operand_bits, unpack_output_words


def _check_block(block, widths, reference, num_patterns=128, seed=3):
    """Simulate a datapath block against a Python integer reference."""
    rng = np.random.default_rng(seed)
    operand_values = [
        rng.integers(0, 1 << w, size=num_patterns, dtype=np.uint64) for w in widths
    ]
    rows = [pack_operand_bits(vals, w) for vals, w in zip(operand_values, widths)]
    outputs = simulate(block.aig, np.vstack(rows))
    got = unpack_output_words(outputs, num_patterns)
    mask = (1 << block.aig.num_outputs) - 1
    expected = np.array(
        [reference(*(int(v[k]) for v in operand_values)) & mask
         for k in range(num_patterns)],
        dtype=object,
    )
    assert np.array_equal(got, expected), f"{block.name}: value mismatch"


class TestMultiOperandAdder:
    @pytest.mark.parametrize("num_operands", [2, 3, 5, 8])
    def test_sums_match(self, num_operands):
        block = multi_operand_adder(6, num_operands)
        _check_block(block, [6] * num_operands, lambda *xs: sum(xs))

    def test_adder_tree_recovered(self):
        block = multi_operand_adder(8, 4)
        tree = extract_adder_tree(block.aig)
        assert len(tree.adders) >= 8

    def test_bad_params(self):
        with pytest.raises(ValueError):
            multi_operand_adder(0, 3)
        with pytest.raises(ValueError):
            multi_operand_adder(4, 1)


class TestMac:
    @pytest.mark.parametrize("width", [3, 4, 6])
    def test_mac_matches(self, width):
        block = multiply_accumulate(width)
        _check_block(
            block, [width, width, 2 * width], lambda a, b, c: a * b + c
        )

    def test_custom_accumulator_width(self):
        block = multiply_accumulate(4, acc_width=4)
        _check_block(block, [4, 4, 4], lambda a, b, c: a * b + c)

    def test_contains_adder_tree(self):
        tree = extract_adder_tree(multiply_accumulate(6).aig)
        assert tree.num_full_adders > 10


class TestDotProduct:
    @pytest.mark.parametrize("terms", [1, 2, 3])
    def test_dot_matches(self, terms):
        width = 4
        block = dot_product(width, terms)
        widths = [width] * (2 * terms)

        def reference(*values):
            a_vals = values[:terms]
            b_vals = values[terms:]
            return sum(x * y for x, y in zip(a_vals, b_vals))

        _check_block(block, widths, reference)

    def test_shared_tree_smaller_than_separate(self):
        """One shared reduction beats summing separate multiplier outputs."""
        shared = dot_product(4, 3).aig.num_ands
        from repro.generators import csa_multiplier

        separate = 3 * csa_multiplier(4).aig.num_ands
        assert shared < separate + 2 * 8 * 9  # plus two 8-bit adders


class TestSquarer:
    @pytest.mark.parametrize("width", [2, 3, 5, 8])
    def test_squares_match(self, width):
        block = squarer(width)
        _check_block(block, [width], lambda a: a * a)

    def test_squarer_smaller_than_multiplier(self):
        from repro.generators import csa_multiplier

        assert squarer(8).aig.num_ands < csa_multiplier(8).aig.num_ands

    def test_square_tree_recovered(self):
        tree = extract_adder_tree(squarer(6).aig)
        assert tree.adders
